//! Integration tests for the design-space extensions beyond the paper's
//! four headline points: QLU layouts (§4.3), register-mapped queues
//! (§3.1.3), and centralized dedicated stores (§3.5.2).

use hfs::core::{DesignPoint, Machine, MachineConfig};
use hfs::workloads::benchmark;

const BUDGET: u64 = 100_000_000;

fn cycles(bench: &str, design: DesignPoint) -> u64 {
    let b = benchmark(bench).unwrap().with_iterations(250);
    Machine::new_pipeline(&MachineConfig::itanium2_cmp(design), &b.pair)
        .and_then(|mut m| m.run(BUDGET))
        .unwrap_or_else(|e| panic!("{bench} {design:?}: {e}"))
        .cycles
}

/// §4.3: performance is uniformly better with QLU 8 than QLU 1 — the
/// padded layout trades false sharing for an 8x loss of spatial locality
/// and loses badly.
#[test]
fn qlu8_beats_qlu1_uniformly() {
    for bench in ["wc", "adpcmdec", "fir"] {
        let q1 = cycles(bench, DesignPoint::existing_with_qlu(1));
        let q8 = cycles(bench, DesignPoint::existing_with_qlu(8));
        assert!(q8 < q1, "{bench}: QLU8 ({q8}) must beat QLU1 ({q1})");
    }
}

/// QLU validation rejects layouts that cannot hold a datum+flag slot.
#[test]
fn qlu_validation() {
    assert!(DesignPoint::existing_with_qlu(3).validate().is_err());
    assert!(DesignPoint::existing_with_qlu(16).validate().is_err());
    for q in [1, 2, 4, 8] {
        assert!(DesignPoint::existing_with_qlu(q).validate().is_ok());
    }
}

/// §3.1.3: with no register pressure, register-mapped queues are at
/// least as fast as HEAVYWT (communication costs no issue slots); with
/// heavy spill pressure they lose the advantage.
#[test]
fn regmapped_tradeoff() {
    for bench in ["wc", "adpcmdec"] {
        let hw = cycles(bench, DesignPoint::heavywt());
        let rm0 = cycles(bench, DesignPoint::regmapped(0));
        let rm8 = cycles(bench, DesignPoint::regmapped(8));
        assert!(
            rm0 <= hw + hw / 50,
            "{bench}: REGMAPPED(spill0)={rm0} should not lose to HEAVYWT={hw}"
        );
        assert!(
            rm8 > rm0,
            "{bench}: spill pressure must cost cycles ({rm0} -> {rm8})"
        );
    }
}

/// Register-mapped runs still verify FIFO semantics end to end.
#[test]
fn regmapped_verifies_queues() {
    let b = benchmark("fft2").unwrap().with_iterations(200);
    let r = Machine::new_pipeline(
        &MachineConfig::itanium2_cmp(DesignPoint::regmapped(2)),
        &b.pair,
    )
    .unwrap()
    .run(BUDGET)
    .unwrap();
    assert_eq!(r.iterations, 200);
    for c in &r.cores {
        assert_eq!(c.breakdown.total(), c.cycles);
    }
}

/// §3.5.2: a centralized dedicated store's longer access latency costs
/// consume-to-use-bound benchmarks, monotonically in distance.
#[test]
fn centralized_store_costs_latency() {
    let b = "fir"; // consumer-bound: consume-to-use on the critical path
    let distributed = cycles(b, DesignPoint::heavywt());
    let near = cycles(b, DesignPoint::heavywt_centralized(3));
    let far = cycles(b, DesignPoint::heavywt_centralized(12));
    assert!(near >= distributed);
    assert!(far > near, "farther store must cost more: {near} -> {far}");
    assert!(
        far as f64 > distributed as f64 * 1.2,
        "a 12-cycle store should clearly hurt fir: {distributed} -> {far}"
    );
}

/// Labels for the extended design points are distinct and stable.
#[test]
fn extended_labels() {
    assert_eq!(DesignPoint::existing_with_qlu(1).label(), "EXISTING(QLU1)");
    assert_eq!(DesignPoint::existing_with_qlu(8).label(), "EXISTING");
    assert_eq!(DesignPoint::memopti_with_qlu(4).label(), "MEMOPTI(QLU4)");
    assert_eq!(DesignPoint::regmapped(0).label(), "REGMAPPED");
    assert_eq!(DesignPoint::regmapped(4).label(), "REGMAPPED(spill4)");
    assert_eq!(
        DesignPoint::heavywt_centralized(6).label(),
        "HEAVYWT(central,l=6)"
    );
}

/// Multiple independent pipelines share the CMP correctly: all complete,
/// all verify, and per-core accounting stays consistent.
#[test]
fn multi_pipeline_runs_and_verifies() {
    let b = benchmark("epicdec").unwrap().with_iterations(150);
    for design in [
        DesignPoint::existing(),
        DesignPoint::syncopti_sc_q64(),
        DesignPoint::heavywt(),
    ] {
        let pairs = vec![b.pair.clone(), b.pair.clone()];
        let cfg = MachineConfig::itanium2_cmp(design);
        let r = Machine::new_multi_pipeline(&cfg, &pairs)
            .and_then(|mut m| m.run(BUDGET))
            .unwrap_or_else(|e| panic!("2-pair {design:?}: {e}"));
        assert_eq!(r.cores.len(), 4);
        assert_eq!(r.iterations, 150);
        for c in &r.cores {
            assert_eq!(c.breakdown.total(), c.cycles);
        }
    }
}

/// Contention grows most for the software-queue design when pipelines
/// multiply: its per-item coherence traffic fights for the shared bus,
/// while HEAVYWT's dedicated interconnect isolates it.
#[test]
fn heavywt_scales_better_than_existing() {
    let b = benchmark("adpcmdec").unwrap().with_iterations(200);
    let slowdown = |design: DesignPoint| {
        let run = |n: usize| {
            let pairs: Vec<_> = (0..n).map(|_| b.pair.clone()).collect();
            Machine::new_multi_pipeline(&MachineConfig::itanium2_cmp(design), &pairs)
                .and_then(|mut m| m.run(BUDGET))
                .unwrap_or_else(|e| panic!("{design:?} x{n}: {e}"))
                .cycles as f64
        };
        run(4) / run(1)
    };
    let hw = slowdown(DesignPoint::heavywt());
    let ex = slowdown(DesignPoint::existing());
    assert!(
        ex > hw,
        "EXISTING must degrade more under 4-pair contention: EXISTING x{ex:.2} vs HEAVYWT x{hw:.2}"
    );
}

/// More than four pairs exceed the shared-bus model and are rejected.
#[test]
fn multi_pipeline_rejects_oversize() {
    let b = benchmark("fir").unwrap().with_iterations(10);
    let pairs: Vec<_> = (0..5).map(|_| b.pair.clone()).collect();
    assert!(Machine::new_multi_pipeline(
        &MachineConfig::itanium2_cmp(DesignPoint::heavywt()),
        &pairs
    )
    .is_err());
}

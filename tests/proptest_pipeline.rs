//! Property-based end-to-end tests: randomly shaped pipelines must run
//! to completion with verified FIFO queue semantics on every design.

use hfs::core::kernel::{KStep, Kernel, KernelPair};
use hfs::core::{DesignPoint, Machine, MachineConfig};
use hfs::isa::QueueId;
use proptest::prelude::*;

/// Builds a random but valid two-thread pipeline.
fn arb_pair() -> impl Strategy<Value = KernelPair> {
    (
        1u32..6,          // producer ALU work
        1u32..6,          // consumer chain length
        1usize..3,        // number of queues
        10u64..40,        // iterations
        0u32..3,          // extra FP work
    )
        .prop_map(|(pwork, cchain, nq, iters, fp)| {
            let queues: Vec<QueueId> = (0..nq as u16).map(QueueId).collect();
            let mut psteps = vec![KStep::Alu(pwork)];
            if fp > 0 {
                psteps.push(KStep::Fp(fp));
            }
            for &q in &queues {
                psteps.push(KStep::Produce(q));
            }
            psteps.push(KStep::Branch);
            let mut csteps: Vec<KStep> =
                queues.iter().map(|&q| KStep::Consume(q)).collect();
            csteps.push(KStep::AluChain(cchain));
            csteps.push(KStep::Branch);
            KernelPair {
                name: "prop",
                producer: Kernel::new(psteps),
                consumer: Kernel::new(csteps),
                iterations: iters,
            }
        })
}

fn designs() -> Vec<DesignPoint> {
    vec![
        DesignPoint::existing(),
        DesignPoint::memopti(),
        DesignPoint::syncopti(),
        DesignPoint::syncopti_sc_q64(),
        DesignPoint::heavywt(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every random pipeline completes on every design, with the queue
    /// checker (produce/consume FIFO + conservation) passing and the
    /// stall breakdown accounting for every cycle.
    #[test]
    fn random_pipelines_complete_and_verify(pair in arb_pair()) {
        prop_assert!(pair.validate().is_ok());
        for design in designs() {
            let cfg = MachineConfig::itanium2_cmp(design);
            let result = Machine::new_pipeline(&cfg, &pair)
                .and_then(|mut m| m.run(20_000_000));
            let r = match result {
                Ok(r) => r,
                Err(e) => return Err(TestCaseError::fail(format!("{design:?}: {e}"))),
            };
            prop_assert_eq!(r.iterations, pair.iterations);
            for core in &r.cores {
                prop_assert_eq!(core.breakdown.total(), core.cycles);
            }
        }
    }

    /// The fused single-threaded lowering of any random pipeline also
    /// completes, and executes at least the communication-free
    /// instruction count.
    #[test]
    fn random_pipelines_fuse_and_complete(pair in arb_pair()) {
        let cfg = MachineConfig::itanium2_single();
        let r = Machine::new_single(&cfg, &pair)
            .and_then(|mut m| m.run(20_000_000));
        let r = match r {
            Ok(r) => r,
            Err(e) => return Err(TestCaseError::fail(e.to_string())),
        };
        prop_assert_eq!(r.iterations, pair.iterations);
        prop_assert!(r.cores[0].comm_instrs == 0, "fused code has no comm ops");
    }

    /// HEAVYWT never loses to the software-queue baseline on these
    /// communication-bound pipelines.
    #[test]
    fn heavywt_never_slower_than_existing(pair in arb_pair()) {
        let run = |d: DesignPoint| {
            Machine::new_pipeline(&MachineConfig::itanium2_cmp(d), &pair)
                .unwrap()
                .run(20_000_000)
                .unwrap()
                .cycles
        };
        let hw = run(DesignPoint::heavywt());
        let ex = run(DesignPoint::existing());
        prop_assert!(hw <= ex, "HEAVYWT {hw} vs EXISTING {ex}");
    }
}

//! Randomized end-to-end tests: randomly shaped pipelines must run to
//! completion with verified FIFO queue semantics on every design.
//! Driven by the workspace's deterministic [`Rng64`] (std-only).

use hfs::core::kernel::{KStep, Kernel, KernelPair};
use hfs::core::{DesignPoint, Machine, MachineConfig};
use hfs::isa::QueueId;
use hfs::sim::Rng64;

const CASES: u64 = 12;

/// Builds a random but valid two-thread pipeline.
fn arb_pair(rng: &mut Rng64) -> KernelPair {
    let pwork = rng.range(1, 6) as u32; // producer ALU work
    let cchain = rng.range(1, 6) as u32; // consumer chain length
    let nq = rng.range(1, 3) as usize; // number of queues
    let iters = rng.range(10, 40); // iterations
    let fp = rng.below(3) as u32; // extra FP work

    let queues: Vec<QueueId> = (0..nq as u16).map(QueueId).collect();
    let mut psteps = vec![KStep::Alu(pwork)];
    if fp > 0 {
        psteps.push(KStep::Fp(fp));
    }
    for &q in &queues {
        psteps.push(KStep::Produce(q));
    }
    psteps.push(KStep::Branch);
    let mut csteps: Vec<KStep> = queues.iter().map(|&q| KStep::Consume(q)).collect();
    csteps.push(KStep::AluChain(cchain));
    csteps.push(KStep::Branch);
    KernelPair {
        name: "prop",
        producer: Kernel::new(psteps),
        consumer: Kernel::new(csteps),
        iterations: iters,
    }
}

fn designs() -> Vec<DesignPoint> {
    vec![
        DesignPoint::existing(),
        DesignPoint::memopti(),
        DesignPoint::syncopti(),
        DesignPoint::syncopti_sc_q64(),
        DesignPoint::heavywt(),
    ]
}

/// Every random pipeline completes on every design, with the queue
/// checker (produce/consume FIFO + conservation) passing and the
/// stall breakdown accounting for every cycle.
#[test]
fn random_pipelines_complete_and_verify() {
    let mut rng = Rng64::new(0xE2E_0001);
    for _ in 0..CASES {
        let pair = arb_pair(&mut rng);
        assert!(pair.validate().is_ok());
        for design in designs() {
            let cfg = MachineConfig::itanium2_cmp(design);
            let r = Machine::new_pipeline(&cfg, &pair)
                .and_then(|mut m| m.run(20_000_000))
                .unwrap_or_else(|e| panic!("{design:?}: {e}"));
            assert_eq!(r.iterations, pair.iterations);
            for core in &r.cores {
                assert_eq!(core.breakdown.total(), core.cycles);
            }
        }
    }
}

/// The fused single-threaded lowering of any random pipeline also
/// completes, and executes at least the communication-free
/// instruction count.
#[test]
fn random_pipelines_fuse_and_complete() {
    let mut rng = Rng64::new(0xE2E_0002);
    for _ in 0..CASES {
        let pair = arb_pair(&mut rng);
        let cfg = MachineConfig::itanium2_single();
        let r = Machine::new_single(&cfg, &pair)
            .and_then(|mut m| m.run(20_000_000))
            .unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(r.iterations, pair.iterations);
        assert!(r.cores[0].comm_instrs == 0, "fused code has no comm ops");
    }
}

/// HEAVYWT never loses to the software-queue baseline on these
/// communication-bound pipelines.
#[test]
fn heavywt_never_slower_than_existing() {
    let mut rng = Rng64::new(0xE2E_0003);
    for _ in 0..CASES {
        let pair = arb_pair(&mut rng);
        let run = |d: DesignPoint| {
            Machine::new_pipeline(&MachineConfig::itanium2_cmp(d), &pair)
                .unwrap()
                .run(20_000_000)
                .unwrap()
                .cycles
        };
        let hw = run(DesignPoint::heavywt());
        let ex = run(DesignPoint::existing());
        assert!(hw <= ex, "HEAVYWT {hw} vs EXISTING {ex}");
    }
}

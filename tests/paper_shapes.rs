//! Shape assertions mirroring the paper's headline results. Absolute
//! numbers differ from the authors' testbed; orderings and approximate
//! factors are what these tests pin down (tolerances are deliberately
//! loose so the tests assert *shape*, not calibration noise).

use hfs::core::{DesignPoint, Machine, MachineConfig};
use hfs::sim::stats::geomean;
use hfs::workloads::{all_benchmarks, benchmark};

const ITERS: u64 = 300;
const BUDGET: u64 = 100_000_000;

fn cycles(bench: &hfs::workloads::Benchmark, design: DesignPoint) -> u64 {
    let cfg = MachineConfig::itanium2_cmp(design);
    Machine::new_pipeline(&cfg, &bench.pair)
        .and_then(|mut m| m.run(BUDGET))
        .unwrap_or_else(|e| panic!("{} {design:?}: {e}", bench.name))
        .cycles
}

/// Figure 7's ordering: HEAVYWT fastest, SYNCOPTI in between, software
/// queues slowest (geomean over all benchmarks).
#[test]
fn design_hierarchy_holds_on_geomean() {
    let mut hw_so = Vec::new();
    let mut so_ex = Vec::new();
    for b in all_benchmarks() {
        let b = b.with_iterations(ITERS);
        let hw = cycles(&b, DesignPoint::heavywt()) as f64;
        let so = cycles(&b, DesignPoint::syncopti()) as f64;
        let ex = cycles(&b, DesignPoint::existing()) as f64;
        hw_so.push(so / hw);
        so_ex.push(ex / so);
    }
    let g_hw_so = geomean(hw_so.iter().copied());
    let g_so_ex = geomean(so_ex.iter().copied());
    // Paper: SYNCOPTI ~31% slower than HEAVYWT.
    assert!(
        (1.02..1.6).contains(&g_hw_so),
        "SYNCOPTI/HEAVYWT geomean {g_hw_so:.2} out of band"
    );
    // Paper: SYNCOPTI gives ~1.6x speedup over EXISTING.
    assert!(
        (1.2..2.2).contains(&g_so_ex),
        "EXISTING/SYNCOPTI geomean {g_so_ex:.2} out of band"
    );
}

/// Figure 12's headline: SC+Q64 closes most of the gap to HEAVYWT
/// (paper: within 2%; we accept a wider band) and clearly beats EXISTING
/// (paper: ~2x).
#[test]
fn sc_q64_approaches_heavywt() {
    let mut ratios = Vec::new();
    let mut over_existing = Vec::new();
    for b in all_benchmarks() {
        let b = b.with_iterations(ITERS);
        let hw = cycles(&b, DesignPoint::heavywt()) as f64;
        let sc = cycles(&b, DesignPoint::syncopti_sc_q64()) as f64;
        let ex = cycles(&b, DesignPoint::existing()) as f64;
        ratios.push(sc / hw);
        over_existing.push(ex / sc);
    }
    let gap = geomean(ratios.iter().copied());
    assert!(
        gap < 1.25,
        "SC+Q64 geomean {gap:.2}x HEAVYWT (expected close)"
    );
    let speedup = geomean(over_existing.iter().copied());
    assert!(
        speedup > 1.4,
        "SC+Q64 speedup over EXISTING {speedup:.2} (paper ~2x)"
    );
}

/// Figure 12's monotonicity: the SC+Q64 optimizations clearly help the
/// tight communication-bound loops the paper designed them for, and do
/// not substantially hurt overall.
#[test]
fn optimizations_improve_syncopti() {
    let tight = ["art", "wc", "fir", "adpcmdec", "epicdec"];
    let mut tight_ratio = Vec::new();
    let mut all_ratio = Vec::new();
    for b in all_benchmarks() {
        let scaled = b.with_iterations(ITERS);
        let base = cycles(&scaled, DesignPoint::syncopti()) as f64;
        let opt = cycles(&scaled, DesignPoint::syncopti_sc_q64()) as f64;
        all_ratio.push(base / opt);
        if tight.contains(&b.name) {
            tight_ratio.push(base / opt);
        }
    }
    let tight_g = geomean(tight_ratio.iter().copied());
    let all_g = geomean(all_ratio.iter().copied());
    assert!(
        tight_g > 1.02,
        "SC+Q64 should speed up tight loops (got {tight_g:.3}x)"
    );
    assert!(
        all_g > 0.93,
        "SC+Q64 must not hurt overall (got {all_g:.3}x)"
    );
}

/// Figure 6: transit delay is tolerated by well-decoupled codes but hurts
/// bzip2's unpipelined outer-loop stream (paper: ~33%).
#[test]
fn transit_delay_tolerated_except_bzip2() {
    // Well-decoupled tight loop: adpcmdec.
    let adpcm = benchmark("adpcmdec").unwrap().with_iterations(ITERS);
    let t1 = cycles(&adpcm, DesignPoint::heavywt_with(1, 32)) as f64;
    let t10 = cycles(&adpcm, DesignPoint::heavywt_with(10, 32)) as f64;
    assert!(
        t10 / t1 < 1.12,
        "adpcmdec should tolerate 10-cycle transit: x{:.2}",
        t10 / t1
    );

    // bzip2's outer stream cannot be pipelined.
    let bzip2 = benchmark("bzip2").unwrap().with_iterations(150);
    let b1 = cycles(&bzip2, DesignPoint::heavywt_with(1, 32)) as f64;
    let b10 = cycles(&bzip2, DesignPoint::heavywt_with(10, 32)) as f64;
    assert!(
        b10 / b1 > 1.08,
        "bzip2 should slow with 10-cycle transit: x{:.2}",
        b10 / b1
    );
}

/// Figure 8: communication occurs every 5-20 application instructions
/// (geomean band; wc is denser by design).
#[test]
fn communication_frequency_band() {
    let mut ratios = Vec::new();
    for b in all_benchmarks() {
        let b = b.with_iterations(ITERS);
        let cfg = MachineConfig::itanium2_cmp(DesignPoint::heavywt());
        let r = Machine::new_pipeline(&cfg, &b.pair)
            .unwrap()
            .run(BUDGET)
            .unwrap();
        ratios.push(r.producer().comm_ratio());
        ratios.push(r.consumer().unwrap().comm_ratio());
    }
    let g = geomean(ratios.iter().copied());
    let per = 1.0 / g;
    assert!(
        (2.0..=20.0).contains(&per),
        "one comm per {per:.1} app instructions (paper: 5-20)"
    );
}

/// Figure 9: HEAVYWT parallelization beats single-threaded execution on
/// geomean (paper: ~29%).
#[test]
fn heavywt_speeds_up_over_single_threaded() {
    let mut speedups = Vec::new();
    for b in all_benchmarks() {
        let b = b.with_iterations(ITERS);
        let hw = cycles(&b, DesignPoint::heavywt()) as f64;
        let cfg = MachineConfig::itanium2_single();
        let single = Machine::new_single(&cfg, &b.pair)
            .unwrap()
            .run(BUDGET)
            .unwrap()
            .cycles as f64;
        speedups.push(single / hw);
    }
    let g = geomean(speedups.iter().copied());
    assert!(g > 1.05, "geomean speedup {g:.2} (paper ~1.29)");
}

/// Figures 10/11: slowing the bus hurts; widening it recovers most of the
/// loss (checked on a tight software-queue workload where bus traffic is
/// on the critical path).
#[test]
fn bus_bandwidth_recovers_latency_loss() {
    let b = benchmark("adpcmdec").unwrap().with_iterations(ITERS);
    let run = |cfg: MachineConfig| {
        Machine::new_pipeline(&cfg, &b.pair)
            .unwrap()
            .run(BUDGET)
            .unwrap()
            .cycles as f64
    };
    let d = DesignPoint::existing();
    let base = run(MachineConfig::itanium2_cmp(d));
    let slow = run(MachineConfig::itanium2_cmp(d).with_bus_divider(4));
    let wide = run(MachineConfig::itanium2_cmp(d)
        .with_bus_divider(4)
        .with_bus_width(128));
    assert!(
        slow > base * 1.05,
        "4-cycle bus should hurt: {base} -> {slow}"
    );
    assert!(wide < slow, "128-byte bus should recover: {slow} -> {wide}");
}

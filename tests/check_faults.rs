//! Fault injection: the machine checker must catch every seeded bug.
//!
//! Each [`Mutation`] arms one deliberate, test-only fault at a specific
//! site inside the machine (a skipped snoop invalidation, a dropped bus
//! response, a leaked OzQ slot, ...). This suite runs each mutation on a
//! design point that exercises the faulted component and asserts the run
//! terminates with a verification error naming the expected invariant —
//! a checker that misses any seeded bug is vacuous and fails CI.
//!
//! The sweep iterates [`Mutation::ALL`] and the expectation table is an
//! exhaustive `match`, so adding a mutation without a detection test is
//! a compile error here.

use hfs::core::kernel::KernelPair;
use hfs::core::{CheckLevel, DesignPoint, Machine, MachineConfig, Mutation, SimError};

/// Which design point exercises the mutation's site, and the dotted rule
/// (prefix) the resulting violation must carry.
fn expectation(m: Mutation) -> (DesignPoint, &'static str) {
    match m {
        // Coherence and bus faults live in the shared-memory path, which
        // software queues exercise hardest (flag-line ping-pong).
        Mutation::SkipSnoopInvalidate => (DesignPoint::existing(), "msi."),
        Mutation::DoubleGrantBus => (DesignPoint::existing(), "bus.double_grant"),
        Mutation::StarveBusAgent => (DesignPoint::existing(), "bus.starvation"),
        Mutation::DropBusResponse => (DesignPoint::existing(), "bus.lost_response"),
        Mutation::LeakOzqSlot => (DesignPoint::existing(), "ozq."),
        // Synchronization-array faults need the dedicated backing store.
        Mutation::SyncArrayLoseItem => (DesignPoint::heavywt(), "sa.conservation"),
        Mutation::DropConsumerWake => (DesignPoint::heavywt(), "sa.dropped_wake"),
        // The stream cache only exists on the SC variants.
        Mutation::CorruptForwardValue => (DesignPoint::syncopti_sc_q64(), "sc.stale_value"),
        // Differential data checks catch value corruption on any design.
        Mutation::CorruptLoadValue => (DesignPoint::existing(), "data.load_mismatch"),
        Mutation::CorruptStoreValue => (DesignPoint::existing(), "data.load_mismatch"),
    }
}

fn run_with_fault(m: Mutation) -> Result<(), String> {
    let (design, _) = expectation(m);
    let pair = KernelPair::simple("faults", 4, 300);
    let cfg = MachineConfig::itanium2_cmp(design);
    let mut machine = Machine::new_pipeline(&cfg, &pair).expect("machine builds");
    machine.set_check_level(CheckLevel::Full);
    machine.checker().set_mutation(m);
    match machine.run(20_000_000) {
        Ok(_) => Ok(()),
        Err(SimError::Verification(msg)) => Err(msg),
        Err(other) => Err(format!("non-verification failure: {other}")),
    }
}

/// Every seeded mutation must be detected, and the violation must name
/// the invariant guarding that site — zero silent survivors.
#[test]
fn every_seeded_mutation_is_detected() {
    let mut survivors = Vec::new();
    for m in Mutation::ALL {
        let (_, rule) = expectation(m);
        match run_with_fault(m) {
            Ok(()) => survivors.push(format!("{m:?}: ran to completion undetected")),
            Err(msg) if msg.contains(rule) => {}
            Err(msg) => survivors.push(format!("{m:?}: expected `{rule}`, got `{msg}`")),
        }
    }
    assert!(
        survivors.is_empty(),
        "mutations survived the checker:\n  {}",
        survivors.join("\n  ")
    );
}

/// An armed mutation on a *disabled* checker must do nothing: mutations
/// are carried by the checker handle itself, so an unchecked machine can
/// never be perturbed by fault-injection plumbing.
#[test]
fn disarmed_machine_is_unperturbed() {
    let pair = KernelPair::simple("faults", 4, 100);
    let cfg = MachineConfig::itanium2_cmp(DesignPoint::existing());
    let mut machine = Machine::new_pipeline(&cfg, &pair).expect("machine builds");
    machine.set_check_level(CheckLevel::Off);
    // set_mutation on a disabled checker is a no-op by construction.
    machine.checker().set_mutation(Mutation::DropBusResponse);
    let r = machine.run(20_000_000).expect("run completes");
    assert!(!r.checked);
    assert_eq!(r.iterations, 100);
}

/// The verification error fires *during* the run, at the offending
/// cycle's poll — not after timing out. A dropped bus response stalls
/// the machine forever; the checker must report it as a lost response
/// (after `REQUEST_AGE_BOUND` cycles), well before the deadlock window
/// or the caller's cycle budget.
#[test]
fn checker_terminates_run_instead_of_timing_out() {
    let msg = match run_with_fault(Mutation::DropBusResponse) {
        Err(m) => m,
        Ok(()) => panic!("dropped response went undetected"),
    };
    assert!(
        msg.contains("bus.lost_response"),
        "expected a lost-response report, got: {msg}"
    );
    assert!(
        msg.contains("never answered"),
        "report should carry the request detail: {msg}"
    );
}

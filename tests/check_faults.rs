//! Fault injection: the machine checker must catch every seeded bug,
//! under every coherence protocol.
//!
//! Each [`Mutation`] arms one deliberate, test-only fault at a specific
//! site inside the machine (a skipped snoop invalidation, a dropped bus
//! response, a leaked OzQ slot, ...). This suite runs each mutation on a
//! design point that exercises the faulted component and asserts the run
//! terminates with a verification error naming the expected invariant —
//! a checker that misses any seeded bug is vacuous and fails CI.
//!
//! The sweep runs once per protocol (MSI, MESI, Dragon): a mutation is
//! armed under a protocol only if its site executes there (Dragon never
//! issues invalidations, MSI never grants Exclusive), and the rule that
//! catches it must belong to that protocol's [`invariant_table`] — this
//! is what self-validates the per-protocol tables.
//!
//! The sweep iterates [`Mutation::ALL`] and the expectation table is an
//! exhaustive `match`, so adding a mutation without a detection test is
//! a compile error here.

use hfs::check::invariant_table;
use hfs::core::kernel::KernelPair;
use hfs::core::{CheckLevel, DesignPoint, Machine, MachineConfig, Mutation, SimError};
use hfs::mem::Protocol;

/// Which design point exercises the mutation's site under protocol `p`,
/// and the dotted rule (or `proto.` prefix) the resulting violation must
/// carry. `None` means the mutation's site never executes under `p`
/// (arming it there would be a guaranteed silent survivor by
/// construction), so it is excluded from that protocol's sweep.
fn expectation(p: Protocol, m: Mutation) -> Option<(DesignPoint, &'static str)> {
    // Census/staleness violations carry the active protocol's prefix.
    let coherence = match p {
        Protocol::Msi => "msi.",
        Protocol::Mesi => "mesi.",
        Protocol::Dragon => "dragon.",
    };
    Some(match m {
        // Coherence and bus faults live in the shared-memory path, which
        // software queues exercise hardest (flag-line ping-pong).
        Mutation::SkipSnoopInvalidate => match p {
            // Dragon issues no RdX/Upgr, so the invalidation site is
            // never reached in an update-based run.
            Protocol::Dragon => return None,
            _ => (DesignPoint::existing(), coherence),
        },
        Mutation::DoubleGrantBus => (DesignPoint::existing(), "bus.double_grant"),
        Mutation::StarveBusAgent => (DesignPoint::existing(), "bus.starvation"),
        Mutation::DropBusResponse => (DesignPoint::existing(), "bus.lost_response"),
        Mutation::LeakOzqSlot => (DesignPoint::existing(), "ozq."),
        // Synchronization-array faults need the dedicated backing store.
        Mutation::SyncArrayLoseItem => (DesignPoint::heavywt(), "sa.conservation"),
        Mutation::DropConsumerWake => (DesignPoint::heavywt(), "sa.dropped_wake"),
        // The stream cache only exists on the SC variants.
        Mutation::CorruptForwardValue => (DesignPoint::syncopti_sc_q64(), "sc.stale_value"),
        // Differential data checks catch value corruption on any design.
        Mutation::CorruptLoadValue => (DesignPoint::existing(), "data.load_mismatch"),
        Mutation::CorruptStoreValue => (DesignPoint::existing(), "data.load_mismatch"),
        // Exclusive-clean fills exist only on MESI/Dragon; the faulted
        // grant site is gated off entirely under MSI.
        Mutation::GrantExclusiveWithSharers => match p {
            Protocol::Msi => return None,
            _ => (DesignPoint::existing(), coherence),
        },
        // Bus-update faults need an update-based protocol to issue
        // BusUpd transactions at all.
        Mutation::SkipDragonUpdate => match p {
            Protocol::Dragon => (DesignPoint::existing(), "dragon.update_delivered"),
            _ => return None,
        },
        Mutation::HideDragonSharer => match p {
            Protocol::Dragon => (DesignPoint::existing(), "dragon."),
            _ => return None,
        },
    })
}

fn run_with_fault(p: Protocol, m: Mutation) -> Result<(), String> {
    let (design, _) = expectation(p, m).expect("mutation applicable under protocol");
    // A double grant needs two agents queued in the same arbitration
    // slot; one pipeline's traffic is too sparse under MESI (the silent
    // E->M upgrade removes enough address phases to ruin the overlap),
    // so that fault runs with two producer/consumer pairs.
    let pipes = if m == Mutation::DoubleGrantBus { 2 } else { 1 };
    let pairs: Vec<KernelPair> = (0..pipes)
        .map(|_| KernelPair::simple("faults", 4, 300))
        .collect();
    let mut cfg = MachineConfig::itanium2_cmp(design);
    cfg.mem.protocol = p;
    let mut machine = Machine::new_multi_pipeline(&cfg, &pairs).expect("machine builds");
    machine.set_check_level(CheckLevel::Full);
    machine.checker().set_mutation(m);
    match machine.run(20_000_000) {
        Ok(_) => Ok(()),
        Err(SimError::Verification(msg)) => Err(msg),
        Err(other) => Err(format!("non-verification failure: {other}")),
    }
}

/// Every applicable seeded mutation must be detected under `p`, the
/// violation must name the invariant guarding that site, and the firing
/// rule must belong to `p`'s invariant table — zero silent survivors.
fn sweep(p: Protocol) {
    let mut survivors = Vec::new();
    let mut armed = 0;
    for m in Mutation::ALL {
        let Some((_, rule)) = expectation(p, m) else {
            continue;
        };
        armed += 1;
        match run_with_fault(p, m) {
            Ok(()) => survivors.push(format!("{m:?}: ran to completion undetected")),
            Err(msg) if msg.contains(rule) => {
                // Recover the full dotted rule name from the report and
                // check it against the protocol's table.
                let start = msg.find(rule).unwrap();
                let fired: String = msg[start..]
                    .chars()
                    .take_while(|c| *c != ':' && !c.is_whitespace())
                    .collect();
                assert!(
                    invariant_table(p.kind()).contains(&fired),
                    "{m:?} under {p}: rule `{fired}` fired but is not in the {p} invariant table"
                );
            }
            Err(msg) => survivors.push(format!("{m:?}: expected `{rule}`, got `{msg}`")),
        }
    }
    // Each protocol must exercise the bulk of the mutation set; a table
    // that silently skips most faults is vacuous.
    assert!(armed >= 10, "{p}: only {armed} mutations armed");
    assert!(
        survivors.is_empty(),
        "mutations survived the {p} checker:\n  {}",
        survivors.join("\n  ")
    );
}

#[test]
fn every_seeded_mutation_is_detected_msi() {
    sweep(Protocol::Msi);
}

#[test]
fn every_seeded_mutation_is_detected_mesi() {
    sweep(Protocol::Mesi);
}

#[test]
fn every_seeded_mutation_is_detected_dragon() {
    sweep(Protocol::Dragon);
}

/// An armed mutation on a *disabled* checker must do nothing: mutations
/// are carried by the checker handle itself, so an unchecked machine can
/// never be perturbed by fault-injection plumbing.
#[test]
fn disarmed_machine_is_unperturbed() {
    let pair = KernelPair::simple("faults", 4, 100);
    let cfg = MachineConfig::itanium2_cmp(DesignPoint::existing());
    let mut machine = Machine::new_pipeline(&cfg, &pair).expect("machine builds");
    machine.set_check_level(CheckLevel::Off);
    // set_mutation on a disabled checker is a no-op by construction.
    machine.checker().set_mutation(Mutation::DropBusResponse);
    let r = machine.run(20_000_000).expect("run completes");
    assert!(!r.checked);
    assert_eq!(r.iterations, 100);
}

/// The verification error fires *during* the run, at the offending
/// cycle's poll — not after timing out. A dropped bus response stalls
/// the machine forever; the checker must report it as a lost response
/// (after `REQUEST_AGE_BOUND` cycles), well before the deadlock window
/// or the caller's cycle budget.
#[test]
fn checker_terminates_run_instead_of_timing_out() {
    let msg = match run_with_fault(Protocol::Msi, Mutation::DropBusResponse) {
        Err(m) => m,
        Ok(()) => panic!("dropped response went undetected"),
    };
    assert!(
        msg.contains("bus.lost_response"),
        "expected a lost-response report, got: {msg}"
    );
    assert!(
        msg.contains("never answered"),
        "report should carry the request detail: {msg}"
    );
}

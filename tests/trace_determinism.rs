//! Determinism of the tracing subsystem: recorded event streams are
//! byte-identical across worker counts and across processes, and traced
//! per-cycle core activity reproduces the Figure 7 accounting exactly.

use std::collections::BTreeMap;

use hfs::core::{DesignPoint, MachineConfig};
use hfs::harness::{execute_once_with, Engine, Job};
use hfs::trace::{event_stream_text, CoreActivity, TraceEvent, Tracer};
use hfs::workloads::benchmark;

/// FNV-1a (64-bit), the same hash the harness cache keys use; hand-rolled
/// so the golden value below is reproducible anywhere.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn small_syncopti_job(label: &str) -> Job {
    let b = benchmark("fir").unwrap().with_iterations(50);
    Job::pipeline(
        label,
        b.pair,
        MachineConfig::itanium2_cmp(DesignPoint::syncopti_sc_q64()),
    )
}

fn recorded_text(job: &Job) -> String {
    let tracer = Tracer::recording();
    execute_once_with(job, &tracer).expect("small traced run succeeds");
    event_stream_text(&tracer.take_events())
}

/// The event stream for a fixed small SYNCOPTI pipeline must hash to the
/// same value in every process — this constant was produced by running
/// the test once and baking the value in, so any cross-process
/// non-determinism (map iteration order, address-dependent state) shows
/// up as a hash mismatch here.
const GOLDEN_STREAM_FNV1A: u64 = 6_531_708_428_933_407_572;

#[test]
fn recorded_stream_matches_the_golden_hash() {
    let text = recorded_text(&small_syncopti_job("det/fir/syncopti"));
    assert!(!text.is_empty(), "stream has events");
    assert_eq!(
        fnv1a(text.as_bytes()),
        GOLDEN_STREAM_FNV1A,
        "recorded event stream drifted from the golden hash; first lines:\n{}",
        text.lines().take(10).collect::<Vec<_>>().join("\n")
    );
}

/// Traced machines fast-forward too (with a conservative bound that
/// replays per-cycle stall events), so the recorded stream must be
/// byte-identical whether or not fast-forwarding is enabled.
#[test]
fn recorded_stream_identical_with_and_without_fastforward() {
    use hfs::core::Machine;
    use hfs::workloads::benchmark;
    let bench = benchmark("fir").unwrap().with_iterations(50);
    let cfg = MachineConfig::itanium2_cmp(DesignPoint::syncopti_sc_q64());
    let mut streams = Vec::new();
    for ff in [true, false] {
        let tracer = Tracer::recording();
        let mut m = Machine::new_pipeline(&cfg, &bench.pair).expect("machine builds");
        m.set_tracer(tracer.clone());
        m.set_fast_forward(ff);
        m.run(10_000_000).expect("traced run succeeds");
        streams.push(event_stream_text(&tracer.take_events()));
    }
    assert!(!streams[0].is_empty(), "stream has events");
    assert_eq!(
        streams[0], streams[1],
        "fast-forwarding must not change the traced event stream"
    );
}

#[test]
fn recorded_stream_identical_across_repeat_runs() {
    let a = recorded_text(&small_syncopti_job("det/a"));
    let b = recorded_text(&small_syncopti_job("det/b"));
    assert_eq!(a, b, "same job must record the same stream");
}

#[test]
fn trace_files_identical_across_worker_counts() {
    let base = std::env::temp_dir().join(format!("hfs-trace-det-{}", std::process::id()));
    let mut per_worker_bytes = Vec::new();
    for workers in [1usize, 4] {
        let dir = base.join(format!("w{workers}"));
        let engine = Engine::new(workers)
            .with_progress(false)
            .with_trace_dir(dir.clone());
        let jobs: Vec<Job> = ["fir", "wc", "mcf"]
            .iter()
            .map(|n| {
                let b = benchmark(n).unwrap().with_iterations(30);
                Job::pipeline(
                    format!("det/{n}"),
                    b.pair,
                    MachineConfig::itanium2_cmp(DesignPoint::syncopti_sc_q64()),
                )
            })
            .collect();
        let batch = engine.run_batch("det", jobs);
        assert!(batch.all_ok(), "all jobs succeed at {workers} workers");
        let mut files: Vec<_> = std::fs::read_dir(&dir)
            .expect("trace dir exists")
            .map(|e| e.expect("dir entry").path())
            .collect();
        files.sort();
        assert_eq!(files.len(), 3, "one trace per executed job");
        per_worker_bytes.push(
            files
                .iter()
                .map(|p| std::fs::read(p).expect("read trace"))
                .collect::<Vec<_>>(),
        );
    }
    assert_eq!(
        per_worker_bytes[0], per_worker_bytes[1],
        "trace bytes must not depend on the worker count"
    );
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn core_state_events_sum_to_the_figure7_invariant() {
    let job = small_syncopti_job("det/invariant");
    let tracer = Tracer::recording();
    let result = execute_once_with(&job, &tracer).expect("traced run succeeds");
    let mut busy: BTreeMap<u8, u64> = BTreeMap::new();
    let mut stalls: BTreeMap<u8, u64> = BTreeMap::new();
    for e in tracer.take_events() {
        if let TraceEvent::CoreState { core, state, .. } = e {
            match state {
                CoreActivity::Busy => *busy.entry(core.0).or_insert(0) += 1,
                CoreActivity::Stall(_) => *stalls.entry(core.0).or_insert(0) += 1,
            }
        }
    }
    for (i, stats) in result.cores.iter().enumerate() {
        let id = u8::try_from(i).unwrap();
        let b = busy.get(&id).copied().unwrap_or(0);
        let s = stalls.get(&id).copied().unwrap_or(0);
        assert_eq!(b, stats.breakdown.busy(), "core {i}: busy events");
        assert_eq!(s, stats.breakdown.stall_total(), "core {i}: stall events");
        assert_eq!(b + s, stats.cycles, "core {i}: busy + stalls == cycles");
    }
}

//! Determinism: identical configurations produce identical simulations.

use hfs::core::{DesignPoint, Machine, MachineConfig};
use hfs::workloads::benchmark;

fn run_cycles(design: DesignPoint, seed: u64) -> u64 {
    let b = benchmark("mcf").unwrap().with_iterations(150);
    let mut cfg = MachineConfig::itanium2_cmp(design);
    cfg.seed = seed;
    Machine::new_pipeline(&cfg, &b.pair)
        .unwrap()
        .run(50_000_000)
        .unwrap()
        .cycles
}

#[test]
fn same_seed_same_result() {
    for design in [
        DesignPoint::existing(),
        DesignPoint::syncopti_sc_q64(),
        DesignPoint::heavywt(),
    ] {
        let a = run_cycles(design, 7);
        let b = run_cycles(design, 7);
        assert_eq!(a, b, "{design:?} is non-deterministic");
    }
}

#[test]
fn different_seed_changes_random_workloads() {
    // mcf uses random address streams, so a different seed changes the
    // cache behavior and (almost surely) the cycle count.
    let a = run_cycles(DesignPoint::heavywt(), 1);
    let b = run_cycles(DesignPoint::heavywt(), 2);
    assert_ne!(a, b, "seed should influence random address streams");
}

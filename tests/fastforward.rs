//! Fast-forward equivalence: skipping dead cycles must be invisible in
//! every architectural statistic, and the strided deadlock detector must
//! declare at the same cycle per-cycle simulation would.

use hfs::core::kernel::{KStep, Kernel, KernelPair};
use hfs::core::{CheckLevel, DesignPoint, Machine, MachineConfig, RunResult, SchedMode, SimError};
use hfs::isa::QueueId;
use hfs::sim::Rng64;

const CASES: u64 = 8;

/// Builds a random but valid two-thread pipeline (the same shape space
/// as `proptest_pipeline`, different seed stream).
fn arb_pair(rng: &mut Rng64) -> KernelPair {
    let pwork = rng.range(1, 6) as u32;
    let cchain = rng.range(1, 6) as u32;
    let nq = rng.range(1, 3) as usize;
    let iters = rng.range(10, 40);
    let fp = rng.below(3) as u32;

    let queues: Vec<QueueId> = (0..nq as u16).map(QueueId).collect();
    let mut psteps = vec![KStep::Alu(pwork)];
    if fp > 0 {
        psteps.push(KStep::Fp(fp));
    }
    for &q in &queues {
        psteps.push(KStep::Produce(q));
    }
    psteps.push(KStep::Branch);
    let mut csteps: Vec<KStep> = queues.iter().map(|&q| KStep::Consume(q)).collect();
    csteps.push(KStep::AluChain(cchain));
    csteps.push(KStep::Branch);
    KernelPair {
        name: "ff-prop",
        producer: Kernel::new(psteps),
        consumer: Kernel::new(csteps),
        iterations: iters,
    }
}

fn designs() -> Vec<DesignPoint> {
    vec![
        DesignPoint::existing(),
        DesignPoint::memopti(),
        DesignPoint::syncopti(),
        DesignPoint::syncopti_sc_q64(),
        DesignPoint::heavywt(),
    ]
}

fn run_with_ff(cfg: &MachineConfig, pair: &KernelPair, ff: bool) -> RunResult {
    let mut m = Machine::new_pipeline(cfg, pair).expect("machine builds");
    m.set_fast_forward(ff);
    m.run(20_000_000).expect("run completes")
}

/// Fast-forwarded runs must be bit-identical to per-cycle simulation:
/// same total cycles, same per-core statistics (including the stall
/// breakdown and the blocked-attempt counters the skip path replays in
/// bulk), same memory-system counters, same stream-cache counters.
#[test]
fn fastforward_matches_percycle_on_random_configs() {
    let mut rng = Rng64::new(0xFF_0001);
    for case in 0..CASES {
        let pair = arb_pair(&mut rng);
        assert!(pair.validate().is_ok());
        for design in designs() {
            let cfg = MachineConfig::itanium2_cmp(design);
            let fast = run_with_ff(&cfg, &pair, true);
            let slow = run_with_ff(&cfg, &pair, false);
            let label = format!("case {case}, {}", fast.design);
            assert_eq!(fast.cycles, slow.cycles, "{label}: cycles");
            assert_eq!(fast.cores, slow.cores, "{label}: core stats");
            assert_eq!(fast.mem, slow.mem, "{label}: mem stats");
            assert_eq!(fast.stream_cache, slow.stream_cache, "{label}: SC");
            assert_eq!(fast.iterations, slow.iterations, "{label}: iters");
        }
    }
}

/// The machine checker composes with fast-forward: enabling it forces
/// per-cycle simulation (every invariant is re-audited each cycle), yet
/// the architectural results must still match an unchecked run exactly —
/// with `set_fast_forward(true)` or `false` alike. This is the
/// FF-on == FF-off equivalence guarantee under `HFS_CHECK=1`.
#[test]
fn checker_preserves_results_and_pins_percycle() {
    let mut rng = Rng64::new(0xFF_0002);
    let pair = arb_pair(&mut rng);
    for design in designs() {
        let cfg = MachineConfig::itanium2_cmp(design);
        let baseline = run_with_ff(&cfg, &pair, true);
        let label = format!("checked {}", baseline.design);
        assert!(!baseline.checked, "{label}: baseline is unchecked");
        for ff in [true, false] {
            let mut m = Machine::new_pipeline(&cfg, &pair).expect("machine builds");
            m.set_fast_forward(ff);
            m.set_check_level(CheckLevel::Full);
            let r = m.run(20_000_000).expect("checked run completes");
            assert!(r.checked, "{label}: run reports itself checked");
            assert_eq!(r.cycles, baseline.cycles, "{label}: cycles (ff={ff})");
            assert_eq!(r.cores, baseline.cores, "{label}: core stats (ff={ff})");
            assert_eq!(r.mem, baseline.mem, "{label}: mem stats (ff={ff})");
            assert_eq!(
                r.stream_cache, baseline.stream_cache,
                "{label}: SC (ff={ff})"
            );
        }
    }
}

/// A dense pair: independent ALU work every cycle on both cores, so the
/// event-driven bound almost never clears the next cycle. Under the
/// EXISTING design this is the pathological case for fast-forward —
/// bound computations are pure overhead.
fn dense_pair() -> KernelPair {
    let q = QueueId(0);
    KernelPair {
        name: "ff-dense",
        producer: Kernel::new(vec![KStep::Alu(4), KStep::Produce(q), KStep::Branch]),
        consumer: Kernel::new(vec![KStep::Consume(q), KStep::AluChain(4), KStep::Branch]),
        iterations: 4000,
    }
}

/// A sparse pair: a serial FP producer leaves multi-cycle gaps where no
/// core can retire anything, so fast-forward jumps pay for themselves.
fn sparse_pair() -> KernelPair {
    let q = QueueId(0);
    KernelPair {
        name: "ff-sparse",
        producer: Kernel::new(vec![KStep::Fp(8), KStep::Produce(q), KStep::Branch]),
        consumer: Kernel::new(vec![KStep::Consume(q), KStep::AluChain(2), KStep::Branch]),
        iterations: 12_000,
    }
}

/// On a workload whose skip rate is too low to pay for bound
/// computation, the machine must latch fast-forward off after the first
/// observation window — and the architectural results must still be
/// bit-identical to a plain per-cycle run.
#[test]
fn auto_disable_latches_on_low_skip_workloads() {
    let pair = dense_pair();
    let cfg = MachineConfig::itanium2_cmp(DesignPoint::existing());
    let mut m = Machine::new_pipeline(&cfg, &pair).expect("machine builds");
    // The pay-floor latch belongs to the polling loop's bound machinery;
    // the event scheduler needs no latch, so pin the mode under test.
    m.set_sched_mode(SchedMode::Poll);
    m.set_fast_forward(true);
    let fast = m.run(20_000_000).expect("run completes");
    let stats = m.fast_forward_stats();
    assert!(
        stats.auto_disabled,
        "dense workload must trip the low-skip auto-disable: {stats:?}"
    );
    assert!(
        !m.fast_forward_enabled(),
        "auto-disable must latch fast-forward off for the rest of the run"
    );
    assert!(
        fast.cycles > 8192,
        "latch fires only after full observation windows, so the run \
         must span several: {} cycles",
        fast.cycles
    );

    let slow = run_with_ff(&cfg, &pair, false);
    assert_eq!(fast.cycles, slow.cycles, "auto-disable: cycles");
    assert_eq!(fast.cores, slow.cores, "auto-disable: core stats");
    assert_eq!(fast.mem, slow.mem, "auto-disable: mem stats");
    assert_eq!(fast.stream_cache, slow.stream_cache, "auto-disable: SC");
}

/// On a skip-heavy workload the auto-disable must *not* fire, even
/// across several full observation windows: fast-forward stays enabled
/// and keeps skipping.
#[test]
fn auto_disable_spares_skip_heavy_workloads() {
    let pair = sparse_pair();
    let cfg = MachineConfig::itanium2_cmp(DesignPoint::syncopti_sc_q64());
    let mut m = Machine::new_pipeline(&cfg, &pair).expect("machine builds");
    m.set_sched_mode(SchedMode::Poll);
    m.set_fast_forward(true);
    let r = m.run(20_000_000).expect("run completes");
    let stats = m.fast_forward_stats();
    assert!(
        r.cycles > 4 * 4096,
        "test must span multiple observation windows: {} cycles",
        r.cycles
    );
    assert!(
        !stats.auto_disabled,
        "skip-heavy workload must keep fast-forward: {stats:?}"
    );
    assert!(m.fast_forward_enabled());
    assert!(
        stats.skipped_cycles >= 2 * stats.bound_computations,
        "skip rate should clear the disable threshold: {stats:?}"
    );
}

/// `set_fast_forward(true)` re-arms a machine whose auto-disable has
/// latched: the latch is per-run state, not a permanent property.
#[test]
fn set_fast_forward_rearms_after_auto_disable() {
    let pair = dense_pair();
    let cfg = MachineConfig::itanium2_cmp(DesignPoint::existing());
    let mut m = Machine::new_pipeline(&cfg, &pair).expect("machine builds");
    m.set_sched_mode(SchedMode::Poll);
    m.set_fast_forward(true);
    m.run(20_000_000).expect("run completes");
    assert!(m.fast_forward_stats().auto_disabled, "precondition");
    m.set_fast_forward(true);
    assert!(m.fast_forward_enabled(), "re-arm restores fast-forward");
    assert!(
        !m.fast_forward_stats().auto_disabled,
        "re-arm clears the latch"
    );
}

/// A pipeline that genuinely deadlocks under HEAVYWT: the producer must
/// emit more items into `q0` than the queue, network, and consumer's
/// instruction window can absorb before it ever produces `q1`, while
/// the consumer's oldest in-flight consume waits on `q1`. Per-queue
/// produce/consume counts still balance, so the pair validates.
fn deadlocking_pair() -> KernelPair {
    let q0 = QueueId(0);
    let q1 = QueueId(1);
    KernelPair {
        name: "circular-wait",
        producer: Kernel::new(vec![
            KStep::Loop(vec![KStep::Produce(q0)], 200),
            KStep::Produce(q1),
            KStep::Branch,
        ]),
        consumer: Kernel::new(vec![
            KStep::Consume(q1),
            KStep::Loop(vec![KStep::Consume(q0)], 200),
            KStep::Branch,
        ]),
        iterations: 4,
    }
}

fn declared_cycle(deadlock_cycles: u64, ff: bool) -> u64 {
    // The consumer's instruction window lets consumes *behind* the
    // blocked q1 consume still issue, complete, and ACK, so the
    // producer can push roughly window + queue-depth items of q0
    // before back-pressure freezes it; 200 is far beyond that.
    let mut cfg = MachineConfig::itanium2_cmp(DesignPoint::heavywt_with(2, 4));
    cfg.deadlock_cycles = deadlock_cycles;
    let pair = deadlocking_pair();
    assert!(pair.validate().is_ok(), "balanced counts must validate");
    let mut m = Machine::new_pipeline(&cfg, &pair).expect("machine builds");
    m.set_fast_forward(ff);
    match m.run(10_000_000) {
        Err(SimError::Deadlock { cycle, .. }) => cycle,
        other => panic!("expected deadlock, got {other:?}"),
    }
}

/// The deadlock detector only *sweeps* every `DEADLOCK_STRIDE` cycles,
/// but the declared cycle is computed from progress timestamps, so it
/// must shift by exactly one when the window grows by one — per-cycle
/// declaration semantics, immune to the sweep quantization.
#[test]
fn strided_deadlock_declares_at_the_exact_cycle() {
    let base = declared_cycle(1000, true);
    let plus_one = declared_cycle(1001, true);
    assert_eq!(
        plus_one,
        base + 1,
        "declared cycle must track the window exactly, not the sweep grid"
    );
}

/// Fast-forward must not change when a deadlock is declared: the skip
/// target never jumps past a sweep that could declare.
#[test]
fn deadlock_cycle_identical_with_and_without_fastforward() {
    for window in [777, 1000, 4096] {
        assert_eq!(
            declared_cycle(window, true),
            declared_cycle(window, false),
            "window {window}"
        );
    }
}

//! End-to-end integration: every design point runs every benchmark to
//! completion with verified queue semantics and consistent accounting.

use hfs::core::{DesignPoint, Machine, MachineConfig};
use hfs::workloads::all_benchmarks;

const ITERS: u64 = 200;
const BUDGET: u64 = 50_000_000;

fn all_designs() -> Vec<DesignPoint> {
    vec![
        DesignPoint::existing(),
        DesignPoint::memopti(),
        DesignPoint::syncopti(),
        DesignPoint::syncopti_sc(),
        DesignPoint::syncopti_q64(),
        DesignPoint::syncopti_sc_q64(),
        DesignPoint::heavywt(),
        DesignPoint::heavywt_with_transit(10),
    ]
}

#[test]
fn every_design_runs_every_benchmark() {
    for bench in all_benchmarks() {
        let b = bench.with_iterations(ITERS);
        for design in all_designs() {
            let cfg = MachineConfig::itanium2_cmp(design);
            let result = Machine::new_pipeline(&cfg, &b.pair)
                .and_then(|mut m| m.run(BUDGET))
                .unwrap_or_else(|e| panic!("{} under {design:?}: {e}", b.name));
            assert_eq!(result.iterations, ITERS, "{} {design:?}", b.name);
            // The breakdown accounts for every cycle on every core.
            for (i, core) in result.cores.iter().enumerate() {
                assert_eq!(
                    core.breakdown.total(),
                    core.cycles,
                    "{} {design:?} core{i} breakdown mismatch",
                    b.name
                );
            }
        }
    }
}

#[test]
fn software_designs_execute_ten_instruction_sequences() {
    let b = hfs::workloads::benchmark("adpcmdec")
        .unwrap()
        .with_iterations(ITERS);
    let cfg = MachineConfig::itanium2_cmp(DesignPoint::existing());
    let r = Machine::new_pipeline(&cfg, &b.pair)
        .unwrap()
        .run(BUDGET)
        .unwrap();
    // One produce per iteration, ~10 comm instructions each (spins may
    // add more attempts, never fewer).
    assert!(
        r.producer().comm_instrs >= ITERS * 9,
        "comm instrs {} too low for software queues",
        r.producer().comm_instrs
    );
    // ISA designs use a single produce instruction plus nothing else.
    let cfg = MachineConfig::itanium2_cmp(DesignPoint::heavywt());
    let r2 = Machine::new_pipeline(&cfg, &b.pair)
        .unwrap()
        .run(BUDGET)
        .unwrap();
    assert!(r2.producer().comm_instrs <= ITERS + 2);
    assert!(r.producer().comm_instrs > 5 * r2.producer().comm_instrs);
}

#[test]
fn write_forwarding_happens_only_where_designed() {
    let b = hfs::workloads::benchmark("fir")
        .unwrap()
        .with_iterations(ITERS);
    let forwards = |d: DesignPoint| {
        let cfg = MachineConfig::itanium2_cmp(d);
        Machine::new_pipeline(&cfg, &b.pair)
            .unwrap()
            .run(BUDGET)
            .unwrap()
            .mem
            .forwards
    };
    assert_eq!(forwards(DesignPoint::existing()), 0);
    assert!(forwards(DesignPoint::memopti()) > 0);
    assert!(forwards(DesignPoint::syncopti()) > 0);
    assert_eq!(forwards(DesignPoint::heavywt()), 0);
}

#[test]
fn stream_cache_hits_only_with_sc_designs() {
    let b = hfs::workloads::benchmark("fir")
        .unwrap()
        .with_iterations(ITERS);
    let sc = |d: DesignPoint| {
        let cfg = MachineConfig::itanium2_cmp(d);
        Machine::new_pipeline(&cfg, &b.pair)
            .unwrap()
            .run(BUDGET)
            .unwrap()
            .stream_cache
    };
    assert!(sc(DesignPoint::syncopti()).is_none());
    let (hits, _, _) = sc(DesignPoint::syncopti_sc_q64()).expect("SC present");
    assert!(hits > 0, "stream cache never hit");
}

#[test]
fn single_threaded_fusion_runs_all_benchmarks() {
    for bench in all_benchmarks() {
        let b = bench.with_iterations(100);
        let cfg = MachineConfig::itanium2_single();
        let r = Machine::new_single(&cfg, &b.pair)
            .and_then(|mut m| m.run(BUDGET))
            .unwrap_or_else(|e| panic!("{} fused: {e}", b.name));
        assert_eq!(r.iterations, 100);
        assert_eq!(r.cores.len(), 1);
    }
}

//! End-to-end tests for `hfs-serve`: real sockets, concurrent clients,
//! byte-identical artifacts, single-flight deduplication, and
//! disconnect resilience.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

use hfs::core::{DesignPoint, MachineConfig};
use hfs::harness::{Engine, Job};
use hfs::serve::{Client, ClientFrame, Endpoint, Server, ServerConfig, ServerFrame};

/// Fresh scratch directory under the system temp dir (std-only; no
/// tempfile crate). Unique per test via pid + counter.
fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("hfs-serve-test-{}-{tag}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A small sweep: one benchmark across three golden designs, scaled to
/// `iterations` so tests stay fast.
fn sweep(experiment: &str, iterations: u64) -> Vec<Job> {
    let designs = [
        DesignPoint::existing(),
        DesignPoint::syncopti_sc_q64(),
        DesignPoint::heavywt(),
    ];
    let b = hfs::workloads::benchmark("fir").expect("fir exists");
    designs
        .iter()
        .map(|&d| {
            let bench = b.with_iterations(iterations);
            Job::pipeline(
                format!("{experiment}/fir/{d}"),
                bench.pair,
                MachineConfig::itanium2_cmp(d),
            )
        })
        .collect()
}

/// Binds a server on an ephemeral TCP port, runs it on a background
/// thread, and returns the connectable endpoint plus the join handle
/// (which yields the final drained counter snapshot).
fn start_server(config: ServerConfig) -> (Endpoint, thread::JoinHandle<hfs::serve::ServeStats>) {
    let server =
        Server::bind(&Endpoint::Tcp("127.0.0.1:0".to_string()), &config).expect("bind server");
    let addr = server.tcp_addr().expect("tcp endpoint has an address");
    let handle = thread::spawn(move || server.run().expect("server run"));
    (Endpoint::Tcp(addr.to_string()), handle)
}

/// Protocol round-trip over a real socket: ping, stats, a small batch
/// streamed back in submission order, then a clean drain on shutdown.
#[test]
fn protocol_round_trip_over_tcp() {
    let (endpoint, handle) = start_server(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&endpoint).expect("connect");
    client.ping().expect("ping");
    let before = client.stats().expect("stats");
    assert_eq!(before.submitted, 0);
    assert!(!before.draining);

    let jobs = sweep("roundtrip", 200);
    let labels: Vec<String> = jobs.iter().map(|j| j.label.clone()).collect();
    let mut updates = 0u64;
    let batch = client
        .submit("roundtrip", jobs, |u| {
            updates += 1;
            assert!(u.finished >= 1 && u.finished <= u.total);
        })
        .expect("submit");
    assert_eq!(updates, 3, "one streamed update per job");
    assert_eq!(batch.name, "roundtrip");
    let got: Vec<String> = batch.records.iter().map(|r| r.label.clone()).collect();
    assert_eq!(got, labels, "records come back in submission order");
    for r in &batch.records {
        assert!(r.outcome.is_ok(), "{}: {:?}", r.label, r.outcome);
    }

    client.shutdown_server().expect("shutdown ack");
    drop(client);
    let final_stats = handle.join().expect("server thread");
    assert_eq!(final_stats.submitted, 3);
    assert_eq!(final_stats.delivered, 3);
    assert_eq!(final_stats.queued, 0);
    assert_eq!(final_stats.running, 0);
}

/// The same round-trip over a Unix-domain socket (the production
/// transport), including socket-file cleanup after drain.
#[cfg(unix)]
#[test]
fn protocol_round_trip_over_unix_socket() {
    let sock = scratch_dir("unix").join("hfs.sock");
    let endpoint = Endpoint::Unix(sock.clone());
    let server = Server::bind(&endpoint, &ServerConfig::default()).expect("bind unix server");
    let handle = thread::spawn(move || server.run().expect("server run"));

    let mut client = Client::connect(&endpoint).expect("connect over unix socket");
    client.ping().expect("ping");
    let batch = client
        .submit("unix", sweep("unix", 200), |_| {})
        .expect("submit");
    assert_eq!(batch.records.len(), 3);
    client.shutdown_server().expect("shutdown ack");
    drop(client);
    handle.join().expect("server thread");
    assert!(
        !sock.exists(),
        "server removes its socket file after draining"
    );
}

/// N concurrent clients submitting the same sweep must each get an
/// artifact byte-identical to the offline engine's, while the shared
/// cache plus single-flight keep server-side executions at one per
/// unique job.
#[test]
fn concurrent_clients_get_byte_identical_artifacts() {
    const CLIENTS: usize = 3;
    let jobs = sweep("figX", 500);
    let unique = jobs.len() as u64;

    // Offline golden run: same jobs through the plain engine.
    let offline = Engine::new(2)
        .run_batch("figX", jobs.clone())
        .artifact_json();

    let (endpoint, handle) = start_server(ServerConfig {
        workers: 2,
        cache_dir: Some(scratch_dir("cache")),
        ..ServerConfig::default()
    });
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let mut threads = Vec::new();
    for _ in 0..CLIENTS {
        let endpoint = endpoint.clone();
        let jobs = jobs.clone();
        let barrier = Arc::clone(&barrier);
        threads.push(thread::spawn(move || {
            let mut client = Client::connect(&endpoint).expect("connect");
            barrier.wait();
            client
                .submit("figX", jobs, |_| {})
                .expect("submit")
                .artifact_json()
        }));
    }
    let artifacts: Vec<String> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    for (i, a) in artifacts.iter().enumerate() {
        assert_eq!(
            a, &offline,
            "client {i}'s artifact must be byte-identical to the offline run"
        );
    }

    let mut client = Client::connect(&endpoint).expect("connect");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.submitted, unique * CLIENTS as u64);
    assert_eq!(stats.delivered, unique * CLIENTS as u64);
    assert!(
        stats.executed <= unique,
        "single-flight + shared cache bound executions to one per unique job: {stats:?}"
    );
    assert_eq!(
        stats.executed + stats.cache_hits + stats.deduped,
        unique * CLIENTS as u64,
        "every delivery is an execution, a cache hit, or a dedup: {stats:?}"
    );
    client.shutdown_server().expect("shutdown ack");
    drop(client);
    handle.join().expect("server thread");
}

/// With the cache disabled, overlap between identical in-flight batches
/// can only be absorbed by single-flight — prove it with the counters.
#[test]
fn single_flight_dedupes_concurrent_identical_batches() {
    const CLIENTS: usize = 3;
    // One worker and multi-millisecond jobs: by the time the first job
    // finishes, every client's submission has joined the in-flight map.
    let jobs = sweep("dedup", 5_000);
    let unique = jobs.len() as u64;
    let (endpoint, handle) = start_server(ServerConfig {
        workers: 1,
        cache_dir: None,
        ..ServerConfig::default()
    });

    let barrier = Arc::new(Barrier::new(CLIENTS));
    let mut threads = Vec::new();
    for _ in 0..CLIENTS {
        let endpoint = endpoint.clone();
        let jobs = jobs.clone();
        let barrier = Arc::clone(&barrier);
        threads.push(thread::spawn(move || {
            let mut client = Client::connect(&endpoint).expect("connect");
            barrier.wait();
            client
                .submit("dedup", jobs, |_| {})
                .expect("submit")
                .artifact_json()
        }));
    }
    let artifacts: Vec<String> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    assert!(
        artifacts.windows(2).all(|w| w[0] == w[1]),
        "deduped batches must still deliver identical artifacts"
    );

    let mut client = Client::connect(&endpoint).expect("connect");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.submitted, unique * CLIENTS as u64);
    assert!(stats.deduped > 0, "expected in-flight dedup: {stats:?}");
    assert!(
        stats.executed < stats.submitted,
        "single-flight must execute fewer jobs than were submitted: {stats:?}"
    );
    client.shutdown_server().expect("shutdown ack");
    drop(client);
    handle.join().expect("server thread");
}

/// A client that disconnects mid-batch must not poison the server or
/// the cache: its queued flights are discarded, its running flight is
/// cancelled (and never cached), and a later client re-running the same
/// sweep still gets the offline-identical artifact.
#[test]
fn disconnect_mid_batch_leaves_cache_consistent() {
    let jobs = sweep("abandon", 5_000);
    let offline = Engine::new(2)
        .run_batch("abandon", jobs.clone())
        .artifact_json();

    let (endpoint, handle) = start_server(ServerConfig {
        workers: 1,
        cache_dir: Some(scratch_dir("abandon-cache")),
        ..ServerConfig::default()
    });

    // Raw protocol client: submit, read the acceptance, vanish.
    {
        let mut stream = endpoint.connect().expect("connect raw");
        ClientFrame::Submit {
            experiment: "abandon".to_string(),
            jobs: jobs.clone(),
        }
        .write_to(&mut stream)
        .expect("write submit");
        match ServerFrame::read_from(&mut stream).expect("read accepted") {
            Some(ServerFrame::Accepted { total, .. }) => assert_eq!(total, jobs.len() as u64),
            other => panic!("expected accepted, got {other:?}"),
        }
        // Dropping the stream here abandons the batch mid-flight.
    }
    // Give the server a moment to notice the hangup and cancel.
    thread::sleep(Duration::from_millis(50));

    let mut client = Client::connect(&endpoint).expect("reconnect");
    client
        .ping()
        .expect("server still healthy after disconnect");
    let batch = client
        .submit("abandon", jobs, |_| {})
        .expect("resubmit after disconnect");
    assert_eq!(
        batch.artifact_json(),
        offline,
        "post-disconnect rerun must still match the offline artifact"
    );
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.delivered, 3,
        "only the surviving client's jobs are delivered: {stats:?}"
    );
    client.shutdown_server().expect("shutdown ack");
    drop(client);
    let final_stats = handle.join().expect("server thread");
    assert_eq!(final_stats.queued, 0);
    assert_eq!(final_stats.running, 0);
}

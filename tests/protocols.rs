//! Coherence-protocol axis: MSI, MESI and Dragon must all be
//! deterministic, checker-clean, and behaviorally distinct in the ways
//! the protocols promise (silent E->M upgrades, bus updates instead of
//! invalidations).

use hfs::core::kernel::{KStep, Kernel, KernelPair};
use hfs::core::{CheckLevel, DesignPoint, Machine, MachineConfig};
use hfs::harness::{Engine, Job};
use hfs::isa::QueueId;
use hfs::mem::Protocol;
use hfs::sim::Rng64;

const CASES: u64 = 6;

/// Builds a random but valid two-thread pipeline.
fn arb_pair(rng: &mut Rng64) -> KernelPair {
    let pwork = rng.range(1, 6) as u32;
    let cchain = rng.range(1, 6) as u32;
    let nq = rng.range(1, 3) as usize;
    let iters = rng.range(10, 40);

    let queues: Vec<QueueId> = (0..nq as u16).map(QueueId).collect();
    let mut psteps = vec![KStep::Alu(pwork)];
    for &q in &queues {
        psteps.push(KStep::Produce(q));
    }
    psteps.push(KStep::Branch);
    let mut csteps: Vec<KStep> = queues.iter().map(|&q| KStep::Consume(q)).collect();
    csteps.push(KStep::AluChain(cchain));
    csteps.push(KStep::Branch);
    KernelPair {
        name: "proto",
        producer: Kernel::new(psteps),
        consumer: Kernel::new(csteps),
        iterations: iters,
    }
}

fn designs() -> [DesignPoint; 2] {
    [DesignPoint::existing(), DesignPoint::syncopti()]
}

/// The worker count is pure mechanics: the same protocol-crossed job
/// list must serialize to byte-identical artifacts on a 1-worker and a
/// 4-worker engine, for every protocol.
#[test]
fn one_vs_four_workers_byte_identical_across_protocols() {
    let build_jobs = || {
        let mut rng = Rng64::new(0x9307_0001);
        let mut jobs = Vec::new();
        for i in 0..CASES {
            let pair = arb_pair(&mut rng);
            for p in Protocol::ALL {
                for d in designs() {
                    let mut cfg = MachineConfig::itanium2_cmp(d);
                    cfg.mem.protocol = p;
                    jobs.push(Job::pipeline(
                        format!("proto/{i}/{p}/{}", d.label()),
                        pair.clone(),
                        cfg,
                    ));
                }
            }
        }
        jobs
    };
    let serial = Engine::new(1)
        .run_batch("protocols", build_jobs())
        .artifact_json();
    let parallel = Engine::new(4)
        .run_batch("protocols", build_jobs())
        .artifact_json();
    assert_eq!(serial, parallel, "worker count changed serialized outcomes");
}

/// Every random pipeline completes under the full cycle-level checker
/// on every protocol x design cross — no census violation, no stale
/// sharer, no spurious invalidation report.
#[test]
fn full_checker_clean_under_every_protocol() {
    let mut rng = Rng64::new(0x9307_0002);
    for _ in 0..CASES {
        let pair = arb_pair(&mut rng);
        for p in Protocol::ALL {
            for d in [
                DesignPoint::existing(),
                DesignPoint::syncopti(),
                DesignPoint::syncopti_sc_q64(),
            ] {
                let mut cfg = MachineConfig::itanium2_cmp(d);
                cfg.mem.protocol = p;
                let mut m = Machine::new_pipeline(&cfg, &pair).expect("machine builds");
                m.set_check_level(CheckLevel::Full);
                let r = m
                    .run(20_000_000)
                    .unwrap_or_else(|e| panic!("{p} / {}: {e}", d.label()));
                assert!(r.checked);
                assert_eq!(r.iterations, pair.iterations);
            }
        }
    }
}

/// Protocol fingerprints on a flag-polling software queue: only Dragon
/// performs bus updates; MSI and MESI stay purely invalidate-based.
#[test]
fn only_dragon_issues_bus_updates() {
    let pair = KernelPair::simple("proto-fp", 4, 200);
    for p in Protocol::ALL {
        let mut cfg = MachineConfig::itanium2_cmp(DesignPoint::existing());
        cfg.mem.protocol = p;
        let mut m = Machine::new_pipeline(&cfg, &pair).expect("machine builds");
        m.set_check_level(CheckLevel::Full);
        let r = m.run(20_000_000).unwrap_or_else(|e| panic!("{p}: {e}"));
        if p == Protocol::Dragon {
            assert!(r.mem.updates > 0, "Dragon run performed no bus updates");
        } else {
            assert_eq!(r.mem.updates, 0, "{p} must never issue bus updates");
        }
    }
}

/// MSI results are byte-stable against the protocol refactor by
/// construction: a run with the default configuration must not change
/// when the (default) protocol field is spelled out explicitly.
#[test]
fn default_protocol_is_msi_and_matches_explicit_msi() {
    let pair = KernelPair::simple("proto-default", 4, 100);
    let run = |cfg: MachineConfig| {
        Machine::new_pipeline(&cfg, &pair)
            .unwrap()
            .run(20_000_000)
            .unwrap()
            .cycles
    };
    let default_cfg = MachineConfig::itanium2_cmp(DesignPoint::existing());
    assert_eq!(default_cfg.mem.protocol, Protocol::Msi);
    let mut explicit = MachineConfig::itanium2_cmp(DesignPoint::existing());
    explicit.mem.protocol = Protocol::Msi;
    assert_eq!(run(default_cfg), run(explicit));
}

//! Scheduler-mode equivalence: the event-driven calendar-queue loop,
//! the polling fast-forward loop, and plain per-cycle stepping must be
//! bit-identical in every architectural statistic. Only wall-clock may
//! differ between modes.

use hfs::core::kernel::{KStep, Kernel, KernelPair};
use hfs::core::{DesignPoint, Machine, MachineConfig, RunResult, SchedMode};
use hfs::isa::QueueId;
use hfs::sim::Rng64;
use hfs::trace::Tracer;

const CASES: u64 = 6;

/// Builds a random but valid two-thread pipeline (the same shape space
/// as the fast-forward property test, different seed stream).
fn arb_pair(rng: &mut Rng64) -> KernelPair {
    let pwork = rng.range(1, 6) as u32;
    let cchain = rng.range(1, 6) as u32;
    let nq = rng.range(1, 3) as usize;
    let iters = rng.range(10, 40);
    let fp = rng.below(3) as u32;

    let queues: Vec<QueueId> = (0..nq as u16).map(QueueId).collect();
    let mut psteps = vec![KStep::Alu(pwork)];
    if fp > 0 {
        psteps.push(KStep::Fp(fp));
    }
    for &q in &queues {
        psteps.push(KStep::Produce(q));
    }
    psteps.push(KStep::Branch);
    let mut csteps: Vec<KStep> = queues.iter().map(|&q| KStep::Consume(q)).collect();
    csteps.push(KStep::AluChain(cchain));
    csteps.push(KStep::Branch);
    KernelPair {
        name: "sched-prop",
        producer: Kernel::new(psteps),
        consumer: Kernel::new(csteps),
        iterations: iters,
    }
}

fn designs() -> Vec<DesignPoint> {
    vec![
        DesignPoint::existing(),
        DesignPoint::memopti(),
        DesignPoint::syncopti(),
        DesignPoint::syncopti_sc_q64(),
        DesignPoint::heavywt(),
        // Centralized store: long consume-to-use latency keeps the
        // producer blocked on a full queue for whole windows — the
        // regime where a stale sync-array port budget (a begin_cycle
        // the event scheduler skipped) once leaked into stall counters.
        DesignPoint::heavywt_centralized(12),
    ]
}

/// One run in an explicitly pinned scheduler configuration, immune to
/// whatever `HFS_SCHED` the test environment carries.
fn run_mode(cfg: &MachineConfig, pair: &KernelPair, mode: SchedMode, ff: bool) -> RunResult {
    let mut m = Machine::new_pipeline(cfg, pair).expect("machine builds");
    m.set_sched_mode(mode);
    m.set_fast_forward(ff);
    m.run(20_000_000).expect("run completes")
}

fn assert_identical(a: &RunResult, b: &RunResult, label: &str) {
    assert_eq!(a.cycles, b.cycles, "{label}: cycles");
    assert_eq!(a.cores, b.cores, "{label}: core stats");
    assert_eq!(a.mem, b.mem, "{label}: mem stats");
    assert_eq!(a.stream_cache, b.stream_cache, "{label}: stream cache");
    assert_eq!(a.iterations, b.iterations, "{label}: iterations");
}

/// Event mode == poll mode == per-cycle stepping, across random
/// pipelines and every design point: same cycles, per-core statistics
/// (stall breakdowns included), memory-system counters, and
/// stream-cache counters.
#[test]
fn event_matches_poll_and_percycle_on_random_configs() {
    let mut rng = Rng64::new(0x5CED_0001);
    for case in 0..CASES {
        let pair = arb_pair(&mut rng);
        assert!(pair.validate().is_ok());
        for design in designs() {
            let cfg = MachineConfig::itanium2_cmp(design);
            let event = run_mode(&cfg, &pair, SchedMode::Event, true);
            let poll = run_mode(&cfg, &pair, SchedMode::Poll, true);
            let percycle = run_mode(&cfg, &pair, SchedMode::Poll, false);
            let label = format!("case {case}, {}", event.design);
            assert_identical(&event, &poll, &format!("{label} (event vs poll)"));
            assert_identical(&event, &percycle, &format!("{label} (event vs per-cycle)"));
        }
    }
}

/// The single-core fused baseline takes the same three paths.
#[test]
fn event_matches_poll_on_single_core_machines() {
    let mut rng = Rng64::new(0x5CED_0002);
    let pair = arb_pair(&mut rng);
    let cfg = MachineConfig::itanium2_cmp(DesignPoint::existing());
    let run = |mode, ff| {
        let mut m = Machine::new_single(&cfg, &pair).expect("machine builds");
        m.set_sched_mode(mode);
        m.set_fast_forward(ff);
        m.run(20_000_000).expect("run completes")
    };
    let event = run(SchedMode::Event, true);
    let poll = run(SchedMode::Poll, true);
    let percycle = run(SchedMode::Poll, false);
    assert_identical(&event, &poll, "single-core (event vs poll)");
    assert_identical(&event, &percycle, "single-core (event vs per-cycle)");
}

/// A metrics-only tracer is safe to fast-forward in event mode: its
/// fixed-order event totals and order-insensitive histograms must match
/// the per-cycle run exactly. (Recording tracers pin to the polling
/// loop instead — exported event *streams* are compared byte-for-byte
/// by the trace determinism suite.)
#[test]
fn metrics_only_tracer_is_identical_across_modes() {
    let mut rng = Rng64::new(0x5CED_0003);
    let pair = arb_pair(&mut rng);
    for design in designs() {
        let cfg = MachineConfig::itanium2_cmp(design);
        let run = |mode: SchedMode, ff: bool| {
            let mut m = Machine::new_pipeline(&cfg, &pair).expect("machine builds");
            m.set_sched_mode(mode);
            m.set_fast_forward(ff);
            m.set_tracer(Tracer::metrics_only());
            let r = m.run(20_000_000).expect("run completes");
            let t = m.tracer().clone();
            (r, t.event_counts(), t.consume_to_use(), t.queue_depth())
        };
        let (re, ce, cue, qde) = run(SchedMode::Event, true);
        let (rp, cp, cup, qdp) = run(SchedMode::Poll, false);
        let label = format!("metrics {}", re.design);
        assert_identical(&re, &rp, &label);
        assert_eq!(ce, cp, "{label}: event counts");
        assert_eq!(
            (cue.count(), cue.sum()),
            (cup.count(), cup.sum()),
            "{label}: consume-to-use histogram"
        );
        assert_eq!(
            (qde.count(), qde.sum()),
            (qdp.count(), qdp.sum()),
            "{label}: queue-depth histogram"
        );
    }
}

/// Event-mode sampling lands on the same grid with the same iteration
/// counts as per-cycle stepping, and the run populates the scheduler's
/// own accounting.
#[test]
fn sampling_grid_and_sched_stats_survive_event_mode() {
    let mut rng = Rng64::new(0x5CED_0004);
    let pair = arb_pair(&mut rng);
    let cfg = MachineConfig::itanium2_cmp(DesignPoint::syncopti_sc_q64());
    let run = |mode, ff| {
        let mut m = Machine::new_pipeline(&cfg, &pair).expect("machine builds");
        m.set_sched_mode(mode);
        m.set_fast_forward(ff);
        let out = m.run_sampled(20_000_000, Some(64)).expect("run completes");
        (out, m.sched_stats().clone())
    };
    let ((re, se), stats) = run(SchedMode::Event, true);
    let ((rp, sp), poll_stats) = run(SchedMode::Poll, false);
    assert_identical(&re, &rp, "sampled");
    assert_eq!(se, sp, "sample streams must be identical");
    assert_eq!(
        stats.cycles_processed + stats.cycles_skipped,
        re.cycles + 1,
        "processed + skipped cycles must partition the run: {stats:?}"
    );
    assert!(stats.scheduled > 0, "event run populates queue accounting");
    assert!(stats.fired > 0, "event run fires wakes");
    assert_eq!(
        poll_stats.scheduled, 0,
        "poll runs leave scheduler accounting zeroed"
    );
}

/// Regression: a producer blocked on a full queue for whole windows
/// (centralized store, long consume-to-use latency) once diverged in
/// `stream_blocked` — the event scheduler skipped the sync array's
/// per-cycle `begin_cycle`, so a consumer-side `try_consume` drew on a
/// stale port budget and parked, landing its ACK a cycle late. Needs a
/// real benchmark run: hundreds of iterations with sustained
/// queue-full phases, which the short random pipelines above never
/// reach.
#[test]
fn heavywt_centralized_long_blocked_phases_stay_identical() {
    let bench = hfs::workloads::all_benchmarks()
        .into_iter()
        .find(|b| b.name == "wc")
        .expect("wc registered");
    let mut pair = bench.pair.clone();
    pair.iterations = 300;
    let cfg = MachineConfig::itanium2_cmp(DesignPoint::heavywt_centralized(12));
    let event = run_mode(&cfg, &pair, SchedMode::Event, true);
    let percycle = run_mode(&cfg, &pair, SchedMode::Poll, false);
    assert_identical(&event, &percycle, "wc/centralized (event vs per-cycle)");
}

//! Observability integration tests: logger line-atomicity under
//! contention, metric-registry exactness, exposition golden, and the
//! serve-layer `metrics` frame invariants.
//!
//! Log assertions parse the structured JSON fields (via the harness
//! JSON parser) instead of matching raw stderr substrings — the
//! documented deflake contract for every log-asserting test.

use std::sync::Arc;
use std::thread;

use hfs::harness::{Engine, Json};
use hfs::obs::{BufferSink, Level, Logger, Registry};
use hfs::serve::{Client, Endpoint, Server, ServerConfig};

/// Every line a contended logger emits must parse as standalone JSON
/// with strictly increasing `seq` — proof that concurrent writers
/// never interleave bytes and that sequence assignment happens in sink
/// order.
#[test]
fn log_lines_are_atomic_and_ordered_under_contention() {
    const WRITERS: u64 = 8;
    const LINES: u64 = 50;
    let sink = BufferSink::new();
    let log = Arc::new(Logger::with_sink(Level::Debug, Box::new(sink.clone())));

    thread::scope(|s| {
        for t in 0..WRITERS {
            let log = Arc::clone(&log);
            s.spawn(move || {
                for i in 0..LINES {
                    log.info(
                        "test",
                        "tick",
                        &[
                            ("writer", t.into()),
                            ("i", i.into()),
                            // A hostile payload: quotes, backslashes,
                            // newlines — must stay inside one JSON line.
                            ("payload", "a\"b\\c\nd".into()),
                        ],
                    );
                }
            });
        }
    });

    let contents = sink.contents();
    let lines: Vec<&str> = contents.lines().collect();
    assert_eq!(lines.len(), (WRITERS * LINES) as usize);
    let mut last_seq = 0u64;
    let mut per_writer = vec![0u64; WRITERS as usize];
    for line in lines {
        let v = hfs::harness::parse(line)
            .unwrap_or_else(|e| panic!("log line is not valid JSON ({e}): {line}"));
        let seq = v.get("seq").and_then(Json::as_u64).expect("seq field");
        assert!(seq > last_seq, "seq strictly increases in sink order");
        last_seq = seq;
        assert_eq!(v.get("level").and_then(Json::as_str), Some("info"));
        assert_eq!(v.get("component").and_then(Json::as_str), Some("test"));
        assert_eq!(v.get("event").and_then(Json::as_str), Some("tick"));
        assert_eq!(
            v.get("payload").and_then(Json::as_str),
            Some("a\"b\\c\nd"),
            "escaping round-trips through the parser"
        );
        let w = v.get("writer").and_then(Json::as_u64).expect("writer");
        per_writer[w as usize] += 1;
    }
    assert!(per_writer.iter().all(|&n| n == LINES), "no line lost");
    assert_eq!(log.dropped(), 0);
}

/// Records below the configured level must not reach the sink at all.
#[test]
fn level_filter_silences_lower_severities() {
    let sink = BufferSink::new();
    let log = Logger::with_sink(Level::Error, Box::new(sink.clone()));
    log.info("serve", "connection_accepted", &[("conn", 1u64.into())]);
    log.debug("serve", "connection_closed", &[("conn", 1u64.into())]);
    log.warn("serve", "connection_error", &[]);
    assert!(sink.contents().is_empty(), "HFS_LOG=error silences chatter");
    log.error("serve", "accept_failed", &[]);
    let contents = sink.contents();
    let v = hfs::harness::parse(contents.trim()).expect("valid JSON");
    assert_eq!(v.get("event").and_then(Json::as_str), Some("accept_failed"));
}

/// N threads × M increments through cloned handles must sum exactly —
/// no lost updates, and a re-lookup of the same name shares the
/// instrument.
#[test]
fn registry_concurrent_increments_sum_exactly() {
    const THREADS: u64 = 8;
    const INCS: u64 = 500;
    let reg = Registry::new();
    let gauge = reg.gauge("hfs_jobs_in_flight");
    thread::scope(|s| {
        for _ in 0..THREADS {
            // Each thread looks its handles up independently, the way
            // separate components do in production.
            let c = reg.counter("hfs_jobs_submitted_total");
            let h = reg.histogram("hfs_job_exec_wall_ms", 1000);
            let g = gauge.clone();
            s.spawn(move || {
                for i in 0..INCS {
                    c.inc();
                    g.inc();
                    h.observe(i % 7);
                    g.dec();
                }
            });
        }
    });
    assert_eq!(
        reg.counter("hfs_jobs_submitted_total").get(),
        THREADS * INCS
    );
    assert_eq!(reg.gauge("hfs_jobs_in_flight").get(), 0);
    assert_eq!(
        reg.histogram("hfs_job_exec_wall_ms", 1000).count(),
        THREADS * INCS
    );
}

/// The exposition golden: sorted by name, counters and gauges one
/// sample each, histograms as summaries with three quantiles plus
/// `_sum`/`_count`.
#[test]
fn prometheus_exposition_matches_golden() {
    let reg = Registry::new();
    reg.counter("hfs_jobs_submitted_total").add(6);
    reg.gauge("hfs_queue_depth").set(2);
    let h = reg.histogram("hfs_job_queue_wait_ms", 100);
    for v in [1u64, 2, 3, 4] {
        h.observe(v);
    }
    let expected = "# TYPE hfs_job_queue_wait_ms summary\n\
                    hfs_job_queue_wait_ms{quantile=\"0.5\"} 2\n\
                    hfs_job_queue_wait_ms{quantile=\"0.95\"} 4\n\
                    hfs_job_queue_wait_ms{quantile=\"0.99\"} 4\n\
                    hfs_job_queue_wait_ms_sum 10\n\
                    hfs_job_queue_wait_ms_count 4\n\
                    # TYPE hfs_jobs_submitted_total counter\n\
                    hfs_jobs_submitted_total 6\n\
                    # TYPE hfs_queue_depth gauge\n\
                    hfs_queue_depth 2\n";
    assert_eq!(reg.render_prometheus(), expected);
}

/// Extracts the sample value for an exact metric name (no labels) from
/// Prometheus exposition text.
fn sample(text: &str, name: &str) -> i64 {
    text.lines()
        .find_map(|l| {
            let (n, v) = l.split_once(' ')?;
            (n == name).then(|| v.parse().expect("numeric sample"))
        })
        .unwrap_or_else(|| panic!("metric {name} not found in exposition:\n{text}"))
}

/// The engine's lifecycle histograms: every job contributes a
/// queue-wait observation; only executed (non-cached) jobs contribute
/// an execution-wall observation.
#[test]
fn engine_registry_tracks_job_lifecycle() {
    let designs = [
        hfs::core::DesignPoint::existing(),
        hfs::core::DesignPoint::heavywt(),
    ];
    let b = hfs::workloads::benchmark("fir").expect("fir exists");
    let jobs: Vec<hfs::harness::Job> = designs
        .iter()
        .map(|&d| {
            hfs::harness::Job::pipeline(
                format!("obs/fir/{d}"),
                b.with_iterations(100).pair,
                hfs::core::MachineConfig::itanium2_cmp(d),
            )
        })
        .collect();
    let n = jobs.len() as i64;

    let engine = Engine::new(2);
    let batch = engine.run_batch("obs", jobs);
    assert!(batch.all_ok());

    let text = engine.registry().render_prometheus();
    assert_eq!(sample(&text, "hfs_job_queue_wait_ms_count"), n);
    assert_eq!(
        sample(&text, "hfs_job_exec_wall_ms_count"),
        n,
        "no cache configured: every job executes"
    );
    assert_eq!(sample(&text, "hfs_job_retries_total"), 0);
    assert_eq!(sample(&text, "hfs_job_timeouts_total"), 0);
}

/// End-to-end `metrics` frame invariants against a live server: the
/// exposition is well-formed, agrees with the `stats` frame (they read
/// the same registry), and satisfies the lifecycle accounting
/// identities at quiescence.
#[test]
fn metrics_frame_agrees_with_stats_and_lifecycle_invariants() {
    let cache_dir = std::env::temp_dir().join(format!("hfs-obs-test-cache-{}", std::process::id()));
    let config = ServerConfig {
        workers: 2,
        cache_dir: Some(cache_dir.clone()),
        ..ServerConfig::default()
    };
    let server = Server::bind(&Endpoint::Tcp("127.0.0.1:0".to_string()), &config).expect("bind");
    let addr = server.tcp_addr().expect("tcp addr");
    let handle = thread::spawn(move || server.run().expect("server run"));
    let endpoint = Endpoint::Tcp(addr.to_string());

    let designs = [
        hfs::core::DesignPoint::existing(),
        hfs::core::DesignPoint::syncopti_sc_q64(),
        hfs::core::DesignPoint::heavywt(),
    ];
    let b = hfs::workloads::benchmark("fir").expect("fir exists");
    let jobs: Vec<hfs::harness::Job> = designs
        .iter()
        .map(|&d| {
            hfs::harness::Job::pipeline(
                format!("obsmetrics/fir/{d}"),
                b.with_iterations(200).pair,
                hfs::core::MachineConfig::itanium2_cmp(d),
            )
        })
        .collect();

    let mut client = Client::connect(&endpoint).expect("connect");
    // Two identical submissions on one connection: the first executes
    // every job, the second is served from the shared cache (or deduped
    // if still in flight); the identities below hold either way.
    for round in 0..2 {
        let batch = client
            .submit("obsmetrics", jobs.clone(), |_| {})
            .unwrap_or_else(|e| panic!("submit round {round}: {e}"));
        assert!(batch.all_ok());
    }

    let stats = client.stats().expect("stats");
    let text = client.metrics().expect("metrics");

    // Well-formedness: every non-comment line is `name[{labels}] value`.
    for line in text.lines() {
        assert!(!line.is_empty(), "no blank lines in exposition");
        if line.starts_with('#') {
            continue;
        }
        let (name, value) = line.split_once(' ').expect("sample has one space");
        assert!(!name.is_empty());
        assert!(
            value.parse::<i64>().is_ok() || value.parse::<f64>().is_ok(),
            "sample value is numeric: {line}"
        );
    }

    // Single source of truth: the stats frame and the exposition must
    // agree exactly — both read the same registry.
    assert_eq!(
        sample(&text, "hfs_jobs_submitted_total"),
        stats.submitted as i64
    );
    assert_eq!(
        sample(&text, "hfs_jobs_executed_total"),
        stats.executed as i64
    );
    assert_eq!(
        sample(&text, "hfs_jobs_cache_hits_total"),
        stats.cache_hits as i64
    );
    assert_eq!(
        sample(&text, "hfs_jobs_deduped_total"),
        stats.deduped as i64
    );
    assert_eq!(
        sample(&text, "hfs_jobs_delivered_total"),
        stats.delivered as i64
    );

    // Lifecycle accounting at quiescence.
    let submitted = sample(&text, "hfs_jobs_submitted_total");
    let executed = sample(&text, "hfs_jobs_executed_total");
    let cache_hits = sample(&text, "hfs_jobs_cache_hits_total");
    let deduped = sample(&text, "hfs_jobs_deduped_total");
    assert_eq!(submitted, 6, "two rounds of three jobs");
    assert_eq!(
        submitted,
        deduped + executed + cache_hits,
        "every submission is exactly one of executed/deduped/cache-hit"
    );
    assert_eq!(
        sample(&text, "hfs_job_queue_wait_ms_count"),
        executed,
        "queue-wait is observed exactly once per executed job"
    );
    assert_eq!(
        sample(&text, "hfs_job_exec_wall_ms_count"),
        executed,
        "execution-wall is observed exactly once per executed job"
    );

    // Live gauges at quiescence: nothing queued or running, our one
    // connection still open.
    assert_eq!(sample(&text, "hfs_queue_depth"), 0);
    assert_eq!(sample(&text, "hfs_jobs_in_flight"), 0);
    assert_eq!(sample(&text, "hfs_open_connections"), 1);
    assert_eq!(sample(&text, "hfs_draining"), 0);

    client.shutdown_server().expect("shutdown");
    drop(client);
    let final_stats = handle.join().expect("server thread");
    assert_eq!(final_stats.submitted, 6);
    assert_eq!(final_stats.delivered, 6);
    let _ = std::fs::remove_dir_all(&cache_dir);
}

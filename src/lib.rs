//! `hfs` — facade crate re-exporting the full workspace API.
//!
//! See the individual crates for details:
//! [`hfs_sim`], [`hfs_isa`], [`hfs_mem`], [`hfs_cpu`], [`hfs_core`],
//! [`hfs_check`], [`hfs_trace`], [`hfs_workloads`], [`hfs_harness`],
//! [`hfs_serve`], [`hfs_obs`].

pub use hfs_check as check;
pub use hfs_core as core;
pub use hfs_cpu as cpu;
pub use hfs_harness as harness;
pub use hfs_isa as isa;
pub use hfs_mem as mem;
pub use hfs_obs as obs;
pub use hfs_serve as serve;
pub use hfs_sim as sim;
pub use hfs_trace as trace;
pub use hfs_workloads as workloads;

//! Warm-up vs steady state: samples iteration throughput over time and
//! prints a text sparkline per design. The software-queue design shows a
//! long cold-coherence ramp; the dedicated-hardware design is at speed
//! almost immediately.
//!
//! ```sh
//! cargo run --release --example warmup
//! ```

use hfs::core::{DesignPoint, Machine, MachineConfig};
use hfs::workloads::benchmark;

const BARS: &[char] = &[' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

fn sparkline(values: &[f64]) -> String {
    // Scale against a robust ceiling (1.2 x the 90th percentile) so a
    // single end-of-run burst does not flatten the whole line.
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let p90 = sorted[(sorted.len().saturating_sub(1)) * 9 / 10];
    let ceiling = (p90 * 1.2).max(1e-12);
    values
        .iter()
        .map(|v| {
            let norm = (v / ceiling).min(1.0);
            BARS[(norm * (BARS.len() - 1) as f64).round() as usize]
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = benchmark("wc")
        .expect("wc registered")
        .with_iterations(1_500);
    println!("wc iteration throughput over time (each bucket = 500 cycles):\n");
    for design in [
        DesignPoint::heavywt(),
        DesignPoint::syncopti_sc_q64(),
        DesignPoint::existing(),
    ] {
        let cfg = MachineConfig::itanium2_cmp(design);
        let mut machine = Machine::new_pipeline(&cfg, &bench.pair)?;
        let (result, samples) = machine.run_sampled(100_000_000, Some(500))?;
        // Convert cumulative iteration counts into per-window rates,
        // dropping the final partial window (it catches the remainder
        // between the last sample and completion).
        let mut rates: Vec<f64> = samples
            .windows(2)
            .map(|w| (w[1].1 - w[0].1) as f64)
            .collect();
        rates.pop();
        println!(
            "{:<16} {:>8} cycles  {}",
            result.design,
            result.cycles,
            sparkline(&rates)
        );
    }
    println!("\nEach glyph is one 500-cycle window; taller = more iterations retired.");
    Ok(())
}

//! Quickstart: build a tiny producer/consumer pipeline, run it on two
//! streaming-support designs, and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hfs::core::kernel::KernelPair;
use hfs::core::{DesignPoint, Machine, MachineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A pipeline communicating every ~5 instructions — the paper's
    // "high-frequency streaming" regime.
    let pair = KernelPair::simple("quickstart", 4, 2_000);

    for design in [
        DesignPoint::existing(),
        DesignPoint::syncopti(),
        DesignPoint::syncopti_sc_q64(),
        DesignPoint::heavywt(),
    ] {
        let cfg = MachineConfig::itanium2_cmp(design);
        let mut machine = Machine::new_pipeline(&cfg, &pair)?;
        let result = machine.run(100_000_000)?;
        println!(
            "{:<16} {:>9} cycles  ({:.1} cycles/iteration)  comm:app = {:.2}",
            result.design,
            result.cycles,
            result.cycles_per_iteration(),
            result.producer().comm_ratio(),
        );
    }
    println!("\nLower is better; HEAVYWT is the dedicated-hardware bound.");
    Ok(())
}

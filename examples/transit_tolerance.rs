//! Demonstrates the paper's central claim: pipelined streaming tolerates
//! *transit* delay but is very sensitive to *COMM-OP* delay.
//!
//! Sweeps the HEAVYWT dedicated-interconnect latency from 1 to 20 cycles
//! (throughput barely changes) and contrasts with the analytic model's
//! COMM-OP sweep (throughput degrades linearly).
//!
//! ```sh
//! cargo run --release --example transit_tolerance
//! ```

use hfs::core::analytic::{steady_throughput, AnalyticParams};
use hfs::core::kernel::KernelPair;
use hfs::core::{DesignPoint, Machine, MachineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pair = KernelPair::simple("sweep", 6, 1_500);

    println!("Transit-delay sweep (HEAVYWT, cycle-level simulation):");
    let mut base = None;
    for transit in [1u64, 2, 5, 10, 20] {
        let cfg = MachineConfig::itanium2_cmp(DesignPoint::heavywt_with_transit(transit));
        let result = Machine::new_pipeline(&cfg, &pair)?.run(100_000_000)?;
        let base_cycles = *base.get_or_insert(result.cycles);
        println!(
            "  transit {transit:>2} cycles: {:>8} cycles  (x{:.3})",
            result.cycles,
            result.cycles as f64 / base_cycles as f64
        );
    }

    println!("\nCOMM-OP delay sweep (analytic model, 8 buffers, transit 10):");
    let mut base = None;
    for comm in [5u64, 10, 20, 40] {
        let p = AnalyticParams {
            comm_a: comm,
            comm_b: comm,
            transit: 10,
            buffers: 8,
            compute: 0,
        };
        let thr = steady_throughput(p);
        let b = *base.get_or_insert(thr);
        println!(
            "  COMM-OP {comm:>2} cycles: {:>7.4} iters/cycle (x{:.2} slowdown)",
            thr,
            b / thr
        );
    }
    println!("\nTransit is pipelined away; COMM-OP delay sets the iteration rate.");
    Ok(())
}

//! Builds a custom DSWP-style kernel from scratch — a pointer-chasing
//! traversal split into an address-generation thread and a value-update
//! thread (the paper's Figure 2 example) — and evaluates it end to end.
//!
//! ```sh
//! cargo run --release --example custom_kernel
//! ```

use hfs::core::kernel::{KStep, Kernel, KernelPair};
use hfs::core::{DesignPoint, Machine, MachineConfig};
use hfs::isa::QueueId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let q = QueueId(0);

    // Thread A: `while (ptr = ptr->next) produce(ptr);`
    // The linked list lives in a 2 MB arena, so traversal misses caches.
    let mut producer = Kernel::default();
    let list = producer.add_region("linked_list", 2 * 1024 * 1024);
    producer.steps = vec![
        KStep::LoadRandom { region: list }, // ptr = ptr->next
        KStep::AluChain(2),                 // null check + bookkeeping
        KStep::Produce(q),                  // produce(ptr)
        KStep::Branch,
    ];

    // Thread B: `while (ptr = consume()) ptr->val += 1;`
    let mut consumer = Kernel::default();
    let vals = consumer.add_region("values", 2 * 1024 * 1024);
    consumer.steps = vec![
        KStep::Consume(q),
        KStep::AluChain(2), // ptr->val + 1
        KStep::StoreRandom { region: vals },
        KStep::Branch,
    ];

    let pair = KernelPair {
        name: "figure2",
        producer,
        consumer,
        iterations: 1_000,
    };
    pair.validate()?;

    println!("Figure 2 pipeline: pointer-chase producer -> update consumer\n");
    let mut baseline = None;
    for design in [
        DesignPoint::heavywt(),
        DesignPoint::syncopti_sc_q64(),
        DesignPoint::existing(),
    ] {
        let cfg = MachineConfig::itanium2_cmp(design);
        let result = Machine::new_pipeline(&cfg, &pair)?.run(500_000_000)?;
        let base = *baseline.get_or_insert(result.cycles);
        println!(
            "{:<16} {:>9} cycles  (x{:.2} vs HEAVYWT)  forwards={}",
            result.design,
            result.cycles,
            result.cycles as f64 / base as f64,
            result.mem.forwards,
        );
    }

    // And the single-threaded fusion for reference (Figure 9's baseline).
    let cfg = MachineConfig::itanium2_single();
    let single = Machine::new_single(&cfg, &pair)?.run(500_000_000)?;
    println!("\nsingle-threaded  {:>9} cycles", single.cycles);
    Ok(())
}

//! Design-space sweep: run one Table 1 benchmark across every design
//! point and print the Figure 7-style stall breakdown.
//!
//! ```sh
//! cargo run --release --example design_space -- wc
//! ```

use hfs::core::{DesignPoint, Machine, MachineConfig};
use hfs::sim::stats::StallComponent;
use hfs::workloads::benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "wc".to_string());
    let bench =
        benchmark(&name).ok_or_else(|| format!("unknown benchmark {name}; try wc, mcf, fir, …"))?;
    println!(
        "{} ({}, {} iterations)\n",
        bench.name, bench.function, bench.pair.iterations
    );
    println!(
        "{:<16} {:>9}  {:>5}  producer stalls: PreL2/L2/BUS/L3/MEM/PostL2",
        "design", "cycles", "norm"
    );

    let designs = [
        DesignPoint::heavywt(),
        DesignPoint::syncopti_sc_q64(),
        DesignPoint::syncopti(),
        DesignPoint::memopti(),
        DesignPoint::existing(),
    ];
    let mut base = None;
    for design in designs {
        let cfg = MachineConfig::itanium2_cmp(design);
        let result = Machine::new_pipeline(&cfg, &bench.pair)?.run(500_000_000)?;
        let base_cycles = *base.get_or_insert(result.cycles);
        let p = result.producer();
        let comps: Vec<String> = StallComponent::ALL
            .iter()
            .map(|&c| format!("{:.2}", p.breakdown.fraction(c)))
            .collect();
        println!(
            "{:<16} {:>9}  {:>5.2}  {}",
            result.design,
            result.cycles,
            result.cycles as f64 / base_cycles as f64,
            comps.join("/"),
        );
    }
    Ok(())
}

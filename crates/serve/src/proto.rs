//! The wire protocol: length-prefixed JSON frames.
//!
//! Every message on an `hfs-serve` connection is one *frame*: a 4-byte
//! big-endian length followed by that many bytes of compact JSON. The
//! JSON itself reuses the harness's hand-rolled serializers — jobs
//! travel as [`hfs_harness::spec`] documents and outcomes as
//! [`hfs_harness::ser`] documents — so the server and the offline
//! engine literally share one codec, which is what makes server-routed
//! artifacts byte-identical to local ones.
//!
//! Frame types are closed enums ([`ClientFrame`], [`ServerFrame`]) with
//! a `"type"` tag; unknown tags decode to [`ProtoError::Malformed`] so
//! version skew fails loudly instead of silently dropping work.

use std::io::{self, Read, Write};

use hfs_harness::{
    job_from_json, job_to_json, outcome_from_json, outcome_to_json, parse, DecodeError, Job,
    JobOutcome, Json, ParseError,
};

/// Upper bound on a single frame body. Large sweeps are a few megabytes
/// of job specs; anything beyond this is a corrupt length prefix, not a
/// real message, and is rejected before allocating.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Anything that can go wrong reading or decoding a frame.
#[derive(Debug)]
pub enum ProtoError {
    /// Transport failure mid-frame.
    Io(io::Error),
    /// The frame body was not valid JSON.
    Parse(ParseError),
    /// The JSON did not decode into a known frame.
    Decode(DecodeError),
    /// Structurally valid JSON but not a frame we recognize.
    Malformed(String),
    /// The length prefix exceeded [`MAX_FRAME_BYTES`].
    TooLarge(usize),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "frame I/O error: {e}"),
            ProtoError::Parse(e) => write!(f, "frame is not valid JSON: {e}"),
            ProtoError::Decode(e) => write!(f, "frame failed to decode: {e}"),
            ProtoError::Malformed(m) => write!(f, "malformed frame: {m}"),
            ProtoError::TooLarge(n) => {
                write!(f, "frame length {n} exceeds the {MAX_FRAME_BYTES}-byte cap")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> ProtoError {
        ProtoError::Io(e)
    }
}

impl From<ParseError> for ProtoError {
    fn from(e: ParseError) -> ProtoError {
        ProtoError::Parse(e)
    }
}

impl From<DecodeError> for ProtoError {
    fn from(e: DecodeError) -> ProtoError {
        ProtoError::Decode(e)
    }
}

/// Writes one frame: 4-byte big-endian length, then the compact JSON.
///
/// # Errors
///
/// Propagates transport write failures.
pub fn write_frame(w: &mut impl Write, body: &Json) -> io::Result<()> {
    let text = body.to_string();
    let len = u32::try_from(text.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame body too large"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(text.as_bytes())?;
    w.flush()
}

/// Reads one frame. Returns `Ok(None)` on a clean EOF *between* frames
/// (the peer closed); EOF mid-frame is an error.
///
/// # Errors
///
/// Transport failures, oversized length prefixes, and invalid JSON.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Json>, ProtoError> {
    let mut len_buf = [0u8; 4];
    // Distinguish "no more frames" from "truncated prefix" by hand: a
    // clean close yields 0 bytes before the next prefix.
    let mut filled = 0;
    while filled < 4 {
        let n = r.read(&mut len_buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(ProtoError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-prefix",
            )));
        }
        filled += n;
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(ProtoError::TooLarge(len));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let text = String::from_utf8(body)
        .map_err(|_| ProtoError::Malformed("frame body is not UTF-8".to_string()))?;
    Ok(Some(parse(&text)?))
}

fn tag_of(v: &Json) -> Result<&str, ProtoError> {
    v.get("type")
        .and_then(Json::as_str)
        .ok_or_else(|| ProtoError::Malformed("frame has no \"type\" tag".to_string()))
}

fn str_field(v: &Json, key: &str) -> Result<String, ProtoError> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| ProtoError::Malformed(format!("missing string field \"{key}\"")))
}

fn u64_field(v: &Json, key: &str) -> Result<u64, ProtoError> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| ProtoError::Malformed(format!("missing integer field \"{key}\"")))
}

fn bool_field(v: &Json, key: &str) -> Result<bool, ProtoError> {
    match v.get(key) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(ProtoError::Malformed(format!(
            "missing boolean field \"{key}\""
        ))),
    }
}

/// A message from a client to the server.
#[derive(Debug, Clone)]
pub enum ClientFrame {
    /// Submit a named batch of jobs for execution.
    Submit {
        /// Experiment name (artifact file stem on the client side).
        experiment: String,
        /// The jobs, in submission order.
        jobs: Vec<Job>,
    },
    /// Liveness probe; answered with [`ServerFrame::Pong`].
    Ping,
    /// Request a [`ServeStats`] snapshot.
    Stats,
    /// Request the live metric registry as Prometheus text
    /// ([`ServerFrame::Metrics`]).
    Metrics,
    /// Ask the server to drain and exit.
    Shutdown,
}

impl ClientFrame {
    /// Encodes the frame body.
    pub fn to_json(&self) -> Json {
        match self {
            ClientFrame::Submit { experiment, jobs } => Json::obj(vec![
                ("type", Json::Str("submit".to_string())),
                ("experiment", Json::Str(experiment.clone())),
                ("jobs", Json::Arr(jobs.iter().map(job_to_json).collect())),
            ]),
            ClientFrame::Ping => Json::obj(vec![("type", Json::Str("ping".to_string()))]),
            ClientFrame::Stats => Json::obj(vec![("type", Json::Str("stats".to_string()))]),
            ClientFrame::Metrics => Json::obj(vec![("type", Json::Str("metrics".to_string()))]),
            ClientFrame::Shutdown => Json::obj(vec![("type", Json::Str("shutdown".to_string()))]),
        }
    }

    /// Decodes a frame body.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Malformed`] on unknown tags or missing fields.
    pub fn from_json(v: &Json) -> Result<ClientFrame, ProtoError> {
        match tag_of(v)? {
            "submit" => {
                let experiment = str_field(v, "experiment")?;
                let jobs = v
                    .get("jobs")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| ProtoError::Malformed("submit has no jobs array".to_string()))?
                    .iter()
                    .map(job_from_json)
                    .collect::<Result<Vec<Job>, DecodeError>>()?;
                Ok(ClientFrame::Submit { experiment, jobs })
            }
            "ping" => Ok(ClientFrame::Ping),
            "stats" => Ok(ClientFrame::Stats),
            "metrics" => Ok(ClientFrame::Metrics),
            "shutdown" => Ok(ClientFrame::Shutdown),
            other => Err(ProtoError::Malformed(format!(
                "unknown client frame type {other:?}"
            ))),
        }
    }

    /// Writes the frame to a transport.
    ///
    /// # Errors
    ///
    /// Propagates transport write failures.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        write_frame(w, &self.to_json())
    }

    /// Reads the next client frame; `Ok(None)` on clean EOF.
    ///
    /// # Errors
    ///
    /// Transport or decode failures.
    pub fn read_from(r: &mut impl Read) -> Result<Option<ClientFrame>, ProtoError> {
        match read_frame(r)? {
            None => Ok(None),
            Some(v) => ClientFrame::from_json(&v).map(Some),
        }
    }
}

/// Aggregate server counters, reported via [`ServerFrame::Stats`].
///
/// `submitted = deduped + flights`, where a *flight* is a job that got
/// its own execution slot; `executed + cache_hits` flights have resolved
/// so far. `deduped > 0` under concurrent identical submissions is the
/// observable proof of single-flight execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Job submissions accepted (counting every waiter, deduped or not).
    pub submitted: u64,
    /// Jobs actually simulated (cache misses that ran to completion).
    pub executed: u64,
    /// Jobs answered from the on-disk result cache.
    pub cache_hits: u64,
    /// Submissions that attached to an already-queued or running flight
    /// instead of enqueuing their own.
    pub deduped: u64,
    /// Running flights cancelled because every waiter disconnected.
    pub cancelled: u64,
    /// Queued flights discarded because every waiter disconnected.
    pub aborted: u64,
    /// Whole-batch submissions rejected by admission control.
    pub rejected: u64,
    /// Job results delivered to waiters.
    pub delivered: u64,
    /// Flights currently waiting in the queue.
    pub queued: u64,
    /// Flights currently executing on a worker.
    pub running: u64,
    /// Whether the server is draining toward exit.
    pub draining: bool,
}

impl ServeStats {
    /// Encodes the snapshot as a stats frame body (sans tag).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("submitted", Json::U64(self.submitted)),
            ("executed", Json::U64(self.executed)),
            ("cache_hits", Json::U64(self.cache_hits)),
            ("deduped", Json::U64(self.deduped)),
            ("cancelled", Json::U64(self.cancelled)),
            ("aborted", Json::U64(self.aborted)),
            ("rejected", Json::U64(self.rejected)),
            ("delivered", Json::U64(self.delivered)),
            ("queued", Json::U64(self.queued)),
            ("running", Json::U64(self.running)),
            ("draining", Json::Bool(self.draining)),
        ])
    }

    /// Decodes a snapshot from a stats frame body.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Malformed`] on missing fields.
    pub fn from_json(v: &Json) -> Result<ServeStats, ProtoError> {
        Ok(ServeStats {
            submitted: u64_field(v, "submitted")?,
            executed: u64_field(v, "executed")?,
            cache_hits: u64_field(v, "cache_hits")?,
            deduped: u64_field(v, "deduped")?,
            cancelled: u64_field(v, "cancelled")?,
            aborted: u64_field(v, "aborted")?,
            rejected: u64_field(v, "rejected")?,
            delivered: u64_field(v, "delivered")?,
            queued: u64_field(v, "queued")?,
            running: u64_field(v, "running")?,
            draining: bool_field(v, "draining")?,
        })
    }
}

/// A message from the server to a client.
#[derive(Debug, Clone)]
pub enum ServerFrame {
    /// The batch passed admission control; job frames will follow.
    Accepted {
        /// Echo of the submitted experiment name.
        experiment: String,
        /// Number of jobs accepted.
        total: u64,
    },
    /// The whole batch was rejected: the flight queue is full.
    Busy {
        /// Flights currently queued.
        queued: u64,
        /// The admission limit.
        limit: u64,
    },
    /// One job of a batch resolved.
    Job {
        /// The batch it belongs to.
        experiment: String,
        /// The job's position in the submitted batch.
        index: u64,
        /// The job's display label.
        label: String,
        /// Content-derived cache key.
        key: String,
        /// Whether the outcome came from the on-disk cache.
        cached: bool,
        /// The outcome itself.
        outcome: JobOutcome,
    },
    /// Every job of the batch has been delivered.
    Done {
        /// The batch that finished.
        experiment: String,
        /// Whether every job succeeded.
        ok: bool,
    },
    /// Counter snapshot, answering [`ClientFrame::Stats`].
    Stats(ServeStats),
    /// The live metric registry in Prometheus text exposition format,
    /// answering [`ClientFrame::Metrics`].
    Metrics {
        /// The exposition text (counters, gauges, summaries).
        text: String,
    },
    /// Liveness answer.
    Pong,
    /// The server is draining; new submissions are refused.
    ShuttingDown,
    /// The request could not be processed.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

impl ServerFrame {
    /// Encodes the frame body.
    pub fn to_json(&self) -> Json {
        match self {
            ServerFrame::Accepted { experiment, total } => Json::obj(vec![
                ("type", Json::Str("accepted".to_string())),
                ("experiment", Json::Str(experiment.clone())),
                ("total", Json::U64(*total)),
            ]),
            ServerFrame::Busy { queued, limit } => Json::obj(vec![
                ("type", Json::Str("busy".to_string())),
                ("queued", Json::U64(*queued)),
                ("limit", Json::U64(*limit)),
            ]),
            ServerFrame::Job {
                experiment,
                index,
                label,
                key,
                cached,
                outcome,
            } => Json::obj(vec![
                ("type", Json::Str("job".to_string())),
                ("experiment", Json::Str(experiment.clone())),
                ("index", Json::U64(*index)),
                ("label", Json::Str(label.clone())),
                ("key", Json::Str(key.clone())),
                ("cached", Json::Bool(*cached)),
                ("outcome", outcome_to_json(outcome)),
            ]),
            ServerFrame::Done { experiment, ok } => Json::obj(vec![
                ("type", Json::Str("done".to_string())),
                ("experiment", Json::Str(experiment.clone())),
                ("ok", Json::Bool(*ok)),
            ]),
            ServerFrame::Stats(stats) => {
                let mut body = vec![("type".to_string(), Json::Str("stats".to_string()))];
                if let Json::Obj(pairs) = stats.to_json() {
                    body.extend(pairs);
                }
                Json::Obj(body)
            }
            ServerFrame::Metrics { text } => Json::obj(vec![
                ("type", Json::Str("metrics".to_string())),
                ("text", Json::Str(text.clone())),
            ]),
            ServerFrame::Pong => Json::obj(vec![("type", Json::Str("pong".to_string()))]),
            ServerFrame::ShuttingDown => {
                Json::obj(vec![("type", Json::Str("shutting_down".to_string()))])
            }
            ServerFrame::Error { message } => Json::obj(vec![
                ("type", Json::Str("error".to_string())),
                ("message", Json::Str(message.clone())),
            ]),
        }
    }

    /// Decodes a frame body.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Malformed`] on unknown tags or missing fields.
    pub fn from_json(v: &Json) -> Result<ServerFrame, ProtoError> {
        match tag_of(v)? {
            "accepted" => Ok(ServerFrame::Accepted {
                experiment: str_field(v, "experiment")?,
                total: u64_field(v, "total")?,
            }),
            "busy" => Ok(ServerFrame::Busy {
                queued: u64_field(v, "queued")?,
                limit: u64_field(v, "limit")?,
            }),
            "job" => Ok(ServerFrame::Job {
                experiment: str_field(v, "experiment")?,
                index: u64_field(v, "index")?,
                label: str_field(v, "label")?,
                key: str_field(v, "key")?,
                cached: bool_field(v, "cached")?,
                outcome: outcome_from_json(
                    v.get("outcome")
                        .ok_or_else(|| ProtoError::Malformed("job has no outcome".to_string()))?,
                )?,
            }),
            "done" => Ok(ServerFrame::Done {
                experiment: str_field(v, "experiment")?,
                ok: bool_field(v, "ok")?,
            }),
            "stats" => Ok(ServerFrame::Stats(ServeStats::from_json(v)?)),
            "metrics" => Ok(ServerFrame::Metrics {
                text: str_field(v, "text")?,
            }),
            "pong" => Ok(ServerFrame::Pong),
            "shutting_down" => Ok(ServerFrame::ShuttingDown),
            "error" => Ok(ServerFrame::Error {
                message: str_field(v, "message")?,
            }),
            other => Err(ProtoError::Malformed(format!(
                "unknown server frame type {other:?}"
            ))),
        }
    }

    /// Writes the frame to a transport.
    ///
    /// # Errors
    ///
    /// Propagates transport write failures.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        write_frame(w, &self.to_json())
    }

    /// Reads the next server frame; `Ok(None)` on clean EOF.
    ///
    /// # Errors
    ///
    /// Transport or decode failures.
    pub fn read_from(r: &mut impl Read) -> Result<Option<ServerFrame>, ProtoError> {
        match read_frame(r)? {
            None => Ok(None),
            Some(v) => ServerFrame::from_json(&v).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfs_core::kernel::KernelPair;
    use hfs_core::{DesignPoint, MachineConfig};
    use hfs_harness::execute;

    fn demo_job() -> Job {
        Job::pipeline(
            "proto/demo",
            KernelPair::simple("demo", 2, 40),
            MachineConfig::itanium2_cmp(DesignPoint::heavywt()),
        )
    }

    fn pipe_client(frame: &ClientFrame) -> ClientFrame {
        let mut buf = Vec::new();
        frame.write_to(&mut buf).unwrap();
        ClientFrame::read_from(&mut buf.as_slice())
            .unwrap()
            .expect("a frame was written")
    }

    fn pipe_server(frame: &ServerFrame) -> ServerFrame {
        let mut buf = Vec::new();
        frame.write_to(&mut buf).unwrap();
        ServerFrame::read_from(&mut buf.as_slice())
            .unwrap()
            .expect("a frame was written")
    }

    #[test]
    fn submit_round_trips_with_equivalent_jobs() {
        let job = demo_job();
        let frame = ClientFrame::Submit {
            experiment: "fig6".to_string(),
            jobs: vec![job.clone()],
        };
        match pipe_client(&frame) {
            ClientFrame::Submit { experiment, jobs } => {
                assert_eq!(experiment, "fig6");
                assert_eq!(jobs.len(), 1);
                // Key equality is the strong property: the decoded job
                // hits the same cache entry and simulates identically.
                assert_eq!(jobs[0].key(), job.key());
                assert_eq!(jobs[0].label, job.label);
            }
            other => panic!("wrong frame: {other:?}"),
        }
    }

    #[test]
    fn control_frames_round_trip() {
        assert!(matches!(pipe_client(&ClientFrame::Ping), ClientFrame::Ping));
        assert!(matches!(
            pipe_client(&ClientFrame::Stats),
            ClientFrame::Stats
        ));
        assert!(matches!(
            pipe_client(&ClientFrame::Shutdown),
            ClientFrame::Shutdown
        ));
        assert!(matches!(pipe_server(&ServerFrame::Pong), ServerFrame::Pong));
        assert!(matches!(
            pipe_server(&ServerFrame::ShuttingDown),
            ServerFrame::ShuttingDown
        ));
    }

    #[test]
    fn job_frame_round_trips_outcome() {
        let outcome = execute(&demo_job(), 0);
        let cycles = outcome.ok().expect("demo job runs").cycles;
        let frame = ServerFrame::Job {
            experiment: "fig6".to_string(),
            index: 3,
            label: "fig6/demo".to_string(),
            key: "0123456789abcdef".to_string(),
            cached: true,
            outcome,
        };
        match pipe_server(&frame) {
            ServerFrame::Job {
                index,
                cached,
                outcome,
                ..
            } => {
                assert_eq!(index, 3);
                assert!(cached);
                assert_eq!(outcome.ok().unwrap().cycles, cycles);
            }
            other => panic!("wrong frame: {other:?}"),
        }
    }

    #[test]
    fn stats_round_trip() {
        let stats = ServeStats {
            submitted: 10,
            executed: 4,
            cache_hits: 2,
            deduped: 4,
            cancelled: 1,
            aborted: 1,
            rejected: 2,
            delivered: 9,
            queued: 3,
            running: 2,
            draining: true,
        };
        match pipe_server(&ServerFrame::Stats(stats)) {
            ServerFrame::Stats(back) => assert_eq!(back, stats),
            other => panic!("wrong frame: {other:?}"),
        }
    }

    #[test]
    fn metrics_frames_round_trip() {
        assert!(matches!(
            pipe_client(&ClientFrame::Metrics),
            ClientFrame::Metrics
        ));
        let text = "# TYPE hfs_jobs_submitted_total counter\nhfs_jobs_submitted_total 7\n";
        match pipe_server(&ServerFrame::Metrics {
            text: text.to_string(),
        }) {
            ServerFrame::Metrics { text: back } => assert_eq!(back, text),
            other => panic!("wrong frame: {other:?}"),
        }
    }

    #[test]
    fn multiple_frames_stream_back_to_back() {
        let mut buf = Vec::new();
        ClientFrame::Ping.write_to(&mut buf).unwrap();
        ClientFrame::Stats.write_to(&mut buf).unwrap();
        let mut r = buf.as_slice();
        assert!(matches!(
            ClientFrame::read_from(&mut r).unwrap(),
            Some(ClientFrame::Ping)
        ));
        assert!(matches!(
            ClientFrame::read_from(&mut r).unwrap(),
            Some(ClientFrame::Stats)
        ));
        assert!(ClientFrame::read_from(&mut r).unwrap().is_none());
    }

    #[test]
    fn truncated_prefix_is_an_error_not_eof() {
        let mut buf = Vec::new();
        ClientFrame::Ping.write_to(&mut buf).unwrap();
        buf.truncate(2);
        assert!(ClientFrame::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut buf = Vec::from(u32::MAX.to_be_bytes());
        buf.extend_from_slice(b"xx");
        match read_frame(&mut buf.as_slice()) {
            Err(ProtoError::TooLarge(_)) => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn unknown_frame_types_fail_loudly() {
        let v = Json::obj(vec![("type", Json::Str("warp_core".to_string()))]);
        assert!(ClientFrame::from_json(&v).is_err());
        assert!(ServerFrame::from_json(&v).is_err());
    }
}

//! The wire protocol: length-prefixed JSON frames.
//!
//! Every message on an `hfs-serve` connection is one *frame*: a 4-byte
//! big-endian length followed by that many bytes of compact JSON. The
//! JSON itself reuses the harness's hand-rolled serializers — jobs
//! travel as [`hfs_harness::spec`] documents and outcomes as
//! [`hfs_harness::ser`] documents — so the server and the offline
//! engine literally share one codec, which is what makes server-routed
//! artifacts byte-identical to local ones.
//!
//! Frame types are closed enums ([`ClientFrame`], [`ServerFrame`]) with
//! a `"type"` tag; unknown tags decode to [`ProtoError::Malformed`] so
//! version skew fails loudly instead of silently dropping work.

use std::io::{self, Read, Write};
use std::sync::Arc;

use hfs_harness::{
    job_from_json, job_to_json, outcome_from_json, outcome_to_json, parse, DecodeError, Job,
    JobOutcome, Json, ParseError,
};

/// Upper bound on a single frame body. Large sweeps are a few megabytes
/// of job specs; anything beyond this is a corrupt length prefix, not a
/// real message, and is rejected before allocating.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Anything that can go wrong reading or decoding a frame.
#[derive(Debug)]
pub enum ProtoError {
    /// Transport failure mid-frame.
    Io(io::Error),
    /// The frame body was not valid JSON.
    Parse(ParseError),
    /// The JSON did not decode into a known frame.
    Decode(DecodeError),
    /// Structurally valid JSON but not a frame we recognize.
    Malformed(String),
    /// The length prefix exceeded [`MAX_FRAME_BYTES`].
    TooLarge(usize),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "frame I/O error: {e}"),
            ProtoError::Parse(e) => write!(f, "frame is not valid JSON: {e}"),
            ProtoError::Decode(e) => write!(f, "frame failed to decode: {e}"),
            ProtoError::Malformed(m) => write!(f, "malformed frame: {m}"),
            ProtoError::TooLarge(n) => {
                write!(f, "frame length {n} exceeds the {MAX_FRAME_BYTES}-byte cap")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> ProtoError {
        ProtoError::Io(e)
    }
}

impl From<ParseError> for ProtoError {
    fn from(e: ParseError) -> ProtoError {
        ProtoError::Parse(e)
    }
}

impl From<DecodeError> for ProtoError {
    fn from(e: DecodeError) -> ProtoError {
        ProtoError::Decode(e)
    }
}

/// Writes one frame: 4-byte big-endian length, then the compact JSON.
///
/// # Errors
///
/// Propagates transport write failures.
pub fn write_frame(w: &mut impl Write, body: &Json) -> io::Result<()> {
    let text = body.to_string();
    let len = u32::try_from(text.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame body too large"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(text.as_bytes())?;
    w.flush()
}

/// Reads one frame. Returns `Ok(None)` on a clean EOF *between* frames
/// (the peer closed); EOF mid-frame is an error.
///
/// # Errors
///
/// Transport failures, oversized length prefixes, and invalid JSON.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Json>, ProtoError> {
    let mut len_buf = [0u8; 4];
    // Distinguish "no more frames" from "truncated prefix" by hand: a
    // clean close yields 0 bytes before the next prefix.
    let mut filled = 0;
    while filled < 4 {
        let n = r.read(&mut len_buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(ProtoError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-prefix",
            )));
        }
        filled += n;
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(ProtoError::TooLarge(len));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let text = String::from_utf8(body)
        .map_err(|_| ProtoError::Malformed("frame body is not UTF-8".to_string()))?;
    Ok(Some(parse(&text)?))
}

fn tag_of(v: &Json) -> Result<&str, ProtoError> {
    v.get("type")
        .and_then(Json::as_str)
        .ok_or_else(|| ProtoError::Malformed("frame has no \"type\" tag".to_string()))
}

fn str_field(v: &Json, key: &str) -> Result<String, ProtoError> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| ProtoError::Malformed(format!("missing string field \"{key}\"")))
}

fn u64_field(v: &Json, key: &str) -> Result<u64, ProtoError> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| ProtoError::Malformed(format!("missing integer field \"{key}\"")))
}

fn bool_field(v: &Json, key: &str) -> Result<bool, ProtoError> {
    match v.get(key) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(ProtoError::Malformed(format!(
            "missing boolean field \"{key}\""
        ))),
    }
}

/// How much per-job traffic a batch submission wants back.
///
/// A 10⁵-job sweep under the legacy protocol generates 10⁵ `job` frames
/// per subscriber; `Final` collapses that to a handful of chunked
/// [`ServerFrame::BatchResults`] frames, and `None` to just
/// `accepted`/`done` (cache-priming submissions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Subscribe {
    /// No per-job frames at all: `accepted`, then `done`.
    None,
    /// Chunked [`ServerFrame::BatchResults`] frames, then `done`.
    #[default]
    Final,
    /// A [`ServerFrame::Job`] frame per job (the legacy behavior), then
    /// `done`.
    All,
}

impl Subscribe {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Subscribe::None => "none",
            Subscribe::Final => "final",
            Subscribe::All => "all",
        }
    }

    /// Parses the wire spelling.
    pub fn parse(s: &str) -> Option<Subscribe> {
        match s {
            "none" => Some(Subscribe::None),
            "final" => Some(Subscribe::Final),
            "all" => Some(Subscribe::All),
            _ => None,
        }
    }
}

/// One resolved job inside a [`ServerFrame::BatchResults`] chunk — the
/// same payload as a [`ServerFrame::Job`] frame, without the per-frame
/// envelope.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The job's position in the submitted batch.
    pub index: u64,
    /// The job's display label.
    pub label: String,
    /// Content-derived cache key.
    pub key: String,
    /// Whether the outcome came from the result cache.
    pub cached: bool,
    /// The outcome itself.
    pub outcome: JobOutcome,
    /// Encode-side fast path: when the sender already holds the
    /// outcome's cached serialization (a hot-cache hit), the text is
    /// spliced into the frame verbatim instead of re-encoding
    /// `outcome`. Must be exactly the serialization of `outcome` when
    /// set. Decoders always leave this `None`; the wire layout is
    /// identical either way.
    pub encoded: Option<Arc<str>>,
}

impl JobResult {
    fn to_json(&self) -> Json {
        let outcome = match &self.encoded {
            Some(text) => Json::Raw(Arc::clone(text)),
            None => outcome_to_json(&self.outcome),
        };
        Json::obj(vec![
            ("index", Json::U64(self.index)),
            ("label", Json::Str(self.label.clone())),
            ("key", Json::Str(self.key.clone())),
            ("cached", Json::Bool(self.cached)),
            ("outcome", outcome),
        ])
    }

    fn from_json(v: &Json) -> Result<JobResult, ProtoError> {
        Ok(JobResult {
            index: u64_field(v, "index")?,
            label: str_field(v, "label")?,
            key: str_field(v, "key")?,
            cached: bool_field(v, "cached")?,
            outcome: outcome_from_json(
                v.get("outcome")
                    .ok_or_else(|| ProtoError::Malformed("result has no outcome".to_string()))?,
            )?,
            encoded: None,
        })
    }
}

/// A batch id echoed on responses, or 0 for the legacy (un-multiplexed)
/// submit path. Serialized only when nonzero so legacy frames keep
/// their exact pre-batching byte layout.
fn opt_id_field(v: &Json) -> u64 {
    v.get("id").and_then(Json::as_u64).unwrap_or(0)
}

fn push_id(pairs: &mut Vec<(String, Json)>, id: u64) {
    if id != 0 {
        pairs.push(("id".to_string(), Json::U64(id)));
    }
}

/// A content-key reference to one job of a `submit_refs` chunk.
///
/// The client holds the full spec and sends only the content key
/// ([`hfs_harness::Job::key`]) plus its display label; the server
/// resolves the key against its result cache (or attaches to an
/// in-flight execution of the same key) without parsing or re-hashing
/// a spec. That makes re-submitting a warm sweep almost free — the
/// dominant per-job costs of the spec path are exactly the spec
/// serialize/parse/hash this reference skips.
#[derive(Debug, Clone)]
pub struct JobRef {
    /// Content-derived cache key, as computed by the client.
    pub key: String,
    /// Client-chosen display label, used for delivery and artifacts.
    pub label: String,
}

impl JobRef {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("key", Json::Str(self.key.clone())),
            ("label", Json::Str(self.label.clone())),
        ])
    }

    fn from_json(v: &Json) -> Result<JobRef, ProtoError> {
        Ok(JobRef {
            key: str_field(v, "key")?,
            label: str_field(v, "label")?,
        })
    }
}

/// A message from a client to the server.
#[derive(Debug, Clone)]
pub enum ClientFrame {
    /// Submit a named batch of jobs for execution.
    Submit {
        /// Experiment name (artifact file stem on the client side).
        experiment: String,
        /// The jobs, in submission order.
        jobs: Vec<Job>,
    },
    /// Submit a named batch with an explicit id and a per-job update
    /// subscription level — the pipelined bulk path. Responses carrying
    /// the same `id` (`accepted`/`busy`/`batch_results`/`done`) can
    /// interleave with those of other in-flight batches on the same
    /// connection.
    SubmitBatch {
        /// Experiment name (artifact file stem on the client side).
        experiment: String,
        /// Client-chosen nonzero batch id, echoed on every response.
        id: u64,
        /// How much per-job traffic to send back.
        subscribe: Subscribe,
        /// The jobs, in submission order.
        jobs: Vec<Job>,
    },
    /// Submit a batch chunk by content key only ([`JobRef`]) — the
    /// warm-path complement of [`ClientFrame::SubmitBatch`]. The server
    /// either resolves *every* reference (from its caches or in-flight
    /// executions) and answers `accepted`, or rejects the whole chunk
    /// with [`ServerFrame::RefsMiss`], after which the client re-sends
    /// it with full specs. Nothing is enqueued on a miss, so the
    /// rejection is free of side effects.
    SubmitRefs {
        /// Experiment name (artifact file stem on the client side).
        experiment: String,
        /// Client-chosen nonzero batch id, echoed on every response.
        id: u64,
        /// How much per-job traffic to send back.
        subscribe: Subscribe,
        /// The references, in submission order.
        refs: Vec<JobRef>,
    },
    /// Liveness probe; answered with [`ServerFrame::Pong`].
    Ping,
    /// Request a [`ServeStats`] snapshot.
    Stats,
    /// Request the live metric registry as Prometheus text
    /// ([`ServerFrame::Metrics`]).
    Metrics,
    /// Ask the server to drain and exit.
    Shutdown,
}

impl ClientFrame {
    /// Encodes the frame body.
    pub fn to_json(&self) -> Json {
        match self {
            ClientFrame::Submit { experiment, jobs } => Json::obj(vec![
                ("type", Json::Str("submit".to_string())),
                ("experiment", Json::Str(experiment.clone())),
                ("jobs", Json::Arr(jobs.iter().map(job_to_json).collect())),
            ]),
            ClientFrame::SubmitBatch {
                experiment,
                id,
                subscribe,
                jobs,
            } => Json::obj(vec![
                ("type", Json::Str("submit_batch".to_string())),
                ("experiment", Json::Str(experiment.clone())),
                ("id", Json::U64(*id)),
                ("subscribe", Json::Str(subscribe.as_str().to_string())),
                ("jobs", Json::Arr(jobs.iter().map(job_to_json).collect())),
            ]),
            ClientFrame::SubmitRefs {
                experiment,
                id,
                subscribe,
                refs,
            } => Json::obj(vec![
                ("type", Json::Str("submit_refs".to_string())),
                ("experiment", Json::Str(experiment.clone())),
                ("id", Json::U64(*id)),
                ("subscribe", Json::Str(subscribe.as_str().to_string())),
                (
                    "refs",
                    Json::Arr(refs.iter().map(JobRef::to_json).collect()),
                ),
            ]),
            ClientFrame::Ping => Json::obj(vec![("type", Json::Str("ping".to_string()))]),
            ClientFrame::Stats => Json::obj(vec![("type", Json::Str("stats".to_string()))]),
            ClientFrame::Metrics => Json::obj(vec![("type", Json::Str("metrics".to_string()))]),
            ClientFrame::Shutdown => Json::obj(vec![("type", Json::Str("shutdown".to_string()))]),
        }
    }

    /// Decodes a frame body.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Malformed`] on unknown tags or missing fields.
    pub fn from_json(v: &Json) -> Result<ClientFrame, ProtoError> {
        match tag_of(v)? {
            "submit" => {
                let experiment = str_field(v, "experiment")?;
                let jobs = v
                    .get("jobs")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| ProtoError::Malformed("submit has no jobs array".to_string()))?
                    .iter()
                    .map(job_from_json)
                    .collect::<Result<Vec<Job>, DecodeError>>()?;
                Ok(ClientFrame::Submit { experiment, jobs })
            }
            "submit_batch" => {
                let experiment = str_field(v, "experiment")?;
                let id = u64_field(v, "id")?;
                if id == 0 {
                    return Err(ProtoError::Malformed(
                        "submit_batch id must be nonzero".to_string(),
                    ));
                }
                let subscribe = Subscribe::parse(&str_field(v, "subscribe")?).ok_or_else(|| {
                    ProtoError::Malformed("subscribe must be none|final|all".to_string())
                })?;
                let jobs = v
                    .get("jobs")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| {
                        ProtoError::Malformed("submit_batch has no jobs array".to_string())
                    })?
                    .iter()
                    .map(job_from_json)
                    .collect::<Result<Vec<Job>, DecodeError>>()?;
                Ok(ClientFrame::SubmitBatch {
                    experiment,
                    id,
                    subscribe,
                    jobs,
                })
            }
            "submit_refs" => {
                let experiment = str_field(v, "experiment")?;
                let id = u64_field(v, "id")?;
                if id == 0 {
                    return Err(ProtoError::Malformed(
                        "submit_refs id must be nonzero".to_string(),
                    ));
                }
                let subscribe = Subscribe::parse(&str_field(v, "subscribe")?).ok_or_else(|| {
                    ProtoError::Malformed("subscribe must be none|final|all".to_string())
                })?;
                let refs = v
                    .get("refs")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| {
                        ProtoError::Malformed("submit_refs has no refs array".to_string())
                    })?
                    .iter()
                    .map(JobRef::from_json)
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(ClientFrame::SubmitRefs {
                    experiment,
                    id,
                    subscribe,
                    refs,
                })
            }
            "ping" => Ok(ClientFrame::Ping),
            "stats" => Ok(ClientFrame::Stats),
            "metrics" => Ok(ClientFrame::Metrics),
            "shutdown" => Ok(ClientFrame::Shutdown),
            other => Err(ProtoError::Malformed(format!(
                "unknown client frame type {other:?}"
            ))),
        }
    }

    /// Writes the frame to a transport.
    ///
    /// # Errors
    ///
    /// Propagates transport write failures.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        write_frame(w, &self.to_json())
    }

    /// Reads the next client frame; `Ok(None)` on clean EOF.
    ///
    /// # Errors
    ///
    /// Transport or decode failures.
    pub fn read_from(r: &mut impl Read) -> Result<Option<ClientFrame>, ProtoError> {
        match read_frame(r)? {
            None => Ok(None),
            Some(v) => ClientFrame::from_json(&v).map(Some),
        }
    }
}

/// Aggregate server counters, reported via [`ServerFrame::Stats`].
///
/// `submitted = deduped + flights`, where a *flight* is a job that got
/// its own execution slot; `executed + cache_hits` flights have resolved
/// so far. `deduped > 0` under concurrent identical submissions is the
/// observable proof of single-flight execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Job submissions accepted (counting every waiter, deduped or not).
    pub submitted: u64,
    /// Jobs actually simulated (cache misses that ran to completion).
    pub executed: u64,
    /// Jobs answered from the on-disk result cache.
    pub cache_hits: u64,
    /// Submissions that attached to an already-queued or running flight
    /// instead of enqueuing their own.
    pub deduped: u64,
    /// Running flights cancelled because every waiter disconnected.
    pub cancelled: u64,
    /// Queued flights discarded because every waiter disconnected.
    pub aborted: u64,
    /// Whole-batch submissions rejected by admission control.
    pub rejected: u64,
    /// Job results delivered to waiters.
    pub delivered: u64,
    /// Flights currently waiting in the queue.
    pub queued: u64,
    /// Flights currently executing on a worker.
    pub running: u64,
    /// Whether the server is draining toward exit.
    pub draining: bool,
}

impl ServeStats {
    /// Encodes the snapshot as a stats frame body (sans tag).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("submitted", Json::U64(self.submitted)),
            ("executed", Json::U64(self.executed)),
            ("cache_hits", Json::U64(self.cache_hits)),
            ("deduped", Json::U64(self.deduped)),
            ("cancelled", Json::U64(self.cancelled)),
            ("aborted", Json::U64(self.aborted)),
            ("rejected", Json::U64(self.rejected)),
            ("delivered", Json::U64(self.delivered)),
            ("queued", Json::U64(self.queued)),
            ("running", Json::U64(self.running)),
            ("draining", Json::Bool(self.draining)),
        ])
    }

    /// Decodes a snapshot from a stats frame body.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Malformed`] on missing fields.
    pub fn from_json(v: &Json) -> Result<ServeStats, ProtoError> {
        Ok(ServeStats {
            submitted: u64_field(v, "submitted")?,
            executed: u64_field(v, "executed")?,
            cache_hits: u64_field(v, "cache_hits")?,
            deduped: u64_field(v, "deduped")?,
            cancelled: u64_field(v, "cancelled")?,
            aborted: u64_field(v, "aborted")?,
            rejected: u64_field(v, "rejected")?,
            delivered: u64_field(v, "delivered")?,
            queued: u64_field(v, "queued")?,
            running: u64_field(v, "running")?,
            draining: bool_field(v, "draining")?,
        })
    }
}

/// A message from the server to a client.
#[derive(Debug, Clone)]
pub enum ServerFrame {
    /// The batch passed admission control; job frames will follow.
    Accepted {
        /// Echo of the submitted experiment name.
        experiment: String,
        /// Number of jobs accepted.
        total: u64,
        /// Echo of the batch id (0 on the legacy submit path; omitted
        /// from the wire when 0).
        id: u64,
    },
    /// The whole batch was rejected: the flight queue is full.
    Busy {
        /// Flights currently queued.
        queued: u64,
        /// The admission limit.
        limit: u64,
        /// Echo of the batch id (0 on the legacy submit path; omitted
        /// from the wire when 0).
        id: u64,
    },
    /// One job of a batch resolved.
    Job {
        /// The batch it belongs to.
        experiment: String,
        /// The job's position in the submitted batch.
        index: u64,
        /// The job's display label.
        label: String,
        /// Content-derived cache key.
        key: String,
        /// Whether the outcome came from the on-disk cache.
        cached: bool,
        /// The outcome itself.
        outcome: JobOutcome,
    },
    /// A chunk of resolved jobs for a `submit_batch` submission with
    /// `subscribe: final`. Chunks stream as results accumulate; indexes
    /// within and across chunks arrive in resolution order, not
    /// submission order.
    BatchResults {
        /// The batch they belong to.
        experiment: String,
        /// Echo of the batch id.
        id: u64,
        /// The resolved jobs in this chunk.
        results: Vec<JobResult>,
    },
    /// A `submit_refs` chunk could not be fully resolved: at least one
    /// key is neither cached nor in flight. The whole chunk was dropped
    /// without side effects; the client re-sends it with full specs.
    RefsMiss {
        /// Echo of the chunk's batch id.
        id: u64,
        /// Chunk-relative indexes of the unresolved references.
        missing: Vec<u64>,
    },
    /// Every job of the batch has been delivered.
    Done {
        /// The batch that finished.
        experiment: String,
        /// Whether every job succeeded.
        ok: bool,
        /// Echo of the batch id (0 on the legacy submit path; omitted
        /// from the wire when 0).
        id: u64,
    },
    /// Counter snapshot, answering [`ClientFrame::Stats`].
    Stats(ServeStats),
    /// The live metric registry in Prometheus text exposition format,
    /// answering [`ClientFrame::Metrics`].
    Metrics {
        /// The exposition text (counters, gauges, summaries).
        text: String,
    },
    /// Liveness answer.
    Pong,
    /// The server is draining; new submissions are refused.
    ShuttingDown,
    /// The request could not be processed.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

impl ServerFrame {
    /// Encodes the frame body.
    pub fn to_json(&self) -> Json {
        match self {
            ServerFrame::Accepted {
                experiment,
                total,
                id,
            } => {
                let mut pairs = vec![
                    ("type".to_string(), Json::Str("accepted".to_string())),
                    ("experiment".to_string(), Json::Str(experiment.clone())),
                    ("total".to_string(), Json::U64(*total)),
                ];
                push_id(&mut pairs, *id);
                Json::Obj(pairs)
            }
            ServerFrame::Busy { queued, limit, id } => {
                let mut pairs = vec![
                    ("type".to_string(), Json::Str("busy".to_string())),
                    ("queued".to_string(), Json::U64(*queued)),
                    ("limit".to_string(), Json::U64(*limit)),
                ];
                push_id(&mut pairs, *id);
                Json::Obj(pairs)
            }
            ServerFrame::Job {
                experiment,
                index,
                label,
                key,
                cached,
                outcome,
            } => Json::obj(vec![
                ("type", Json::Str("job".to_string())),
                ("experiment", Json::Str(experiment.clone())),
                ("index", Json::U64(*index)),
                ("label", Json::Str(label.clone())),
                ("key", Json::Str(key.clone())),
                ("cached", Json::Bool(*cached)),
                ("outcome", outcome_to_json(outcome)),
            ]),
            ServerFrame::BatchResults {
                experiment,
                id,
                results,
            } => Json::obj(vec![
                ("type", Json::Str("batch_results".to_string())),
                ("experiment", Json::Str(experiment.clone())),
                ("id", Json::U64(*id)),
                (
                    "results",
                    Json::Arr(results.iter().map(JobResult::to_json).collect()),
                ),
            ]),
            ServerFrame::RefsMiss { id, missing } => Json::obj(vec![
                ("type", Json::Str("refs_miss".to_string())),
                ("id", Json::U64(*id)),
                (
                    "missing",
                    Json::Arr(missing.iter().map(|&i| Json::U64(i)).collect()),
                ),
            ]),
            ServerFrame::Done { experiment, ok, id } => {
                let mut pairs = vec![
                    ("type".to_string(), Json::Str("done".to_string())),
                    ("experiment".to_string(), Json::Str(experiment.clone())),
                    ("ok".to_string(), Json::Bool(*ok)),
                ];
                push_id(&mut pairs, *id);
                Json::Obj(pairs)
            }
            ServerFrame::Stats(stats) => {
                let mut body = vec![("type".to_string(), Json::Str("stats".to_string()))];
                if let Json::Obj(pairs) = stats.to_json() {
                    body.extend(pairs);
                }
                Json::Obj(body)
            }
            ServerFrame::Metrics { text } => Json::obj(vec![
                ("type", Json::Str("metrics".to_string())),
                ("text", Json::Str(text.clone())),
            ]),
            ServerFrame::Pong => Json::obj(vec![("type", Json::Str("pong".to_string()))]),
            ServerFrame::ShuttingDown => {
                Json::obj(vec![("type", Json::Str("shutting_down".to_string()))])
            }
            ServerFrame::Error { message } => Json::obj(vec![
                ("type", Json::Str("error".to_string())),
                ("message", Json::Str(message.clone())),
            ]),
        }
    }

    /// Decodes a frame body.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Malformed`] on unknown tags or missing fields.
    pub fn from_json(v: &Json) -> Result<ServerFrame, ProtoError> {
        match tag_of(v)? {
            "accepted" => Ok(ServerFrame::Accepted {
                experiment: str_field(v, "experiment")?,
                total: u64_field(v, "total")?,
                id: opt_id_field(v),
            }),
            "busy" => Ok(ServerFrame::Busy {
                queued: u64_field(v, "queued")?,
                limit: u64_field(v, "limit")?,
                id: opt_id_field(v),
            }),
            "job" => Ok(ServerFrame::Job {
                experiment: str_field(v, "experiment")?,
                index: u64_field(v, "index")?,
                label: str_field(v, "label")?,
                key: str_field(v, "key")?,
                cached: bool_field(v, "cached")?,
                outcome: outcome_from_json(
                    v.get("outcome")
                        .ok_or_else(|| ProtoError::Malformed("job has no outcome".to_string()))?,
                )?,
            }),
            "batch_results" => Ok(ServerFrame::BatchResults {
                experiment: str_field(v, "experiment")?,
                id: u64_field(v, "id")?,
                results: v
                    .get("results")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| {
                        ProtoError::Malformed("batch_results has no results array".to_string())
                    })?
                    .iter()
                    .map(JobResult::from_json)
                    .collect::<Result<Vec<_>, _>>()?,
            }),
            "refs_miss" => Ok(ServerFrame::RefsMiss {
                id: u64_field(v, "id")?,
                missing: v
                    .get("missing")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| {
                        ProtoError::Malformed("refs_miss has no missing array".to_string())
                    })?
                    .iter()
                    .map(|e| {
                        e.as_u64().ok_or_else(|| {
                            ProtoError::Malformed("refs_miss index is not a u64".to_string())
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            }),
            "done" => Ok(ServerFrame::Done {
                experiment: str_field(v, "experiment")?,
                ok: bool_field(v, "ok")?,
                id: opt_id_field(v),
            }),
            "stats" => Ok(ServerFrame::Stats(ServeStats::from_json(v)?)),
            "metrics" => Ok(ServerFrame::Metrics {
                text: str_field(v, "text")?,
            }),
            "pong" => Ok(ServerFrame::Pong),
            "shutting_down" => Ok(ServerFrame::ShuttingDown),
            "error" => Ok(ServerFrame::Error {
                message: str_field(v, "message")?,
            }),
            other => Err(ProtoError::Malformed(format!(
                "unknown server frame type {other:?}"
            ))),
        }
    }

    /// Writes the frame to a transport.
    ///
    /// # Errors
    ///
    /// Propagates transport write failures.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        write_frame(w, &self.to_json())
    }

    /// Reads the next server frame; `Ok(None)` on clean EOF.
    ///
    /// # Errors
    ///
    /// Transport or decode failures.
    pub fn read_from(r: &mut impl Read) -> Result<Option<ServerFrame>, ProtoError> {
        match read_frame(r)? {
            None => Ok(None),
            Some(v) => ServerFrame::from_json(&v).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfs_core::kernel::KernelPair;
    use hfs_core::{DesignPoint, MachineConfig};
    use hfs_harness::execute;

    fn demo_job() -> Job {
        Job::pipeline(
            "proto/demo",
            KernelPair::simple("demo", 2, 40),
            MachineConfig::itanium2_cmp(DesignPoint::heavywt()),
        )
    }

    fn pipe_client(frame: &ClientFrame) -> ClientFrame {
        let mut buf = Vec::new();
        frame.write_to(&mut buf).unwrap();
        ClientFrame::read_from(&mut buf.as_slice())
            .unwrap()
            .expect("a frame was written")
    }

    fn pipe_server(frame: &ServerFrame) -> ServerFrame {
        let mut buf = Vec::new();
        frame.write_to(&mut buf).unwrap();
        ServerFrame::read_from(&mut buf.as_slice())
            .unwrap()
            .expect("a frame was written")
    }

    #[test]
    fn submit_refs_round_trips_and_requires_nonzero_id() {
        let frame = ClientFrame::SubmitRefs {
            experiment: "sweep".to_string(),
            id: 7,
            subscribe: Subscribe::Final,
            refs: vec![JobRef {
                key: "00ff00ff00ff00ff".to_string(),
                label: "sweep/p0".to_string(),
            }],
        };
        match pipe_client(&frame) {
            ClientFrame::SubmitRefs {
                experiment,
                id,
                subscribe,
                refs,
            } => {
                assert_eq!(experiment, "sweep");
                assert_eq!(id, 7);
                assert!(matches!(subscribe, Subscribe::Final));
                assert_eq!(refs.len(), 1);
                assert_eq!(refs[0].key, "00ff00ff00ff00ff");
                assert_eq!(refs[0].label, "sweep/p0");
            }
            other => panic!("wrong frame: {other:?}"),
        }
        let mut body = frame.to_json();
        if let Json::Obj(pairs) = &mut body {
            for (k, v) in pairs.iter_mut() {
                if k == "id" {
                    *v = Json::U64(0);
                }
            }
        }
        assert!(
            ClientFrame::from_json(&body).is_err(),
            "id 0 must be rejected"
        );
    }

    #[test]
    fn refs_miss_round_trips() {
        let frame = ServerFrame::RefsMiss {
            id: 9,
            missing: vec![0, 3, 511],
        };
        match pipe_server(&frame) {
            ServerFrame::RefsMiss { id, missing } => {
                assert_eq!(id, 9);
                assert_eq!(missing, vec![0, 3, 511]);
            }
            other => panic!("wrong frame: {other:?}"),
        }
    }

    #[test]
    fn submit_round_trips_with_equivalent_jobs() {
        let job = demo_job();
        let frame = ClientFrame::Submit {
            experiment: "fig6".to_string(),
            jobs: vec![job.clone()],
        };
        match pipe_client(&frame) {
            ClientFrame::Submit { experiment, jobs } => {
                assert_eq!(experiment, "fig6");
                assert_eq!(jobs.len(), 1);
                // Key equality is the strong property: the decoded job
                // hits the same cache entry and simulates identically.
                assert_eq!(jobs[0].key(), job.key());
                assert_eq!(jobs[0].label, job.label);
            }
            other => panic!("wrong frame: {other:?}"),
        }
    }

    #[test]
    fn submit_batch_round_trips_id_subscribe_and_jobs() {
        let job = demo_job();
        for sub in [Subscribe::None, Subscribe::Final, Subscribe::All] {
            let frame = ClientFrame::SubmitBatch {
                experiment: "sweep".to_string(),
                id: 7,
                subscribe: sub,
                jobs: vec![job.clone()],
            };
            match pipe_client(&frame) {
                ClientFrame::SubmitBatch {
                    experiment,
                    id,
                    subscribe,
                    jobs,
                } => {
                    assert_eq!(experiment, "sweep");
                    assert_eq!(id, 7);
                    assert_eq!(subscribe, sub);
                    assert_eq!(jobs[0].key(), job.key());
                }
                other => panic!("wrong frame: {other:?}"),
            }
        }
    }

    #[test]
    fn pre_encoded_outcomes_decode_identically_to_plain_ones() {
        let outcome = execute(&demo_job(), 0);
        let mk = |encoded| ServerFrame::BatchResults {
            experiment: "sweep".to_string(),
            id: 3,
            results: vec![JobResult {
                index: 0,
                label: "sweep/a".to_string(),
                key: "0123456789abcdef".to_string(),
                cached: true,
                outcome: outcome.clone(),
                encoded,
            }],
        };
        let text: Arc<str> = outcome_to_json(&outcome).to_pretty().into();
        let (plain, spliced) = (pipe_server(&mk(None)), pipe_server(&mk(Some(text))));
        match (plain, spliced) {
            (
                ServerFrame::BatchResults { results: a, .. },
                ServerFrame::BatchResults { results: b, .. },
            ) => {
                assert_eq!(
                    outcome_to_json(&a[0].outcome).to_pretty(),
                    outcome_to_json(&b[0].outcome).to_pretty(),
                    "spliced text decodes to the same outcome"
                );
                assert!(b[0].encoded.is_none(), "decoders never set `encoded`");
            }
            other => panic!("wrong frames: {other:?}"),
        }
    }

    #[test]
    fn raw_splice_survives_hostile_outcome_text_byte_identically() {
        // Outcome text carrying quotes, backslashes, control characters
        // and multi-byte UTF-8: the hot-cache splice (`Json::Raw`) must
        // deliver exactly the bytes the parsed path would re-encode.
        let nasty = "q\"uote \\back\\slash\\ \nπ🚀é \t\u{1} end";
        let mut ok = execute(&demo_job(), 0);
        if let JobOutcome::Ok(r) = &mut ok {
            r.design = nasty.to_string();
        }
        for outcome in [ok, JobOutcome::WorkerDied(nasty.to_string())] {
            let text: Arc<str> = outcome_to_json(&outcome).to_pretty().into();
            let mk = |encoded| ServerFrame::BatchResults {
                experiment: "sweep".to_string(),
                id: 5,
                results: vec![JobResult {
                    index: 0,
                    label: nasty.to_string(),
                    key: "0123456789abcdef".to_string(),
                    cached: true,
                    outcome: outcome.clone(),
                    encoded,
                }],
            };
            let (plain, spliced) = (
                pipe_server(&mk(None)),
                pipe_server(&mk(Some(Arc::clone(&text)))),
            );
            match (plain, spliced) {
                (
                    ServerFrame::BatchResults { results: a, .. },
                    ServerFrame::BatchResults { results: b, .. },
                ) => {
                    assert_eq!(
                        outcome_to_json(&a[0].outcome).to_pretty(),
                        text.as_ref(),
                        "parsed path must reproduce the source bytes"
                    );
                    assert_eq!(
                        outcome_to_json(&b[0].outcome).to_pretty(),
                        text.as_ref(),
                        "spliced path must reproduce the source bytes"
                    );
                    assert_eq!(a[0].label, nasty);
                    assert_eq!(b[0].label, nasty);
                }
                other => panic!("wrong frames: {other:?}"),
            }
            // The per-job `job` frame (streaming subscribe path) carries
            // the same text through the always-parsed encoder.
            let jf = ServerFrame::Job {
                experiment: "sweep".to_string(),
                index: 1,
                label: nasty.to_string(),
                key: "fedcba9876543210".to_string(),
                cached: false,
                outcome: outcome.clone(),
            };
            match pipe_server(&jf) {
                ServerFrame::Job {
                    outcome: o, label, ..
                } => {
                    assert_eq!(outcome_to_json(&o).to_pretty(), text.as_ref());
                    assert_eq!(label, nasty);
                }
                other => panic!("wrong frame: {other:?}"),
            }
        }
    }

    #[test]
    fn zero_batch_id_is_rejected() {
        let frame = ClientFrame::SubmitBatch {
            experiment: "sweep".to_string(),
            id: 0,
            subscribe: Subscribe::Final,
            jobs: vec![],
        };
        let mut buf = Vec::new();
        frame.write_to(&mut buf).unwrap();
        assert!(ClientFrame::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn batch_results_round_trip_and_ids_echo() {
        let outcome = execute(&demo_job(), 0);
        let cycles = outcome.ok().expect("demo job runs").cycles;
        let frame = ServerFrame::BatchResults {
            experiment: "sweep".to_string(),
            id: 9,
            results: vec![
                JobResult {
                    index: 4,
                    label: "sweep/a".to_string(),
                    key: "0123456789abcdef".to_string(),
                    cached: true,
                    outcome: outcome.clone(),
                    encoded: None,
                },
                JobResult {
                    index: 2,
                    label: "sweep/b".to_string(),
                    key: "fedcba9876543210".to_string(),
                    cached: false,
                    outcome: JobOutcome::WorkerDied("worker 0 died".to_string()),
                    encoded: None,
                },
            ],
        };
        match pipe_server(&frame) {
            ServerFrame::BatchResults { id, results, .. } => {
                assert_eq!(id, 9);
                assert_eq!(results.len(), 2);
                assert_eq!(results[0].index, 4);
                assert_eq!(results[0].outcome.ok().unwrap().cycles, cycles);
                assert_eq!(results[1].outcome.status(), "worker_died");
            }
            other => panic!("wrong frame: {other:?}"),
        }
        match pipe_server(&ServerFrame::Done {
            experiment: "sweep".to_string(),
            ok: true,
            id: 9,
        }) {
            ServerFrame::Done { id, .. } => assert_eq!(id, 9),
            other => panic!("wrong frame: {other:?}"),
        }
    }

    #[test]
    fn legacy_frames_omit_the_id_field() {
        // The legacy (id = 0) spellings must keep their exact
        // pre-batching byte layout so old clients and goldens agree.
        let accepted = ServerFrame::Accepted {
            experiment: "fig6".to_string(),
            total: 3,
            id: 0,
        };
        let text = accepted.to_json().to_string();
        assert!(!text.contains("\"id\""), "{text}");
        let done = ServerFrame::Done {
            experiment: "fig6".to_string(),
            ok: true,
            id: 0,
        };
        assert!(!done.to_json().to_string().contains("\"id\""));
        match pipe_server(&accepted) {
            ServerFrame::Accepted { id, .. } => assert_eq!(id, 0),
            other => panic!("wrong frame: {other:?}"),
        }
    }

    #[test]
    fn control_frames_round_trip() {
        assert!(matches!(pipe_client(&ClientFrame::Ping), ClientFrame::Ping));
        assert!(matches!(
            pipe_client(&ClientFrame::Stats),
            ClientFrame::Stats
        ));
        assert!(matches!(
            pipe_client(&ClientFrame::Shutdown),
            ClientFrame::Shutdown
        ));
        assert!(matches!(pipe_server(&ServerFrame::Pong), ServerFrame::Pong));
        assert!(matches!(
            pipe_server(&ServerFrame::ShuttingDown),
            ServerFrame::ShuttingDown
        ));
    }

    #[test]
    fn job_frame_round_trips_outcome() {
        let outcome = execute(&demo_job(), 0);
        let cycles = outcome.ok().expect("demo job runs").cycles;
        let frame = ServerFrame::Job {
            experiment: "fig6".to_string(),
            index: 3,
            label: "fig6/demo".to_string(),
            key: "0123456789abcdef".to_string(),
            cached: true,
            outcome,
        };
        match pipe_server(&frame) {
            ServerFrame::Job {
                index,
                cached,
                outcome,
                ..
            } => {
                assert_eq!(index, 3);
                assert!(cached);
                assert_eq!(outcome.ok().unwrap().cycles, cycles);
            }
            other => panic!("wrong frame: {other:?}"),
        }
    }

    #[test]
    fn stats_round_trip() {
        let stats = ServeStats {
            submitted: 10,
            executed: 4,
            cache_hits: 2,
            deduped: 4,
            cancelled: 1,
            aborted: 1,
            rejected: 2,
            delivered: 9,
            queued: 3,
            running: 2,
            draining: true,
        };
        match pipe_server(&ServerFrame::Stats(stats)) {
            ServerFrame::Stats(back) => assert_eq!(back, stats),
            other => panic!("wrong frame: {other:?}"),
        }
    }

    #[test]
    fn metrics_frames_round_trip() {
        assert!(matches!(
            pipe_client(&ClientFrame::Metrics),
            ClientFrame::Metrics
        ));
        let text = "# TYPE hfs_jobs_submitted_total counter\nhfs_jobs_submitted_total 7\n";
        match pipe_server(&ServerFrame::Metrics {
            text: text.to_string(),
        }) {
            ServerFrame::Metrics { text: back } => assert_eq!(back, text),
            other => panic!("wrong frame: {other:?}"),
        }
    }

    #[test]
    fn multiple_frames_stream_back_to_back() {
        let mut buf = Vec::new();
        ClientFrame::Ping.write_to(&mut buf).unwrap();
        ClientFrame::Stats.write_to(&mut buf).unwrap();
        let mut r = buf.as_slice();
        assert!(matches!(
            ClientFrame::read_from(&mut r).unwrap(),
            Some(ClientFrame::Ping)
        ));
        assert!(matches!(
            ClientFrame::read_from(&mut r).unwrap(),
            Some(ClientFrame::Stats)
        ));
        assert!(ClientFrame::read_from(&mut r).unwrap().is_none());
    }

    #[test]
    fn truncated_prefix_is_an_error_not_eof() {
        let mut buf = Vec::new();
        ClientFrame::Ping.write_to(&mut buf).unwrap();
        buf.truncate(2);
        assert!(ClientFrame::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut buf = Vec::from(u32::MAX.to_be_bytes());
        buf.extend_from_slice(b"xx");
        match read_frame(&mut buf.as_slice()) {
            Err(ProtoError::TooLarge(_)) => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn unknown_frame_types_fail_loudly() {
        let v = Json::obj(vec![("type", Json::Str("warp_core".to_string()))]);
        assert!(ClientFrame::from_json(&v).is_err());
        assert!(ServerFrame::from_json(&v).is_err());
    }
}

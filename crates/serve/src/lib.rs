//! `hfs-serve` — a concurrent design-space exploration service on top
//! of the experiment engine.
//!
//! A long-running server (bin `hfs-serve`) listens on a Unix-domain
//! socket (`HFS_SOCK`; TCP fallback `HFS_ADDR`) and accepts batch
//! submissions of [`hfs_harness::Job`] specs from many clients over a
//! length-prefixed JSON protocol ([`proto`]). The server provides what
//! the offline engine cannot:
//!
//! - **single-flight execution**: identical jobs (by content-derived
//!   [`hfs_harness::Job::key`]) submitted concurrently execute once,
//!   with the result fanned out to every waiter;
//! - **a shared warm cache**: all clients hit one sharded on-disk
//!   result cache ([`hfs_harness::Cache`]);
//! - **admission control**: a bounded flight queue with structured
//!   `busy` rejections instead of unbounded memory growth;
//! - **streaming progress**: per-job result frames as they resolve,
//!   then a batch-completion frame;
//! - **live telemetry**: every dispatcher counter, queue/connection
//!   gauge, and job-lifecycle histogram lives in an `hfs-obs` metric
//!   registry, exposed as Prometheus text via the `metrics` frame
//!   (`hfs-client metrics`); connection and drain events log through
//!   the `hfs-obs` structured logger under `HFS_LOG` control;
//! - **graceful drain**: on a `shutdown` frame or SIGTERM, accepted
//!   work finishes and every pending result is delivered before exit.
//!
//! The companion CLI (bin `hfs-client`) submits sweep specs, streams
//! progress, and writes `results/<experiment>.json` artifacts that are
//! byte-identical to offline runs; `HFS_VIA_SERVER=1` makes the
//! `hfs-bench` figures route through a server the same way.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod client;
pub mod net;
pub mod proto;
pub mod server;
pub mod signal;
pub mod worker;

pub use client::{
    print_update, Client, ClientError, JobUpdate, DEFAULT_SUBMIT_CHUNK, DEFAULT_SUBMIT_WINDOW,
    ENV_SUBMIT_CHUNK, ENV_SUBMIT_REFS, ENV_SUBMIT_WINDOW,
};
pub use net::{Endpoint, Listener, Stream, ENV_ADDR, ENV_SOCK};
pub use proto::{
    read_frame, write_frame, ClientFrame, JobRef, JobResult, ProtoError, ServeStats, ServerFrame,
    Subscribe, MAX_FRAME_BYTES,
};
pub use server::{Server, ServerConfig, DEFAULT_QUEUE_LIMIT, ENV_QUEUE_LIMIT, ENV_WORKERS};
pub use worker::worker_main;

//! The `hfs-client` CLI: submit sweeps to an `hfs-serve` instance.
//!
//! ```text
//! hfs-client submit <spec.json> [--out DIR] [--subscribe LEVEL]
//! hfs-client ping                             # liveness check
//! hfs-client stats [--watch SECS]             # counter snapshot (JSON) or live view
//! hfs-client metrics                          # Prometheus-text exposition dump
//! hfs-client shutdown                         # ask the server to drain
//! ```
//!
//! The server endpoint comes from `HFS_SOCK`/`HFS_ADDR`. A sweep spec
//! is the JSON written by `all_figures fig6 --dump-jobs` (or
//! [`hfs_harness::sweep_to_json`]): `{"experiment": ..., "jobs":
//! [...]}`. The artifact written by `submit` is byte-identical to the
//! offline runner's `results/<experiment>.json`.
//!
//! `--subscribe` picks the result traffic for `submit`: `final` (the
//! default) uses the pipelined batched path — chunked submissions
//! (`HFS_SUBMIT_CHUNK`/`HFS_SUBMIT_WINDOW`) with chunked result frames;
//! `all` uses the legacy path with one `job` frame per job; `none`
//! primes the server's cache without streaming results back (no
//! artifact is written).

use std::path::PathBuf;
use std::process::ExitCode;

use hfs_harness::{sweep_from_json, Json};
use hfs_serve::{print_update, Client, Subscribe};

fn env_flag(name: &str) -> bool {
    std::env::var_os(name).is_some_and(|v| v != "0" && !v.is_empty())
}

fn usage() -> ! {
    eprintln!(
        "usage: hfs-client submit <spec.json> [--out DIR] [--subscribe none|final|all]\n\
         \x20      hfs-client ping | stats [--watch SECS] | metrics | shutdown"
    );
    std::process::exit(2);
}

fn connect() -> Result<Client, ExitCode> {
    Client::from_env().map_err(|e| {
        eprintln!("hfs-client: {e}");
        ExitCode::FAILURE
    })
}

fn submit(spec_path: &str, out_dir: Option<PathBuf>, subscribe: Subscribe) -> ExitCode {
    let text = match std::fs::read_to_string(spec_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("hfs-client: cannot read {spec_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let parsed = match hfs_harness::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("hfs-client: {spec_path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (experiment, jobs) = match sweep_from_json(&parsed) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("hfs-client: {spec_path} is not a sweep spec: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Mirror the offline engine's HFS_METRICS handling so the artifact
    // bytes match whichever path runs the sweep.
    let jobs = if env_flag("HFS_METRICS") {
        jobs.into_iter().map(|j| j.with_metrics(true)).collect()
    } else {
        jobs
    };
    let progress = !env_flag("HFS_NO_PROGRESS");

    let mut client = match connect() {
        Ok(c) => c,
        Err(code) => return code,
    };
    let on_update = |u: &hfs_serve::JobUpdate| {
        if progress {
            print_update(&experiment, u);
        }
    };
    // `all` keeps the legacy one-frame-per-job conversation; everything
    // else rides the pipelined batched path.
    let result = match subscribe {
        Subscribe::All => client.submit(&experiment, jobs, on_update),
        s => client.submit_batched(&experiment, jobs, s, on_update),
    };
    let batch = match result {
        Ok(b) => b,
        Err(e) => {
            eprintln!("hfs-client: submit failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if matches!(subscribe, Subscribe::None) {
        // Cache priming: no results streamed back, nothing to write.
        println!("primed {experiment}");
        return ExitCode::SUCCESS;
    }

    let dir = out_dir.unwrap_or_else(|| {
        PathBuf::from(std::env::var("HFS_RESULTS_DIR").unwrap_or_else(|_| "results".to_string()))
    });
    match batch.write_artifact(&dir) {
        Ok(path) => println!("{}", path.display()),
        Err(e) => {
            eprintln!("hfs-client: failed to write artifact: {e}");
            return ExitCode::FAILURE;
        }
    }
    if batch.all_ok() {
        ExitCode::SUCCESS
    } else {
        for r in batch.records.iter().filter(|r| !r.outcome.is_ok()) {
            eprintln!("hfs-client: {}/{}: {}", experiment, r.label, r.outcome);
        }
        ExitCode::FAILURE
    }
}

fn stats_once(mut c: Client) -> ExitCode {
    match c.stats() {
        Ok(stats) => {
            let mut body = stats.to_json();
            if let Json::Obj(pairs) = &mut body {
                pairs.retain(|(k, _)| k != "type");
            }
            println!("{}", body.to_pretty().trim_end());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("hfs-client: stats failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Polls the server every `secs` seconds over one connection, printing
/// a compact one-line live view per snapshot. Ends (successfully) when
/// the server reports that it is draining.
fn stats_watch(mut c: Client, secs: u64) -> ExitCode {
    loop {
        let stats = match c.stats() {
            Ok(s) => s,
            Err(e) => {
                eprintln!("hfs-client: stats failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "queued={} running={} | submitted={} executed={} cache_hits={} \
             deduped={} delivered={} | cancelled={} aborted={} rejected={}{}",
            stats.queued,
            stats.running,
            stats.submitted,
            stats.executed,
            stats.cache_hits,
            stats.deduped,
            stats.delivered,
            stats.cancelled,
            stats.aborted,
            stats.rejected,
            if stats.draining { " [draining]" } else { "" },
        );
        if stats.draining {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(std::time::Duration::from_secs(secs));
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("submit") => {
            let spec = args.get(1).cloned().unwrap_or_else(|| usage());
            let mut out_dir = None;
            let mut subscribe = Subscribe::Final;
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--out" => {
                        out_dir = Some(PathBuf::from(
                            args.get(i + 1).cloned().unwrap_or_else(|| usage()),
                        ));
                        i += 2;
                    }
                    "--subscribe" => {
                        subscribe = args
                            .get(i + 1)
                            .and_then(|v| Subscribe::parse(v))
                            .unwrap_or_else(|| usage());
                        i += 2;
                    }
                    other => {
                        eprintln!("hfs-client: unknown argument {other:?}");
                        usage();
                    }
                }
            }
            submit(&spec, out_dir, subscribe)
        }
        Some("ping") => match connect() {
            Ok(mut c) => match c.ping() {
                Ok(()) => {
                    println!("pong");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("hfs-client: ping failed: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(code) => code,
        },
        Some("stats") => {
            let mut watch_secs: Option<u64> = None;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--watch" => {
                        watch_secs = Some(
                            args.get(i + 1)
                                .and_then(|v| v.parse().ok())
                                .filter(|&n| n > 0)
                                .unwrap_or_else(|| usage()),
                        );
                        i += 2;
                    }
                    other => {
                        eprintln!("hfs-client: unknown argument {other:?}");
                        usage();
                    }
                }
            }
            match connect() {
                Ok(c) => match watch_secs {
                    None => stats_once(c),
                    Some(secs) => stats_watch(c, secs),
                },
                Err(code) => code,
            }
        }
        Some("metrics") => match connect() {
            Ok(mut c) => match c.metrics() {
                Ok(text) => {
                    print!("{text}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("hfs-client: metrics failed: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(code) => code,
        },
        Some("shutdown") => match connect() {
            Ok(mut c) => match c.shutdown_server() {
                Ok(()) => {
                    println!("shutting down");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("hfs-client: shutdown failed: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(code) => code,
        },
        _ => usage(),
    }
}

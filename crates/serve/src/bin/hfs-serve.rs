//! The `hfs-serve` daemon: a design-space exploration server.
//!
//! ```text
//! hfs-serve [--sock PATH | --addr HOST:PORT] [--workers N]
//!           [--queue-limit N] [--verbose]
//! ```
//!
//! Without flags the endpoint comes from `HFS_SOCK`/`HFS_ADDR`. The
//! execution environment (`HFS_JOBS`, `HFS_CACHE_DIR`, `HFS_NO_CACHE`,
//! `HFS_RETRIES`, `HFS_SERVE_QUEUE_LIMIT`) matches the offline engine.
//! The server runs until a client sends `shutdown` or the process
//! receives SIGTERM/SIGINT, then drains: accepted work finishes and
//! every pending result is delivered before exit.

use std::path::PathBuf;
use std::process::ExitCode;

use hfs_serve::{signal, Endpoint, Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: hfs-serve [--sock PATH | --addr HOST:PORT] [--workers N] \
         [--queue-limit N] [--verbose]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut endpoint: Option<Endpoint> = None;
    let mut config = ServerConfig::from_env();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sock" => {
                let path = args.next().unwrap_or_else(|| usage());
                #[cfg(unix)]
                {
                    endpoint = Some(Endpoint::Unix(PathBuf::from(path)));
                }
                #[cfg(not(unix))]
                {
                    let _ = PathBuf::from(path);
                    eprintln!("hfs-serve: --sock requires Unix-domain sockets; use --addr");
                    return ExitCode::from(2);
                }
            }
            "--addr" => endpoint = Some(Endpoint::Tcp(args.next().unwrap_or_else(|| usage()))),
            "--workers" => {
                config.workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--queue-limit" => {
                config.queue_limit = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--verbose" => config.verbose = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("hfs-serve: unknown argument {other:?}");
                usage();
            }
        }
    }
    let Some(endpoint) = endpoint.or_else(Endpoint::from_env) else {
        eprintln!("hfs-serve: no endpoint: pass --sock/--addr or set HFS_SOCK/HFS_ADDR");
        return ExitCode::from(2);
    };

    signal::install();
    let server = match Server::bind(&endpoint, &config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("hfs-serve: failed to bind {endpoint}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "hfs-serve: listening on {} ({} workers, queue limit {}, cache {})",
        server.endpoint(),
        config.workers,
        config.queue_limit,
        config
            .cache_dir
            .as_ref()
            .map_or("off".to_string(), |d| d.display().to_string()),
    );
    match server.run() {
        Ok(stats) => {
            eprintln!(
                "hfs-serve: drained: {} submitted, {} executed, {} cache hits, \
                 {} deduped, {} cancelled, {} rejected batches",
                stats.submitted,
                stats.executed,
                stats.cache_hits,
                stats.deduped,
                stats.cancelled,
                stats.rejected,
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("hfs-serve: server failed: {e}");
            ExitCode::FAILURE
        }
    }
}

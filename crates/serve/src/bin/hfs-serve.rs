//! The `hfs-serve` daemon: a design-space exploration server.
//!
//! ```text
//! hfs-serve [--sock PATH | --addr HOST:PORT] [--workers N]
//!           [--queue-limit N] [--verbose]
//! hfs-serve --worker
//! ```
//!
//! Without flags the endpoint comes from `HFS_SOCK`/`HFS_ADDR`. The
//! execution environment (`HFS_JOBS`, `HFS_CACHE_DIR`, `HFS_NO_CACHE`,
//! `HFS_RETRIES`, `HFS_SERVE_QUEUE_LIMIT`, `HFS_HOT_CACHE_MB`) matches
//! the offline engine. `--workers N` (env `HFS_SERVE_WORKERS`) runs
//! simulations on `N` *worker processes*: the server re-execs this
//! binary with `--worker` per slot and shards jobs across the children
//! by content key; without it, simulations run on in-process threads
//! (`HFS_JOBS`). `--worker` is that internal child mode — it speaks
//! frames on stdin/stdout and is not meant to be invoked by hand.
//! Operational logging goes through the `hfs-obs` structured logger:
//! `HFS_LOG=error|warn|info|debug` sets the level (`--verbose` is an
//! alias for `HFS_LOG=debug` when `HFS_LOG` is unset) and
//! `HFS_LOG_FILE` redirects it from stderr. The server runs until a
//! client sends `shutdown` or the process receives SIGTERM/SIGINT,
//! then drains: accepted work finishes, every pending result is
//! delivered, and every worker process is reaped before exit.

use std::path::PathBuf;
use std::process::ExitCode;

use hfs_serve::{signal, worker_main, Endpoint, Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: hfs-serve [--sock PATH | --addr HOST:PORT] [--workers N] \
         [--queue-limit N] [--verbose]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    // Child mode: pure executor on stdin/stdout, no endpoint, no
    // listener. Checked before anything else so a worker can never
    // half-initialize as a server.
    if std::env::args().nth(1).as_deref() == Some("--worker") {
        return ExitCode::from(u8::try_from(worker_main()).unwrap_or(1));
    }
    let mut endpoint: Option<Endpoint> = None;
    let mut config = ServerConfig::from_env();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sock" => {
                let path = args.next().unwrap_or_else(|| usage());
                #[cfg(unix)]
                {
                    endpoint = Some(Endpoint::Unix(PathBuf::from(path)));
                }
                #[cfg(not(unix))]
                {
                    let _ = PathBuf::from(path);
                    eprintln!("hfs-serve: --sock requires Unix-domain sockets; use --addr");
                    return ExitCode::from(2);
                }
            }
            "--addr" => endpoint = Some(Endpoint::Tcp(args.next().unwrap_or_else(|| usage()))),
            "--workers" => {
                config.process_workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--queue-limit" => {
                config.queue_limit = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--verbose" => {
                // Alias for HFS_LOG=debug; an explicit HFS_LOG wins.
                // Must land before the first log call initializes the
                // process logger.
                if std::env::var_os(hfs_obs::ENV_LOG).is_none() {
                    std::env::set_var(hfs_obs::ENV_LOG, "debug");
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("hfs-serve: unknown argument {other:?}");
                usage();
            }
        }
    }
    let Some(endpoint) = endpoint.or_else(Endpoint::from_env) else {
        eprintln!("hfs-serve: no endpoint: pass --sock/--addr or set HFS_SOCK/HFS_ADDR");
        return ExitCode::from(2);
    };

    signal::install();
    let server = match Server::bind(&endpoint, &config) {
        Ok(s) => s,
        Err(e) => {
            hfs_obs::error(
                "serve",
                "bind_failed",
                &[
                    ("endpoint", endpoint.to_string().into()),
                    ("error", e.to_string().into()),
                ],
            );
            return ExitCode::FAILURE;
        }
    };
    hfs_obs::info(
        "serve",
        "listening",
        &[
            ("endpoint", server.endpoint().into()),
            (
                "workers",
                if config.process_workers > 0 {
                    format!("{} processes", config.process_workers).into()
                } else {
                    format!("{} threads", config.workers).into()
                },
            ),
            ("queue_limit", config.queue_limit.into()),
            (
                "cache",
                config
                    .cache_dir
                    .as_ref()
                    .map_or("off".to_string(), |d| d.display().to_string())
                    .into(),
            ),
        ],
    );
    match server.run() {
        Ok(stats) => {
            hfs_obs::info(
                "serve",
                "exit_stats",
                &[
                    ("submitted", stats.submitted.into()),
                    ("executed", stats.executed.into()),
                    ("cache_hits", stats.cache_hits.into()),
                    ("deduped", stats.deduped.into()),
                    ("cancelled", stats.cancelled.into()),
                    ("rejected", stats.rejected.into()),
                ],
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            hfs_obs::error("serve", "server_failed", &[("error", e.to_string().into())]);
            ExitCode::FAILURE
        }
    }
}

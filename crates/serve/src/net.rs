//! Transport abstraction: one [`Endpoint`] type covering Unix-domain
//! sockets (the default, `HFS_SOCK`) and TCP (the fallback, `HFS_ADDR`),
//! with [`Listener`]/[`Stream`] wrappers so the rest of the crate is
//! transport-agnostic.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;

/// Unix-domain socket path environment variable (`HFS_SOCK`).
pub const ENV_SOCK: &str = "HFS_SOCK";
/// TCP address environment variable (`HFS_ADDR`), e.g. `127.0.0.1:7070`.
pub const ENV_ADDR: &str = "HFS_ADDR";

/// Where a server listens or a client connects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix-domain socket at this path.
    #[cfg(unix)]
    Unix(PathBuf),
    /// A TCP address in `host:port` form.
    Tcp(String),
}

impl Endpoint {
    /// Resolves the endpoint from the environment: `HFS_SOCK` wins (on
    /// Unix), then `HFS_ADDR`; `None` if neither is set.
    pub fn from_env() -> Option<Endpoint> {
        #[cfg(unix)]
        if let Some(path) = std::env::var_os(ENV_SOCK).filter(|v| !v.is_empty()) {
            return Some(Endpoint::Unix(PathBuf::from(path)));
        }
        std::env::var(ENV_ADDR)
            .ok()
            .filter(|v| !v.is_empty())
            .map(Endpoint::Tcp)
    }

    /// Binds a listener here. For Unix sockets a stale socket file from
    /// a dead server is removed first, so restarts don't need manual
    /// cleanup.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(&self) -> io::Result<Listener> {
        match self {
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                if path.exists() && UnixStream::connect(path).is_err() {
                    hfs_obs::debug(
                        "net",
                        "stale_socket_removed",
                        &[("path", path.display().to_string().into())],
                    );
                    let _ = std::fs::remove_file(path);
                }
                Ok(Listener::Unix(UnixListener::bind(path)?))
            }
            Endpoint::Tcp(addr) => Ok(Listener::Tcp(TcpListener::bind(addr)?)),
        }
    }

    /// Connects a client stream to this endpoint.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect(&self) -> io::Result<Stream> {
        match self {
            #[cfg(unix)]
            Endpoint::Unix(path) => Ok(Stream::Unix(UnixStream::connect(path)?)),
            Endpoint::Tcp(addr) => Ok(Stream::Tcp(TcpStream::connect(addr.as_str())?)),
        }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            #[cfg(unix)]
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

/// A bound server socket.
#[derive(Debug)]
pub enum Listener {
    /// Unix-domain listener.
    #[cfg(unix)]
    Unix(UnixListener),
    /// TCP listener.
    Tcp(TcpListener),
}

impl Listener {
    /// Switches the listener between blocking and non-blocking accepts.
    ///
    /// # Errors
    ///
    /// Propagates the underlying `set_nonblocking` failure.
    pub fn set_nonblocking(&self, on: bool) -> io::Result<()> {
        match self {
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(on),
            Listener::Tcp(l) => l.set_nonblocking(on),
        }
    }

    /// Accepts one connection. The accepted stream is always switched
    /// back to blocking mode, regardless of the listener's mode.
    ///
    /// # Errors
    ///
    /// Propagates accept failures (including `WouldBlock` when
    /// non-blocking).
    pub fn accept(&self) -> io::Result<Stream> {
        let stream = match self {
            #[cfg(unix)]
            Listener::Unix(l) => Stream::Unix(l.accept()?.0),
            Listener::Tcp(l) => Stream::Tcp(l.accept()?.0),
        };
        stream.set_nonblocking(false)?;
        Ok(stream)
    }

    /// The bound TCP address, if this is a TCP listener — lets tests
    /// bind port 0 and discover the real port.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        match self {
            #[cfg(unix)]
            Listener::Unix(_) => None,
            Listener::Tcp(l) => l.local_addr().ok(),
        }
    }
}

/// One accepted or connected byte stream.
#[derive(Debug)]
pub enum Stream {
    /// Unix-domain stream.
    #[cfg(unix)]
    Unix(UnixStream),
    /// TCP stream.
    Tcp(TcpStream),
}

impl Stream {
    /// Clones the stream handle, so one half can read while the other
    /// writes from a different thread.
    ///
    /// # Errors
    ///
    /// Propagates the underlying `try_clone` failure.
    pub fn try_clone(&self) -> io::Result<Stream> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => Ok(Stream::Unix(s.try_clone()?)),
            Stream::Tcp(s) => Ok(Stream::Tcp(s.try_clone()?)),
        }
    }

    fn set_nonblocking(&self, on: bool) -> io::Result<()> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.set_nonblocking(on),
            Stream::Tcp(s) => s.set_nonblocking(on),
        }
    }

    /// Shuts down both directions, unblocking any reader on the peer.
    ///
    /// # Errors
    ///
    /// Propagates the underlying `shutdown` failure.
    pub fn shutdown(&self) -> io::Result<()> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_resolution_prefers_unix_socket() {
        // Avoid touching real process env (tests run in parallel):
        // exercise the endpoint constructors directly instead.
        #[cfg(unix)]
        {
            let e = Endpoint::Unix(PathBuf::from("/tmp/x.sock"));
            assert_eq!(e.to_string(), "unix:/tmp/x.sock");
        }
        let t = Endpoint::Tcp("127.0.0.1:0".to_string());
        assert_eq!(t.to_string(), "tcp:127.0.0.1:0");
    }

    #[test]
    fn tcp_listener_reports_bound_port() {
        let l = Endpoint::Tcp("127.0.0.1:0".to_string()).bind().unwrap();
        let addr = l.tcp_addr().expect("tcp listener has an address");
        assert_ne!(addr.port(), 0, "port 0 resolves to a real port");
    }

    #[cfg(unix)]
    #[test]
    fn unix_bind_removes_stale_socket_file() {
        let path = std::env::temp_dir().join(format!("hfs-net-test-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let e = Endpoint::Unix(path.clone());
        // Bind once, drop the listener: the socket file stays behind,
        // exactly what a crashed server leaves.
        drop(e.bind().unwrap());
        assert!(path.exists(), "socket file lingers after drop");
        // A fresh bind must succeed anyway.
        drop(e.bind().expect("rebinding over a stale socket works"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bytes_round_trip_over_tcp() {
        let l = Endpoint::Tcp("127.0.0.1:0".to_string()).bind().unwrap();
        let addr = l.tcp_addr().unwrap();
        let t = std::thread::spawn(move || {
            let mut s = l.accept().unwrap();
            let mut buf = [0u8; 5];
            s.read_exact(&mut buf).unwrap();
            s.write_all(&buf).unwrap();
        });
        let mut c = Endpoint::Tcp(addr.to_string()).connect().unwrap();
        c.write_all(b"hello").unwrap();
        let mut back = [0u8; 5];
        c.read_exact(&mut back).unwrap();
        assert_eq!(&back, b"hello");
        t.join().unwrap();
    }
}

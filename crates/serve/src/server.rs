//! The `hfs-serve` server: connection handling, the single-flight
//! dispatcher, admission control, and graceful drain.
//!
//! # Architecture
//!
//! Each accepted connection gets a *reader* thread (parses client
//! frames) and a *writer* thread (drains an `mpsc` channel of server
//! frames), so slow clients never block job execution. Submitted jobs
//! flow into the [`Dispatcher`]: a mutex-guarded queue of *flights*
//! keyed by [`Job::key`]. A submission whose key is already queued or
//! running does not enqueue again — it attaches a waiter to the
//! existing flight (single-flight execution), and the one result fans
//! out to every waiter when the flight resolves.
//!
//! Worker threads pop flights, consult the shared on-disk [`Cache`],
//! and otherwise run [`execute_cancellable`]. When every waiter of a
//! flight disconnects, its queued entry is discarded (or its running
//! simulation is cancelled via [`CancelToken`]); a cancelled flight
//! that gained new waiters before the worker noticed is transparently
//! re-enqueued with a fresh token.
//!
//! Admission control bounds the flight queue: a submission that would
//! push it past the limit is rejected whole with a `busy` frame —
//! never partially accepted.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, Write as _};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use hfs_harness::{execute_counted, Cache, Job, JobOutcome};
use hfs_obs::{Counter, Gauge, HistogramMetric, Registry};
use hfs_sim::CancelToken;

use crate::net::{Endpoint, Listener};
use crate::proto::{ClientFrame, ServeStats, ServerFrame};
use crate::signal;

/// Admission-control queue bound environment variable
/// (`HFS_SERVE_QUEUE_LIMIT`).
pub const ENV_QUEUE_LIMIT: &str = "HFS_SERVE_QUEUE_LIMIT";

/// Default bound on queued (not yet running) flights.
pub const DEFAULT_QUEUE_LIMIT: usize = 1024;

fn env_flag(name: &str) -> bool {
    std::env::var_os(name).is_some_and(|v| v != "0" && !v.is_empty())
}

/// Server tuning knobs. Connection/drain logging is no longer a config
/// flag: it goes through the `hfs-obs` logger, so `HFS_LOG` controls it
/// (accept/close at debug, drain milestones at info, failures at
/// warn/error).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker (simulation) threads.
    pub workers: usize,
    /// Maximum queued flights before submissions get `busy`.
    pub queue_limit: usize,
    /// On-disk result cache directory; `None` disables caching.
    pub cache_dir: Option<PathBuf>,
    /// Retries applied to jobs that don't override their own.
    pub default_retries: u32,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            queue_limit: DEFAULT_QUEUE_LIMIT,
            cache_dir: None,
            default_retries: 0,
        }
    }
}

impl ServerConfig {
    /// The production configuration, honoring the same `HFS_*`
    /// environment as [`hfs_harness::Engine::from_env`]: `HFS_JOBS`
    /// workers, a cache in `HFS_CACHE_DIR` (default `results/cache`,
    /// disabled by `HFS_NO_CACHE=1`), `HFS_RETRIES` retries (default
    /// 1), plus `HFS_SERVE_QUEUE_LIMIT` for admission control.
    pub fn from_env() -> ServerConfig {
        let workers = std::env::var("HFS_JOBS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        let cache_dir = if env_flag("HFS_NO_CACHE") {
            None
        } else {
            Some(PathBuf::from(
                std::env::var("HFS_CACHE_DIR").unwrap_or_else(|_| "results/cache".to_string()),
            ))
        };
        let queue_limit = std::env::var(ENV_QUEUE_LIMIT)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_QUEUE_LIMIT);
        let default_retries = std::env::var("HFS_RETRIES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1);
        ServerConfig {
            workers,
            queue_limit,
            cache_dir,
            default_retries,
        }
    }
}

/// One batch submission's delivery state, shared by its waiters.
struct BatchState {
    experiment: String,
    remaining: AtomicUsize,
    all_ok: AtomicBool,
    tx: Sender<ServerFrame>,
}

/// One waiter: a (connection, batch, index) triple expecting a result.
struct Waiter {
    conn_id: u64,
    index: usize,
    label: String,
    batch: Arc<BatchState>,
}

/// One deduplicated unit of execution.
struct Flight {
    job: Job,
    cancel: CancelToken,
    running: bool,
    waiters: Vec<Waiter>,
    /// When the flight (re-)entered the queue — the lifecycle "queued"
    /// timestamp from which queue wait is measured at worker pickup.
    enqueued_at: Instant,
}

#[derive(Default)]
struct DispatchInner {
    queue: VecDeque<String>,
    flights: HashMap<String, Flight>,
    running: usize,
    draining: bool,
}

/// Upper bucket (milliseconds) for the dispatcher's latency histograms.
const LATENCY_HISTOGRAM_MAX_MS: usize = 60_000;

/// The dispatcher's telemetry: every counter the `Stats` frame reports
/// lives in one [`Registry`], so the `stats` view and the Prometheus
/// exposition can never disagree. Gauges mirror the queue/flight state
/// maintained under the dispatcher lock; the two histograms record the
/// job lifecycle (queued→executing wait, executing→completed wall) and
/// are observed only on the executed path, so
/// `hfs_job_queue_wait_ms_count == hfs_jobs_executed_total` holds
/// exactly at quiescence.
struct Telemetry {
    registry: Registry,
    submitted: Counter,
    executed: Counter,
    cache_hits: Counter,
    deduped: Counter,
    cancelled: Counter,
    aborted: Counter,
    rejected: Counter,
    delivered: Counter,
    retries: Counter,
    timeouts: Counter,
    queue_depth: Gauge,
    in_flight: Gauge,
    open_conns: Gauge,
    draining: Gauge,
    queue_wait_ms: HistogramMetric,
    exec_wall_ms: HistogramMetric,
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        let registry = Registry::new();
        Telemetry {
            submitted: registry.counter("hfs_jobs_submitted_total"),
            executed: registry.counter("hfs_jobs_executed_total"),
            cache_hits: registry.counter("hfs_jobs_cache_hits_total"),
            deduped: registry.counter("hfs_jobs_deduped_total"),
            cancelled: registry.counter("hfs_jobs_cancelled_total"),
            aborted: registry.counter("hfs_jobs_aborted_total"),
            rejected: registry.counter("hfs_batches_rejected_total"),
            delivered: registry.counter("hfs_jobs_delivered_total"),
            retries: registry.counter("hfs_job_retries_total"),
            timeouts: registry.counter("hfs_job_timeouts_total"),
            queue_depth: registry.gauge("hfs_queue_depth"),
            in_flight: registry.gauge("hfs_jobs_in_flight"),
            open_conns: registry.gauge("hfs_open_connections"),
            draining: registry.gauge("hfs_draining"),
            queue_wait_ms: registry.histogram("hfs_job_queue_wait_ms", LATENCY_HISTOGRAM_MAX_MS),
            exec_wall_ms: registry.histogram("hfs_job_exec_wall_ms", LATENCY_HISTOGRAM_MAX_MS),
            registry,
        }
    }
}

/// Why a submission was refused.
enum SubmitRejected {
    Busy { queued: u64, limit: u64 },
    Draining,
}

/// The shared execution core behind every connection.
struct Dispatcher {
    inner: Mutex<DispatchInner>,
    work_ready: Condvar,
    drained: Condvar,
    obs: Telemetry,
    cache: Option<Cache>,
    queue_limit: usize,
    default_retries: u32,
}

impl Dispatcher {
    fn new(config: &ServerConfig) -> Dispatcher {
        Dispatcher {
            inner: Mutex::new(DispatchInner::default()),
            work_ready: Condvar::new(),
            drained: Condvar::new(),
            obs: Telemetry::default(),
            cache: config.cache_dir.as_ref().map(Cache::new),
            queue_limit: config.queue_limit,
            default_retries: config.default_retries,
        }
    }

    fn stats(&self) -> ServeStats {
        let inner = self.inner.lock().unwrap();
        ServeStats {
            submitted: self.obs.submitted.get(),
            executed: self.obs.executed.get(),
            cache_hits: self.obs.cache_hits.get(),
            deduped: self.obs.deduped.get(),
            cancelled: self.obs.cancelled.get(),
            aborted: self.obs.aborted.get(),
            rejected: self.obs.rejected.get(),
            delivered: self.obs.delivered.get(),
            queued: inner.queue.len() as u64,
            running: inner.running as u64,
            draining: inner.draining,
        }
    }

    /// The live metric registry rendered as Prometheus text — the
    /// payload of the `metrics` frame.
    fn metrics_text(&self) -> String {
        self.obs.registry.render_prometheus()
    }

    /// Admits a whole batch or rejects it whole. On success the
    /// `accepted` frame (and, for empty batches, the `done` frame) is
    /// sent *under the dispatcher lock*, before any worker can pop the
    /// new flights — guaranteeing clients see `accepted` before the
    /// first `job` frame.
    fn submit(
        &self,
        conn_id: u64,
        tx: &Sender<ServerFrame>,
        experiment: &str,
        jobs: Vec<Job>,
    ) -> Result<u64, SubmitRejected> {
        let keys: Vec<String> = jobs.iter().map(Job::key).collect();
        let mut inner = self.inner.lock().unwrap();
        if inner.draining {
            return Err(SubmitRejected::Draining);
        }
        let new_keys: HashSet<&str> = keys
            .iter()
            .map(String::as_str)
            .filter(|k| !inner.flights.contains_key(*k))
            .collect();
        if inner.queue.len() + new_keys.len() > self.queue_limit {
            self.obs.rejected.inc();
            return Err(SubmitRejected::Busy {
                queued: inner.queue.len() as u64,
                limit: self.queue_limit as u64,
            });
        }
        let total = jobs.len() as u64;
        let _ = tx.send(ServerFrame::Accepted {
            experiment: experiment.to_string(),
            total,
        });
        if jobs.is_empty() {
            let _ = tx.send(ServerFrame::Done {
                experiment: experiment.to_string(),
                ok: true,
            });
            return Ok(0);
        }
        let batch = Arc::new(BatchState {
            experiment: experiment.to_string(),
            remaining: AtomicUsize::new(jobs.len()),
            all_ok: AtomicBool::new(true),
            tx: tx.clone(),
        });
        for (index, (job, key)) in jobs.into_iter().zip(keys).enumerate() {
            let waiter = Waiter {
                conn_id,
                index,
                label: job.label.clone(),
                batch: Arc::clone(&batch),
            };
            self.obs.submitted.inc();
            if let Some(flight) = inner.flights.get_mut(&key) {
                self.obs.deduped.inc();
                flight.waiters.push(waiter);
            } else {
                inner.flights.insert(
                    key.clone(),
                    Flight {
                        job,
                        cancel: CancelToken::new(),
                        running: false,
                        waiters: vec![waiter],
                        enqueued_at: Instant::now(),
                    },
                );
                inner.queue.push_back(key);
            }
        }
        self.obs.queue_depth.set(inner.queue.len() as i64);
        drop(inner);
        self.work_ready.notify_all();
        Ok(total)
    }

    /// One worker thread: pop, resolve (cache or simulate), deliver.
    fn worker_loop(&self) {
        loop {
            let (key, job, cancel, queue_wait_ms) = {
                let mut inner = self.inner.lock().unwrap();
                loop {
                    if let Some(key) = inner.queue.pop_front() {
                        self.obs.queue_depth.set(inner.queue.len() as i64);
                        let flight = inner
                            .flights
                            .get_mut(&key)
                            .expect("queued key has a flight");
                        flight.running = true;
                        let job = flight.job.clone();
                        let cancel = flight.cancel.clone();
                        let queue_wait_ms = flight.enqueued_at.elapsed().as_millis() as u64;
                        inner.running += 1;
                        self.obs.in_flight.set(inner.running as i64);
                        break (key, job, cancel, queue_wait_ms);
                    }
                    if inner.draining && inner.running == 0 {
                        return;
                    }
                    inner = self.work_ready.wait(inner).unwrap();
                }
            };

            let executing_at = Instant::now();
            let (outcome, cached) = match self.cache.as_ref().and_then(|c| c.load(&key)) {
                Some(hit) => (hit, true),
                None => {
                    let (outcome, retries) =
                        execute_counted(&job, self.default_retries, Some(&cancel));
                    self.obs.retries.add(u64::from(retries));
                    if let Some(cache) = &self.cache {
                        cache.store(&key, &outcome);
                    }
                    (outcome, false)
                }
            };
            if cached {
                self.obs.cache_hits.inc();
            } else if !matches!(outcome, JobOutcome::Cancelled) {
                // The executed path is the only one that observes the
                // lifecycle histograms, keeping
                // `queue_wait count == executed` an exact invariant.
                self.obs.executed.inc();
                self.obs.queue_wait_ms.observe(queue_wait_ms);
                self.obs
                    .exec_wall_ms
                    .observe(executing_at.elapsed().as_millis() as u64);
            }
            if matches!(outcome, JobOutcome::Timeout { .. }) {
                self.obs.timeouts.inc();
            }
            self.complete(&key, outcome, cached);
        }
    }

    /// Resolves a flight: fan the outcome out to every waiter, or
    /// re-enqueue if it was cancelled but picked up new waiters.
    fn complete(&self, key: &str, outcome: JobOutcome, cached: bool) {
        let mut inner = self.inner.lock().unwrap();
        inner.running -= 1;
        self.obs.in_flight.set(inner.running as i64);
        let mut flight = inner
            .flights
            .remove(key)
            .expect("completed key has a flight");
        if matches!(outcome, JobOutcome::Cancelled) && !flight.waiters.is_empty() {
            // Cancellation raced with a fresh submission: the new
            // waiters deserve a real result, so run it again with a
            // token nobody has fired.
            flight.cancel = CancelToken::new();
            flight.running = false;
            flight.enqueued_at = Instant::now();
            inner.flights.insert(key.to_string(), flight);
            inner.queue.push_back(key.to_string());
            self.obs.queue_depth.set(inner.queue.len() as i64);
            drop(inner);
            self.work_ready.notify_all();
            return;
        }
        for w in &flight.waiters {
            self.obs.delivered.inc();
            if !outcome.is_ok() {
                w.batch.all_ok.store(false, Ordering::Relaxed);
            }
            let _ = w.batch.tx.send(ServerFrame::Job {
                experiment: w.batch.experiment.clone(),
                index: w.index as u64,
                label: w.label.clone(),
                key: key.to_string(),
                cached,
                outcome: outcome.clone(),
            });
            if w.batch.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                let _ = w.batch.tx.send(ServerFrame::Done {
                    experiment: w.batch.experiment.clone(),
                    ok: w.batch.all_ok.load(Ordering::Relaxed),
                });
            }
        }
        let drained = inner.draining && inner.queue.is_empty() && inner.running == 0;
        drop(inner);
        // Wake idle workers so they can observe the drain condition,
        // and the drain waiter itself.
        self.work_ready.notify_all();
        if drained {
            self.drained.notify_all();
        }
    }

    /// Detaches a disconnected client: removes its waiters everywhere,
    /// discards queued flights nobody else wants, and cancels running
    /// ones.
    fn drop_conn(&self, conn_id: u64) {
        let mut inner = self.inner.lock().unwrap();
        let mut dead_queued: Vec<String> = Vec::new();
        for (key, flight) in &mut inner.flights {
            flight.waiters.retain(|w| w.conn_id != conn_id);
            if flight.waiters.is_empty() {
                if flight.running {
                    flight.cancel.cancel();
                    self.obs.cancelled.inc();
                } else {
                    dead_queued.push(key.clone());
                }
            }
        }
        for key in &dead_queued {
            inner.flights.remove(key);
            inner.queue.retain(|k| k != key);
            self.obs.aborted.inc();
        }
        self.obs.queue_depth.set(inner.queue.len() as i64);
        let drained = inner.draining && inner.queue.is_empty() && inner.running == 0;
        drop(inner);
        if drained {
            self.drained.notify_all();
        }
    }

    fn begin_drain(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.draining = true;
        self.obs.draining.set(1);
        let drained = inner.queue.is_empty() && inner.running == 0;
        drop(inner);
        self.work_ready.notify_all();
        if drained {
            self.drained.notify_all();
        }
    }

    fn is_draining(&self) -> bool {
        self.inner.lock().unwrap().draining
    }

    /// Blocks until draining has been requested *and* all accepted work
    /// has resolved.
    fn wait_drained(&self) {
        let mut inner = self.inner.lock().unwrap();
        while !(inner.draining && inner.queue.is_empty() && inner.running == 0) {
            inner = self.drained.wait(inner).unwrap();
        }
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    dispatcher: Arc<Dispatcher>,
    listener: Listener,
    unix_path: Option<PathBuf>,
    endpoint_desc: String,
    workers: usize,
}

impl Server {
    /// Binds a server to `endpoint` with the given configuration.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(endpoint: &Endpoint, config: &ServerConfig) -> io::Result<Server> {
        let listener = endpoint.bind()?;
        let unix_path = match endpoint {
            #[cfg(unix)]
            Endpoint::Unix(p) => Some(p.clone()),
            #[allow(unreachable_patterns)]
            _ => None,
        };
        Ok(Server {
            dispatcher: Arc::new(Dispatcher::new(config)),
            listener,
            unix_path,
            endpoint_desc: endpoint.to_string(),
            workers: config.workers.max(1),
        })
    }

    /// The bound TCP address when listening on TCP (for port-0 binds in
    /// tests).
    pub fn tcp_addr(&self) -> Option<std::net::SocketAddr> {
        self.listener.tcp_addr()
    }

    /// A human-readable description of where the server listens.
    pub fn endpoint(&self) -> &str {
        &self.endpoint_desc
    }

    /// Runs until drained: accepts connections and executes submissions
    /// until a `shutdown` frame arrives or SIGTERM/SIGINT is latched,
    /// then finishes all accepted work, delivers every pending result,
    /// and returns the final counters.
    ///
    /// # Errors
    ///
    /// Propagates listener configuration failures; per-connection I/O
    /// errors only tear down that connection.
    pub fn run(self) -> io::Result<ServeStats> {
        let Server {
            dispatcher,
            listener,
            unix_path,
            endpoint_desc,
            workers,
        } = self;
        let worker_handles: Vec<_> = (0..workers)
            .map(|_| {
                let d = Arc::clone(&dispatcher);
                std::thread::spawn(move || d.worker_loop())
            })
            .collect();

        listener.set_nonblocking(true)?;
        let live_conns = Arc::new(AtomicUsize::new(0));
        let mut next_conn_id: u64 = 0;
        loop {
            if signal::term_requested() || dispatcher.is_draining() {
                dispatcher.begin_drain();
                break;
            }
            match listener.accept() {
                Ok(stream) => {
                    let conn_id = next_conn_id;
                    next_conn_id += 1;
                    hfs_obs::debug("serve", "connection_accepted", &[("conn", conn_id.into())]);
                    let d = Arc::clone(&dispatcher);
                    let conns = Arc::clone(&live_conns);
                    conns.fetch_add(1, Ordering::SeqCst);
                    d.obs.open_conns.inc();
                    std::thread::spawn(move || {
                        handle_conn(&d, stream, conn_id);
                        d.obs.open_conns.dec();
                        conns.fetch_sub(1, Ordering::SeqCst);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => {
                    hfs_obs::error(
                        "serve",
                        "accept_failed",
                        &[
                            ("endpoint", endpoint_desc.as_str().into()),
                            ("error", e.to_string().into()),
                        ],
                    );
                    std::thread::sleep(Duration::from_millis(100));
                }
            }
        }

        // Stop listening first so no connection can arrive after the
        // drain decision, then finish everything already accepted.
        drop(listener);
        if let Some(path) = &unix_path {
            let _ = std::fs::remove_file(path);
        }
        dispatcher.wait_drained();
        for h in worker_handles {
            let _ = h.join();
        }
        // Give connection writer threads a bounded window to flush the
        // final frames to still-attached clients. Connections close as
        // clients read their `done`/`shutting_down` frames; a client
        // that lingers forever only costs this timeout.
        let deadline = Instant::now() + Duration::from_secs(5);
        while live_conns.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        hfs_obs::info(
            "serve",
            "drained",
            &[("endpoint", endpoint_desc.as_str().into())],
        );
        Ok(dispatcher.stats())
    }
}

/// Reader side of one connection; spawns its paired writer thread.
fn handle_conn(dispatcher: &Dispatcher, stream: crate::net::Stream, conn_id: u64) {
    let (tx, rx) = channel::<ServerFrame>();
    let mut write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(e) => {
            hfs_obs::error(
                "serve",
                "stream_clone_failed",
                &[("conn", conn_id.into()), ("error", e.to_string().into())],
            );
            return;
        }
    };
    let writer = std::thread::spawn(move || {
        while let Ok(frame) = rx.recv() {
            if frame.write_to(&mut write_half).is_err() {
                break;
            }
        }
        let _ = write_half.flush();
    });

    let mut read_half = stream;
    loop {
        match ClientFrame::read_from(&mut read_half) {
            Ok(None) => break,
            Err(e) => {
                hfs_obs::warn(
                    "serve",
                    "connection_error",
                    &[("conn", conn_id.into()), ("error", e.to_string().into())],
                );
                let _ = tx.send(ServerFrame::Error {
                    message: e.to_string(),
                });
                break;
            }
            Ok(Some(ClientFrame::Ping)) => {
                let _ = tx.send(ServerFrame::Pong);
            }
            Ok(Some(ClientFrame::Stats)) => {
                let _ = tx.send(ServerFrame::Stats(dispatcher.stats()));
            }
            Ok(Some(ClientFrame::Metrics)) => {
                let _ = tx.send(ServerFrame::Metrics {
                    text: dispatcher.metrics_text(),
                });
            }
            Ok(Some(ClientFrame::Shutdown)) => {
                let _ = tx.send(ServerFrame::ShuttingDown);
                dispatcher.begin_drain();
            }
            Ok(Some(ClientFrame::Submit { experiment, jobs })) => {
                match dispatcher.submit(conn_id, &tx, &experiment, jobs) {
                    Ok(_) => {}
                    Err(SubmitRejected::Busy { queued, limit }) => {
                        let _ = tx.send(ServerFrame::Busy { queued, limit });
                    }
                    Err(SubmitRejected::Draining) => {
                        let _ = tx.send(ServerFrame::ShuttingDown);
                    }
                }
            }
        }
    }
    dispatcher.drop_conn(conn_id);
    drop(tx);
    // The writer exits once every sender is gone: ours just dropped,
    // and `drop_conn` removed the waiters holding batch clones. It
    // still flushes frames already queued (job results, `done`,
    // `shutting_down`) before exiting.
    let _ = writer.join();
    hfs_obs::debug("serve", "connection_closed", &[("conn", conn_id.into())]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfs_core::kernel::KernelPair;
    use hfs_core::{DesignPoint, MachineConfig};

    fn job(label: &str, work: u32, iters: u64) -> Job {
        Job::pipeline(
            label,
            KernelPair::simple("demo", work, iters),
            MachineConfig::itanium2_cmp(DesignPoint::heavywt()),
        )
    }

    fn dispatcher(workers: usize, queue_limit: usize) -> Arc<Dispatcher> {
        let d = Arc::new(Dispatcher::new(&ServerConfig {
            workers,
            queue_limit,
            cache_dir: None,
            default_retries: 0,
        }));
        for _ in 0..workers {
            let dd = Arc::clone(&d);
            std::thread::spawn(move || dd.worker_loop());
        }
        d
    }

    fn drain(d: &Dispatcher) {
        d.begin_drain();
        d.wait_drained();
    }

    #[test]
    fn identical_jobs_execute_once() {
        let d = dispatcher(2, 64);
        let (tx, rx) = channel();
        // Two batches of the same job from the same logical client.
        d.submit(0, &tx, "a", vec![job("a/x", 2, 40)]).ok().unwrap();
        d.submit(0, &tx, "b", vec![job("b/x", 2, 40)]).ok().unwrap();
        let mut jobs = 0;
        let mut dones = 0;
        while dones < 2 {
            match rx.recv_timeout(Duration::from_secs(30)).unwrap() {
                ServerFrame::Job { .. } => jobs += 1,
                ServerFrame::Done { .. } => dones += 1,
                ServerFrame::Accepted { .. } => {}
                other => panic!("unexpected frame {other:?}"),
            }
        }
        assert_eq!(jobs, 2, "both waiters got a result");
        let stats = d.stats();
        // Single-flight: two submissions, one execution (timing may
        // let both flights run if the first resolves before the second
        // submit — only possible here because submits are sequential;
        // with the 40-iteration job the first typically still runs.
        // The hard guarantee is executed + deduped == submitted when
        // nothing is cached or cancelled.)
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.executed + stats.deduped, 2);
        drain(&d);
    }

    #[test]
    fn concurrent_identical_batches_dedupe() {
        let d = dispatcher(1, 64);
        let (tx, rx) = channel();
        // One worker, pinned on a long blocker job so the queue backs
        // up: submit the same 3 jobs from 4 "clients" while the worker
        // chews on the blocker. Dedup is then deterministic for every
        // submission after the first (without the blocker, a fast
        // enough simulator finishes x/a before the later submits land
        // and re-executes it).
        d.submit(9, &tx, "blk", vec![job("blk/hold", 2, 20_000)])
            .ok()
            .unwrap();
        let jobs = || vec![job("x/a", 2, 200), job("x/b", 3, 200), job("x/c", 4, 200)];
        for conn in 0..4 {
            d.submit(conn, &tx, "x", jobs()).ok().unwrap();
        }
        let mut dones = 0;
        while dones < 5 {
            if let ServerFrame::Done { ok, .. } = rx.recv_timeout(Duration::from_secs(60)).unwrap()
            {
                assert!(ok);
                dones += 1;
            }
        }
        let stats = d.stats();
        assert_eq!(stats.submitted, 13);
        assert_eq!(stats.delivered, 13, "every waiter served");
        assert!(
            stats.deduped >= 9,
            "at most the blocker and the first batch's 3 jobs execute; got {stats:?}"
        );
        assert!(stats.executed <= 4);
        drain(&d);
    }

    #[test]
    fn admission_control_rejects_whole_batches() {
        let d = dispatcher(1, 2);
        let (tx, rx) = channel();
        // Occupy the worker and fill the queue.
        d.submit(
            0,
            &tx,
            "fill",
            vec![job("f/1", 2, 2_000), job("f/2", 3, 2_000)],
        )
        .ok()
        .unwrap();
        // Wait until the first flight is actually running so the queue
        // has deterministic occupancy (1 queued, 1 running).
        let t0 = Instant::now();
        while d.stats().running == 0 && t0.elapsed() < Duration::from_secs(30) {
            std::thread::sleep(Duration::from_millis(5));
        }
        let res = d.submit(
            1,
            &tx,
            "big",
            vec![job("b/1", 4, 10), job("b/2", 5, 10), job("b/3", 6, 10)],
        );
        match res {
            Err(SubmitRejected::Busy { limit, .. }) => assert_eq!(limit, 2),
            _ => panic!("expected busy"),
        }
        assert_eq!(d.stats().rejected, 1);
        // A duplicate of queued work costs no slot and is admitted even
        // at the bound.
        d.submit(1, &tx, "dup", vec![job("d/2", 3, 2_000)])
            .ok()
            .expect("duplicate admits without a queue slot");
        let mut dones = 0;
        while dones < 2 {
            if let ServerFrame::Done { .. } = rx.recv_timeout(Duration::from_secs(60)).unwrap() {
                dones += 1;
            }
        }
        drain(&d);
    }

    #[test]
    fn disconnect_discards_queued_and_cancels_running() {
        let d = dispatcher(1, 64);
        let (tx, rx) = channel();
        // Long-running head job plus queued tail, all owned by conn 7.
        d.submit(
            7,
            &tx,
            "gone",
            vec![job("g/head", 2, 2_000_000), job("g/tail", 3, 50)],
        )
        .ok()
        .unwrap();
        let t0 = Instant::now();
        while d.stats().running == 0 && t0.elapsed() < Duration::from_secs(30) {
            std::thread::sleep(Duration::from_millis(5));
        }
        d.drop_conn(7);
        // The tail was discarded, the head cancelled; the dispatcher
        // settles to empty without delivering anything.
        let t0 = Instant::now();
        while (d.stats().running > 0 || d.stats().queued > 0)
            && t0.elapsed() < Duration::from_secs(60)
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        let stats = d.stats();
        assert_eq!(stats.cancelled, 1, "running head got cancelled: {stats:?}");
        assert_eq!(stats.aborted, 1, "queued tail was discarded: {stats:?}");
        assert_eq!(stats.delivered, 0);
        drop(rx);
        // The dispatcher stays healthy: new work from a live conn runs.
        let (tx2, rx2) = channel();
        d.submit(8, &tx2, "after", vec![job("a/1", 2, 40)])
            .ok()
            .unwrap();
        let mut done = false;
        while !done {
            if let ServerFrame::Done { ok, .. } = rx2.recv_timeout(Duration::from_secs(30)).unwrap()
            {
                assert!(ok);
                done = true;
            }
        }
        drain(&d);
    }

    #[test]
    fn draining_refuses_new_submissions() {
        let d = dispatcher(1, 64);
        d.begin_drain();
        let (tx, _rx) = channel();
        assert!(matches!(
            d.submit(0, &tx, "late", vec![job("l/1", 2, 10)]),
            Err(SubmitRejected::Draining)
        ));
        d.wait_drained();
    }

    #[test]
    fn empty_batch_completes_immediately() {
        let d = dispatcher(1, 64);
        let (tx, rx) = channel();
        d.submit(0, &tx, "empty", Vec::new()).ok().unwrap();
        assert!(matches!(
            rx.recv_timeout(Duration::from_secs(5)).unwrap(),
            ServerFrame::Accepted { total: 0, .. }
        ));
        assert!(matches!(
            rx.recv_timeout(Duration::from_secs(5)).unwrap(),
            ServerFrame::Done { ok: true, .. }
        ));
        drain(&d);
    }
}

//! The `hfs-serve` server: connection handling, the single-flight
//! dispatcher, admission control, and graceful drain.
//!
//! # Architecture
//!
//! Each accepted connection gets a *reader* thread (parses client
//! frames) and a *writer* thread (drains an `mpsc` channel of server
//! frames), so slow clients never block job execution. Submitted jobs
//! flow into the [`Dispatcher`]: a mutex-guarded queue of *flights*
//! keyed by [`Job::key`]. A submission whose key is already queued or
//! running does not enqueue again — it attaches a waiter to the
//! existing flight (single-flight execution), and the one result fans
//! out to every waiter when the flight resolves.
//!
//! Workers pop flights, consult the shared result [`Cache`] (hot layer
//! first, then disk), and otherwise execute. Two worker modes share the
//! dispatcher: *thread mode* (the default) runs simulations on
//! in-process threads; *process mode* (`--workers N` /
//! `HFS_SERVE_WORKERS`) re-execs the server binary as `--worker` child
//! processes and proxies jobs to them over pipes using the same
//! length-prefixed JSON frames as the client protocol. In process mode
//! flights are sharded across workers by [`Job::key`], so the
//! single-flight guarantee needs no cross-process locking: one key maps
//! to one worker, and the parent-side dedup map is the only authority.
//! A crashed worker is restarted and its in-flight job re-dispatched
//! (bounded times; then the job resolves as
//! [`JobOutcome::WorkerDied`]).
//!
//! When every waiter of a flight disconnects, its queued entry is
//! discarded (or its running simulation is cancelled via
//! [`CancelToken`] — forwarded as a `cancel` frame in process mode); a
//! cancelled flight that gained new waiters before the worker noticed
//! is transparently re-enqueued with a fresh token.
//!
//! Admission control bounds the flight queue: a submission that would
//! push it past the limit is rejected whole with a `busy` frame —
//! never partially accepted. Submissions whose keys sit in the
//! in-memory hot cache resolve inline during `submit`, consuming no
//! queue slot and no worker round-trip.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, Write as _};
use std::path::PathBuf;
use std::process::Child;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use hfs_harness::{execute_counted, Cache, HotCache, Job, JobOutcome};
use hfs_obs::{Counter, Gauge, HistogramMetric, Registry};
use hfs_sim::CancelToken;

use crate::net::{Endpoint, Listener};
use crate::proto::{ClientFrame, JobRef, JobResult, ServeStats, ServerFrame, Subscribe};
use crate::signal;
use crate::worker::{WorkerReply, WorkerRequest};

/// Admission-control queue bound environment variable
/// (`HFS_SERVE_QUEUE_LIMIT`).
pub const ENV_QUEUE_LIMIT: &str = "HFS_SERVE_QUEUE_LIMIT";

/// Worker-process count environment variable (`HFS_SERVE_WORKERS`);
/// `0` (the default) executes on in-process threads instead.
pub const ENV_WORKERS: &str = "HFS_SERVE_WORKERS";

/// Default bound on queued (not yet running) flights.
pub const DEFAULT_QUEUE_LIMIT: usize = 1024;

/// How many worker deaths one job survives before it resolves as
/// [`JobOutcome::WorkerDied`] instead of being re-dispatched. A job
/// that reliably kills its worker (e.g. by exhausting memory) would
/// otherwise crash-loop the pool forever.
const MAX_WORKER_CRASHES: u32 = 2;

/// Results buffered per `subscribe: final` batch before a
/// [`ServerFrame::BatchResults`] chunk is flushed.
const BATCH_CHUNK: usize = 256;

fn env_flag(name: &str) -> bool {
    std::env::var_os(name).is_some_and(|v| v != "0" && !v.is_empty())
}

/// Server tuning knobs. Connection/drain logging is no longer a config
/// flag: it goes through the `hfs-obs` logger, so `HFS_LOG` controls it
/// (accept/close at debug, drain milestones at info, failures at
/// warn/error).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker (simulation) threads when running in thread mode.
    pub workers: usize,
    /// Worker *processes* (`--workers` / `HFS_SERVE_WORKERS`): when
    /// nonzero, the server re-execs its own binary `--worker` this many
    /// times and shards flights across the children by job key; `0`
    /// (the default) executes on in-process threads.
    pub process_workers: usize,
    /// Binary to re-exec as `--worker` children; `None` uses
    /// `std::env::current_exe()`. Tests point this at a specific built
    /// `hfs-serve`.
    pub worker_bin: Option<PathBuf>,
    /// Maximum queued flights before submissions get `busy`.
    pub queue_limit: usize,
    /// On-disk result cache directory; `None` disables caching.
    pub cache_dir: Option<PathBuf>,
    /// Hot-cache budget in MiB: `None` honors `HFS_HOT_CACHE_MB`,
    /// `Some(0)` disables the in-memory layer, `Some(n)` forces `n`
    /// MiB.
    pub hot_cache_mb: Option<u64>,
    /// Retries applied to jobs that don't override their own.
    pub default_retries: u32,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            process_workers: 0,
            worker_bin: None,
            queue_limit: DEFAULT_QUEUE_LIMIT,
            cache_dir: None,
            hot_cache_mb: None,
            default_retries: 0,
        }
    }
}

impl ServerConfig {
    /// The production configuration, honoring the same `HFS_*`
    /// environment as [`hfs_harness::Engine::from_env`]: `HFS_JOBS`
    /// workers, a cache in `HFS_CACHE_DIR` (default `results/cache`,
    /// disabled by `HFS_NO_CACHE=1`), `HFS_RETRIES` retries (default
    /// 1), plus `HFS_SERVE_QUEUE_LIMIT` for admission control and
    /// `HFS_SERVE_WORKERS` for the worker-process count (the hot-cache
    /// budget rides on `HFS_HOT_CACHE_MB` inside the harness cache).
    pub fn from_env() -> ServerConfig {
        let workers = std::env::var("HFS_JOBS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        let process_workers = std::env::var(ENV_WORKERS)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(0);
        let cache_dir = if env_flag("HFS_NO_CACHE") {
            None
        } else {
            Some(PathBuf::from(
                std::env::var("HFS_CACHE_DIR").unwrap_or_else(|_| "results/cache".to_string()),
            ))
        };
        let queue_limit = std::env::var(ENV_QUEUE_LIMIT)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_QUEUE_LIMIT);
        let default_retries = std::env::var("HFS_RETRIES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1);
        ServerConfig {
            workers,
            process_workers,
            worker_bin: None,
            queue_limit,
            cache_dir,
            hot_cache_mb: None,
            default_retries,
        }
    }
}

/// One batch submission's delivery state, shared by its waiters.
struct BatchState {
    experiment: String,
    /// Batch id echoed on every response frame; 0 on the legacy
    /// `submit` path.
    id: u64,
    subscribe: Subscribe,
    remaining: AtomicUsize,
    all_ok: AtomicBool,
    /// Resolved results awaiting a `batch_results` flush
    /// (`subscribe: final` only).
    buffer: Mutex<Vec<JobResult>>,
    tx: Sender<ServerFrame>,
}

impl BatchState {
    /// Delivers one resolved job to this batch: counts it, streams it
    /// per the subscription level, and emits the final chunk plus the
    /// `done` frame when it is the last one. `encoded`, when present,
    /// is the outcome's cached serialization and is spliced into
    /// `batch_results` frames instead of re-encoding.
    // One call site per resolution path; a params struct would just
    // restate the field list.
    #[allow(clippy::too_many_arguments)]
    fn deliver(
        &self,
        obs: &Telemetry,
        index: u64,
        label: String,
        key: &str,
        cached: bool,
        outcome: JobOutcome,
        encoded: Option<Arc<str>>,
    ) {
        obs.delivered.inc();
        if !outcome.is_ok() {
            self.all_ok.store(false, Ordering::Relaxed);
        }
        match self.subscribe {
            Subscribe::All => {
                let _ = self.tx.send(ServerFrame::Job {
                    experiment: self.experiment.clone(),
                    index,
                    label,
                    key: key.to_string(),
                    cached,
                    outcome,
                });
            }
            Subscribe::Final => {
                let mut buf = self.buffer.lock().unwrap();
                buf.push(JobResult {
                    index,
                    label,
                    key: key.to_string(),
                    cached,
                    outcome,
                    encoded,
                });
                if buf.len() >= BATCH_CHUNK {
                    let results = std::mem::take(&mut *buf);
                    // Send while still holding the buffer lock: the
                    // final flush below also sends under it, so a chunk
                    // can never be ordered after `done`.
                    let _ = self.tx.send(ServerFrame::BatchResults {
                        experiment: self.experiment.clone(),
                        id: self.id,
                        results,
                    });
                }
            }
            Subscribe::None => {}
        }
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let mut buf = self.buffer.lock().unwrap();
            let results = std::mem::take(&mut *buf);
            if !results.is_empty() {
                let _ = self.tx.send(ServerFrame::BatchResults {
                    experiment: self.experiment.clone(),
                    id: self.id,
                    results,
                });
            }
            let _ = self.tx.send(ServerFrame::Done {
                experiment: self.experiment.clone(),
                ok: self.all_ok.load(Ordering::Relaxed),
                id: self.id,
            });
        }
    }
}

/// One waiter: a (connection, batch, index) triple expecting a result.
struct Waiter {
    conn_id: u64,
    index: usize,
    label: String,
    batch: Arc<BatchState>,
}

/// One deduplicated unit of execution.
struct Flight {
    job: Arc<Job>,
    cancel: CancelToken,
    running: bool,
    /// The worker-process index executing this flight (process mode
    /// only) — the address `drop_conn` forwards `cancel` frames to.
    worker: Option<usize>,
    waiters: Vec<Waiter>,
    /// When the flight (re-)entered the queue — the lifecycle "queued"
    /// timestamp from which queue wait is measured at worker pickup.
    enqueued_at: Instant,
}

struct DispatchInner {
    /// One queue per shard: a single queue in thread mode, one per
    /// worker process in process mode (shard = key hash % workers), so
    /// a key always executes on the same worker and single-flight
    /// dedup needs no cross-process coordination.
    queues: Vec<VecDeque<String>>,
    flights: HashMap<String, Flight>,
    running: usize,
    draining: bool,
}

impl DispatchInner {
    fn queued_total(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    fn idle(&self) -> bool {
        self.running == 0 && self.queues.iter().all(VecDeque::is_empty)
    }
}

/// Upper bucket (milliseconds) for the dispatcher's latency histograms.
const LATENCY_HISTOGRAM_MAX_MS: usize = 60_000;

/// The dispatcher's telemetry: every counter the `Stats` frame reports
/// lives in one [`Registry`], so the `stats` view and the Prometheus
/// exposition can never disagree. Gauges mirror the queue/flight state
/// maintained under the dispatcher lock; the two histograms record the
/// job lifecycle (queued→executing wait, executing→completed wall) and
/// are observed only on the executed path, so
/// `hfs_job_queue_wait_ms_count == hfs_jobs_executed_total` holds
/// exactly at quiescence.
struct Telemetry {
    registry: Registry,
    submitted: Counter,
    executed: Counter,
    cache_hits: Counter,
    deduped: Counter,
    cancelled: Counter,
    aborted: Counter,
    rejected: Counter,
    delivered: Counter,
    retries: Counter,
    timeouts: Counter,
    worker_restarts: Counter,
    queue_depth: Gauge,
    in_flight: Gauge,
    open_conns: Gauge,
    draining: Gauge,
    queue_wait_ms: HistogramMetric,
    exec_wall_ms: HistogramMetric,
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        let registry = Registry::new();
        Telemetry {
            submitted: registry.counter("hfs_jobs_submitted_total"),
            executed: registry.counter("hfs_jobs_executed_total"),
            cache_hits: registry.counter("hfs_jobs_cache_hits_total"),
            deduped: registry.counter("hfs_jobs_deduped_total"),
            cancelled: registry.counter("hfs_jobs_cancelled_total"),
            aborted: registry.counter("hfs_jobs_aborted_total"),
            rejected: registry.counter("hfs_batches_rejected_total"),
            delivered: registry.counter("hfs_jobs_delivered_total"),
            retries: registry.counter("hfs_job_retries_total"),
            timeouts: registry.counter("hfs_job_timeouts_total"),
            worker_restarts: registry.counter("hfs_worker_restarts_total"),
            queue_depth: registry.gauge("hfs_queue_depth"),
            in_flight: registry.gauge("hfs_jobs_in_flight"),
            open_conns: registry.gauge("hfs_open_connections"),
            draining: registry.gauge("hfs_draining"),
            queue_wait_ms: registry.histogram("hfs_job_queue_wait_ms", LATENCY_HISTOGRAM_MAX_MS),
            exec_wall_ms: registry.histogram("hfs_job_exec_wall_ms", LATENCY_HISTOGRAM_MAX_MS),
            registry,
        }
    }
}

/// Why a submission was refused.
enum SubmitRejected {
    Busy { queued: u64, limit: u64 },
    Draining,
}

/// Why a `submit_refs` chunk was refused.
enum RefsRejected {
    /// These chunk-relative indexes resolved neither from the cache
    /// nor from an in-flight execution; the client must re-send the
    /// chunk with full specs.
    Miss(Vec<u64>),
    Draining,
}

/// The parent side of the worker-process pool: per-worker stdin
/// handles (shared so `drop_conn` can forward cancels while the
/// worker's proxy thread is blocked on its stdout) and per-shard
/// telemetry.
struct ProcPool {
    worker_bin: PathBuf,
    stdins: Vec<Mutex<Option<std::process::ChildStdin>>>,
    shard_depth: Vec<Gauge>,
}

/// A spawned `--worker` child owned by its proxy thread.
struct WorkerChild {
    child: Child,
    stdout: std::process::ChildStdout,
}

fn spawn_worker(bin: &std::path::Path) -> io::Result<(WorkerChild, std::process::ChildStdin)> {
    let mut child = std::process::Command::new(bin)
        .arg("--worker")
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        // stderr (and HFS_LOG) is inherited, but the child must not
        // append to the parent's structured log file: two processes
        // sharing one file would interleave their seq counters.
        .env_remove("HFS_LOG_FILE")
        .spawn()?;
    let stdin = child.stdin.take().expect("stdin was piped");
    let stdout = child.stdout.take().expect("stdout was piped");
    Ok((WorkerChild { child, stdout }, stdin))
}

/// The shared execution core behind every connection.
struct Dispatcher {
    inner: Mutex<DispatchInner>,
    work_ready: Condvar,
    drained: Condvar,
    obs: Telemetry,
    cache: Option<Cache>,
    queue_limit: usize,
    default_retries: u32,
    /// Queue shards: 1 in thread mode, the worker count in process
    /// mode.
    nshards: usize,
    /// Present only in process mode.
    proc: Option<ProcPool>,
}

impl Dispatcher {
    fn new(config: &ServerConfig) -> Dispatcher {
        let obs = Telemetry::default();
        let hot = match config.hot_cache_mb {
            None => HotCache::from_env(),
            Some(0) => None,
            Some(mb) => Some(Arc::new(HotCache::new(mb << 20))),
        };
        let cache = config
            .cache_dir
            .as_ref()
            .map(|dir| Cache::with_hot(dir, hot));
        if let Some(h) = cache.as_ref().and_then(Cache::hot) {
            h.install_metrics(&obs.registry);
        }
        let nshards = config.process_workers.max(1);
        let proc = (config.process_workers > 0).then(|| ProcPool {
            worker_bin: config.worker_bin.clone().unwrap_or_else(|| {
                std::env::current_exe().unwrap_or_else(|_| PathBuf::from("hfs-serve"))
            }),
            stdins: (0..config.process_workers)
                .map(|_| Mutex::new(None))
                .collect(),
            shard_depth: (0..config.process_workers)
                .map(|i| obs.registry.gauge(&format!("hfs_worker_queue_depth_w{i}")))
                .collect(),
        });
        Dispatcher {
            inner: Mutex::new(DispatchInner {
                queues: (0..nshards).map(|_| VecDeque::new()).collect(),
                flights: HashMap::new(),
                running: 0,
                draining: false,
            }),
            work_ready: Condvar::new(),
            drained: Condvar::new(),
            obs,
            cache,
            queue_limit: config.queue_limit,
            default_retries: config.default_retries,
            nshards,
            proc,
        }
    }

    /// The shard (queue index / worker process) a key belongs to. Keys
    /// are 16 lowercase hex digits of an FNV-1a hash, so the leading
    /// digits are uniformly distributed.
    fn shard_of(&self, key: &str) -> usize {
        if self.nshards == 1 {
            return 0;
        }
        let h = u64::from_str_radix(key.get(..8).unwrap_or("0"), 16).unwrap_or(0);
        (h as usize) % self.nshards
    }

    /// Refreshes the queue-depth gauges from the queues' state; call
    /// under the dispatcher lock after any queue mutation.
    fn note_queue_depth(&self, inner: &DispatchInner) {
        self.obs.queue_depth.set(inner.queued_total() as i64);
        if let Some(pool) = &self.proc {
            for (gauge, queue) in pool.shard_depth.iter().zip(&inner.queues) {
                gauge.set(queue.len() as i64);
            }
        }
    }

    fn stats(&self) -> ServeStats {
        let inner = self.inner.lock().unwrap();
        ServeStats {
            submitted: self.obs.submitted.get(),
            executed: self.obs.executed.get(),
            cache_hits: self.obs.cache_hits.get(),
            deduped: self.obs.deduped.get(),
            cancelled: self.obs.cancelled.get(),
            aborted: self.obs.aborted.get(),
            rejected: self.obs.rejected.get(),
            delivered: self.obs.delivered.get(),
            queued: inner.queued_total() as u64,
            running: inner.running as u64,
            draining: inner.draining,
        }
    }

    /// The live metric registry rendered as Prometheus text — the
    /// payload of the `metrics` frame.
    fn metrics_text(&self) -> String {
        self.obs.registry.render_prometheus()
    }

    /// Admits a whole batch or rejects it whole. On success the
    /// `accepted` frame (and, for empty batches, the `done` frame) is
    /// sent *under the dispatcher lock*, before any worker can pop the
    /// new flights — guaranteeing clients see `accepted` before the
    /// first result frame.
    ///
    /// Jobs whose keys sit in the in-memory hot cache resolve right
    /// here: they count as cache hits and deliver inline, consume no
    /// queue slot (so a warm re-sweep never trips admission control),
    /// and never touch a worker.
    fn submit(
        &self,
        conn_id: u64,
        tx: &Sender<ServerFrame>,
        experiment: &str,
        id: u64,
        subscribe: Subscribe,
        jobs: Vec<Job>,
    ) -> Result<u64, SubmitRejected> {
        let keys: Vec<String> = jobs.iter().map(Job::key).collect();
        let hot: Vec<Option<Arc<hfs_harness::HotEntry>>> = match &self.cache {
            Some(cache) => keys.iter().map(|k| cache.hot_entry(k)).collect(),
            None => vec![None; keys.len()],
        };
        let mut inner = self.inner.lock().unwrap();
        if inner.draining {
            return Err(SubmitRejected::Draining);
        }
        let new_keys: HashSet<&str> = keys
            .iter()
            .zip(&hot)
            .filter(|(k, h)| h.is_none() && !inner.flights.contains_key(k.as_str()))
            .map(|(k, _)| k.as_str())
            .collect();
        if inner.queued_total() + new_keys.len() > self.queue_limit {
            self.obs.rejected.inc();
            return Err(SubmitRejected::Busy {
                queued: inner.queued_total() as u64,
                limit: self.queue_limit as u64,
            });
        }
        let total = jobs.len() as u64;
        let _ = tx.send(ServerFrame::Accepted {
            experiment: experiment.to_string(),
            total,
            id,
        });
        if jobs.is_empty() {
            let _ = tx.send(ServerFrame::Done {
                experiment: experiment.to_string(),
                ok: true,
                id,
            });
            return Ok(0);
        }
        let batch = Arc::new(BatchState {
            experiment: experiment.to_string(),
            id,
            subscribe,
            remaining: AtomicUsize::new(jobs.len()),
            all_ok: AtomicBool::new(true),
            buffer: Mutex::new(Vec::new()),
            tx: tx.clone(),
        });
        for (index, (job, (key, hot_entry))) in
            jobs.into_iter().zip(keys.into_iter().zip(hot)).enumerate()
        {
            self.obs.submitted.inc();
            if let Some(entry) = hot_entry {
                self.obs.cache_hits.inc();
                batch.deliver(
                    &self.obs,
                    index as u64,
                    job.label.clone(),
                    &key,
                    true,
                    entry.outcome().clone(),
                    Some(Arc::clone(entry.json_arc())),
                );
                continue;
            }
            let waiter = Waiter {
                conn_id,
                index,
                label: job.label.clone(),
                batch: Arc::clone(&batch),
            };
            if let Some(flight) = inner.flights.get_mut(&key) {
                self.obs.deduped.inc();
                flight.waiters.push(waiter);
            } else {
                let shard = self.shard_of(&key);
                inner.flights.insert(
                    key.clone(),
                    Flight {
                        job: Arc::new(job),
                        cancel: CancelToken::new(),
                        running: false,
                        worker: None,
                        waiters: vec![waiter],
                        enqueued_at: Instant::now(),
                    },
                );
                inner.queues[shard].push_back(key);
            }
        }
        self.note_queue_depth(&inner);
        drop(inner);
        self.work_ready.notify_all();
        Ok(total)
    }

    /// Admits a `submit_refs` chunk: every reference must resolve from
    /// the result cache (hot or disk) or attach to an in-flight
    /// execution of its key, else the whole chunk is refused with the
    /// missing indexes and *nothing* is mutated — no counters, no
    /// queue slots, no waiters — so the client's full-spec re-send
    /// starts from a clean slate. Resolved references deliver inline
    /// as cache hits and consume no queue slot, exactly like the
    /// hot-path resolution in [`Dispatcher::submit`], so admission
    /// control never applies to a refs chunk.
    fn submit_refs(
        &self,
        conn_id: u64,
        tx: &Sender<ServerFrame>,
        experiment: &str,
        id: u64,
        subscribe: Subscribe,
        refs: Vec<JobRef>,
    ) -> Result<u64, RefsRejected> {
        // Cache probes can do IO (a disk read on hot-layer miss), so
        // they run before the dispatcher lock. Entries carry the
        // outcome's cached serialization, which delivery splices into
        // result frames instead of re-encoding per hit.
        let hits: Vec<Option<Arc<hfs_harness::HotEntry>>> = match &self.cache {
            Some(cache) => refs.iter().map(|r| cache.load_entry(&r.key)).collect(),
            None => vec![None; refs.len()],
        };
        let mut inner = self.inner.lock().unwrap();
        if inner.draining {
            return Err(RefsRejected::Draining);
        }
        let missing: Vec<u64> = refs
            .iter()
            .zip(&hits)
            .enumerate()
            .filter(|(_, (r, hit))| hit.is_none() && !inner.flights.contains_key(r.key.as_str()))
            .map(|(i, _)| i as u64)
            .collect();
        if !missing.is_empty() {
            return Err(RefsRejected::Miss(missing));
        }
        let total = refs.len() as u64;
        let _ = tx.send(ServerFrame::Accepted {
            experiment: experiment.to_string(),
            total,
            id,
        });
        if refs.is_empty() {
            let _ = tx.send(ServerFrame::Done {
                experiment: experiment.to_string(),
                ok: true,
                id,
            });
            return Ok(0);
        }
        let batch = Arc::new(BatchState {
            experiment: experiment.to_string(),
            id,
            subscribe,
            remaining: AtomicUsize::new(refs.len()),
            all_ok: AtomicBool::new(true),
            buffer: Mutex::new(Vec::new()),
            tx: tx.clone(),
        });
        for (index, (r, hit)) in refs.into_iter().zip(hits).enumerate() {
            self.obs.submitted.inc();
            if let Some(entry) = hit {
                self.obs.cache_hits.inc();
                batch.deliver(
                    &self.obs,
                    index as u64,
                    r.label,
                    &r.key,
                    true,
                    entry.outcome().clone(),
                    Some(Arc::clone(entry.json_arc())),
                );
                continue;
            }
            let flight = inner
                .flights
                .get_mut(r.key.as_str())
                .expect("unresolved refs were rejected above");
            self.obs.deduped.inc();
            flight.waiters.push(Waiter {
                conn_id,
                index,
                label: r.label,
                batch: Arc::clone(&batch),
            });
        }
        Ok(total)
    }

    /// Blocks until shard `idx` has work (returning its pickup state)
    /// or the drain condition holds (returning `None`, at which point
    /// the caller thread exits).
    fn next_flight(&self, idx: usize) -> Option<(String, Arc<Job>, CancelToken, u64)> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(key) = inner.queues[idx].pop_front() {
                let flight = inner
                    .flights
                    .get_mut(&key)
                    .expect("queued key has a flight");
                flight.running = true;
                flight.worker = Some(idx);
                let job = Arc::clone(&flight.job);
                let cancel = flight.cancel.clone();
                let queue_wait_ms = flight.enqueued_at.elapsed().as_millis() as u64;
                inner.running += 1;
                self.obs.in_flight.set(inner.running as i64);
                self.note_queue_depth(&inner);
                return Some((key, job, cancel, queue_wait_ms));
            }
            if inner.draining && inner.idle() {
                return None;
            }
            inner = self.work_ready.wait(inner).unwrap();
        }
    }

    /// One worker thread: pop, resolve (cache or simulate), deliver.
    fn worker_loop(&self) {
        loop {
            let Some((key, job, cancel, queue_wait_ms)) = self.next_flight(0) else {
                return;
            };

            let executing_at = Instant::now();
            let (outcome, cached) = match self.cache.as_ref().and_then(|c| c.load(&key)) {
                Some(hit) => (hit, true),
                None => {
                    let (outcome, retries) =
                        execute_counted(&job, self.default_retries, Some(&cancel));
                    self.obs.retries.add(u64::from(retries));
                    if let Some(cache) = &self.cache {
                        cache.store(&key, &outcome);
                    }
                    (outcome, false)
                }
            };
            if cached {
                self.obs.cache_hits.inc();
            } else if !matches!(outcome, JobOutcome::Cancelled) {
                // The executed path is the only one that observes the
                // lifecycle histograms, keeping
                // `queue_wait count == executed` an exact invariant.
                self.obs.executed.inc();
                self.obs.queue_wait_ms.observe(queue_wait_ms);
                self.obs
                    .exec_wall_ms
                    .observe(executing_at.elapsed().as_millis() as u64);
            }
            if matches!(outcome, JobOutcome::Timeout { .. }) {
                self.obs.timeouts.inc();
            }
            self.complete(&key, outcome, cached);
        }
    }

    /// One worker-process proxy thread: pop from this worker's shard,
    /// resolve from the cache, or round-trip the job through the child
    /// process — restarting it (bounded) if it dies mid-job.
    fn proc_worker_loop(&self, idx: usize) {
        let mut child: Option<WorkerChild> = None;
        loop {
            let Some((key, job, _cancel, queue_wait_ms)) = self.next_flight(idx) else {
                self.reap_worker(idx, child.take());
                return;
            };

            let executing_at = Instant::now();
            let (outcome, cached) = match self.cache.as_ref().and_then(|c| c.load(&key)) {
                Some(hit) => (hit, true),
                None => {
                    let (outcome, retries) = self.run_on_child(&mut child, idx, &key, &job);
                    self.obs.retries.add(u64::from(retries));
                    if let Some(cache) = &self.cache {
                        cache.store(&key, &outcome);
                    }
                    (outcome, false)
                }
            };
            if cached {
                self.obs.cache_hits.inc();
            } else if !matches!(outcome, JobOutcome::Cancelled) {
                self.obs.executed.inc();
                self.obs.queue_wait_ms.observe(queue_wait_ms);
                self.obs
                    .exec_wall_ms
                    .observe(executing_at.elapsed().as_millis() as u64);
            }
            if matches!(outcome, JobOutcome::Timeout { .. }) {
                self.obs.timeouts.inc();
            }
            self.complete(&key, outcome, cached);
        }
    }

    /// Executes one job on worker `idx`'s child process, spawning or
    /// respawning it as needed. A child that dies mid-job (crash, OOM
    /// kill, operator `kill -9`) is restarted and the job re-sent, up
    /// to [`MAX_WORKER_CRASHES`] deaths; after that the job resolves as
    /// [`JobOutcome::WorkerDied`] so the batch still completes with a
    /// structured error instead of hanging.
    fn run_on_child(
        &self,
        child: &mut Option<WorkerChild>,
        idx: usize,
        key: &str,
        job: &Job,
    ) -> (JobOutcome, u32) {
        let pool = self.proc.as_ref().expect("process mode");
        // A worker death is a transient harness failure like a watchdog
        // timeout, so the operator's `HFS_RETRIES` extends the default
        // crash budget exactly as it extends in-process retries. Every
        // respawn re-sends the job from scratch, so each attempt gets a
        // fresh progress (cycle-budget) deadline.
        let budget = MAX_WORKER_CRASHES.max(self.default_retries);
        let mut crashes: u32 = 0;
        loop {
            if crashes > budget {
                return (
                    JobOutcome::WorkerDied(format!(
                        "worker {idx} died {crashes} times running this job"
                    )),
                    0,
                );
            }
            if child.is_none() {
                // Once drain begins, a dead child is reaped but never
                // respawned: the in-flight job resolves with a
                // structured outcome instead of spinning up a process
                // the shutdown path would immediately have to kill.
                if crashes > 0 && self.inner.lock().unwrap().draining {
                    return (
                        JobOutcome::WorkerDied(format!(
                            "worker {idx} died during drain; not respawned"
                        )),
                        0,
                    );
                }
                match spawn_worker(&pool.worker_bin) {
                    Ok((c, stdin)) => {
                        hfs_obs::debug(
                            "serve",
                            "worker_spawned",
                            &[
                                ("worker", u64::from(idx as u32).into()),
                                ("pid", u64::from(c.child.id()).into()),
                            ],
                        );
                        *pool.stdins[idx].lock().unwrap() = Some(stdin);
                        *child = Some(c);
                    }
                    Err(e) => {
                        crashes += 1;
                        self.obs.worker_restarts.inc();
                        hfs_obs::error(
                            "serve",
                            "worker_spawn_failed",
                            &[
                                ("worker", u64::from(idx as u32).into()),
                                ("error", e.to_string().into()),
                            ],
                        );
                        std::thread::sleep(Duration::from_millis(100));
                        continue;
                    }
                }
            }
            let request = WorkerRequest::Run {
                key: key.to_string(),
                retries: self.default_retries,
                job: job.clone(),
            };
            let sent = {
                let mut stdin = pool.stdins[idx].lock().unwrap();
                match stdin.as_mut() {
                    Some(s) => crate::proto::write_frame(s, &request.to_json()).is_ok(),
                    None => false,
                }
            };
            if !sent {
                // The child died while idle; count it and respawn.
                self.note_worker_death(idx, child, &mut crashes, "write failed");
                continue;
            }
            let reply = {
                let c = child.as_mut().expect("child was just ensured");
                crate::proto::read_frame(&mut c.stdout)
                    .ok()
                    .flatten()
                    .and_then(|v| WorkerReply::from_json(&v).ok())
            };
            match reply {
                Some(r) if r.key == key => return (r.outcome, r.retries_used),
                Some(r) => {
                    // A reply for another key breaks the
                    // one-outstanding protocol; treat the child as
                    // wedged.
                    self.note_worker_death(
                        idx,
                        child,
                        &mut crashes,
                        &format!("protocol error: reply for {:?}", r.key),
                    );
                }
                None => {
                    self.note_worker_death(idx, child, &mut crashes, "died mid-job");
                }
            }
        }
    }

    /// Records one worker-process death: reaps the corpse, clears its
    /// shared stdin slot, and bumps the restart telemetry.
    fn note_worker_death(
        &self,
        idx: usize,
        child: &mut Option<WorkerChild>,
        crashes: &mut u32,
        why: &str,
    ) {
        let pool = self.proc.as_ref().expect("process mode");
        *pool.stdins[idx].lock().unwrap() = None;
        if let Some(mut c) = child.take() {
            let _ = c.child.kill();
            let _ = c.child.wait();
        }
        *crashes += 1;
        self.obs.worker_restarts.inc();
        hfs_obs::warn(
            "serve",
            "worker_died",
            &[
                ("worker", u64::from(idx as u32).into()),
                ("reason", why.into()),
            ],
        );
    }

    /// Gracefully retires worker `idx`'s child at drain: sends `exit`,
    /// closes its stdin, and reaps it (with a bounded wait, then a
    /// kill) so a drained server leaves no orphan processes behind.
    fn reap_worker(&self, idx: usize, child: Option<WorkerChild>) {
        let pool = self.proc.as_ref().expect("process mode");
        let stdin = pool.stdins[idx].lock().unwrap().take();
        if let Some(mut s) = stdin {
            let _ = crate::proto::write_frame(&mut s, &WorkerRequest::Exit.to_json());
            // Dropping the handle closes the pipe: EOF is the backup
            // exit signal if the frame never arrived.
        }
        let Some(mut c) = child else { return };
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match c.child.try_wait() {
                Ok(Some(_)) => return,
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                _ => {
                    let _ = c.child.kill();
                    let _ = c.child.wait();
                    return;
                }
            }
        }
    }

    /// Resolves a flight: fan the outcome out to every waiter, or
    /// re-enqueue if it was cancelled but picked up new waiters.
    fn complete(&self, key: &str, outcome: JobOutcome, cached: bool) {
        let mut inner = self.inner.lock().unwrap();
        inner.running -= 1;
        self.obs.in_flight.set(inner.running as i64);
        let mut flight = inner
            .flights
            .remove(key)
            .expect("completed key has a flight");
        if matches!(outcome, JobOutcome::Cancelled) && !flight.waiters.is_empty() {
            // Cancellation raced with a fresh submission: the new
            // waiters deserve a real result, so run it again with a
            // token nobody has fired.
            flight.cancel = CancelToken::new();
            flight.running = false;
            flight.worker = None;
            flight.enqueued_at = Instant::now();
            let shard = self.shard_of(key);
            inner.flights.insert(key.to_string(), flight);
            inner.queues[shard].push_back(key.to_string());
            self.note_queue_depth(&inner);
            drop(inner);
            self.work_ready.notify_all();
            return;
        }
        // One serialization shared by every chunk-delivered waiter;
        // skipped entirely when nobody buffers results (per-job `job`
        // frames encode the outcome themselves). Failures are rare
        // enough to encode per-waiter.
        let wants_encoded = outcome.is_ok()
            && flight
                .waiters
                .iter()
                .any(|w| matches!(w.batch.subscribe, Subscribe::Final));
        let encoded: Option<Arc<str>> =
            wants_encoded.then(|| hfs_harness::outcome_to_json(&outcome).to_pretty().into());
        for w in &flight.waiters {
            w.batch.deliver(
                &self.obs,
                w.index as u64,
                w.label.clone(),
                key,
                cached,
                outcome.clone(),
                encoded.clone(),
            );
        }
        let drained = inner.draining && inner.idle();
        drop(inner);
        // Wake idle workers so they can observe the drain condition,
        // and the drain waiter itself.
        self.work_ready.notify_all();
        if drained {
            self.drained.notify_all();
        }
    }

    /// Detaches a disconnected client: removes its waiters everywhere,
    /// discards queued flights nobody else wants, and cancels running
    /// ones.
    fn drop_conn(&self, conn_id: u64) {
        let mut inner = self.inner.lock().unwrap();
        let mut dead_queued: Vec<String> = Vec::new();
        let mut cancel_on_worker: Vec<(usize, String)> = Vec::new();
        for (key, flight) in &mut inner.flights {
            flight.waiters.retain(|w| w.conn_id != conn_id);
            if flight.waiters.is_empty() {
                if flight.running {
                    flight.cancel.cancel();
                    self.obs.cancelled.inc();
                    if let Some(widx) = flight.worker {
                        if self.proc.is_some() {
                            cancel_on_worker.push((widx, key.clone()));
                        }
                    }
                } else {
                    dead_queued.push(key.clone());
                }
            }
        }
        for key in &dead_queued {
            inner.flights.remove(key);
            for queue in &mut inner.queues {
                queue.retain(|k| k != key);
            }
            self.obs.aborted.inc();
        }
        self.note_queue_depth(&inner);
        let drained = inner.draining && inner.idle();
        drop(inner);
        // Forward cancels into the worker processes (best-effort: a
        // result that already raced back simply wins).
        if let Some(pool) = &self.proc {
            for (widx, key) in cancel_on_worker {
                if let Some(stdin) = pool.stdins[widx].lock().unwrap().as_mut() {
                    let _ =
                        crate::proto::write_frame(stdin, &WorkerRequest::Cancel { key }.to_json());
                }
            }
        }
        if drained {
            self.drained.notify_all();
        }
    }

    fn begin_drain(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.draining = true;
        self.obs.draining.set(1);
        let drained = inner.idle();
        drop(inner);
        self.work_ready.notify_all();
        if drained {
            self.drained.notify_all();
        }
    }

    fn is_draining(&self) -> bool {
        self.inner.lock().unwrap().draining
    }

    /// Blocks until draining has been requested *and* all accepted work
    /// has resolved.
    fn wait_drained(&self) {
        let mut inner = self.inner.lock().unwrap();
        while !(inner.draining && inner.idle()) {
            inner = self.drained.wait(inner).unwrap();
        }
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    dispatcher: Arc<Dispatcher>,
    listener: Listener,
    unix_path: Option<PathBuf>,
    endpoint_desc: String,
    workers: usize,
}

impl Server {
    /// Binds a server to `endpoint` with the given configuration.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(endpoint: &Endpoint, config: &ServerConfig) -> io::Result<Server> {
        let listener = endpoint.bind()?;
        let unix_path = match endpoint {
            #[cfg(unix)]
            Endpoint::Unix(p) => Some(p.clone()),
            #[allow(unreachable_patterns)]
            _ => None,
        };
        Ok(Server {
            dispatcher: Arc::new(Dispatcher::new(config)),
            listener,
            unix_path,
            endpoint_desc: endpoint.to_string(),
            workers: config.workers.max(1),
        })
    }

    /// The bound TCP address when listening on TCP (for port-0 binds in
    /// tests).
    pub fn tcp_addr(&self) -> Option<std::net::SocketAddr> {
        self.listener.tcp_addr()
    }

    /// A human-readable description of where the server listens.
    pub fn endpoint(&self) -> &str {
        &self.endpoint_desc
    }

    /// Runs until drained: accepts connections and executes submissions
    /// until a `shutdown` frame arrives or SIGTERM/SIGINT is latched,
    /// then finishes all accepted work, delivers every pending result,
    /// and returns the final counters.
    ///
    /// # Errors
    ///
    /// Propagates listener configuration failures; per-connection I/O
    /// errors only tear down that connection.
    pub fn run(self) -> io::Result<ServeStats> {
        let Server {
            dispatcher,
            listener,
            unix_path,
            endpoint_desc,
            workers,
        } = self;
        let worker_handles: Vec<_> = if dispatcher.proc.is_some() {
            (0..dispatcher.nshards)
                .map(|i| {
                    let d = Arc::clone(&dispatcher);
                    std::thread::spawn(move || d.proc_worker_loop(i))
                })
                .collect()
        } else {
            (0..workers)
                .map(|_| {
                    let d = Arc::clone(&dispatcher);
                    std::thread::spawn(move || d.worker_loop())
                })
                .collect()
        };

        listener.set_nonblocking(true)?;
        let live_conns = Arc::new(AtomicUsize::new(0));
        let mut next_conn_id: u64 = 0;
        loop {
            if signal::term_requested() || dispatcher.is_draining() {
                dispatcher.begin_drain();
                break;
            }
            match listener.accept() {
                Ok(stream) => {
                    let conn_id = next_conn_id;
                    next_conn_id += 1;
                    hfs_obs::debug("serve", "connection_accepted", &[("conn", conn_id.into())]);
                    let d = Arc::clone(&dispatcher);
                    let conns = Arc::clone(&live_conns);
                    conns.fetch_add(1, Ordering::SeqCst);
                    d.obs.open_conns.inc();
                    std::thread::spawn(move || {
                        handle_conn(&d, stream, conn_id);
                        d.obs.open_conns.dec();
                        conns.fetch_sub(1, Ordering::SeqCst);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => {
                    hfs_obs::error(
                        "serve",
                        "accept_failed",
                        &[
                            ("endpoint", endpoint_desc.as_str().into()),
                            ("error", e.to_string().into()),
                        ],
                    );
                    std::thread::sleep(Duration::from_millis(100));
                }
            }
        }

        // Stop listening first so no connection can arrive after the
        // drain decision, then finish everything already accepted.
        drop(listener);
        if let Some(path) = &unix_path {
            let _ = std::fs::remove_file(path);
        }
        dispatcher.wait_drained();
        for h in worker_handles {
            let _ = h.join();
        }
        // Give connection writer threads a bounded window to flush the
        // final frames to still-attached clients. Connections close as
        // clients read their `done`/`shutting_down` frames; a client
        // that lingers forever only costs this timeout.
        let deadline = Instant::now() + Duration::from_secs(5);
        while live_conns.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        hfs_obs::info(
            "serve",
            "drained",
            &[("endpoint", endpoint_desc.as_str().into())],
        );
        Ok(dispatcher.stats())
    }
}

/// Reader side of one connection; spawns its paired writer thread.
fn handle_conn(dispatcher: &Dispatcher, stream: crate::net::Stream, conn_id: u64) {
    let (tx, rx) = channel::<ServerFrame>();
    let mut write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(e) => {
            hfs_obs::error(
                "serve",
                "stream_clone_failed",
                &[("conn", conn_id.into()), ("error", e.to_string().into())],
            );
            return;
        }
    };
    let writer = std::thread::spawn(move || {
        while let Ok(frame) = rx.recv() {
            if frame.write_to(&mut write_half).is_err() {
                break;
            }
        }
        let _ = write_half.flush();
    });

    let mut read_half = stream;
    loop {
        match ClientFrame::read_from(&mut read_half) {
            Ok(None) => break,
            Err(e) => {
                hfs_obs::warn(
                    "serve",
                    "connection_error",
                    &[("conn", conn_id.into()), ("error", e.to_string().into())],
                );
                let _ = tx.send(ServerFrame::Error {
                    message: e.to_string(),
                });
                break;
            }
            Ok(Some(ClientFrame::Ping)) => {
                let _ = tx.send(ServerFrame::Pong);
            }
            Ok(Some(ClientFrame::Stats)) => {
                let _ = tx.send(ServerFrame::Stats(dispatcher.stats()));
            }
            Ok(Some(ClientFrame::Metrics)) => {
                let _ = tx.send(ServerFrame::Metrics {
                    text: dispatcher.metrics_text(),
                });
            }
            Ok(Some(ClientFrame::Shutdown)) => {
                let _ = tx.send(ServerFrame::ShuttingDown);
                dispatcher.begin_drain();
            }
            Ok(Some(ClientFrame::Submit { experiment, jobs })) => {
                match dispatcher.submit(conn_id, &tx, &experiment, 0, Subscribe::All, jobs) {
                    Ok(_) => {}
                    Err(SubmitRejected::Busy { queued, limit }) => {
                        let _ = tx.send(ServerFrame::Busy {
                            queued,
                            limit,
                            id: 0,
                        });
                    }
                    Err(SubmitRejected::Draining) => {
                        let _ = tx.send(ServerFrame::ShuttingDown);
                    }
                }
            }
            Ok(Some(ClientFrame::SubmitBatch {
                experiment,
                id,
                subscribe,
                jobs,
            })) => match dispatcher.submit(conn_id, &tx, &experiment, id, subscribe, jobs) {
                Ok(_) => {}
                Err(SubmitRejected::Busy { queued, limit }) => {
                    let _ = tx.send(ServerFrame::Busy { queued, limit, id });
                }
                Err(SubmitRejected::Draining) => {
                    let _ = tx.send(ServerFrame::ShuttingDown);
                }
            },
            Ok(Some(ClientFrame::SubmitRefs {
                experiment,
                id,
                subscribe,
                refs,
            })) => match dispatcher.submit_refs(conn_id, &tx, &experiment, id, subscribe, refs) {
                Ok(_) => {}
                Err(RefsRejected::Miss(missing)) => {
                    let _ = tx.send(ServerFrame::RefsMiss { id, missing });
                }
                Err(RefsRejected::Draining) => {
                    let _ = tx.send(ServerFrame::ShuttingDown);
                }
            },
        }
    }
    dispatcher.drop_conn(conn_id);
    drop(tx);
    // The writer exits once every sender is gone: ours just dropped,
    // and `drop_conn` removed the waiters holding batch clones. It
    // still flushes frames already queued (job results, `done`,
    // `shutting_down`) before exiting.
    let _ = writer.join();
    hfs_obs::debug("serve", "connection_closed", &[("conn", conn_id.into())]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfs_core::kernel::KernelPair;
    use hfs_core::{DesignPoint, MachineConfig};

    fn job(label: &str, work: u32, iters: u64) -> Job {
        Job::pipeline(
            label,
            KernelPair::simple("demo", work, iters),
            MachineConfig::itanium2_cmp(DesignPoint::heavywt()),
        )
    }

    fn dispatcher(workers: usize, queue_limit: usize) -> Arc<Dispatcher> {
        let d = Arc::new(Dispatcher::new(&ServerConfig {
            workers,
            queue_limit,
            cache_dir: None,
            default_retries: 0,
            ..ServerConfig::default()
        }));
        for _ in 0..workers {
            let dd = Arc::clone(&d);
            std::thread::spawn(move || dd.worker_loop());
        }
        d
    }

    fn drain(d: &Dispatcher) {
        d.begin_drain();
        d.wait_drained();
    }

    #[test]
    fn identical_jobs_execute_once() {
        let d = dispatcher(2, 64);
        let (tx, rx) = channel();
        // Two batches of the same job from the same logical client.
        d.submit(0, &tx, "a", 0, Subscribe::All, vec![job("a/x", 2, 40)])
            .ok()
            .unwrap();
        d.submit(0, &tx, "b", 0, Subscribe::All, vec![job("b/x", 2, 40)])
            .ok()
            .unwrap();
        let mut jobs = 0;
        let mut dones = 0;
        while dones < 2 {
            match rx.recv_timeout(Duration::from_secs(30)).unwrap() {
                ServerFrame::Job { .. } => jobs += 1,
                ServerFrame::Done { .. } => dones += 1,
                ServerFrame::Accepted { .. } => {}
                other => panic!("unexpected frame {other:?}"),
            }
        }
        assert_eq!(jobs, 2, "both waiters got a result");
        let stats = d.stats();
        // Single-flight: two submissions, one execution (timing may
        // let both flights run if the first resolves before the second
        // submit — only possible here because submits are sequential;
        // with the 40-iteration job the first typically still runs.
        // The hard guarantee is executed + deduped == submitted when
        // nothing is cached or cancelled.)
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.executed + stats.deduped, 2);
        drain(&d);
    }

    #[test]
    fn concurrent_identical_batches_dedupe() {
        let d = dispatcher(1, 64);
        let (tx, rx) = channel();
        // One worker, pinned on a long blocker job so the queue backs
        // up: submit the same 3 jobs from 4 "clients" while the worker
        // chews on the blocker. Dedup is then deterministic for every
        // submission after the first (without the blocker, a fast
        // enough simulator finishes x/a before the later submits land
        // and re-executes it).
        d.submit(
            9,
            &tx,
            "blk",
            0,
            Subscribe::All,
            vec![job("blk/hold", 2, 20_000)],
        )
        .ok()
        .unwrap();
        let jobs = || vec![job("x/a", 2, 200), job("x/b", 3, 200), job("x/c", 4, 200)];
        for conn in 0..4 {
            d.submit(conn, &tx, "x", 0, Subscribe::All, jobs())
                .ok()
                .unwrap();
        }
        let mut dones = 0;
        while dones < 5 {
            if let ServerFrame::Done { ok, .. } = rx.recv_timeout(Duration::from_secs(60)).unwrap()
            {
                assert!(ok);
                dones += 1;
            }
        }
        let stats = d.stats();
        assert_eq!(stats.submitted, 13);
        assert_eq!(stats.delivered, 13, "every waiter served");
        assert!(
            stats.deduped >= 9,
            "at most the blocker and the first batch's 3 jobs execute; got {stats:?}"
        );
        assert!(stats.executed <= 4);
        drain(&d);
    }

    #[test]
    fn admission_control_rejects_whole_batches() {
        let d = dispatcher(1, 2);
        let (tx, rx) = channel();
        // Occupy the worker and fill the queue.
        d.submit(
            0,
            &tx,
            "fill",
            0,
            Subscribe::All,
            vec![job("f/1", 2, 2_000), job("f/2", 3, 2_000)],
        )
        .ok()
        .unwrap();
        // Wait until the first flight is actually running so the queue
        // has deterministic occupancy (1 queued, 1 running).
        let t0 = Instant::now();
        while d.stats().running == 0 && t0.elapsed() < Duration::from_secs(30) {
            std::thread::sleep(Duration::from_millis(5));
        }
        let res = d.submit(
            1,
            &tx,
            "big",
            0,
            Subscribe::All,
            vec![job("b/1", 4, 10), job("b/2", 5, 10), job("b/3", 6, 10)],
        );
        match res {
            Err(SubmitRejected::Busy { limit, .. }) => assert_eq!(limit, 2),
            _ => panic!("expected busy"),
        }
        assert_eq!(d.stats().rejected, 1);
        // A duplicate of queued work costs no slot and is admitted even
        // at the bound.
        d.submit(1, &tx, "dup", 0, Subscribe::All, vec![job("d/2", 3, 2_000)])
            .ok()
            .expect("duplicate admits without a queue slot");
        let mut dones = 0;
        while dones < 2 {
            if let ServerFrame::Done { .. } = rx.recv_timeout(Duration::from_secs(60)).unwrap() {
                dones += 1;
            }
        }
        drain(&d);
    }

    #[test]
    fn disconnect_discards_queued_and_cancels_running() {
        let d = dispatcher(1, 64);
        let (tx, rx) = channel();
        // Long-running head job plus queued tail, all owned by conn 7.
        d.submit(
            7,
            &tx,
            "gone",
            0,
            Subscribe::All,
            vec![job("g/head", 2, 2_000_000), job("g/tail", 3, 50)],
        )
        .ok()
        .unwrap();
        let t0 = Instant::now();
        while d.stats().running == 0 && t0.elapsed() < Duration::from_secs(30) {
            std::thread::sleep(Duration::from_millis(5));
        }
        d.drop_conn(7);
        // The tail was discarded, the head cancelled; the dispatcher
        // settles to empty without delivering anything.
        let t0 = Instant::now();
        while (d.stats().running > 0 || d.stats().queued > 0)
            && t0.elapsed() < Duration::from_secs(60)
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        let stats = d.stats();
        assert_eq!(stats.cancelled, 1, "running head got cancelled: {stats:?}");
        assert_eq!(stats.aborted, 1, "queued tail was discarded: {stats:?}");
        assert_eq!(stats.delivered, 0);
        drop(rx);
        // The dispatcher stays healthy: new work from a live conn runs.
        let (tx2, rx2) = channel();
        d.submit(8, &tx2, "after", 0, Subscribe::All, vec![job("a/1", 2, 40)])
            .ok()
            .unwrap();
        let mut done = false;
        while !done {
            if let ServerFrame::Done { ok, .. } = rx2.recv_timeout(Duration::from_secs(30)).unwrap()
            {
                assert!(ok);
                done = true;
            }
        }
        drain(&d);
    }

    #[test]
    fn draining_refuses_new_submissions() {
        let d = dispatcher(1, 64);
        d.begin_drain();
        let (tx, _rx) = channel();
        assert!(matches!(
            d.submit(0, &tx, "late", 0, Subscribe::All, vec![job("l/1", 2, 10)]),
            Err(SubmitRejected::Draining)
        ));
        d.wait_drained();
    }

    #[test]
    fn empty_batch_completes_immediately() {
        let d = dispatcher(1, 64);
        let (tx, rx) = channel();
        d.submit(0, &tx, "empty", 0, Subscribe::All, Vec::new())
            .ok()
            .unwrap();
        assert!(matches!(
            rx.recv_timeout(Duration::from_secs(5)).unwrap(),
            ServerFrame::Accepted { total: 0, .. }
        ));
        assert!(matches!(
            rx.recv_timeout(Duration::from_secs(5)).unwrap(),
            ServerFrame::Done { ok: true, .. }
        ));
        drain(&d);
    }
}

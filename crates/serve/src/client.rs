//! Client-side library for talking to an `hfs-serve` instance.
//!
//! [`Client::submit`] streams a batch through the server and reassembles
//! the answers into the same [`hfs_harness::Batch`] the offline
//! [`hfs_harness::Engine`] produces — so `Batch::write_artifact` yields
//! byte-identical `results/<experiment>.json` files whichever path ran
//! the jobs.

use std::io;

use hfs_harness::{Batch, Job, JobOutcome, Record};

use crate::net::{Endpoint, Stream};
use crate::proto::{ClientFrame, ProtoError, ServeStats, ServerFrame};

/// Anything that can go wrong on the client side.
#[derive(Debug)]
pub enum ClientError {
    /// No `HFS_SOCK`/`HFS_ADDR` in the environment.
    NoEndpoint,
    /// Transport failure.
    Io(io::Error),
    /// Protocol failure.
    Proto(ProtoError),
    /// The server rejected the batch: its queue is full.
    Busy {
        /// Flights queued server-side at rejection time.
        queued: u64,
        /// The server's admission limit.
        limit: u64,
    },
    /// The server is draining and refused the request.
    ShuttingDown,
    /// The server reported an error frame.
    Server(String),
    /// The server broke the protocol's sequencing rules.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::NoEndpoint => {
                write!(f, "no server endpoint: set HFS_SOCK (or HFS_ADDR)")
            }
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Busy { queued, limit } => {
                write!(f, "server busy: {queued} flights queued (limit {limit})")
            }
            ClientError::ShuttingDown => write!(f, "server is shutting down"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Unexpected(m) => write!(f, "unexpected server behavior: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> ClientError {
        ClientError::Proto(e)
    }
}

/// A streamed per-job progress update, handed to the callback of
/// [`Client::submit`] as results arrive (completion order, not
/// submission order).
#[derive(Debug, Clone)]
pub struct JobUpdate {
    /// How many of the batch's jobs have resolved, this one included.
    pub finished: u64,
    /// Total jobs in the batch.
    pub total: u64,
    /// The resolved job's label.
    pub label: String,
    /// Whether it was served from the server's cache.
    pub cached: bool,
    /// Its outcome.
    pub outcome: JobOutcome,
}

/// A connection to an `hfs-serve` instance.
pub struct Client {
    stream: Stream,
}

impl Client {
    /// Connects to an explicit endpoint.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect(endpoint: &Endpoint) -> io::Result<Client> {
        Ok(Client {
            stream: endpoint.connect()?,
        })
    }

    /// Connects to the endpoint named by `HFS_SOCK`/`HFS_ADDR`.
    ///
    /// # Errors
    ///
    /// [`ClientError::NoEndpoint`] when neither variable is set, else
    /// connect failures.
    pub fn from_env() -> Result<Client, ClientError> {
        let endpoint = Endpoint::from_env().ok_or(ClientError::NoEndpoint)?;
        Ok(Client::connect(&endpoint)?)
    }

    fn read_frame(&mut self) -> Result<ServerFrame, ClientError> {
        match ServerFrame::read_from(&mut self.stream)? {
            Some(frame) => Ok(frame),
            None => Err(ClientError::Unexpected(
                "server closed the connection mid-conversation".to_string(),
            )),
        }
    }

    /// Liveness round-trip.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or a non-`pong` answer.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        ClientFrame::Ping.write_to(&mut self.stream)?;
        match self.read_frame()? {
            ServerFrame::Pong => Ok(()),
            other => Err(ClientError::Unexpected(format!(
                "expected pong, got {other:?}"
            ))),
        }
    }

    /// Fetches the server's counter snapshot.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or a non-`stats` answer.
    pub fn stats(&mut self) -> Result<ServeStats, ClientError> {
        ClientFrame::Stats.write_to(&mut self.stream)?;
        match self.read_frame()? {
            ServerFrame::Stats(s) => Ok(s),
            other => Err(ClientError::Unexpected(format!(
                "expected stats, got {other:?}"
            ))),
        }
    }

    /// Fetches the server's live metric registry as Prometheus text
    /// exposition (counters, gauges, and p50/p95/p99 summaries).
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or a non-`metrics` answer.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        ClientFrame::Metrics.write_to(&mut self.stream)?;
        match self.read_frame()? {
            ServerFrame::Metrics { text } => Ok(text),
            other => Err(ClientError::Unexpected(format!(
                "expected metrics, got {other:?}"
            ))),
        }
    }

    /// Asks the server to drain and exit; returns once acknowledged.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or an unexpected answer.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        ClientFrame::Shutdown.write_to(&mut self.stream)?;
        match self.read_frame()? {
            ServerFrame::ShuttingDown => Ok(()),
            other => Err(ClientError::Unexpected(format!(
                "expected shutting_down, got {other:?}"
            ))),
        }
    }

    /// Submits a batch and blocks until every job has streamed back,
    /// invoking `on_update` per resolved job. The returned [`Batch`]
    /// holds records in submission order, exactly like
    /// [`hfs_harness::Engine::run_batch`].
    ///
    /// # Errors
    ///
    /// [`ClientError::Busy`]/[`ClientError::ShuttingDown`] on rejection,
    /// plus transport, protocol, and sequencing failures.
    pub fn submit(
        &mut self,
        experiment: &str,
        jobs: Vec<Job>,
        mut on_update: impl FnMut(&JobUpdate),
    ) -> Result<Batch, ClientError> {
        let total = jobs.len() as u64;
        ClientFrame::Submit {
            experiment: experiment.to_string(),
            jobs,
        }
        .write_to(&mut self.stream)?;
        match self.read_frame()? {
            ServerFrame::Accepted {
                experiment: e,
                total: t,
            } => {
                if e != experiment || t != total {
                    return Err(ClientError::Unexpected(format!(
                        "accepted {e}/{t}, submitted {experiment}/{total}"
                    )));
                }
            }
            ServerFrame::Busy { queued, limit } => return Err(ClientError::Busy { queued, limit }),
            ServerFrame::ShuttingDown => return Err(ClientError::ShuttingDown),
            ServerFrame::Error { message } => return Err(ClientError::Server(message)),
            other => {
                return Err(ClientError::Unexpected(format!(
                    "expected accepted, got {other:?}"
                )))
            }
        }
        let mut slots: Vec<Option<Record>> = (0..total).map(|_| None).collect();
        let mut finished: u64 = 0;
        loop {
            match self.read_frame()? {
                ServerFrame::Job {
                    experiment: e,
                    index,
                    label,
                    key,
                    cached,
                    outcome,
                } => {
                    if e != experiment {
                        return Err(ClientError::Unexpected(format!(
                            "job frame for batch {e:?} while waiting on {experiment:?}"
                        )));
                    }
                    let slot = slots.get_mut(index as usize).ok_or_else(|| {
                        ClientError::Unexpected(format!("job index {index} out of range {total}"))
                    })?;
                    if slot.is_some() {
                        return Err(ClientError::Unexpected(format!(
                            "duplicate result for job index {index}"
                        )));
                    }
                    finished += 1;
                    on_update(&JobUpdate {
                        finished,
                        total,
                        label: label.clone(),
                        cached,
                        outcome: outcome.clone(),
                    });
                    *slot = Some(Record {
                        label,
                        key,
                        cached,
                        // Wall time is a server-side detail; artifacts
                        // exclude it, so zero keeps records honest
                        // without affecting bytes.
                        wall_millis: 0,
                        outcome,
                    });
                }
                ServerFrame::Done { experiment: e, .. } => {
                    if e != experiment {
                        return Err(ClientError::Unexpected(format!(
                            "done frame for batch {e:?} while waiting on {experiment:?}"
                        )));
                    }
                    let records: Vec<Record> = slots
                        .into_iter()
                        .enumerate()
                        .map(|(i, s)| {
                            s.ok_or_else(|| {
                                ClientError::Unexpected(format!("done before job {i} resolved"))
                            })
                        })
                        .collect::<Result<_, _>>()?;
                    return Ok(Batch {
                        name: experiment.to_string(),
                        records,
                    });
                }
                ServerFrame::Error { message } => return Err(ClientError::Server(message)),
                other => {
                    return Err(ClientError::Unexpected(format!(
                        "unexpected frame mid-batch: {other:?}"
                    )))
                }
            }
        }
    }
}

/// A progress reporter matching the offline engine's structured stream:
/// one `job_done` record at info level per resolved job, so `HFS_LOG`
/// governs client-side progress exactly like engine-side progress.
pub fn print_update(experiment: &str, u: &JobUpdate) {
    let label = u
        .label
        .strip_prefix(experiment)
        .and_then(|rest| rest.strip_prefix('/'))
        .unwrap_or(&u.label);
    hfs_obs::info(
        "client",
        "job_done",
        &[
            ("finished", u.finished.into()),
            ("total", u.total.into()),
            ("batch", experiment.into()),
            ("label", label.into()),
            ("status", u.outcome.status().into()),
            ("outcome", u.outcome.to_string().into()),
            ("cached", u.cached.into()),
        ],
    );
}

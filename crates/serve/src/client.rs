//! Client-side library for talking to an `hfs-serve` instance.
//!
//! [`Client::submit`] streams a batch through the server and reassembles
//! the answers into the same [`hfs_harness::Batch`] the offline
//! [`hfs_harness::Engine`] produces — so `Batch::write_artifact` yields
//! byte-identical `results/<experiment>.json` files whichever path ran
//! the jobs.
//!
//! [`Client::submit_batched`] is the sweep-scale path: it splits the
//! jobs into `submit_batch` chunks (`HFS_SUBMIT_CHUNK`), keeps a
//! window of them in flight (`HFS_SUBMIT_WINDOW`) so the server never
//! idles between batches, asks for chunked `batch_results` frames
//! instead of one `job` frame per job, and rides out `busy` rejections
//! with bounded retries. It reassembles the very same [`Batch`], so the
//! artifact bytes cannot depend on which submit path ran.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::time::Duration;

use hfs_harness::{Batch, Job, JobOutcome, Record};

use crate::net::{Endpoint, Stream};
use crate::proto::{ClientFrame, JobRef, ProtoError, ServeStats, ServerFrame, Subscribe};

/// Jobs per `submit_batch` frame on the batched path
/// (`HFS_SUBMIT_CHUNK`).
pub const ENV_SUBMIT_CHUNK: &str = "HFS_SUBMIT_CHUNK";

/// Chunks kept in flight on the batched path (`HFS_SUBMIT_WINDOW`).
pub const ENV_SUBMIT_WINDOW: &str = "HFS_SUBMIT_WINDOW";

/// Set to `0` to disable content-key reference submission
/// (`HFS_SUBMIT_REFS=0`): the batched path then always sends full job
/// specs, as if every `submit_refs` probe missed.
pub const ENV_SUBMIT_REFS: &str = "HFS_SUBMIT_REFS";

/// Default chunk size. With the default window this keeps at most
/// `DEFAULT_QUEUE_LIMIT` jobs enqueued server-side, so a lone client
/// never trips admission control.
pub const DEFAULT_SUBMIT_CHUNK: usize = 512;

/// Default in-flight chunk window.
pub const DEFAULT_SUBMIT_WINDOW: usize = 2;

/// Consecutive `busy` rejections tolerated before the batched path
/// gives up (each idle retry backs off 50ms).
const BUSY_RETRY_LIMIT: u32 = 1200;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// Anything that can go wrong on the client side.
#[derive(Debug)]
pub enum ClientError {
    /// No `HFS_SOCK`/`HFS_ADDR` in the environment.
    NoEndpoint,
    /// Transport failure.
    Io(io::Error),
    /// Protocol failure.
    Proto(ProtoError),
    /// The server rejected the batch: its queue is full.
    Busy {
        /// Flights queued server-side at rejection time.
        queued: u64,
        /// The server's admission limit.
        limit: u64,
    },
    /// The server is draining and refused the request.
    ShuttingDown,
    /// The server reported an error frame.
    Server(String),
    /// The server broke the protocol's sequencing rules.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::NoEndpoint => {
                write!(f, "no server endpoint: set HFS_SOCK (or HFS_ADDR)")
            }
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Busy { queued, limit } => {
                write!(f, "server busy: {queued} flights queued (limit {limit})")
            }
            ClientError::ShuttingDown => write!(f, "server is shutting down"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Unexpected(m) => write!(f, "unexpected server behavior: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> ClientError {
        ClientError::Proto(e)
    }
}

/// A streamed per-job progress update, handed to the callback of
/// [`Client::submit`] as results arrive (completion order, not
/// submission order).
#[derive(Debug, Clone)]
pub struct JobUpdate {
    /// How many of the batch's jobs have resolved, this one included.
    pub finished: u64,
    /// Total jobs in the batch.
    pub total: u64,
    /// The resolved job's label.
    pub label: String,
    /// Whether it was served from the server's cache.
    pub cached: bool,
    /// Its outcome.
    pub outcome: JobOutcome,
}

/// A connection to an `hfs-serve` instance.
pub struct Client {
    stream: Stream,
}

impl Client {
    /// Connects to an explicit endpoint.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect(endpoint: &Endpoint) -> io::Result<Client> {
        Ok(Client {
            stream: endpoint.connect()?,
        })
    }

    /// Connects to the endpoint named by `HFS_SOCK`/`HFS_ADDR`.
    ///
    /// # Errors
    ///
    /// [`ClientError::NoEndpoint`] when neither variable is set, else
    /// connect failures.
    pub fn from_env() -> Result<Client, ClientError> {
        let endpoint = Endpoint::from_env().ok_or(ClientError::NoEndpoint)?;
        Ok(Client::connect(&endpoint)?)
    }

    fn read_frame(&mut self) -> Result<ServerFrame, ClientError> {
        match ServerFrame::read_from(&mut self.stream)? {
            Some(frame) => Ok(frame),
            None => Err(ClientError::Unexpected(
                "server closed the connection mid-conversation".to_string(),
            )),
        }
    }

    /// Liveness round-trip.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or a non-`pong` answer.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        ClientFrame::Ping.write_to(&mut self.stream)?;
        match self.read_frame()? {
            ServerFrame::Pong => Ok(()),
            other => Err(ClientError::Unexpected(format!(
                "expected pong, got {other:?}"
            ))),
        }
    }

    /// Fetches the server's counter snapshot.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or a non-`stats` answer.
    pub fn stats(&mut self) -> Result<ServeStats, ClientError> {
        ClientFrame::Stats.write_to(&mut self.stream)?;
        match self.read_frame()? {
            ServerFrame::Stats(s) => Ok(s),
            other => Err(ClientError::Unexpected(format!(
                "expected stats, got {other:?}"
            ))),
        }
    }

    /// Fetches the server's live metric registry as Prometheus text
    /// exposition (counters, gauges, and p50/p95/p99 summaries).
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or a non-`metrics` answer.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        ClientFrame::Metrics.write_to(&mut self.stream)?;
        match self.read_frame()? {
            ServerFrame::Metrics { text } => Ok(text),
            other => Err(ClientError::Unexpected(format!(
                "expected metrics, got {other:?}"
            ))),
        }
    }

    /// Asks the server to drain and exit; returns once acknowledged.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or an unexpected answer.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        ClientFrame::Shutdown.write_to(&mut self.stream)?;
        match self.read_frame()? {
            ServerFrame::ShuttingDown => Ok(()),
            other => Err(ClientError::Unexpected(format!(
                "expected shutting_down, got {other:?}"
            ))),
        }
    }

    /// Submits a batch and blocks until every job has streamed back,
    /// invoking `on_update` per resolved job. The returned [`Batch`]
    /// holds records in submission order, exactly like
    /// [`hfs_harness::Engine::run_batch`].
    ///
    /// # Errors
    ///
    /// [`ClientError::Busy`]/[`ClientError::ShuttingDown`] on rejection,
    /// plus transport, protocol, and sequencing failures.
    pub fn submit(
        &mut self,
        experiment: &str,
        jobs: Vec<Job>,
        mut on_update: impl FnMut(&JobUpdate),
    ) -> Result<Batch, ClientError> {
        let total = jobs.len() as u64;
        ClientFrame::Submit {
            experiment: experiment.to_string(),
            jobs,
        }
        .write_to(&mut self.stream)?;
        match self.read_frame()? {
            ServerFrame::Accepted {
                experiment: e,
                total: t,
                ..
            } => {
                if e != experiment || t != total {
                    return Err(ClientError::Unexpected(format!(
                        "accepted {e}/{t}, submitted {experiment}/{total}"
                    )));
                }
            }
            ServerFrame::Busy { queued, limit, .. } => {
                return Err(ClientError::Busy { queued, limit })
            }
            ServerFrame::ShuttingDown => return Err(ClientError::ShuttingDown),
            ServerFrame::Error { message } => return Err(ClientError::Server(message)),
            other => {
                return Err(ClientError::Unexpected(format!(
                    "expected accepted, got {other:?}"
                )))
            }
        }
        let mut slots: Vec<Option<Record>> = (0..total).map(|_| None).collect();
        let mut finished: u64 = 0;
        loop {
            match self.read_frame()? {
                ServerFrame::Job {
                    experiment: e,
                    index,
                    label,
                    key,
                    cached,
                    outcome,
                } => {
                    if e != experiment {
                        return Err(ClientError::Unexpected(format!(
                            "job frame for batch {e:?} while waiting on {experiment:?}"
                        )));
                    }
                    let slot = slots.get_mut(index as usize).ok_or_else(|| {
                        ClientError::Unexpected(format!("job index {index} out of range {total}"))
                    })?;
                    if slot.is_some() {
                        return Err(ClientError::Unexpected(format!(
                            "duplicate result for job index {index}"
                        )));
                    }
                    finished += 1;
                    on_update(&JobUpdate {
                        finished,
                        total,
                        label: label.clone(),
                        cached,
                        outcome: outcome.clone(),
                    });
                    *slot = Some(Record {
                        label,
                        key,
                        cached,
                        // Wall time is a server-side detail; artifacts
                        // exclude it, so zero keeps records honest
                        // without affecting bytes.
                        wall_millis: 0,
                        outcome,
                    });
                }
                ServerFrame::Done { experiment: e, .. } => {
                    if e != experiment {
                        return Err(ClientError::Unexpected(format!(
                            "done frame for batch {e:?} while waiting on {experiment:?}"
                        )));
                    }
                    let records: Vec<Record> = slots
                        .into_iter()
                        .enumerate()
                        .map(|(i, s)| {
                            s.ok_or_else(|| {
                                ClientError::Unexpected(format!("done before job {i} resolved"))
                            })
                        })
                        .collect::<Result<_, _>>()?;
                    return Ok(Batch {
                        name: experiment.to_string(),
                        records,
                    });
                }
                ServerFrame::Error { message } => return Err(ClientError::Server(message)),
                other => {
                    return Err(ClientError::Unexpected(format!(
                        "unexpected frame mid-batch: {other:?}"
                    )))
                }
            }
        }
    }

    /// Submits a sweep on the pipelined batched path and blocks until
    /// every chunk has resolved. Jobs are split into `submit_batch`
    /// chunks of `HFS_SUBMIT_CHUNK` jobs; `HFS_SUBMIT_WINDOW` chunks
    /// stay in flight so the server's queue never drains dry between
    /// submissions. Results come back as chunked `batch_results` frames
    /// (far fewer frames than one per job) and are reassembled into a
    /// [`Batch`] byte-identical to [`Client::submit`]'s.
    ///
    /// `subscribe` picks the result traffic: [`Subscribe::Final`]
    /// streams chunked results (the default choice); [`Subscribe::None`]
    /// suppresses them entirely — a cache-priming mode that returns an
    /// empty-record [`Batch`]; [`Subscribe::All`] degrades to `Final`
    /// here because per-job `job` frames carry no batch id to demux on.
    ///
    /// Chunks are first offered as `submit_refs` — content keys plus
    /// labels, a few dozen bytes per job instead of a full spec — so a
    /// warm resweep costs neither client-side job serialization nor
    /// server-side parsing. If any key is unknown server-side the whole
    /// chunk bounces back (`refs_miss`, side-effect free) and this and
    /// every later chunk falls back to full `submit_batch` specs;
    /// `HFS_SUBMIT_REFS=0` skips the probe entirely.
    ///
    /// A `busy` rejection is not fatal: the chunk is requeued and
    /// retried once a whole in-flight chunk drains (or after a 50ms
    /// backoff when nothing is in flight), up to a bounded number of
    /// consecutive rejections.
    ///
    /// # Errors
    ///
    /// [`ClientError::Busy`] after the retry budget is exhausted,
    /// [`ClientError::ShuttingDown`] on server drain, plus transport,
    /// protocol, and sequencing failures.
    pub fn submit_batched(
        &mut self,
        experiment: &str,
        jobs: Vec<Job>,
        subscribe: Subscribe,
        mut on_update: impl FnMut(&JobUpdate),
    ) -> Result<Batch, ClientError> {
        let total = jobs.len() as u64;
        if jobs.is_empty() {
            return Ok(Batch {
                name: experiment.to_string(),
                records: Vec::new(),
            });
        }
        let subscribe = match subscribe {
            Subscribe::All => Subscribe::Final,
            s => s,
        };
        let chunk_size = env_usize(ENV_SUBMIT_CHUNK, DEFAULT_SUBMIT_CHUNK);
        let window = env_usize(ENV_SUBMIT_WINDOW, DEFAULT_SUBMIT_WINDOW);
        // Key-reference probing starts on and latches off at the first
        // `refs_miss`: a sweep is either warm (every chunk resolves
        // from the server's caches) or cold (one bounced chunk per
        // window slot, then full specs for the rest).
        let mut use_refs = std::env::var(ENV_SUBMIT_REFS)
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(true);

        // Chunk ids are 1-based offsets into the sweep; `base_of` maps
        // them back to global slot positions and doubles as the
        // outstanding-chunk set (ids leave it on `done`).
        let mut pending: VecDeque<(u64, Vec<Job>)> = VecDeque::new();
        let mut base_of: HashMap<u64, usize> = HashMap::new();
        {
            let mut rest = jobs;
            let mut id = 0u64;
            let mut base = 0usize;
            while !rest.is_empty() {
                let tail = rest.split_off(rest.len().min(chunk_size));
                id += 1;
                base_of.insert(id, base);
                base += rest.len();
                pending.push_back((id, std::mem::replace(&mut rest, tail)));
            }
        }
        let nchunks = pending.len();

        let mut slots: Vec<Option<Record>> = (0..total).map(|_| None).collect();
        // Chunks written but not yet accepted keep their jobs here in
        // case a `busy` bounces them back to `pending`.
        let mut awaiting: HashMap<u64, Vec<Job>> = HashMap::new();
        let mut finished: u64 = 0;
        let mut done_chunks = 0usize;
        let mut in_flight = 0usize;
        let mut stalled = false;
        let mut consecutive_busy: u32 = 0;

        while done_chunks < nchunks {
            // Keep the window full — unless the server just said busy,
            // in which case resubmitting before anything drained would
            // only spin on rejections.
            while in_flight < window && !pending.is_empty() && (!stalled || in_flight == 0) {
                if stalled {
                    // Nothing of ours is in flight, so no result
                    // traffic will free queue space; back off in time
                    // instead.
                    std::thread::sleep(Duration::from_millis(50));
                    stalled = false;
                }
                let (id, chunk) = pending.pop_front().expect("checked non-empty");
                if use_refs {
                    ClientFrame::SubmitRefs {
                        experiment: experiment.to_string(),
                        id,
                        subscribe,
                        refs: chunk
                            .iter()
                            .map(|j| JobRef {
                                key: j.key(),
                                label: j.label.clone(),
                            })
                            .collect(),
                    }
                    .write_to(&mut self.stream)?;
                    awaiting.insert(id, chunk);
                } else {
                    // Build the frame with the owned jobs and take them
                    // back after the write: chunks are too big to clone
                    // per submission.
                    let frame = ClientFrame::SubmitBatch {
                        experiment: experiment.to_string(),
                        id,
                        subscribe,
                        jobs: chunk,
                    };
                    frame.write_to(&mut self.stream)?;
                    let ClientFrame::SubmitBatch { jobs: chunk, .. } = frame else {
                        unreachable!("constructed as submit_batch above");
                    };
                    awaiting.insert(id, chunk);
                }
                in_flight += 1;
            }
            match self.read_frame()? {
                ServerFrame::Accepted {
                    experiment: e, id, ..
                } => {
                    if e != experiment || awaiting.remove(&id).is_none() {
                        return Err(ClientError::Unexpected(format!(
                            "accept for unknown chunk {id} of batch {e:?}"
                        )));
                    }
                    consecutive_busy = 0;
                }
                ServerFrame::Busy { queued, limit, id } => {
                    let Some(chunk) = awaiting.remove(&id) else {
                        return Err(ClientError::Busy { queued, limit });
                    };
                    consecutive_busy += 1;
                    if consecutive_busy > BUSY_RETRY_LIMIT {
                        return Err(ClientError::Busy { queued, limit });
                    }
                    pending.push_front((id, chunk));
                    in_flight -= 1;
                    stalled = true;
                }
                ServerFrame::RefsMiss { id, .. } => {
                    let Some(chunk) = awaiting.remove(&id) else {
                        return Err(ClientError::Unexpected(format!(
                            "refs_miss for unknown chunk {id}"
                        )));
                    };
                    // The sweep is cold: the rejection had no side
                    // effects, so resubmitting the same chunk as full
                    // specs (front of the queue, order preserved) is
                    // safe. Stay in spec mode for the rest of the sweep.
                    use_refs = false;
                    pending.push_front((id, chunk));
                    in_flight -= 1;
                }
                ServerFrame::BatchResults {
                    experiment: e,
                    id,
                    results,
                } => {
                    if e != experiment {
                        return Err(ClientError::Unexpected(format!(
                            "results for batch {e:?} while sweeping {experiment:?}"
                        )));
                    }
                    let base = *base_of.get(&id).ok_or_else(|| {
                        ClientError::Unexpected(format!("results for unknown chunk {id}"))
                    })?;
                    for r in results {
                        let index = base + r.index as usize;
                        let slot = slots.get_mut(index).ok_or_else(|| {
                            ClientError::Unexpected(format!(
                                "chunk {id} result index {} out of range {total}",
                                r.index
                            ))
                        })?;
                        if slot.is_some() {
                            return Err(ClientError::Unexpected(format!(
                                "duplicate result for sweep index {index}"
                            )));
                        }
                        finished += 1;
                        on_update(&JobUpdate {
                            finished,
                            total,
                            label: r.label.clone(),
                            cached: r.cached,
                            outcome: r.outcome.clone(),
                        });
                        *slot = Some(Record {
                            label: r.label,
                            key: r.key,
                            cached: r.cached,
                            // Server-side detail, excluded from
                            // artifacts; zero matches `submit`.
                            wall_millis: 0,
                            outcome: r.outcome,
                        });
                    }
                }
                ServerFrame::Done {
                    experiment: e, id, ..
                } => {
                    // `batch_results` for a chunk always precede its
                    // `done` (sent under the same lock server-side), so
                    // dropping the id here also rejects double-dones.
                    if e != experiment || base_of.remove(&id).is_none() {
                        return Err(ClientError::Unexpected(format!(
                            "done for unknown chunk {id} of batch {e:?}"
                        )));
                    }
                    done_chunks += 1;
                    in_flight -= 1;
                    consecutive_busy = 0;
                    stalled = false;
                }
                ServerFrame::ShuttingDown => return Err(ClientError::ShuttingDown),
                ServerFrame::Error { message } => return Err(ClientError::Server(message)),
                other => {
                    return Err(ClientError::Unexpected(format!(
                        "unexpected frame mid-sweep: {other:?}"
                    )))
                }
            }
        }
        if matches!(subscribe, Subscribe::None) {
            // Cache priming: the server sent no results, by request.
            return Ok(Batch {
                name: experiment.to_string(),
                records: Vec::new(),
            });
        }
        let records: Vec<Record> = slots
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                s.ok_or_else(|| {
                    ClientError::Unexpected(format!("sweep finished before job {i} resolved"))
                })
            })
            .collect::<Result<_, _>>()?;
        Ok(Batch {
            name: experiment.to_string(),
            records,
        })
    }
}

/// A progress reporter matching the offline engine's structured stream:
/// one `job_done` record at info level per resolved job, so `HFS_LOG`
/// governs client-side progress exactly like engine-side progress.
pub fn print_update(experiment: &str, u: &JobUpdate) {
    let label = u
        .label
        .strip_prefix(experiment)
        .and_then(|rest| rest.strip_prefix('/'))
        .unwrap_or(&u.label);
    hfs_obs::info(
        "client",
        "job_done",
        &[
            ("finished", u.finished.into()),
            ("total", u.total.into()),
            ("batch", experiment.into()),
            ("label", label.into()),
            ("status", u.outcome.status().into()),
            ("outcome", u.outcome.to_string().into()),
            ("cached", u.cached.into()),
        ],
    );
}

//! The `--worker` child process and its parent↔worker pipe protocol.
//!
//! In process mode (`hfs-serve --workers N`) the server re-execs its
//! own binary with `--worker`. The child is a pure executor: it owns no
//! cache, no listener, and no telemetry — it reads [`WorkerRequest`]
//! frames on stdin, simulates, and writes [`WorkerReply`] frames on
//! stdout. All caching, dedup, and accounting stay in the parent, which
//! is what keeps the stats identities and byte-identical artifacts
//! independent of the worker mode.
//!
//! Frames reuse the client protocol's transport
//! ([`read_frame`]/[`write_frame`]: 4-byte big-endian length + compact
//! JSON) and the harness codec for jobs and outcomes, so nothing new
//! has to round-trip.
//!
//! The child runs one job at a time (the parent never pipelines a
//! second `run` before the reply), but a `cancel` frame may arrive
//! mid-run: a reader thread watches stdin and fires the running job's
//! [`CancelToken`] when the cancelled key matches. EOF on stdin — the
//! parent died or dropped the pipe — is an exit signal, so a crashed
//! parent never leaves orphan workers behind.

use std::io;
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex};

use hfs_harness::{
    execute_counted, job_from_json, job_to_json, outcome_from_json, outcome_to_json, Job,
    JobOutcome, Json,
};
use hfs_sim::CancelToken;

use crate::proto::{read_frame, write_frame, ProtoError};

/// A parent→worker frame.
// `Run` dwarfs the other variants, but requests are built once per
// dispatch and never collected — boxing the job would cost more than
// the stack space saves.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum WorkerRequest {
    /// Execute one job and reply with a [`WorkerReply`].
    Run {
        /// The job's content key (echoed back; the child never hashes).
        key: String,
        /// Default retry budget for the run.
        retries: u32,
        /// The job itself.
        job: Job,
    },
    /// Fire the cancel token of the currently running job if its key
    /// matches; ignored otherwise (the reply already raced ahead).
    Cancel {
        /// Key of the job to cancel.
        key: String,
    },
    /// Finish up and exit cleanly (also implied by stdin EOF).
    Exit,
}

impl WorkerRequest {
    /// Encodes the frame body.
    pub fn to_json(&self) -> Json {
        match self {
            WorkerRequest::Run { key, retries, job } => Json::obj(vec![
                ("type", Json::Str("run".to_string())),
                ("key", Json::Str(key.clone())),
                ("retries", Json::U64(u64::from(*retries))),
                ("job", job_to_json(job)),
            ]),
            WorkerRequest::Cancel { key } => Json::obj(vec![
                ("type", Json::Str("cancel".to_string())),
                ("key", Json::Str(key.clone())),
            ]),
            WorkerRequest::Exit => Json::obj(vec![("type", Json::Str("exit".to_string()))]),
        }
    }

    /// Decodes a frame body.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Malformed`] on unknown tags or missing fields.
    pub fn from_json(v: &Json) -> Result<WorkerRequest, ProtoError> {
        let tag = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| ProtoError::Malformed("worker frame has no type".to_string()))?;
        let key = || {
            v.get("key")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| ProtoError::Malformed("worker frame has no key".to_string()))
        };
        match tag {
            "run" => Ok(WorkerRequest::Run {
                key: key()?,
                retries: v
                    .get("retries")
                    .and_then(Json::as_u64)
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| ProtoError::Malformed("run has no retries".to_string()))?,
                job: job_from_json(
                    v.get("job")
                        .ok_or_else(|| ProtoError::Malformed("run has no job".to_string()))?,
                )?,
            }),
            "cancel" => Ok(WorkerRequest::Cancel { key: key()? }),
            "exit" => Ok(WorkerRequest::Exit),
            other => Err(ProtoError::Malformed(format!(
                "unknown worker frame type {other:?}"
            ))),
        }
    }
}

/// A worker→parent frame: the outcome of one `run`.
#[derive(Debug, Clone)]
pub struct WorkerReply {
    /// Echo of the run's key.
    pub key: String,
    /// Retries the execution consumed.
    pub retries_used: u32,
    /// The simulation outcome.
    pub outcome: JobOutcome,
}

impl WorkerReply {
    /// Encodes the frame body.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("type", Json::Str("result".to_string())),
            ("key", Json::Str(self.key.clone())),
            ("retries_used", Json::U64(u64::from(self.retries_used))),
            ("outcome", outcome_to_json(&self.outcome)),
        ])
    }

    /// Decodes a frame body.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Malformed`] on unknown tags or missing fields.
    pub fn from_json(v: &Json) -> Result<WorkerReply, ProtoError> {
        if v.get("type").and_then(Json::as_str) != Some("result") {
            return Err(ProtoError::Malformed(
                "worker reply is not a result frame".to_string(),
            ));
        }
        Ok(WorkerReply {
            key: v
                .get("key")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| ProtoError::Malformed("result has no key".to_string()))?,
            retries_used: v
                .get("retries_used")
                .and_then(Json::as_u64)
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| ProtoError::Malformed("result has no retries_used".to_string()))?,
            outcome: outcome_from_json(
                v.get("outcome")
                    .ok_or_else(|| ProtoError::Malformed("result has no outcome".to_string()))?,
            )?,
        })
    }
}

/// The `--worker` entry point: serve `run` requests from stdin until
/// `exit` or EOF. Returns the process exit code.
pub fn worker_main() -> i32 {
    // None = exit; Some = one job to run.
    let (work_tx, work_rx) = channel::<Option<(String, u32, Job)>>();
    let current: Arc<Mutex<Option<(String, CancelToken)>>> = Arc::new(Mutex::new(None));

    let reader_current = Arc::clone(&current);
    let reader = std::thread::spawn(move || {
        let mut stdin = io::stdin().lock();
        loop {
            let frame = match read_frame(&mut stdin) {
                Ok(Some(v)) => WorkerRequest::from_json(&v),
                // EOF (parent gone) and transport errors both end the
                // worker; never linger as an orphan.
                Ok(None) | Err(_) => {
                    let _ = work_tx.send(None);
                    return;
                }
            };
            match frame {
                Ok(WorkerRequest::Run { key, retries, job }) => {
                    if work_tx.send(Some((key, retries, job))).is_err() {
                        return;
                    }
                }
                Ok(WorkerRequest::Cancel { key }) => {
                    let guard = reader_current.lock().unwrap();
                    if let Some((running, token)) = guard.as_ref() {
                        if *running == key {
                            token.cancel();
                        }
                    }
                }
                Ok(WorkerRequest::Exit) | Err(_) => {
                    let _ = work_tx.send(None);
                    return;
                }
            }
        }
    });

    let mut stdout = io::stdout().lock();
    while let Ok(Some((key, retries, job))) = work_rx.recv() {
        let token = CancelToken::new();
        *current.lock().unwrap() = Some((key.clone(), token.clone()));
        let (outcome, retries_used) = execute_counted(&job, retries, Some(&token));
        *current.lock().unwrap() = None;
        let reply = WorkerReply {
            key,
            retries_used,
            outcome,
        };
        if write_frame(&mut stdout, &reply.to_json()).is_err() {
            break; // parent gone; nothing left to report to
        }
    }
    drop(work_rx);
    // The reader exits on its own at EOF/exit; don't block on a stdin
    // read that may never return if the parent holds the pipe open.
    drop(reader);
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfs_core::kernel::KernelPair;
    use hfs_core::{DesignPoint, MachineConfig};

    fn demo_job() -> Job {
        Job::pipeline(
            "worker/demo",
            KernelPair::simple("demo", 2, 40),
            MachineConfig::itanium2_cmp(DesignPoint::heavywt()),
        )
    }

    #[test]
    fn requests_round_trip() {
        let job = demo_job();
        let run = WorkerRequest::Run {
            key: job.key(),
            retries: 2,
            job: job.clone(),
        };
        match WorkerRequest::from_json(&run.to_json()).unwrap() {
            WorkerRequest::Run {
                key,
                retries,
                job: back,
            } => {
                assert_eq!(key, job.key());
                assert_eq!(retries, 2);
                assert_eq!(back.key(), job.key());
            }
            other => panic!("wrong frame: {other:?}"),
        }
        let cancel = WorkerRequest::Cancel { key: "abc".into() };
        assert!(matches!(
            WorkerRequest::from_json(&cancel.to_json()).unwrap(),
            WorkerRequest::Cancel { .. }
        ));
        assert!(matches!(
            WorkerRequest::from_json(&WorkerRequest::Exit.to_json()).unwrap(),
            WorkerRequest::Exit
        ));
    }

    #[test]
    fn replies_round_trip() {
        let job = demo_job();
        let outcome = hfs_harness::execute(&job, 0);
        let cycles = outcome.ok().expect("demo job runs").cycles;
        let reply = WorkerReply {
            key: job.key(),
            retries_used: 1,
            outcome,
        };
        let back = WorkerReply::from_json(&reply.to_json()).unwrap();
        assert_eq!(back.key, job.key());
        assert_eq!(back.retries_used, 1);
        assert_eq!(back.outcome.ok().unwrap().cycles, cycles);
    }

    #[test]
    fn unknown_worker_frames_fail_loudly() {
        let v = Json::obj(vec![("type", Json::Str("warp".to_string()))]);
        assert!(WorkerRequest::from_json(&v).is_err());
        assert!(WorkerReply::from_json(&v).is_err());
    }
}

//! Minimal SIGTERM/SIGINT latching for graceful drain.
//!
//! The workspace has no `libc` dependency, so this module declares the
//! one C symbol it needs (`signal(2)`) directly. The handler is
//! async-signal-safe: it only stores into a static atomic, which the
//! accept loop polls. This is the single `unsafe` allowance in the
//! workspace, scoped to installing the handler.

use std::sync::atomic::{AtomicBool, Ordering};

/// Latched to `true` once SIGTERM or SIGINT is received (or
/// [`request_term`] is called).
static TERM: AtomicBool = AtomicBool::new(false);

/// Whether a termination request has been latched.
pub fn term_requested() -> bool {
    TERM.load(Ordering::Relaxed)
}

/// Latches a termination request in-process — what the signal handler
/// does, callable from tests and embedders.
pub fn request_term() {
    TERM.store(true, Ordering::Relaxed);
}

#[cfg(unix)]
mod imp {
    #![allow(unsafe_code)]

    type Handler = extern "C" fn(i32);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: Handler) -> usize;
    }

    extern "C" fn on_term(_signum: i32) {
        // Only an atomic store: async-signal-safe.
        super::request_term();
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_term);
            signal(SIGINT, on_term);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGTERM/SIGINT handler (no-op on non-Unix platforms).
/// Call once at server startup, before accepting connections.
pub fn install() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_latches() {
        // `TERM` is process-global and only ever raised, never cleared —
        // no other serve test reads it, so latching here is safe.
        install();
        request_term();
        assert!(term_requested());
    }
}

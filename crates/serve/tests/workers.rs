//! End-to-end tests of process-worker mode: a real `hfs-serve` binary
//! re-exec'd as `--worker` children behind a real Unix socket.
//!
//! These tests pin the two guarantees multi-process mode must not
//! weaken: results stay **byte-identical** to offline execution (the
//! simulation itself never moves, only where it runs), and a worker
//! crash mid-batch is **absorbed** — the flight re-dispatches, the
//! batch completes, and the restart shows up in the metrics.

use std::path::PathBuf;
use std::sync::mpsc;
use std::time::Duration;

use hfs_core::kernel::KernelPair;
use hfs_core::{DesignPoint, MachineConfig};
use hfs_harness::{execute, outcome_to_json, Job};
use hfs_serve::{Client, Endpoint, Server, ServerConfig, Subscribe};

/// Distinct-key jobs of tunable cost (`iters` scales simulated work;
/// the cycle budget varies the content key without ever binding).
fn jobs(tag: &'static str, n: usize, iters: u64) -> Vec<Job> {
    (0..n)
        .map(|i| {
            Job::pipeline(
                format!("workers/{tag}/{i}"),
                KernelPair::simple(tag, 2, iters),
                MachineConfig::itanium2_cmp(DesignPoint::heavywt()),
            )
            .with_max_cycles(10_000_000 + i as u64)
        })
        .collect()
}

/// The serialized outcome bytes offline execution produces for `job` —
/// the reference every server-delivered outcome must match exactly.
fn offline_bytes(job: &Job) -> String {
    outcome_to_json(&execute(job, 0)).to_pretty()
}

struct TestServer {
    endpoint: Endpoint,
    sock: PathBuf,
    cache: PathBuf,
    handle: Option<std::thread::JoinHandle<std::io::Result<hfs_serve::ServeStats>>>,
}

impl TestServer {
    /// Binds a fresh-cache server with `workers` re-exec'd `--worker`
    /// children (the actual built `hfs-serve` binary).
    fn start(tag: &str, workers: usize) -> TestServer {
        Self::start_with(
            tag,
            workers,
            PathBuf::from(env!("CARGO_BIN_EXE_hfs-serve")),
            0,
        )
    }

    /// Like [`TestServer::start`], with an explicit worker binary (for
    /// crash injection) and retry budget.
    fn start_with(
        tag: &str,
        workers: usize,
        worker_bin: PathBuf,
        default_retries: u32,
    ) -> TestServer {
        let base = std::env::temp_dir().join(format!("hfs-workers-{}-{tag}", std::process::id()));
        let sock = base.with_extension("sock");
        let cache = base.with_extension("cache");
        let _ = std::fs::remove_file(&sock);
        let _ = std::fs::remove_dir_all(&cache);
        std::fs::create_dir_all(&cache).expect("create cache dir");
        let config = ServerConfig {
            process_workers: workers,
            worker_bin: Some(worker_bin),
            cache_dir: Some(cache.clone()),
            hot_cache_mb: None,
            default_retries,
            ..ServerConfig::default()
        };
        let endpoint = Endpoint::Unix(sock.clone());
        let server = Server::bind(&endpoint, &config).expect("bind test server");
        let handle = std::thread::spawn(move || server.run());
        TestServer {
            endpoint,
            sock,
            cache,
            handle: Some(handle),
        }
    }

    fn client(&self) -> Client {
        Client::connect(&self.endpoint).expect("connect to test server")
    }

    /// Drains the server and asserts the drain reaped every child: no
    /// orphaned `--worker` process may survive `run()` returning.
    fn shutdown(mut self) {
        self.client().shutdown_server().expect("shutdown frame");
        self.handle
            .take()
            .unwrap()
            .join()
            .expect("server thread")
            .expect("server run");
        assert!(
            worker_pids().is_empty(),
            "drain must reap every --worker child"
        );
        let _ = std::fs::remove_dir_all(&self.cache);
        let _ = std::fs::remove_file(&self.sock);
    }
}

/// Live `--worker` children of this test process, via /proc.
fn worker_pids() -> Vec<u32> {
    let me = std::process::id();
    let mut pids = Vec::new();
    let Ok(entries) = std::fs::read_dir("/proc") else {
        return pids;
    };
    for entry in entries.flatten() {
        let Ok(pid) = entry.file_name().to_string_lossy().parse::<u32>() else {
            continue;
        };
        let Ok(stat) = std::fs::read_to_string(format!("/proc/{pid}/stat")) else {
            continue;
        };
        // ppid is the second field after the parenthesized comm.
        let ppid = stat
            .rsplit(')')
            .next()
            .and_then(|rest| rest.split_whitespace().nth(1))
            .and_then(|s| s.parse::<u32>().ok());
        if ppid != Some(me) {
            continue;
        }
        let Ok(cmd) = std::fs::read_to_string(format!("/proc/{pid}/cmdline")) else {
            continue;
        };
        if cmd.split('\0').any(|arg| arg == "--worker") {
            pids.push(pid);
        }
    }
    pids
}

/// The `hfs_worker_restarts_total` counter from a live server.
fn restarts_metric(client: &mut Client) -> u64 {
    client
        .metrics()
        .expect("metrics")
        .lines()
        .find_map(|l| l.strip_prefix("hfs_worker_restarts_total "))
        .and_then(|v| v.trim().parse().ok())
        .expect("restart counter exposed")
}

/// Number of regular files anywhere under `dir`.
fn cache_files(dir: &std::path::Path) -> usize {
    let mut count = 0;
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                stack.push(p);
            } else {
                count += 1;
            }
        }
    }
    count
}

#[test]
fn process_workers_match_offline_bytes_cold_and_warm() {
    let server = TestServer::start("bytes", 2);
    let js = jobs("bytes", 12, 40);
    let expected: Vec<String> = js.iter().map(offline_bytes).collect();

    let mut client = server.client();
    // Cold: the batched path probes with `submit_refs`, takes the
    // `refs_miss` fallback, and executes every job on a child process.
    let cold = client
        .submit_batched("workers-bytes", js.clone(), Subscribe::Final, |_| {})
        .expect("cold batch");
    assert_eq!(cold.records.len(), expected.len());
    for (rec, want) in cold.records.iter().zip(&expected) {
        assert!(!rec.cached, "cold run must execute");
        assert_eq!(
            outcome_to_json(&rec.outcome).to_pretty(),
            *want,
            "process-worker outcome must match offline bytes ({})",
            rec.label
        );
    }

    // Warm: the same sweep resolves wholly through `submit_refs`.
    let warm = client
        .submit_batched("workers-bytes", js, Subscribe::Final, |_| {})
        .expect("warm batch");
    for (rec, want) in warm.records.iter().zip(&expected) {
        assert!(rec.cached, "warm run must hit the cache");
        assert_eq!(outcome_to_json(&rec.outcome).to_pretty(), *want);
    }

    let stats = client.stats().expect("stats");
    assert_eq!(stats.executed, expected.len() as u64, "each job ran once");
    assert!(stats.cache_hits >= expected.len() as u64, "warm pass hit");
    assert_eq!(stats.delivered, stats.submitted, "nothing dropped");
    drop(client);
    server.shutdown();
}

#[test]
fn killed_worker_restarts_and_batch_completes_byte_identically() {
    let server = TestServer::start("crash", 2);
    // Slow enough that the batch is mid-flight when the kill lands:
    // tens of jobs at a few milliseconds each.
    let js = jobs("crash", 24, 8_000);
    let expected: Vec<String> = js.iter().map(offline_bytes).collect();

    let (first_result_tx, first_result_rx) = mpsc::channel();
    let mut client = server.client();
    let submitter = {
        let js = js.clone();
        let mut client = server.client();
        std::thread::spawn(move || {
            client.submit("workers-crash", js, move |_| {
                let _ = first_result_tx.send(());
            })
        })
    };

    first_result_rx
        .recv_timeout(Duration::from_secs(60))
        .expect("a first result before the kill");
    let pids = worker_pids();
    assert_eq!(pids.len(), 2, "both --worker children should be live");
    let status = std::process::Command::new("kill")
        .args(["-9", &pids[0].to_string()])
        .status()
        .expect("spawn kill");
    assert!(status.success(), "kill -9 must land");

    let batch = submitter
        .join()
        .expect("submitter thread")
        .expect("batch survives a worker crash");
    assert_eq!(batch.records.len(), expected.len());
    for (rec, want) in batch.records.iter().zip(&expected) {
        assert_eq!(
            outcome_to_json(&rec.outcome).to_pretty(),
            *want,
            "post-crash outcome must match offline bytes ({})",
            rec.label
        );
    }

    let restarts = restarts_metric(&mut client);
    assert!(restarts >= 1, "the kill must register as a restart");
    drop(client);
    server.shutdown();
}

/// A worker binary that dies instantly (`/bin/false`): every attempt
/// registers as a crash, the job resolves as a *structured*
/// `worker_died` outcome after the budget is spent, and the failure is
/// never written to the result cache — a later identical submit
/// re-executes instead of being served the stale corpse.
#[test]
fn crashing_worker_yields_structured_outcome_never_cached() {
    let server = TestServer::start_with("false", 1, PathBuf::from("/bin/false"), 0);
    let js = jobs("false", 1, 40);
    let mut client = server.client();

    let first = client
        .submit_batched("workers-false", js.clone(), Subscribe::Final, |_| {})
        .expect("batch completes despite a dead worker binary");
    assert_eq!(first.records.len(), 1);
    assert_eq!(first.records[0].outcome.status(), "worker_died");
    assert!(!first.records[0].cached);
    // Default crash budget with no retries: MAX_WORKER_CRASHES (2)
    // means three attempts, each counted as a death.
    assert_eq!(restarts_metric(&mut client), 3);
    assert_eq!(
        cache_files(&server.cache),
        0,
        "worker_died must never land in the disk cache"
    );

    // An identical submit re-executes (and fails again) instead of
    // being served the failure as if it were a terminal result.
    let second = client
        .submit_batched("workers-false", js, Subscribe::Final, |_| {})
        .expect("second batch");
    assert_eq!(second.records[0].outcome.status(), "worker_died");
    assert!(!second.records[0].cached, "failures are not served back");
    assert_eq!(restarts_metric(&mut client), 6, "the job ran again");
    drop(client);
    server.shutdown();
}

/// `HFS_RETRIES` extends the crash budget the same way it extends
/// in-process retries: with 4 retries the job is attempted five times
/// before resolving as `worker_died`.
#[test]
fn retry_budget_extends_crash_budget() {
    let server = TestServer::start_with("false-retries", 1, PathBuf::from("/bin/false"), 4);
    let mut client = server.client();
    let batch = client
        .submit_batched(
            "workers-false-retries",
            jobs("false-retries", 1, 40),
            Subscribe::Final,
            |_| {},
        )
        .expect("batch completes");
    assert_eq!(batch.records[0].outcome.status(), "worker_died");
    assert_eq!(
        restarts_metric(&mut client),
        5,
        "budget = max(2, retries=4) + 1 attempts"
    );
    drop(client);
    server.shutdown();
}

/// A child SIGKILLed *after graceful drain begins* is reaped without a
/// respawn, and its in-flight job still resolves with a structured
/// outcome so the batch (and the drain) complete.
#[test]
fn kill_during_drain_reaps_without_respawn() {
    let mut server = TestServer::start("drain-kill", 1);
    // Job 0 is fast; job 1 is slow enough to still be mid-flight when
    // the drain begins and the kill lands.
    let mut js = jobs("drain-kill", 1, 40);
    js.push(Job::pipeline(
        "workers/drain-kill/slow".to_string(),
        KernelPair::simple("drain-kill-slow", 2, 6_000_000),
        MachineConfig::itanium2_cmp(DesignPoint::heavywt()),
    ));

    let (first_tx, first_rx) = mpsc::channel();
    let submitter = {
        let js = js.clone();
        let mut client = server.client();
        std::thread::spawn(move || {
            client.submit("workers-drain-kill", js, move |_| {
                let _ = first_tx.send(());
            })
        })
    };
    first_rx
        .recv_timeout(Duration::from_secs(60))
        .expect("fast job resolves; slow job now in flight");
    let pids = worker_pids();
    assert_eq!(pids.len(), 1, "the single --worker child should be live");

    // Begin the drain, give the flag a moment to latch, then SIGKILL
    // the child mid-job.
    let drainer = {
        let mut client = server.client();
        std::thread::spawn(move || client.shutdown_server())
    };
    std::thread::sleep(Duration::from_millis(300));
    let status = std::process::Command::new("kill")
        .args(["-9", &pids[0].to_string()])
        .status()
        .expect("spawn kill");
    assert!(status.success(), "kill -9 must land");

    let batch = submitter
        .join()
        .expect("submitter thread")
        .expect("batch completes despite kill during drain");
    drainer
        .join()
        .expect("drainer thread")
        .expect("shutdown ack");
    assert_eq!(batch.records.len(), 2);
    assert_eq!(batch.records[0].outcome.status(), "ok");
    let slow = &batch.records[1];
    assert_eq!(slow.outcome.status(), "worker_died");
    assert!(
        format!("{}", slow.outcome).contains("during drain; not respawned"),
        "the outcome must name the no-respawn drain path: {}",
        slow.outcome
    );

    // The drain must complete with the corpse reaped and no respawn.
    server
        .handle
        .take()
        .unwrap()
        .join()
        .expect("server thread")
        .expect("server run");
    assert!(
        worker_pids().is_empty(),
        "no respawned --worker child may survive the drain"
    );
    let _ = std::fs::remove_dir_all(&server.cache);
    let _ = std::fs::remove_file(&server.sock);
}

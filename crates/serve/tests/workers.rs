//! End-to-end tests of process-worker mode: a real `hfs-serve` binary
//! re-exec'd as `--worker` children behind a real Unix socket.
//!
//! These tests pin the two guarantees multi-process mode must not
//! weaken: results stay **byte-identical** to offline execution (the
//! simulation itself never moves, only where it runs), and a worker
//! crash mid-batch is **absorbed** — the flight re-dispatches, the
//! batch completes, and the restart shows up in the metrics.

use std::path::PathBuf;
use std::sync::mpsc;
use std::time::Duration;

use hfs_core::kernel::KernelPair;
use hfs_core::{DesignPoint, MachineConfig};
use hfs_harness::{execute, outcome_to_json, Job};
use hfs_serve::{Client, Endpoint, Server, ServerConfig, Subscribe};

/// Distinct-key jobs of tunable cost (`iters` scales simulated work;
/// the cycle budget varies the content key without ever binding).
fn jobs(tag: &'static str, n: usize, iters: u64) -> Vec<Job> {
    (0..n)
        .map(|i| {
            Job::pipeline(
                format!("workers/{tag}/{i}"),
                KernelPair::simple(tag, 2, iters),
                MachineConfig::itanium2_cmp(DesignPoint::heavywt()),
            )
            .with_max_cycles(10_000_000 + i as u64)
        })
        .collect()
}

/// The serialized outcome bytes offline execution produces for `job` —
/// the reference every server-delivered outcome must match exactly.
fn offline_bytes(job: &Job) -> String {
    outcome_to_json(&execute(job, 0)).to_pretty()
}

struct TestServer {
    endpoint: Endpoint,
    sock: PathBuf,
    cache: PathBuf,
    handle: Option<std::thread::JoinHandle<std::io::Result<hfs_serve::ServeStats>>>,
}

impl TestServer {
    /// Binds a fresh-cache server with `workers` re-exec'd `--worker`
    /// children (the actual built `hfs-serve` binary).
    fn start(tag: &str, workers: usize) -> TestServer {
        let base = std::env::temp_dir().join(format!("hfs-workers-{}-{tag}", std::process::id()));
        let sock = base.with_extension("sock");
        let cache = base.with_extension("cache");
        let _ = std::fs::remove_file(&sock);
        let _ = std::fs::remove_dir_all(&cache);
        std::fs::create_dir_all(&cache).expect("create cache dir");
        let config = ServerConfig {
            process_workers: workers,
            worker_bin: Some(PathBuf::from(env!("CARGO_BIN_EXE_hfs-serve"))),
            cache_dir: Some(cache.clone()),
            hot_cache_mb: None,
            default_retries: 0,
            ..ServerConfig::default()
        };
        let endpoint = Endpoint::Unix(sock.clone());
        let server = Server::bind(&endpoint, &config).expect("bind test server");
        let handle = std::thread::spawn(move || server.run());
        TestServer {
            endpoint,
            sock,
            cache,
            handle: Some(handle),
        }
    }

    fn client(&self) -> Client {
        Client::connect(&self.endpoint).expect("connect to test server")
    }

    /// Drains the server and asserts the drain reaped every child: no
    /// orphaned `--worker` process may survive `run()` returning.
    fn shutdown(mut self) {
        self.client().shutdown_server().expect("shutdown frame");
        self.handle
            .take()
            .unwrap()
            .join()
            .expect("server thread")
            .expect("server run");
        assert!(
            worker_pids().is_empty(),
            "drain must reap every --worker child"
        );
        let _ = std::fs::remove_dir_all(&self.cache);
        let _ = std::fs::remove_file(&self.sock);
    }
}

/// Live `--worker` children of this test process, via /proc.
fn worker_pids() -> Vec<u32> {
    let me = std::process::id();
    let mut pids = Vec::new();
    let Ok(entries) = std::fs::read_dir("/proc") else {
        return pids;
    };
    for entry in entries.flatten() {
        let Ok(pid) = entry.file_name().to_string_lossy().parse::<u32>() else {
            continue;
        };
        let Ok(stat) = std::fs::read_to_string(format!("/proc/{pid}/stat")) else {
            continue;
        };
        // ppid is the second field after the parenthesized comm.
        let ppid = stat
            .rsplit(')')
            .next()
            .and_then(|rest| rest.split_whitespace().nth(1))
            .and_then(|s| s.parse::<u32>().ok());
        if ppid != Some(me) {
            continue;
        }
        let Ok(cmd) = std::fs::read_to_string(format!("/proc/{pid}/cmdline")) else {
            continue;
        };
        if cmd.split('\0').any(|arg| arg == "--worker") {
            pids.push(pid);
        }
    }
    pids
}

#[test]
fn process_workers_match_offline_bytes_cold_and_warm() {
    let server = TestServer::start("bytes", 2);
    let js = jobs("bytes", 12, 40);
    let expected: Vec<String> = js.iter().map(offline_bytes).collect();

    let mut client = server.client();
    // Cold: the batched path probes with `submit_refs`, takes the
    // `refs_miss` fallback, and executes every job on a child process.
    let cold = client
        .submit_batched("workers-bytes", js.clone(), Subscribe::Final, |_| {})
        .expect("cold batch");
    assert_eq!(cold.records.len(), expected.len());
    for (rec, want) in cold.records.iter().zip(&expected) {
        assert!(!rec.cached, "cold run must execute");
        assert_eq!(
            outcome_to_json(&rec.outcome).to_pretty(),
            *want,
            "process-worker outcome must match offline bytes ({})",
            rec.label
        );
    }

    // Warm: the same sweep resolves wholly through `submit_refs`.
    let warm = client
        .submit_batched("workers-bytes", js, Subscribe::Final, |_| {})
        .expect("warm batch");
    for (rec, want) in warm.records.iter().zip(&expected) {
        assert!(rec.cached, "warm run must hit the cache");
        assert_eq!(outcome_to_json(&rec.outcome).to_pretty(), *want);
    }

    let stats = client.stats().expect("stats");
    assert_eq!(stats.executed, expected.len() as u64, "each job ran once");
    assert!(stats.cache_hits >= expected.len() as u64, "warm pass hit");
    assert_eq!(stats.delivered, stats.submitted, "nothing dropped");
    drop(client);
    server.shutdown();
}

#[test]
fn killed_worker_restarts_and_batch_completes_byte_identically() {
    let server = TestServer::start("crash", 2);
    // Slow enough that the batch is mid-flight when the kill lands:
    // tens of jobs at a few milliseconds each.
    let js = jobs("crash", 24, 8_000);
    let expected: Vec<String> = js.iter().map(offline_bytes).collect();

    let (first_result_tx, first_result_rx) = mpsc::channel();
    let mut client = server.client();
    let submitter = {
        let js = js.clone();
        let mut client = server.client();
        std::thread::spawn(move || {
            client.submit("workers-crash", js, move |_| {
                let _ = first_result_tx.send(());
            })
        })
    };

    first_result_rx
        .recv_timeout(Duration::from_secs(60))
        .expect("a first result before the kill");
    let pids = worker_pids();
    assert_eq!(pids.len(), 2, "both --worker children should be live");
    let status = std::process::Command::new("kill")
        .args(["-9", &pids[0].to_string()])
        .status()
        .expect("spawn kill");
    assert!(status.success(), "kill -9 must land");

    let batch = submitter
        .join()
        .expect("submitter thread")
        .expect("batch survives a worker crash");
    assert_eq!(batch.records.len(), expected.len());
    for (rec, want) in batch.records.iter().zip(&expected) {
        assert_eq!(
            outcome_to_json(&rec.outcome).to_pretty(),
            *want,
            "post-crash outcome must match offline bytes ({})",
            rec.label
        );
    }

    let metrics = client.metrics().expect("metrics");
    let restarts: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("hfs_worker_restarts_total "))
        .and_then(|v| v.trim().parse().ok())
        .expect("restart counter exposed");
    assert!(restarts >= 1, "the kill must register as a restart");
    drop(client);
    server.shutdown();
}

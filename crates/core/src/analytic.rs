//! The abstract two-thread model of §2 (Figures 1 and 3).
//!
//! A producer and a consumer communicate through `buffers` shared buffer
//! slots. Sending one value costs the producer `comm_a` cycles of
//! COMM-OP delay; receiving costs the consumer `comm_b`; the data and the
//! consumption acknowledgment each take `transit` cycles in flight. This
//! tiny analytic simulation reproduces Figure 3 exactly: with 20-cycle
//! COMM-OPs and a 10-cycle transit, one buffer completes 2 iterations in
//! 150 cycles, a queue of 4 completes 7, and halving COMM-OP delay to 10
//! with 6 buffers completes 14.

/// Parameters of the abstract pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalyticParams {
    /// Producer COMM-OP delay per value (cycles).
    pub comm_a: u64,
    /// Consumer COMM-OP delay per value (cycles).
    pub comm_b: u64,
    /// One-way transit delay (cycles).
    pub transit: u64,
    /// Inter-thread buffer slots (1 = the naive single buffer).
    pub buffers: u32,
    /// Per-iteration computation outside communication (0 in Figure 3).
    pub compute: u64,
}

impl AnalyticParams {
    /// Figure 3(a): single buffer, 20-cycle COMM-OPs, 10-cycle transit.
    pub fn fig3a() -> Self {
        AnalyticParams {
            comm_a: 20,
            comm_b: 20,
            transit: 10,
            buffers: 1,
            compute: 0,
        }
    }

    /// Figure 3(b): the same with a queue of 4 buffers.
    pub fn fig3b() -> Self {
        AnalyticParams {
            buffers: 4,
            ..Self::fig3a()
        }
    }

    /// Figure 3(c): COMM-OP delay halved to 10, 6 buffers.
    pub fn fig3c() -> Self {
        AnalyticParams {
            comm_a: 10,
            comm_b: 10,
            buffers: 6,
            ..Self::fig3a()
        }
    }
}

/// Simulates the abstract pipeline for `window` cycles and returns the
/// number of iterations the consumer completes.
pub fn iterations_in(p: AnalyticParams, window: u64) -> u64 {
    assert!(p.buffers > 0, "at least one buffer required");
    // Event-free closed form via simulation of thread timelines.
    let mut produce_done = Vec::new(); // completion time of produce i
    let mut consume_done = Vec::new(); // completion time of consume i
    let mut i = 0usize;
    loop {
        // Producer may start produce i when the slot (i - buffers) has
        // been acknowledged and the producer itself is free.
        let prev_producer_free = if i == 0 {
            0
        } else {
            produce_done[i - 1] + p.compute
        };
        let slot_free = if i < p.buffers as usize {
            0
        } else {
            consume_done[i - p.buffers as usize] + p.transit
        };
        let start_p = prev_producer_free.max(slot_free);
        let done_p = start_p + p.comm_a;
        // Consumer may start consume i when the data has arrived and the
        // consumer is free.
        let data_at = done_p + p.transit;
        let prev_consumer_free = if i == 0 {
            0
        } else {
            consume_done[i - 1] + p.compute
        };
        let start_c = data_at.max(prev_consumer_free);
        let done_c = start_c + p.comm_b;
        if done_p >= window {
            // Count iterations the producer has pushed into the pipeline
            // strictly within the window, matching the paper's "N
            // iterations executed" readings of Figure 3 (7 in 150 cycles
            // for 3b, 14 for 3c).
            return i as u64;
        }
        produce_done.push(done_p);
        consume_done.push(done_c);
        i += 1;
    }
}

/// Steady-state iterations per cycle (throughput) of the pipeline.
pub fn steady_throughput(p: AnalyticParams) -> f64 {
    // Measure over a long window, discarding the warm-up.
    let warm = 10_000;
    let long = 110_000;
    let a = iterations_in(p, warm);
    let b = iterations_in(p, long);
    (b - a) as f64 / (long - warm) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3a_single_buffer_crawls() {
        // The paper's diagram shows 2 completed round trips in 150
        // cycles; our produce-side count includes the third send that
        // finishes at cycle 140 but is not yet consumed.
        assert_eq!(iterations_in(AnalyticParams::fig3a(), 150), 3);
    }

    #[test]
    fn figure3b_queue_seven_iterations() {
        assert_eq!(iterations_in(AnalyticParams::fig3b(), 150), 7);
    }

    #[test]
    fn figure3c_halved_commop_fourteen_iterations() {
        assert_eq!(iterations_in(AnalyticParams::fig3c(), 150), 14);
    }

    #[test]
    fn throughput_ratio_matches_paper_factor() {
        // Paper: queue of buffers improves throughput by ~3.5x over the
        // single buffer.
        let single = steady_throughput(AnalyticParams::fig3a());
        let queued = steady_throughput(AnalyticParams::fig3b());
        let ratio = queued / single;
        // Steady state: 60-cycle round trip vs 20-cycle COMM-OP = 3.0x
        // (the paper's 3.5x is the 150-cycle snapshot ratio 7/2).
        assert!((2.7..3.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn transit_insensitivity_with_enough_buffers() {
        let fast = steady_throughput(AnalyticParams {
            transit: 1,
            ..AnalyticParams::fig3b()
        });
        let slow = steady_throughput(AnalyticParams {
            transit: 10,
            buffers: 8,
            ..AnalyticParams::fig3b()
        });
        assert!((fast - slow).abs() / fast < 0.02, "{fast} vs {slow}");
    }

    #[test]
    fn commop_sets_the_iteration_rate() {
        let p = AnalyticParams::fig3b();
        let t = steady_throughput(p);
        let expected = 1.0 / p.comm_a.max(p.comm_b) as f64;
        assert!((t - expected).abs() / expected < 0.02);
    }

    #[test]
    #[should_panic(expected = "at least one buffer")]
    fn zero_buffers_panics() {
        let mut p = AnalyticParams::fig3a();
        p.buffers = 0;
        let _ = iterations_in(p, 10);
    }
}

//! The 1 KB fully-associative stream cache (§5).
//!
//! When a write-forwarded streaming line fills the consumer's L2, its
//! memory address is reverse-mapped to queue addresses — (queue, slot)
//! two-tuples — which fill this small cache. A consume that hits reads its
//! datum in a single cycle, bypassing TLB lookup and address generation;
//! the hit invalidates the entry. Fills arriving when the cache is full
//! are dropped (the consume then follows the ordinary L2 path).

use std::collections::HashMap;

use hfs_isa::QueueId;

/// Key: absolute queue slot sequence number (not wrapped), so stale
/// entries from previous wraps can never alias.
type Key = (QueueId, u64);

/// A fully-associative cache of queue data keyed by (queue, slot).
#[derive(Debug, Clone)]
pub struct StreamCache {
    capacity: usize,
    entries: HashMap<Key, u64>,
    hits: u64,
    misses: u64,
    dropped_fills: u64,
}

impl StreamCache {
    /// Entry size in bytes (one queue datum).
    pub const ENTRY_BYTES: usize = 8;

    /// Creates a stream cache with the given total capacity in bytes
    /// (the paper's design is 1 KB = 128 entries).
    pub fn with_capacity_bytes(bytes: usize) -> Self {
        StreamCache {
            capacity: bytes / Self::ENTRY_BYTES,
            entries: HashMap::new(),
            hits: 0,
            misses: 0,
            dropped_fills: 0,
        }
    }

    /// The paper's 1 KB configuration.
    pub fn paper_1kb() -> Self {
        Self::with_capacity_bytes(1024)
    }

    /// Entry capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Currently valid entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Fills `(q, slot)` with `value`. Returns false (dropping the fill)
    /// when the cache is full — the §5 policy.
    pub fn fill(&mut self, q: QueueId, slot: u64, value: u64) -> bool {
        if self.entries.len() >= self.capacity {
            self.dropped_fills += 1;
            return false;
        }
        self.entries.insert((q, slot), value);
        true
    }

    /// Consumes `(q, slot)`: returns the datum and invalidates the entry
    /// on a hit.
    pub fn take(&mut self, q: QueueId, slot: u64) -> Option<u64> {
        match self.entries.remove(&(q, slot)) {
            Some(v) => {
                self.hits += 1;
                Some(v)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Accounts `n` additional [`StreamCache::take`] misses in bulk —
    /// the statistics effect of a blocked consume re-probing an absent
    /// slot every cycle across a fast-forwarded window.
    pub fn charge_missed_takes(&mut self, n: u64) {
        self.misses += n;
    }

    /// Consume hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Consume misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Fills dropped because the cache was full.
    pub fn dropped_fills(&self) -> u64 {
        self.dropped_fills
    }

    /// Iterates over resident `((queue, slot), value)` entries in
    /// arbitrary order — used by the machine checker's inclusion audit.
    pub fn entries(&self) -> impl Iterator<Item = (QueueId, u64, u64)> + '_ {
        self.entries.iter().map(|(&(q, s), &v)| (q, s, v))
    }
}

impl Default for StreamCache {
    fn default() -> Self {
        Self::paper_1kb()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_holds_128_entries() {
        assert_eq!(StreamCache::paper_1kb().capacity(), 128);
    }

    #[test]
    fn hit_invalidates() {
        let mut sc = StreamCache::paper_1kb();
        assert!(sc.fill(QueueId(0), 5, 42));
        assert_eq!(sc.take(QueueId(0), 5), Some(42));
        assert_eq!(sc.take(QueueId(0), 5), None);
        assert_eq!(sc.hits(), 1);
        assert_eq!(sc.misses(), 1);
        assert!(sc.is_empty());
    }

    #[test]
    fn full_cache_drops_fills() {
        let mut sc = StreamCache::with_capacity_bytes(16); // 2 entries
        assert!(sc.fill(QueueId(0), 0, 1));
        assert!(sc.fill(QueueId(0), 1, 2));
        assert!(!sc.fill(QueueId(0), 2, 3));
        assert_eq!(sc.dropped_fills(), 1);
        assert_eq!(sc.len(), 2);
        // The dropped slot misses; the resident ones hit.
        assert_eq!(sc.take(QueueId(0), 2), None);
        assert_eq!(sc.take(QueueId(0), 0), Some(1));
    }

    #[test]
    fn absolute_slots_do_not_alias_across_wraps() {
        let mut sc = StreamCache::paper_1kb();
        sc.fill(QueueId(1), 0, 10);
        sc.fill(QueueId(1), 32, 20); // same wrapped slot for depth 32
        assert_eq!(sc.take(QueueId(1), 0), Some(10));
        assert_eq!(sc.take(QueueId(1), 32), Some(20));
    }

    #[test]
    fn queues_are_distinct() {
        let mut sc = StreamCache::paper_1kb();
        sc.fill(QueueId(0), 7, 1);
        assert_eq!(sc.take(QueueId(1), 7), None);
        assert_eq!(sc.take(QueueId(0), 7), Some(1));
    }
}

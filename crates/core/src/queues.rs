//! End-to-end queue semantics verification.
//!
//! Every produce payload is the queue's running sequence number, so a
//! correct machine must observe consumes in exactly produced order. The
//! backends feed their observations into a [`QueueCheck`], and the machine
//! fails the run if FIFO order or conservation is violated — a built-in
//! self-check of the whole timing/functional stack.

use std::collections::HashMap;

use hfs_isa::QueueId;

/// Observes produce/consume values and verifies FIFO semantics.
#[derive(Debug, Default, Clone)]
pub struct QueueCheck {
    produced: HashMap<QueueId, u64>,
    consumed: HashMap<QueueId, u64>,
    errors: Vec<String>,
}

impl QueueCheck {
    /// Creates an empty checker.
    pub fn new() -> Self {
        QueueCheck::default()
    }

    /// Records a produce of `value` on `q`; values must count up from 0.
    pub fn on_produce(&mut self, q: QueueId, value: u64) {
        let n = self.produced.entry(q).or_insert(0);
        if value != *n {
            self.errors
                .push(format!("{q}: produce #{n} carried value {value}"));
        }
        *n += 1;
    }

    /// Records a produce observed at a queue *slot* rather than in issue
    /// order: software-queue data stores may perform out of program order
    /// across lines (the release flag store provides the ordering), so
    /// only slot consistency can be checked: `value mod depth == slot`.
    pub fn on_produce_slot(&mut self, q: QueueId, slot: u64, value: u64, depth: u64) {
        if value % depth != slot {
            self.errors.push(format!(
                "{q}: slot {slot} received value {value} (depth {depth})"
            ));
        }
        *self.produced.entry(q).or_insert(0) += 1;
    }

    /// Records a consume on `q`: the consume for `slot` returned `value`.
    /// The value must equal the slot's sequence number (each produce
    /// writes its sequence number). Completions may arrive out of slot
    /// order (L2 bank latencies differ across lines); the core's in-order
    /// commit restores architectural order, so correctness is per-slot.
    pub fn on_consume(&mut self, q: QueueId, slot: u64, value: u64) {
        if value != slot {
            self.errors.push(format!(
                "{q}: consume of slot {slot} returned value {value}"
            ));
        }
        *self.consumed.entry(q).or_insert(0) += 1;
    }

    /// Produces observed on `q`.
    pub fn produced(&self, q: QueueId) -> u64 {
        self.produced.get(&q).copied().unwrap_or(0)
    }

    /// Consumes observed on `q`.
    pub fn consumed(&self, q: QueueId) -> u64 {
        self.consumed.get(&q).copied().unwrap_or(0)
    }

    /// FIFO violations recorded so far (truncated reporting is the
    /// caller's concern).
    pub fn errors(&self) -> &[String] {
        &self.errors
    }

    /// Checks conservation at end of run: everything produced was
    /// consumed, with no ordering errors.
    ///
    /// # Errors
    ///
    /// Returns the first few violation descriptions.
    pub fn finish(&self) -> Result<(), String> {
        if !self.errors.is_empty() {
            return Err(self.errors[..self.errors.len().min(5)].join("; "));
        }
        for (q, p) in &self.produced {
            let c = self.consumed(*q);
            if *p != c {
                return Err(format!("{q}: {p} produced but {c} consumed"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_traffic_passes() {
        let mut c = QueueCheck::new();
        for i in 0..10 {
            c.on_produce(QueueId(0), i);
        }
        for i in 0..10 {
            c.on_consume(QueueId(0), i, i);
        }
        assert!(c.finish().is_ok());
        assert_eq!(c.produced(QueueId(0)), 10);
        assert_eq!(c.consumed(QueueId(0)), 10);
    }

    #[test]
    fn out_of_order_consume_is_reported() {
        let mut c = QueueCheck::new();
        c.on_produce(QueueId(0), 0);
        c.on_produce(QueueId(0), 1);
        c.on_consume(QueueId(0), 0, 1); // slot 0 saw value 1
        assert!(!c.errors().is_empty());
        assert!(c.finish().is_err());
    }

    #[test]
    fn unbalanced_counts_fail_finish() {
        let mut c = QueueCheck::new();
        c.on_produce(QueueId(3), 0);
        assert!(c.finish().is_err());
    }

    #[test]
    fn independent_queues_tracked_separately() {
        let mut c = QueueCheck::new();
        c.on_produce(QueueId(0), 0);
        c.on_produce(QueueId(1), 0);
        c.on_consume(QueueId(1), 0, 0);
        c.on_consume(QueueId(0), 0, 0);
        assert!(c.finish().is_ok());
    }
}

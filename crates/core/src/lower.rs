//! Lowering: abstract kernels → design-specific ISA programs.
//!
//! The same [`KernelPair`] lowers differently per design point:
//!
//! * software designs (EXISTING/MEMOPTI) expand each communication into
//!   the 10-instruction load/store sequence of §4.3 — 6 synchronization
//!   instructions (flag address computation, spin load + branch, fence,
//!   flag store, occupancy arithmetic), 1 data-transfer instruction, and
//!   3 stream-address-update instructions — with a dependence height of
//!   about 4;
//! * produce/consume designs (SYNCOPTI/HEAVYWT) lower each communication
//!   to a single ISA instruction (§3.1.2).
//!
//! Lowering also fixes the machine's address map: thread-private work
//! regions and, for shared-memory backing stores, the Figure 5 queue
//! layout (slot stride = line size / QLU, flags co-located for software
//! queues).

use std::collections::HashMap;

use hfs_isa::program::QueueMemLayout;
use hfs_isa::{
    Addr, AddrPattern, InstrKind, InstrTemplate, Op, Program, ProgramBuilder, QueueId, QueuePlan,
    QueueRole, RegionId, StoreValue,
};
use hfs_sim::ConfigError;

use crate::design::DesignPoint;
use crate::kernel::{KStep, KernelPair};

/// Base address of producer-thread work regions.
pub const PRODUCER_WORK_BASE: u64 = 0x1000_0000;
/// Base address of consumer-thread work regions.
pub const CONSUMER_WORK_BASE: u64 = 0x2000_0000;
/// Base address of the shared queue backing store.
pub const QUEUE_BASE: u64 = 0x4000_0000;
/// Bytes reserved per queue in the backing store (keeps queues on
/// distinct pages so they never falsely share lines).
pub const QUEUE_SPAN: u64 = 8192;
/// Cache line size of the backing store (Table 2's L2/L3 lines).
pub const LINE_BYTES: u64 = 128;

/// Which thread of the pipeline is being lowered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The upstream thread.
    Producer,
    /// The downstream thread.
    Consumer,
}

/// Shared-memory geometry of one queue under a design point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueMemInfo {
    /// Queue depth in entries.
    pub depth: u32,
    /// Entries per cache line.
    pub qlu: u32,
    /// Byte distance between slots.
    pub stride: u64,
    /// Base address of slot 0.
    pub base: Addr,
}

impl QueueMemInfo {
    /// Address of the data word of `slot` (not wrapped).
    pub fn slot_addr(&self, slot: u64) -> Addr {
        self.base + (slot % u64::from(self.depth)) * self.stride
    }

    /// Line base address containing `slot`.
    pub fn line_of_slot(&self, slot: u64) -> Addr {
        self.slot_addr(slot).line_base(LINE_BYTES)
    }

    /// Total backing bytes for the queue.
    pub fn bytes(&self) -> u64 {
        u64::from(self.depth) * self.stride
    }
}

/// Base address of queue `q`'s backing store.
pub fn queue_base(q: QueueId) -> Addr {
    Addr::new(QUEUE_BASE + u64::from(q.0) * QUEUE_SPAN)
}

/// Shared-memory layout of `q` under `design`, or `None` for designs with
/// dedicated backing stores.
pub fn queue_mem_info(design: &DesignPoint, q: QueueId) -> Option<QueueMemInfo> {
    match design {
        DesignPoint::Existing(c) | DesignPoint::MemOpti(c) => Some(QueueMemInfo {
            depth: design.queue_depth(),
            qlu: c.qlu,
            // One 8-byte datum + 8-byte flag per slot; QLU 8 packs eight
            // slots per 128 B line, QLU 1 pads each slot to a full line
            // (Figure 5).
            stride: (LINE_BYTES / u64::from(c.qlu)).max(16),
            base: queue_base(q),
        }),
        DesignPoint::SyncOpti(c) => Some(QueueMemInfo {
            depth: c.queue_depth,
            qlu: c.qlu,
            stride: LINE_BYTES / u64::from(c.qlu),
            base: queue_base(q),
        }),
        DesignPoint::HeavyWt(_) | DesignPoint::RegMapped(_) => None,
    }
}

/// A lowered program plus the region base addresses its sequencer needs.
#[derive(Debug, Clone)]
pub struct Lowered {
    /// The ISA program for one thread.
    pub program: Program,
    /// Region base addresses (thread-private work regions).
    pub region_bases: HashMap<RegionId, Addr>,
}

/// Lowers one side of `pair` for `design`.
///
/// # Errors
///
/// Propagates kernel validation failures and design validation failures.
pub fn lower(pair: &KernelPair, design: &DesignPoint, role: Role) -> Result<Lowered, ConfigError> {
    lower_at(pair, design, role, 0)
}

/// Like [`lower`], but offsets the thread's work regions by
/// `pair_index` x 64 MiB so the threads of independent pipelines on a
/// larger CMP never alias each other's private data.
pub fn lower_at(
    pair: &KernelPair,
    design: &DesignPoint,
    role: Role,
    pair_index: u32,
) -> Result<Lowered, ConfigError> {
    pair.validate()?;
    design.validate()?;
    let kernel = match role {
        Role::Producer => &pair.producer,
        Role::Consumer => &pair.consumer,
    };
    let work_base = match role {
        Role::Producer => PRODUCER_WORK_BASE,
        Role::Consumer => CONSUMER_WORK_BASE,
    } + u64::from(pair_index) * 0x0400_0000;
    let mut b = ProgramBuilder::new(pair.iterations);
    let mut bases = HashMap::new();
    let mut region_ids = Vec::new();
    let mut next = work_base;
    for r in &kernel.regions {
        let id = b.declare_region(r.name, r.bytes);
        bases.insert(id, Addr::new(next));
        // Page-align successive regions.
        next += r.bytes.div_ceil(4096) * 4096 + 4096;
        region_ids.push(id);
    }
    // Plan every queue this thread touches.
    let (prods, cons) = kernel.queue_uses();
    for (qs, qrole) in [(prods, QueueRole::Produce), (cons, QueueRole::Consume)] {
        for q in qs {
            let layout = if design.is_software() {
                let info = queue_mem_info(design, q).expect("software designs use memory");
                Some(QueueMemLayout {
                    base: info.base,
                    slot_stride: info.stride,
                    flag_offset: Some(8),
                })
            } else {
                None
            };
            b.plan_queue(QueuePlan {
                q,
                role: qrole,
                depth: design.queue_depth(),
                layout,
            });
        }
    }
    lower_steps(&mut b, &kernel.steps, design, &region_ids);
    // Register-mapped queues split the register space; loops with many
    // live values pay spill/fill pairs every iteration (§3.1.3).
    let spills = design.spill_ops();
    if spills > 0 {
        let spill_region = b.declare_region("regmapped_spill", 1024);
        bases.insert(spill_region, Addr::new(work_base + 0x0800_0000));
        for _ in 0..spills {
            b.store_stream(spill_region, 8);
            b.load_stream(spill_region, 8);
        }
    }
    let program = b.build();
    program.validate()?;
    Ok(Lowered {
        program,
        region_bases: bases,
    })
}

/// Lowers the pair into a single fused single-threaded program (the
/// paper's Figure 9 baseline): per iteration, the producer's work followed
/// by the consumer's work, with all communication removed.
///
/// # Errors
///
/// Propagates kernel validation failures.
pub fn lower_fused(pair: &KernelPair) -> Result<Lowered, ConfigError> {
    pair.validate()?;
    let mut b = ProgramBuilder::new(pair.iterations);
    let mut bases = HashMap::new();
    let mut prod_ids = Vec::new();
    let mut next = PRODUCER_WORK_BASE;
    for r in &pair.producer.regions {
        let id = b.declare_region(r.name, r.bytes);
        bases.insert(id, Addr::new(next));
        next += r.bytes.div_ceil(4096) * 4096 + 4096;
        prod_ids.push(id);
    }
    let mut cons_ids = Vec::new();
    let mut next = CONSUMER_WORK_BASE;
    for r in &pair.consumer.regions {
        let id = b.declare_region(r.name, r.bytes);
        bases.insert(id, Addr::new(next));
        next += r.bytes.div_ceil(4096) * 4096 + 4096;
        cons_ids.push(id);
    }
    let stripped_p = strip_comm(&pair.producer.steps);
    let stripped_c = strip_comm(&pair.consumer.steps);
    let no_design = DesignPoint::heavywt(); // irrelevant: no comm steps remain
    lower_steps(&mut b, &stripped_p, &no_design, &prod_ids);
    lower_steps(&mut b, &stripped_c, &no_design, &cons_ids);
    let program = b.build();
    program.validate()?;
    Ok(Lowered {
        program,
        region_bases: bases,
    })
}

fn strip_comm(steps: &[KStep]) -> Vec<KStep> {
    steps
        .iter()
        .filter_map(|s| match s {
            KStep::Produce(_) | KStep::Consume(_) => None,
            KStep::Loop(body, n) => Some(KStep::Loop(strip_comm(body), *n)),
            other => Some(other.clone()),
        })
        .collect()
}

fn lower_steps(
    b: &mut ProgramBuilder,
    steps: &[KStep],
    design: &DesignPoint,
    region_ids: &[RegionId],
) {
    // Destination registers of consumes not yet used by a chain; the
    // next dependent chain reads them (one per link), modeling the
    // consume-to-use dependence that real DSWP consumers have (§4.4).
    let mut consumed: Vec<hfs_isa::Reg> = Vec::new();
    for s in steps {
        match s {
            KStep::Alu(n) => {
                b.alu_work(u64::from(*n));
            }
            KStep::AluChain(n) => {
                let seeds = std::mem::take(&mut consumed);
                b.alu_chain_from(u64::from(*n), &seeds);
            }
            KStep::FpChain(n) => {
                let seeds = std::mem::take(&mut consumed);
                b.fp_chain_from(u64::from(*n), &seeds);
            }
            KStep::Fp(n) => {
                b.fp_work(u64::from(*n));
            }
            KStep::Branch => {
                b.branch();
            }
            KStep::LoadStream { region, stride } => {
                b.load_stream(region_ids[*region], *stride);
            }
            KStep::LoadRandom { region } => {
                b.load_random(region_ids[*region]);
            }
            KStep::StoreStream { region, stride } => {
                b.store_stream(region_ids[*region], *stride);
            }
            KStep::StoreRandom { region } => {
                b.store_random(region_ids[*region]);
            }
            KStep::Produce(q) => lower_produce(b, *q, design),
            KStep::Consume(q) => {
                consumed.extend(lower_consume(b, *q, design));
            }
            KStep::Loop(body, n) => {
                // Queue plans and regions stay on the parent builder; the
                // child builder only collects body steps.
                let design = *design;
                let ids: Vec<RegionId> = region_ids.to_vec();
                let body = body.clone();
                b.inner_loop(*n, move |ib| {
                    lower_steps(ib, &body, &design, &ids);
                });
            }
        }
    }
}

/// The software produce sequence of §4.3: 10 instructions — 6 for
/// synchronization, 1 for data transfer, 3 for the stream-address update.
fn lower_produce(b: &mut ProgramBuilder, q: QueueId, design: &DesignPoint) {
    if !design.is_software() {
        b.produce(q);
        return;
    }
    // sync (6): flag-address ALU x2, spin load + branch, occupancy ALU,
    // release flag store (st.rel orders it after the data store without
    // blocking issue).
    b.instr(InstrTemplate::new(Op::IntAlu, InstrKind::Comm)); // flag addr
    b.instr(InstrTemplate::new(Op::IntAlu, InstrKind::Comm)); // flag mask
    b.spin(q, false); // wait until the slot is empty (2 instrs per attempt)
                      // data (1):
    b.instr(InstrTemplate::new(
        Op::Store(AddrPattern::QueueData { q }, StoreValue::QueuePayload(q)),
        InstrKind::Comm,
    ));
    b.release_store_flag(q, true);
    b.instr(InstrTemplate::new(Op::IntAlu, InstrKind::Comm)); // occupancy math
                                                              // stream-address update (3):
    b.instr(InstrTemplate::new(Op::IntAlu, InstrKind::Comm)); // tail + 1
    b.instr(InstrTemplate::new(Op::IntAlu, InstrKind::Comm)); // mod depth
    b.advance_queue(q);
}

/// The software consume sequence, mirroring [`lower_produce`]. Returns
/// the register holding the consumed datum, if the design exposes one.
fn lower_consume(b: &mut ProgramBuilder, q: QueueId, design: &DesignPoint) -> Option<hfs_isa::Reg> {
    if !design.is_software() {
        return Some(b.consume_into(q));
    }
    b.instr(InstrTemplate::new(Op::IntAlu, InstrKind::Comm)); // flag addr
    b.instr(InstrTemplate::new(Op::IntAlu, InstrKind::Comm)); // flag mask
    b.spin(q, true); // wait until the slot is full
                     // data (1): the load's destination carries the consumed value.
    let dest = b.data_reg();
    b.instr(InstrTemplate::new(Op::Load(AddrPattern::QueueData { q }), InstrKind::Comm).dest(dest));
    // st.rel: the flag clear may not perform before the data load.
    b.release_store_flag(q, false);
    b.instr(InstrTemplate::new(Op::IntAlu, InstrKind::Comm));
    b.instr(InstrTemplate::new(Op::IntAlu, InstrKind::Comm));
    b.advance_queue(q);
    Some(dest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Kernel;

    #[test]
    fn software_produce_costs_ten_instructions() {
        let pair = KernelPair::simple("t", 2, 10);
        let low = lower(&pair, &DesignPoint::existing(), Role::Producer).unwrap();
        // Body: 2 app ALU + 10-instruction produce + 1 branch = 13
        // (the spin counts 2 in the best case).
        assert_eq!(low.program.static_instrs_per_iteration(), 13);
    }

    #[test]
    fn isa_produce_costs_one_instruction() {
        let pair = KernelPair::simple("t", 2, 10);
        for d in [DesignPoint::syncopti(), DesignPoint::heavywt()] {
            let low = lower(&pair, &d, Role::Producer).unwrap();
            assert_eq!(low.program.static_instrs_per_iteration(), 4);
        }
    }

    #[test]
    fn software_layout_places_eight_slots_per_line() {
        let info = queue_mem_info(&DesignPoint::existing(), QueueId(2)).unwrap();
        assert_eq!(info.qlu, 8);
        assert_eq!(info.stride, 16);
        assert_eq!(info.base, Addr::new(QUEUE_BASE + 2 * QUEUE_SPAN));
        // 8 slots x 16 B = one 128 B line.
        assert_eq!(info.line_of_slot(0), info.line_of_slot(7));
        assert_ne!(info.line_of_slot(7), info.line_of_slot(8));
    }

    #[test]
    fn syncopti_q64_layout_packs_sixteen_per_line() {
        let info = queue_mem_info(&DesignPoint::syncopti_q64(), QueueId(0)).unwrap();
        assert_eq!(info.qlu, 16);
        assert_eq!(info.stride, 8);
        assert_eq!(info.depth, 64);
        assert_eq!(info.bytes(), 512);
        assert_eq!(info.line_of_slot(0), info.line_of_slot(15));
        assert_ne!(info.line_of_slot(15), info.line_of_slot(16));
    }

    #[test]
    fn heavywt_has_no_memory_layout() {
        assert!(queue_mem_info(&DesignPoint::heavywt(), QueueId(0)).is_none());
    }

    #[test]
    fn fused_program_has_no_queue_ops() {
        let pair = KernelPair::simple("t", 3, 10);
        let low = lower_fused(&pair).unwrap();
        assert!(low.program.queues.is_empty());
        // 3 + branch from producer, consume stripped, 3 + branch consumer.
        assert_eq!(low.program.static_instrs_per_iteration(), 8);
    }

    #[test]
    fn consumer_role_lowers_consumer_kernel() {
        let pair = KernelPair::simple("t", 5, 10);
        let low = lower(&pair, &DesignPoint::heavywt(), Role::Consumer).unwrap();
        // consume(1) + 5 ALU + branch = 7.
        assert_eq!(low.program.static_instrs_per_iteration(), 7);
        let plan = low.program.queue_plan(QueueId(0)).unwrap();
        assert_eq!(plan.role, QueueRole::Consume);
    }

    #[test]
    fn regions_get_distinct_page_aligned_bases() {
        let q = QueueId(0);
        let mut producer = Kernel::new(vec![KStep::Produce(q), KStep::Branch]);
        let a = producer.add_region("a", 100);
        let b2 = producer.add_region("b", 10_000);
        producer.steps.insert(
            0,
            KStep::LoadStream {
                region: a,
                stride: 8,
            },
        );
        producer.steps.insert(1, KStep::LoadRandom { region: b2 });
        let pair = KernelPair {
            name: "r",
            producer,
            consumer: Kernel::new(vec![KStep::Consume(q)]),
            iterations: 5,
        };
        let low = lower(&pair, &DesignPoint::existing(), Role::Producer).unwrap();
        let bases: Vec<u64> = low.region_bases.values().map(|a| a.as_u64()).collect();
        assert_eq!(bases.len(), 2);
        assert_ne!(bases[0], bases[1]);
        for b in bases {
            assert_eq!(b % 4096, 0);
        }
    }

    #[test]
    fn nested_loops_lower_recursively() {
        let q = QueueId(0);
        let pair = KernelPair {
            name: "nest",
            producer: Kernel::new(vec![KStep::Loop(vec![KStep::Alu(2), KStep::Produce(q)], 3)]),
            consumer: Kernel::new(vec![KStep::Loop(vec![KStep::Consume(q)], 3)]),
            iterations: 2,
        };
        let low = lower(&pair, &DesignPoint::heavywt(), Role::Producer).unwrap();
        // Inner: (2 ALU + produce) x 3 = 9 per outer iteration.
        assert_eq!(low.program.static_instrs_per_iteration(), 9);
    }

    #[test]
    fn lowering_invalid_pair_fails() {
        let mut pair = KernelPair::simple("t", 1, 10);
        pair.iterations = 0;
        assert!(lower(&pair, &DesignPoint::existing(), Role::Producer).is_err());
    }
}

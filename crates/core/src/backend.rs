//! Design-point backends: the streaming hardware behind the cores.
//!
//! * [`SoftwareBackend`] — EXISTING/MEMOPTI: communication is ordinary
//!   loads/stores; the backend only implements MEMOPTI's write-forward
//!   trigger (push a queue line once all its slots' flags are set).
//! * [`SyncOptiBackend`] — §4.2: stream address generation, distributed
//!   occupancy counters, dormant OzQ waiting, line forwarding, bulk ACKs
//!   on the shared bus, the consume timeout flush, and optionally the
//!   1 KB stream cache.
//! * [`HeavyWtBackend`] — §4.1: the synchronization array and its
//!   dedicated pipelined interconnect.

use std::collections::{HashMap, VecDeque};

use hfs_check::{Checker, Mutation};
use hfs_cpu::{StreamCompletion, StreamPort, StreamSubmit, StreamToken};
use hfs_isa::{Addr, CoreId, QueueId};
use hfs_mem::{Completion, CtlPayload, MemEvent, MemOp, MemSystem, MemToken, Submit};
use hfs_sim::stats::StallComponent;
use hfs_sim::Cycle;
use hfs_trace::{TraceEvent, Tracer};

use crate::design::{DesignPoint, HeavyWtConfig, SyncOptiConfig};

use crate::lower::{queue_mem_info, QueueMemInfo, LINE_BYTES, QUEUE_BASE, QUEUE_SPAN};
use crate::queues::QueueCheck;
use crate::stream_cache::StreamCache;
use crate::sync_array::{SyncArray, SyncArrayConfig};

/// Control-message kind: bulk consumption ACK (consumer -> producer).
const CTL_BULK_ACK: u16 = 1;

/// Maps an address into (queue, byte offset) if it lies in the queue
/// backing store.
fn queue_of_addr(addr: Addr, queues: &[QueueId]) -> Option<(QueueId, u64)> {
    let a = addr.as_u64();
    if a < QUEUE_BASE {
        return None;
    }
    let qi = (a - QUEUE_BASE) / QUEUE_SPAN;
    let off = (a - QUEUE_BASE) % QUEUE_SPAN;
    let q = QueueId(u16::try_from(qi).ok()?);
    queues.contains(&q).then_some((q, off))
}

/// The design-point dispatch enum owned by the machine.
#[derive(Debug)]
pub(crate) enum Backend {
    /// EXISTING / MEMOPTI.
    Software(SoftwareBackend),
    /// SYNCOPTI and its SC / Q64 variants.
    SyncOpti(SyncOptiBackend),
    /// HEAVYWT.
    HeavyWt(HeavyWtBackend),
}

impl Backend {
    pub(crate) fn new(
        design: &DesignPoint,
        queues: &[QueueId],
        producer: CoreId,
        consumer: CoreId,
    ) -> Result<Self, hfs_sim::ConfigError> {
        design.validate()?;
        Ok(match design {
            DesignPoint::Existing(c) => Backend::Software(SoftwareBackend::new(
                queues, producer, consumer, false, c.qlu,
            )),
            DesignPoint::MemOpti(c) => Backend::Software(SoftwareBackend::new(
                queues, producer, consumer, true, c.qlu,
            )),
            DesignPoint::SyncOpti(c) => {
                Backend::SyncOpti(SyncOptiBackend::new(*c, design, queues, producer, consumer))
            }
            DesignPoint::HeavyWt(c) => {
                Backend::HeavyWt(HeavyWtBackend::new(*c, producer, consumer)?)
            }
            DesignPoint::RegMapped(c) => Backend::HeavyWt(HeavyWtBackend::new(
                HeavyWtConfig {
                    queue_depth: c.queue_depth,
                    transit: c.transit,
                    sa_ops_per_cycle: c.sa_ops_per_cycle,
                    sa_latency: 1,
                },
                producer,
                consumer,
            )?),
        })
    }

    /// Processes one cycle. `events` is the memory-event stream drained
    /// once per cycle by the machine and shared by every backend (each
    /// filters to its own queues), so multiple pipelines can coexist on
    /// one CMP.
    pub(crate) fn process(&mut self, mem: &mut MemSystem, events: &[MemEvent], now: Cycle) {
        match self {
            Backend::Software(b) => b.process(mem, events, now),
            Backend::SyncOpti(b) => b.process(mem, events, now),
            Backend::HeavyWt(b) => b.process(now),
        }
    }

    pub(crate) fn quiescent(&self) -> bool {
        match self {
            Backend::Software(b) => b.pending_forwards.is_empty(),
            Backend::SyncOpti(b) => b.quiescent(),
            Backend::HeavyWt(b) => b.sa.is_empty() && b.waiting.values().all(VecDeque::is_empty),
        }
    }

    /// Conservative lower bound on the next cycle this backend could act
    /// on its own: retry a queued forward, release a gated operation,
    /// advance the sync-array network, fire the consume-timeout flush, or
    /// surface a completion. `None` means the backend is purely
    /// event-driven until another component changes state (those changes
    /// are covered by the memory system's and cores' own bounds).
    pub(crate) fn next_event(&self, now: Cycle) -> Option<Cycle> {
        match self {
            Backend::Software(b) => (!b.pending_forwards.is_empty()).then(|| now.next()),
            Backend::SyncOpti(b) => b.next_event(now),
            Backend::HeavyWt(b) => b.next_event(now),
        }
    }

    /// The wake time the event scheduler arms for this backend: the
    /// `next_event` bound, tightened for SYNCOPTI so that *any* in-flight
    /// consume — released or not — keeps the backend processed every
    /// cycle. `next_event` rightly imposes no timing bound on a released
    /// consume (memory progress covers it), but `process` step 6
    /// refreshes the consume's stall-attribution location from the memory
    /// system each cycle, and the waiting consumer reads it every tick;
    /// skipping a process cycle would leave attribution stale versus
    /// per-cycle simulation.
    pub(crate) fn sched_wake(&self, now: Cycle) -> Option<Cycle> {
        let mut wake = self.next_event(now);
        if let Backend::SyncOpti(b) = self {
            if !b.waiting_consumes.is_empty() {
                let floor = now.next();
                wake = Some(wake.map_or(floor, |w| w.min(floor)));
            }
        }
        wake
    }

    /// Clears and returns the externally-driven-mutation flag (always
    /// false for the software backend: its only autonomous state is
    /// armed inside `process`, which the scheduler already re-arms
    /// after). Event-scheduler use only.
    pub(crate) fn take_touched(&mut self) -> bool {
        match self {
            Backend::Software(_) => false,
            Backend::SyncOpti(b) => std::mem::take(&mut b.touched),
            Backend::HeavyWt(b) => std::mem::take(&mut b.touched),
        }
    }

    pub(crate) fn check(&self) -> &QueueCheck {
        match self {
            Backend::Software(b) => &b.check,
            Backend::SyncOpti(b) => &b.check,
            Backend::HeavyWt(b) => &b.check,
        }
    }

    /// Stream-cache statistics, when the design has one.
    pub(crate) fn stream_cache(&self) -> Option<&StreamCache> {
        match self {
            Backend::SyncOpti(b) => b.sc.as_ref(),
            _ => None,
        }
    }

    /// Hands the backend a shared tracer handle.
    pub(crate) fn set_tracer(&mut self, tracer: Tracer) {
        match self {
            Backend::Software(b) => b.tracer = tracer,
            Backend::SyncOpti(b) => b.tracer = tracer,
            Backend::HeavyWt(b) => b.tracer = tracer,
        }
    }

    /// Hands the backend a shared machine-checker handle. The software
    /// backend's traffic is ordinary loads/stores, fully covered by the
    /// memory system's own hooks, so it carries no handle.
    pub(crate) fn set_checker(&mut self, checker: Checker) {
        match self {
            Backend::Software(_) => {}
            Backend::SyncOpti(b) => b.checker = checker,
            Backend::HeavyWt(b) => b.checker = checker,
        }
    }
}

impl StreamPort for Backend {
    fn try_produce(
        &mut self,
        mem: &mut MemSystem,
        core: CoreId,
        q: QueueId,
        value: u64,
        now: Cycle,
    ) -> StreamSubmit {
        match self {
            Backend::Software(_) => {
                panic!("software-queue programs must not contain produce instructions")
            }
            Backend::SyncOpti(b) => b.try_produce(mem, core, q, value, now),
            Backend::HeavyWt(b) => b.try_produce(core, q, value, now),
        }
    }

    fn try_consume(
        &mut self,
        mem: &mut MemSystem,
        core: CoreId,
        q: QueueId,
        now: Cycle,
    ) -> StreamSubmit {
        match self {
            Backend::Software(_) => {
                panic!("software-queue programs must not contain consume instructions")
            }
            Backend::SyncOpti(b) => b.try_consume(mem, core, q, now),
            Backend::HeavyWt(b) => b.try_consume(core, q, now),
        }
    }

    fn poll(&mut self, core: CoreId, now: Cycle, out: &mut Vec<StreamCompletion>) {
        match self {
            Backend::Software(_) => {}
            Backend::SyncOpti(b) => b.poll(core, now, out),
            Backend::HeavyWt(b) => b.poll(core, now, out),
        }
    }

    fn charge_blocked(&mut self, core: CoreId, q: QueueId, produce: bool, n: u64) {
        match self {
            Backend::Software(_) => {}
            Backend::SyncOpti(b) => b.charge_blocked(core, q, produce, n),
            Backend::HeavyWt(b) => b.charge_blocked(core, q, produce, n),
        }
    }

    fn location(&self, token: StreamToken) -> StallComponent {
        match self {
            Backend::Software(_) => StallComponent::PreL2,
            Backend::SyncOpti(b) => b.location(token),
            Backend::HeavyWt(_) => StallComponent::PreL2,
        }
    }

    fn on_mem_completion(&mut self, completion: Completion) {
        if let Backend::SyncOpti(b) = self {
            b.on_mem_completion(completion);
        }
    }
}

// ---------------------------------------------------------------------
// Software queues (EXISTING / MEMOPTI)
// ---------------------------------------------------------------------

/// Backend for software-queue designs. With `forward` set (MEMOPTI), the
/// producer's L2 pushes a queue line to the consumer once every slot on it
/// has been produced (its flag set), per §3.5.1's locality-preserving
/// write-forward policy (N = QLU).
#[derive(Debug)]
pub(crate) struct SoftwareBackend {
    queues: Vec<QueueId>,
    producer: CoreId,
    consumer: CoreId,
    forward: bool,
    /// Per line number: flag-set stores performed since last forward.
    line_sets: HashMap<u64, u32>,
    pending_forwards: VecDeque<Addr>,
    check: QueueCheck,
    /// Queue layout unit (slots per line, Figure 5).
    qlu: u32,
    /// Byte distance between slots (128 / qlu, at least 16).
    stride: u64,
    tracer: Tracer,
}

impl SoftwareBackend {
    fn new(
        queues: &[QueueId],
        producer: CoreId,
        consumer: CoreId,
        forward: bool,
        qlu: u32,
    ) -> Self {
        SoftwareBackend {
            queues: queues.to_vec(),
            producer,
            consumer,
            forward,
            line_sets: HashMap::new(),
            pending_forwards: VecDeque::new(),
            check: QueueCheck::new(),
            qlu,
            stride: (LINE_BYTES / u64::from(qlu)).max(16),
            tracer: Tracer::disabled(),
        }
    }

    fn process(&mut self, mem: &mut MemSystem, events: &[MemEvent], now: Cycle) {
        for ev in events {
            if let MemEvent::StorePerformed { core, addr, value } = *ev {
                let Some((q, off)) = queue_of_addr(addr, &self.queues) else {
                    continue;
                };
                let is_flag = off % self.stride == 8;
                if core == self.producer && !is_flag {
                    // A data store: verify it lands on the right slot
                    // (data stores may perform out of program order; the
                    // release flag store enforces publication order).
                    let slot = off / self.stride;
                    self.check.on_produce_slot(q, slot, value, 32);
                    // Data values carry their absolute sequence number, so
                    // they double as the trace's produce/consume match key.
                    self.tracer.emit(|| TraceEvent::Produce {
                        core,
                        queue: q,
                        seq: value,
                        at: now.as_u64(),
                    });
                } else if core == self.consumer && is_flag && value == 0 {
                    // Flag cleared: one slot consumed. The consumed value
                    // itself flows through a load the backend cannot see;
                    // conservation is still checked via counts.
                    let seen = self.check.consumed(q);
                    self.tracer.emit(|| TraceEvent::Consume {
                        core,
                        queue: q,
                        seq: seen,
                        at: now.as_u64(),
                    });
                    self.check.on_consume(q, seen, seen);
                } else if core == self.producer && is_flag && value != 0 && self.forward {
                    let line = addr.as_u64() / LINE_BYTES;
                    let n = self.line_sets.entry(line).or_insert(0);
                    *n += 1;
                    if *n >= self.qlu {
                        *n = 0;
                        self.pending_forwards.push_back(addr.line_base(LINE_BYTES));
                    }
                }
            }
        }
        // Issue queued forwards; OzQ-full keeps them pending (the §4.4
        // back-pressure that fills MEMOPTI's OzQ).
        while let Some(line_addr) = self.pending_forwards.front().copied() {
            if mem.forward_line(self.producer, self.consumer, line_addr, now) {
                self.pending_forwards.pop_front();
            } else {
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------
// SYNCOPTI
// ---------------------------------------------------------------------

/// Cycles without a new produce on a queue before waiting consumes are
/// released to pull partially-filled lines through ordinary coherence
/// (the §4.2 flush for lines that stop filling: stream tails and
/// low-rate queues). While a line is actively filling, consumes wait for
/// its single bulk write-forward instead of stealing it item by item.
const IDLE_FLUSH: u64 = 30;

#[derive(Debug)]
struct SoQueue {
    info: QueueMemInfo,
    /// Cycle of the most recent performed produce store on this queue.
    last_perform: Cycle,
    // Producer side.
    prod_next: u64,
    prod_released: u64,
    acked: u64,
    waiting_produces: VecDeque<MemToken>,
    // Consumer side.
    cons_next: u64,
    /// Low-water mark: every slot below this has been consumed (used to
    /// avoid stream-cache fills of already-read slots).
    cons_next_completed: u64,
    forwarded: u64,
    performed: u64,
    line_fill: HashMap<u64, u32>,
    pending_forwards: VecDeque<Addr>,
}

#[derive(Debug)]
struct WaitingConsume {
    q: QueueId,
    slot: u64,
    mem_token: MemToken,
    stream_token: StreamToken,
    released: bool,
    /// Released before the slot's line was write-forwarded: the gated
    /// load pulls the data through ordinary coherence instead.
    early_released: bool,
}

/// Backend for SYNCOPTI and its optimized variants.
#[derive(Debug)]
pub(crate) struct SyncOptiBackend {
    producer: CoreId,
    consumer: CoreId,
    queues: Vec<QueueId>,
    state: HashMap<QueueId, SoQueue>,
    waiting_consumes: VecDeque<WaitingConsume>,
    completions: Vec<StreamCompletion>,
    pending_acks: Vec<(QueueId, u64)>,
    locations: HashMap<StreamToken, StallComponent>,
    next_token: u64,
    sc: Option<StreamCache>,
    check: QueueCheck,
    tracer: Tracer,
    checker: Checker,
    /// Set when an externally driven call (produce/consume submission,
    /// matched memory completion) arms new backend state; the event
    /// scheduler polls-and-clears it to know when to re-derive this
    /// backend's wake time.
    touched: bool,
}

impl SyncOptiBackend {
    fn new(
        cfg: SyncOptiConfig,
        design: &DesignPoint,
        queues: &[QueueId],
        producer: CoreId,
        consumer: CoreId,
    ) -> Self {
        let state = queues
            .iter()
            .map(|&q| {
                let info = queue_mem_info(design, q).expect("SYNCOPTI uses memory backing");
                (
                    q,
                    SoQueue {
                        info,
                        last_perform: Cycle::ZERO,
                        prod_next: 0,
                        prod_released: 0,
                        acked: 0,
                        waiting_produces: VecDeque::new(),
                        cons_next: 0,
                        cons_next_completed: 0,
                        forwarded: 0,
                        performed: 0,
                        line_fill: HashMap::new(),
                        pending_forwards: VecDeque::new(),
                    },
                )
            })
            .collect();
        SyncOptiBackend {
            sc: cfg.stream_cache.then(StreamCache::paper_1kb),
            producer,
            consumer,
            queues: queues.to_vec(),
            state,
            waiting_consumes: VecDeque::new(),
            completions: Vec::new(),
            pending_acks: Vec::new(),
            locations: HashMap::new(),
            next_token: 0,
            check: QueueCheck::new(),
            tracer: Tracer::disabled(),
            checker: Checker::disabled(),
            touched: false,
        }
    }

    fn quiescent(&self) -> bool {
        self.waiting_consumes.is_empty()
            && self.completions.is_empty()
            && self.pending_acks.is_empty()
            && self
                .state
                .values()
                .all(|s| s.waiting_produces.is_empty() && s.pending_forwards.is_empty())
    }

    fn fresh_token(&mut self) -> StreamToken {
        let t = StreamToken(self.next_token);
        self.next_token += 1;
        t
    }

    fn try_produce(
        &mut self,
        mem: &mut MemSystem,
        core: CoreId,
        q: QueueId,
        value: u64,
        now: Cycle,
    ) -> StreamSubmit {
        assert_eq!(core, self.producer, "{q} is produced by {}", self.producer);
        let s = self.state.get_mut(&q).expect("queue planned");
        // Stream address generation (renaming) assigns the next slot; its
        // 2-cycle latency is overlapped with the L1 access (§4.2).
        let addr = s.info.slot_addr(s.prod_next);
        // The gated store sits dormant in its OzQ slot until the
        // occupancy counter admits it; a full OzQ back-pressures the
        // pipeline (PreL2).
        match mem.submit(core, MemOp::store(addr, value).gated(), now) {
            Submit::Accepted(tok) => {
                let seq = s.prod_next;
                s.prod_next += 1;
                s.waiting_produces.push_back(tok);
                let depth = s.prod_next - s.acked;
                self.check.on_produce(q, value);
                self.tracer.emit(|| TraceEvent::Produce {
                    core,
                    queue: q,
                    seq,
                    at: now.as_u64(),
                });
                self.tracer.emit(|| TraceEvent::QueueDepth {
                    queue: q,
                    at: now.as_u64(),
                    depth,
                });
                self.touched = true;
                StreamSubmit::Done {
                    at: now + 1,
                    value: None,
                }
            }
            Submit::Rejected(_) => StreamSubmit::Blocked,
            Submit::L1Hit { .. } => unreachable!("gated ops bypass the L1"),
        }
    }

    fn try_consume(
        &mut self,
        mem: &mut MemSystem,
        core: CoreId,
        q: QueueId,
        now: Cycle,
    ) -> StreamSubmit {
        assert_eq!(core, self.consumer, "{q} is consumed by {}", self.consumer);
        let s = self.state.get_mut(&q).expect("queue planned");
        let slot = s.cons_next;
        let addr = s.info.slot_addr(slot);
        // Stream-cache hit: 1-cycle consume-to-use. The consume still
        // sends a background shadow access to the L2 so the occupancy
        // counters are updated (§5).
        if let Some(sc) = self.sc.as_mut() {
            if let Some(v) = sc.take(q, slot) {
                s.cons_next += 1;
                if let Submit::Accepted(tok) =
                    mem.submit(core, MemOp::load(addr).gated().background(), now)
                {
                    mem.release(tok, now);
                }
                self.check.on_consume(q, slot, v);
                self.tracer.emit(|| TraceEvent::ScHit {
                    queue: q,
                    at: now.as_u64(),
                });
                self.tracer.emit(|| TraceEvent::Consume {
                    core,
                    queue: q,
                    seq: slot,
                    at: now.as_u64() + 1,
                });
                // The shadow access keeps the L2 occupancy counters
                // updated (§5), so line-completing consumes still emit
                // their bulk ACK to the producer.
                let done = slot + 1;
                if done.is_multiple_of(u64::from(s.info.qlu)) {
                    self.pending_acks.push((q, done));
                }
                self.touched = true;
                return StreamSubmit::Done {
                    at: now + 1,
                    value: Some(v),
                };
            }
        }
        // Ordinary path: a gated background load; released once the
        // consumer-side counter shows forwarded data (or by timeout).
        match mem.submit(core, MemOp::load(addr).gated().background(), now) {
            Submit::Accepted(tok) => {
                s.cons_next += 1;
                let stok = self.fresh_token();
                self.waiting_consumes.push_back(WaitingConsume {
                    q,
                    slot,
                    mem_token: tok,
                    stream_token: stok,
                    released: false,
                    early_released: false,
                });
                self.tracer.emit(|| TraceEvent::SyncWait {
                    core,
                    queue: q,
                    at: now.as_u64(),
                });
                self.touched = true;
                StreamSubmit::Pending(stok)
            }
            Submit::Rejected(_) => StreamSubmit::Blocked,
            Submit::L1Hit { .. } => unreachable!("gated ops bypass the L1"),
        }
    }

    fn poll(&mut self, core: CoreId, _now: Cycle, out: &mut Vec<StreamCompletion>) {
        if core == self.consumer {
            out.append(&mut self.completions);
        }
    }

    fn location(&self, token: StreamToken) -> StallComponent {
        self.locations
            .get(&token)
            .copied()
            .unwrap_or(StallComponent::PreL2)
    }

    fn on_mem_completion(&mut self, c: Completion) {
        if let Some(pos) = self
            .waiting_consumes
            .iter()
            .position(|w| w.mem_token == c.token)
        {
            let w = self.waiting_consumes.remove(pos).expect("position valid");
            let value = c.value.expect("consume completions carry values");
            self.check.on_consume(w.q, w.slot, value);
            let consumer = self.consumer;
            self.tracer.emit(|| TraceEvent::Consume {
                core: consumer,
                queue: w.q,
                seq: w.slot,
                at: c.at.as_u64(),
            });
            self.locations.remove(&w.stream_token);
            self.completions.push(StreamCompletion {
                token: w.stream_token,
                value: Some(value),
                at: c.at,
            });
            let s = self.state.get_mut(&w.q).expect("queue planned");
            s.cons_next_completed = s.cons_next_completed.max(w.slot + 1);
            let done = w.slot + 1;
            // Bulk ACK when the last item of a line is consumed; timeout
            // path ACKs eagerly to keep the tail moving.
            if done.is_multiple_of(u64::from(s.info.qlu)) || w.early_released {
                self.pending_acks.push((w.q, done));
            }
            self.touched = true;
        }
    }

    fn process(&mut self, mem: &mut MemSystem, events: &[MemEvent], now: Cycle) {
        // 1. Memory events: performed produces, forward completions, ACKs.
        for ev in events {
            match *ev {
                MemEvent::StorePerformed { core, addr, .. } if core == self.producer => {
                    let Some((q, _)) = queue_of_addr(addr, &self.queues) else {
                        continue;
                    };
                    let s = self.state.get_mut(&q).expect("queue planned");
                    s.performed += 1;
                    s.last_perform = now;
                    let line = addr.as_u64() / LINE_BYTES;
                    let n = s.line_fill.entry(line).or_insert(0);
                    *n += 1;
                    if *n >= s.info.qlu {
                        *n = 0;
                        s.pending_forwards.push_back(addr.line_base(LINE_BYTES));
                    }
                }
                MemEvent::ForwardDone { to, line_addr, .. } if to == self.consumer => {
                    let Some((q, _)) = queue_of_addr(line_addr, &self.queues) else {
                        continue;
                    };
                    let s = self.state.get_mut(&q).expect("queue planned");
                    let first = s.forwarded;
                    s.forwarded += u64::from(s.info.qlu);
                    if let Some(sc) = self.sc.as_mut() {
                        // Reverse-map the line to queue addresses and fill
                        // the stream cache with the items it carries,
                        // skipping slots the consumer already read via the
                        // early coherence path (stale entries would pin
                        // the cache full forever).
                        for slot in first.max(s.cons_next_completed)..s.forwarded {
                            let mut v = mem.func_mem().read(s.info.slot_addr(slot));
                            if self.checker.fire_once(Mutation::CorruptForwardValue) {
                                v ^= 1;
                            }
                            let _ = sc.fill(q, slot, v);
                            self.tracer.emit(|| TraceEvent::ScFill {
                                queue: q,
                                at: now.as_u64(),
                            });
                        }
                    }
                }
                MemEvent::CtlDelivered { to, payload, .. }
                    if to == self.producer && payload.kind == CTL_BULK_ACK =>
                {
                    let q = QueueId(payload.a as u16);
                    if let Some(s) = self.state.get_mut(&q) {
                        s.acked = s.acked.max(payload.b);
                    }
                }
                _ => {}
            }
        }

        // 2. Send pending ACKs over the shared bus.
        for (q, watermark) in self.pending_acks.drain(..) {
            mem.send_ctl(
                self.consumer,
                self.producer,
                CtlPayload {
                    kind: CTL_BULK_ACK,
                    a: u32::from(q.0),
                    b: watermark,
                },
            );
        }

        // 3. Release produces admitted by the occupancy counter.
        for q in &self.queues {
            let s = self.state.get_mut(q).expect("queue planned");
            while let Some(&tok) = s.waiting_produces.front() {
                if s.prod_released - s.acked >= u64::from(s.info.depth) {
                    break; // queue full (or wrap-around not yet consumed)
                }
                mem.release(tok, now);
                s.prod_released += 1;
                s.waiting_produces.pop_front();
            }
        }

        // 4. Release consumes. The fast path waits for the slot's line
        // to be write-forwarded into the consumer's L2 (the consume then
        // hits locally). If the producer has gone idle on the queue while
        // produced-but-unforwarded data exists — a partially filled tail
        // line or a low-rate stream — the consume is released anyway and
        // pulls the line through ordinary coherence.
        for w in self.waiting_consumes.iter_mut() {
            if w.released {
                continue;
            }
            let s = &self.state[&w.q];
            if w.slot < s.forwarded {
                w.released = true;
                mem.release(w.mem_token, now);
            } else if w.slot < s.performed && now.saturating_since(s.last_perform) > IDLE_FLUSH {
                w.released = true;
                w.early_released = true;
                mem.release(w.mem_token, now);
            }
        }

        // 5. Issue queued line forwards.
        for q in &self.queues {
            let s = self.state.get_mut(q).expect("queue planned");
            while let Some(line_addr) = s.pending_forwards.front().copied() {
                if mem.forward_line(self.producer, self.consumer, line_addr, now) {
                    s.pending_forwards.pop_front();
                } else {
                    break;
                }
            }
        }

        // 6. Refresh stall-attribution locations.
        for w in &self.waiting_consumes {
            let comp = mem
                .location(w.mem_token)
                .map(|l| l.component())
                .unwrap_or(StallComponent::PostL2);
            self.locations.insert(w.stream_token, comp);
        }

        // 7. Stream-cache inclusion audit: every still-takeable entry
        // must cover a forwarded slot and match memory. Entries below the
        // completion low-water mark are unreachable leftovers (their
        // consume completed through coherence before the fill landed) and
        // their backing word may legally be rewritten on wrap-around, so
        // they are excluded.
        if self.checker.is_enabled() {
            if let Some(sc) = &self.sc {
                let mut entries: Vec<_> = sc.entries().collect();
                entries.sort_unstable_by_key(|&(q, slot, _)| (q.0, slot));
                for (q, slot, v) in entries {
                    let s = &self.state[&q];
                    if slot < s.cons_next_completed {
                        continue;
                    }
                    let expected = mem.func_mem().read(s.info.slot_addr(slot));
                    self.checker
                        .stream_cache_entry(now, q, slot, v, expected, s.forwarded);
                }
            }
        }
    }

    /// See [`Backend::next_event`]. Releasable gated operations and
    /// queued forwards retry every cycle (`now + 1`); a waiting consume on
    /// produced-but-unforwarded data fires at the idle-flush deadline.
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let floor = now.next();
        let mut best: Option<Cycle> = None;
        let mut fold = |t: Cycle| {
            let t = t.max(floor);
            best = Some(best.map_or(t, |b| b.min(t)));
        };
        if !self.completions.is_empty() || !self.pending_acks.is_empty() {
            fold(floor);
        }
        for s in self.state.values() {
            if !s.pending_forwards.is_empty() {
                fold(floor);
            }
            if !s.waiting_produces.is_empty() && s.prod_released - s.acked < u64::from(s.info.depth)
            {
                fold(floor);
            }
        }
        for w in &self.waiting_consumes {
            if w.released {
                continue;
            }
            let s = &self.state[&w.q];
            if w.slot < s.forwarded {
                fold(floor);
            } else if w.slot < s.performed {
                fold(s.last_perform + IDLE_FLUSH + 1);
            }
        }
        best
    }

    /// See [`StreamPort::charge_blocked`]. A refused produce is a gated
    /// store the OzQ rejected before touching anything; a refused
    /// consume first probed the stream cache (and missed — a hit would
    /// have completed), so only that miss counter needs replaying.
    fn charge_blocked(&mut self, _core: CoreId, _q: QueueId, produce: bool, n: u64) {
        if !produce {
            if let Some(sc) = self.sc.as_mut() {
                sc.charge_missed_takes(n);
            }
        }
    }
}

// ---------------------------------------------------------------------
// HEAVYWT
// ---------------------------------------------------------------------

/// Backend for the synchronization-array design.
#[derive(Debug)]
pub(crate) struct HeavyWtBackend {
    producer: CoreId,
    consumer: CoreId,
    sa: SyncArray,
    waiting: HashMap<QueueId, VecDeque<StreamToken>>,
    completions: Vec<StreamCompletion>,
    next_token: u64,
    check: QueueCheck,
    /// Per-queue produced count (producer-side occupancy numerator).
    injected: HashMap<QueueId, u64>,
    /// Per-queue consumption ACKs received back at the producer.
    acked: HashMap<QueueId, u64>,
    /// ACKs in flight on the dedicated interconnect (one per consume,
    /// arriving `transit` cycles later): the §4.4 synchronization
    /// acknowledgment delay that makes full queues transit-sensitive.
    acks_in_flight: hfs_sim::TimedQueue<QueueId>,
    depth: u64,
    transit: u64,
    sa_latency: u64,
    /// Per-cycle scratch for the sorted wake order, reused so the hot
    /// loop allocates nothing in steady state.
    wake_scratch: Vec<QueueId>,
    tracer: Tracer,
    checker: Checker,
    /// See [`SyncOptiBackend`]: externally-driven-mutation flag for the
    /// event scheduler.
    touched: bool,
    /// Cycle of the last [`SyncArray::begin_cycle`], so core-side
    /// `try_*` calls can lazily run the reset the event scheduler's
    /// skipped `process` would have performed (see [`Self::refresh`]).
    last_begin: Option<Cycle>,
}

impl HeavyWtBackend {
    fn new(
        cfg: HeavyWtConfig,
        producer: CoreId,
        consumer: CoreId,
    ) -> Result<Self, hfs_sim::ConfigError> {
        Ok(HeavyWtBackend {
            producer,
            consumer,
            sa: SyncArray::new(SyncArrayConfig {
                depth: cfg.queue_depth,
                transit: cfg.transit,
                ops_per_cycle: cfg.sa_ops_per_cycle,
                stage_capacity: cfg.sa_ops_per_cycle,
            })?,
            waiting: HashMap::new(),
            completions: Vec::new(),
            next_token: 0,
            check: QueueCheck::new(),
            injected: HashMap::new(),
            acked: HashMap::new(),
            acks_in_flight: hfs_sim::TimedQueue::new(),
            depth: u64::from(cfg.queue_depth),
            transit: cfg.transit,
            sa_latency: cfg.sa_latency,
            wake_scratch: Vec::new(),
            tracer: Tracer::disabled(),
            checker: Checker::disabled(),
            touched: false,
            last_begin: None,
        })
    }

    /// Runs [`SyncArray::begin_cycle`] at most once per cycle. Per-cycle
    /// stepping resets the array's port budget every cycle via
    /// `process`; the event scheduler skips `process` on cycles where
    /// the backend provably has nothing timed to do, but a core-side
    /// `try_produce`/`try_consume` can still land on such a cycle and
    /// must not be charged against a stale, partially-spent budget from
    /// the last processed cycle. On a skipped cycle the network is
    /// empty and no ACK is due (`next_event` arms the backend
    /// otherwise), so the budget reset is the only effect the skipped
    /// `begin_cycle` would have had.
    fn refresh(&mut self, now: Cycle) {
        if self.last_begin != Some(now) {
            self.last_begin = Some(now);
            self.sa.begin_cycle();
        }
    }

    fn process(&mut self, now: Cycle) {
        while let Some(q) = self.acks_in_flight.pop_ready(now) {
            *self.acked.entry(q).or_insert(0) += 1;
        }
        if self.sa.in_network() > 0 && self.checker.fire_once(Mutation::SyncArrayLoseItem) {
            let _ = self.sa.lose_one_in_network();
        }
        self.refresh(now);
        // Wake consumes that were waiting for data, in FIFO order per
        // queue, while array ports remain. Queue order must be fixed:
        // ports are contended, so a map-iteration order here would leak
        // into cycle counts and break run-to-run determinism.
        let mut queues = std::mem::take(&mut self.wake_scratch);
        queues.clear();
        queues.extend(
            self.waiting
                .iter()
                .filter(|(_, w)| !w.is_empty())
                .map(|(q, _)| *q),
        );
        queues.sort_unstable();
        let drop_wakes = !queues.is_empty()
            && queues.iter().any(|&q| self.sa.occupancy(q) > 0)
            && self.checker.fire_once(Mutation::DropConsumerWake);
        if !drop_wakes {
            for &q in &queues {
                while let Some(&tok) = self.waiting.get(&q).and_then(VecDeque::front) {
                    let Some(v) = self.sa.try_consume(q) else {
                        break;
                    };
                    self.waiting.get_mut(&q).expect("queue known").pop_front();
                    let slot = self.check.consumed(q);
                    self.check.on_consume(q, slot, v);
                    self.acks_in_flight.push(now + self.transit, q);
                    let (consumer, at) = (self.consumer, now + self.sa_latency);
                    self.tracer.emit(|| TraceEvent::Consume {
                        core: consumer,
                        queue: q,
                        seq: slot,
                        at: at.as_u64(),
                    });
                    self.completions.push(StreamCompletion {
                        token: tok,
                        value: Some(v),
                        at: now + self.sa_latency,
                    });
                }
            }
        }
        self.wake_scratch = queues;
        if self.checker.is_enabled() {
            self.checker.sync_array_audit(
                now,
                self.sa.injected(),
                self.sa.delivered(),
                self.sa.in_network() as u64,
            );
            let depth = self.sa.config().depth as usize;
            let mut qs: Vec<QueueId> = self.injected.keys().copied().collect();
            qs.sort_unstable();
            for q in qs {
                self.checker
                    .sync_array_queue(now, q, self.sa.occupancy(q), depth);
            }
            // Wake liveness: a consumer still parked after the wake pass
            // while its ring has data and ports remain means the pass
            // skipped it.
            for &q in &self.wake_scratch {
                if self.waiting.get(&q).is_some_and(|w| !w.is_empty()) {
                    self.checker.sync_array_wake(
                        now,
                        q,
                        self.sa.occupancy(q),
                        u64::from(self.sa.budget_left()),
                    );
                }
            }
        }
    }

    fn try_produce(&mut self, core: CoreId, q: QueueId, value: u64, now: Cycle) -> StreamSubmit {
        assert_eq!(core, self.producer, "{q} is produced by {}", self.producer);
        self.refresh(now);
        // Occupancy counter check (queue-full): produced minus ACKed
        // consumptions. ACKs take a transit delay back, so a longer
        // interconnect shrinks the usable queue for codes that keep it
        // full (§4.4's bzip2 effect; a deeper queue restores the slack).
        let occ =
            self.injected.get(&q).copied().unwrap_or(0) - self.acked.get(&q).copied().unwrap_or(0);
        if occ >= self.depth {
            return StreamSubmit::Blocked;
        }
        if self.sa.try_inject(q, value) {
            self.touched = true;
            let seq = self.injected.get(&q).copied().unwrap_or(0);
            *self.injected.entry(q).or_insert(0) += 1;
            self.check.on_produce(q, value);
            self.tracer.emit(|| TraceEvent::Produce {
                core,
                queue: q,
                seq,
                at: now.as_u64(),
            });
            self.tracer.emit(|| TraceEvent::QueueDepth {
                queue: q,
                at: now.as_u64(),
                depth: occ + 1,
            });
            StreamSubmit::Done {
                at: now + 1,
                value: None,
            }
        } else {
            StreamSubmit::Blocked
        }
    }

    fn try_consume(&mut self, core: CoreId, q: QueueId, now: Cycle) -> StreamSubmit {
        assert_eq!(core, self.consumer, "{q} is consumed by {}", self.consumer);
        // Both outcomes arm timed state: an immediate consume launches an
        // ACK onto the interconnect; a parked one arms the wake pass.
        self.touched = true;
        self.refresh(now);
        let no_earlier_waiter = self.waiting.get(&q).is_none_or(VecDeque::is_empty);
        if no_earlier_waiter {
            if let Some(v) = self.sa.try_consume(q) {
                let slot = self.check.consumed(q);
                self.check.on_consume(q, slot, v);
                self.acks_in_flight.push(now + self.transit, q);
                let at = now + self.sa_latency;
                self.tracer.emit(|| TraceEvent::Consume {
                    core,
                    queue: q,
                    seq: slot,
                    at: at.as_u64(),
                });
                // Consume-to-use = the backing store's access latency:
                // 1 cycle for the distributed store (the §4.4 HEAVYWT
                // advantage), more for a centralized one (§3.5.2).
                return StreamSubmit::Done { at, value: Some(v) };
            }
        }
        let tok = StreamToken(self.next_token);
        self.next_token += 1;
        self.waiting.entry(q).or_default().push_back(tok);
        self.tracer.emit(|| TraceEvent::SyncWait {
            core,
            queue: q,
            at: now.as_u64(),
        });
        StreamSubmit::Pending(tok)
    }

    fn poll(&mut self, core: CoreId, _now: Cycle, out: &mut Vec<StreamCompletion>) {
        if core == self.consumer {
            out.append(&mut self.completions);
        }
    }

    /// See [`Backend::next_event`]. In-flight ACKs wake at their arrival
    /// stamp; anything moving through the network, a serviceable waiting
    /// consume, or an undrained completion needs the very next cycle.
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let floor = now.next();
        let mut best: Option<Cycle> = None;
        let mut fold = |t: Cycle| {
            let t = t.max(floor);
            best = Some(best.map_or(t, |b| b.min(t)));
        };
        if let Some(t) = self.acks_in_flight.next_ready() {
            fold(t);
        }
        if self.sa.in_network() > 0 || !self.completions.is_empty() {
            fold(floor);
        }
        for (q, w) in &self.waiting {
            if !w.is_empty() && self.sa.occupancy(*q) > 0 {
                fold(floor);
            }
        }
        best
    }

    /// See [`StreamPort::charge_blocked`]. A produce refused by the
    /// occupancy counter mutates nothing; one that passed the counter
    /// but found injection stage 0 full bumped the array's inject-stall
    /// counter on every attempt. Consumes never block on this design.
    fn charge_blocked(&mut self, _core: CoreId, q: QueueId, produce: bool, n: u64) {
        if produce {
            let occ = self.injected.get(&q).copied().unwrap_or(0)
                - self.acked.get(&q).copied().unwrap_or(0);
            if occ < self.depth {
                self.sa.charge_inject_stalls(n);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfs_mem::MemConfig;

    fn mem() -> MemSystem {
        MemSystem::new(MemConfig::itanium2_cmp()).unwrap()
    }

    fn hw_backend(transit: u64, depth: u32) -> HeavyWtBackend {
        HeavyWtBackend::new(
            HeavyWtConfig {
                queue_depth: depth,
                transit,
                sa_ops_per_cycle: 4,
                sa_latency: 1,
            },
            CoreId(0),
            CoreId(1),
        )
        .unwrap()
    }

    #[test]
    fn heavywt_produce_then_consume_roundtrip() {
        let mut b = hw_backend(1, 32);
        let q = QueueId(0);
        let now = Cycle::new(0);
        match b.try_produce(CoreId(0), q, 0, now) {
            StreamSubmit::Done { .. } => {}
            other => panic!("expected immediate produce, got {other:?}"),
        }
        // Data needs one network cycle to reach the array.
        b.process(Cycle::new(1));
        match b.try_consume(CoreId(1), q, Cycle::new(1)) {
            StreamSubmit::Done { value: Some(0), at } => assert_eq!(at, Cycle::new(2)),
            other => panic!("expected consume hit, got {other:?}"),
        }
        assert!(b.check.finish().is_ok());
    }

    #[test]
    fn heavywt_consume_before_data_pends_then_completes() {
        let mut b = hw_backend(2, 32);
        let q = QueueId(3);
        let tok = match b.try_consume(CoreId(1), q, Cycle::new(0)) {
            StreamSubmit::Pending(t) => t,
            other => panic!("expected pending, got {other:?}"),
        };
        let mut done = Vec::new();
        b.poll(CoreId(1), Cycle::new(0), &mut done);
        assert!(done.is_empty());
        let _ = b.try_produce(CoreId(0), q, 0, Cycle::new(1));
        // Two network cycles later the waiting consume completes.
        b.process(Cycle::new(2));
        b.process(Cycle::new(3));
        b.poll(CoreId(1), Cycle::new(3), &mut done);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].token, tok);
        assert_eq!(done[0].value, Some(0));
    }

    #[test]
    fn heavywt_occupancy_blocks_until_ack_returns() {
        let mut b = hw_backend(4, 4);
        let q = QueueId(0);
        let mut t = 0u64;
        // Fill the queue (4 entries) plus whatever the network holds.
        let mut sent = 0u64;
        for _ in 0..200 {
            b.process(Cycle::new(t));
            while let StreamSubmit::Done { .. } = b.try_produce(CoreId(0), q, sent, Cycle::new(t)) {
                sent += 1;
            }
            t += 1;
            if sent >= 4 {
                break;
            }
        }
        assert_eq!(sent, 4, "occupancy counter must cap at the queue depth");
        assert!(matches!(
            b.try_produce(CoreId(0), q, sent, Cycle::new(t)),
            StreamSubmit::Blocked
        ));
        // One consume; its completion sends the ACK, which takes
        // `transit` cycles to free a producer credit.
        let tok = match b.try_consume(CoreId(1), q, Cycle::new(t)) {
            StreamSubmit::Pending(tk) => Some(tk),
            StreamSubmit::Done { .. } => None,
            StreamSubmit::Blocked => panic!("consume cannot block"),
        };
        let mut consumed_at = if tok.is_none() { Some(t) } else { None };
        let mut unblocked_at = None;
        for _ in 0..40 {
            t += 1;
            b.process(Cycle::new(t));
            if consumed_at.is_none() {
                let mut done = Vec::new();
                b.poll(CoreId(1), Cycle::new(t), &mut done);
                if !done.is_empty() {
                    consumed_at = Some(t);
                }
            }
            if consumed_at.is_some() {
                if let StreamSubmit::Done { .. } = b.try_produce(CoreId(0), q, sent, Cycle::new(t))
                {
                    unblocked_at = Some(t);
                    break;
                }
            }
        }
        let consumed = consumed_at.expect("consume must complete");
        let unblocked = unblocked_at.expect("producer must eventually unblock");
        assert!(
            unblocked >= consumed + 4,
            "credit must take >= transit cycles to return ({consumed} -> {unblocked})"
        );
    }

    #[test]
    fn syncopti_assigns_consecutive_stream_addresses() {
        let design = DesignPoint::syncopti();
        let mut b = match Backend::new(&design, &[QueueId(0)], CoreId(0), CoreId(1)).unwrap() {
            Backend::SyncOpti(b) => b,
            _ => unreachable!(),
        };
        let mut m = mem();
        let now = Cycle::new(0);
        for i in 0..3 {
            match b.try_produce(&mut m, CoreId(0), QueueId(0), i, now) {
                StreamSubmit::Done { .. } => {}
                other => panic!("produce {i}: {other:?}"),
            }
        }
        let s = &b.state[&QueueId(0)];
        assert_eq!(s.prod_next, 3);
        assert_eq!(s.waiting_produces.len(), 3);
        // Slot addresses stride by line/QLU = 16 bytes.
        assert_eq!(
            s.info.slot_addr(1).as_u64() - s.info.slot_addr(0).as_u64(),
            16
        );
    }

    #[test]
    fn syncopti_consume_waits_for_forward_watermark() {
        let design = DesignPoint::syncopti();
        let mut b = match Backend::new(&design, &[QueueId(0)], CoreId(0), CoreId(1)).unwrap() {
            Backend::SyncOpti(b) => b,
            _ => unreachable!(),
        };
        let mut m = mem();
        let tok = match b.try_consume(&mut m, CoreId(1), QueueId(0), Cycle::new(0)) {
            StreamSubmit::Pending(t) => t,
            other => panic!("{other:?}"),
        };
        // Nothing produced, nothing forwarded: stays pending.
        b.process(&mut m, &[], Cycle::new(1));
        let mut done = Vec::new();
        b.poll(CoreId(1), Cycle::new(1), &mut done);
        assert!(done.is_empty());
        assert_eq!(b.location(tok), hfs_sim::stats::StallComponent::PreL2);
    }

    #[test]
    fn queue_of_addr_maps_ranges() {
        let queues = [QueueId(0), QueueId(2)];
        let base = crate::lower::queue_base(QueueId(0));
        assert_eq!(queue_of_addr(base, &queues), Some((QueueId(0), 0)));
        assert_eq!(queue_of_addr(base + 24, &queues), Some((QueueId(0), 24)));
        // Queue 1 is not in the set.
        let q1 = crate::lower::queue_base(QueueId(1));
        assert_eq!(queue_of_addr(q1, &queues), None);
        // Below the queue region entirely.
        assert_eq!(queue_of_addr(hfs_isa::Addr::new(0x1000), &queues), None);
    }
}

//! Hardware-storage and OS-context cost accounting (§3.4–§3.5, §6).
//!
//! The paper's closing claim is that SYNCOPTI+SC achieves 98% of
//! HEAVYWT's speedup "while using only 1% of the additional on-chip
//! storage hardware". This module makes that comparison computable: for
//! each design point it reports the dedicated storage added to the CMP
//! and the architectural state the OS must save and restore on a context
//! switch (the hidden cost that §3.4.2/§3.5.2 charge against dedicated
//! designs).

use crate::design::DesignPoint;

/// Queue datum size in bytes.
const ENTRY_BYTES: u64 = 8;
/// Architectural queues provided by the machine (§4.3: 64 queues).
pub const ARCH_QUEUES: u64 = 64;
/// Bytes per hardware occupancy counter (enough for depth 64).
const COUNTER_BYTES: u64 = 2;
/// Cores sharing the streaming hardware in the evaluated CMP.
const CORES: u64 = 2;

/// Storage/OS cost summary for one design point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageCost {
    /// Dedicated on-chip storage added to the CMP, in bytes (backing
    /// stores, stream caches, occupancy counters, dedicated-network
    /// buffers). Excludes the ordinary caches, which every design shares.
    pub added_storage_bytes: u64,
    /// Architectural streaming state the OS must context-switch, in
    /// bytes. Memory-backed designs keep queue *data* in ordinary pages
    /// (switched with the address space for free); dedicated stores make
    /// the whole backing store plus in-flight network data part of the
    /// process context (§3.5.2/§3.5.3).
    pub os_context_bytes: u64,
    /// Whether the design needs new interconnect fabric beyond the
    /// existing memory network (§3.2).
    pub needs_new_interconnect: bool,
}

/// Computes the cost summary for `design`.
///
/// # Example
///
/// ```
/// use hfs_core::storage::storage_cost;
/// use hfs_core::DesignPoint;
///
/// let sw = storage_cost(&DesignPoint::existing());
/// let hw = storage_cost(&DesignPoint::heavywt());
/// assert_eq!(sw.added_storage_bytes, 0);
/// assert!(hw.added_storage_bytes > 1000 * sw.added_storage_bytes.max(1));
/// ```
pub fn storage_cost(design: &DesignPoint) -> StorageCost {
    let depth = u64::from(design.queue_depth());
    match design {
        // Software queues: no hardware added; queue state lives in
        // ordinary memory and thread-local registers.
        DesignPoint::Existing(_) => StorageCost {
            added_storage_bytes: 0,
            os_context_bytes: 0,
            needs_new_interconnect: false,
        },
        // MEMOPTI adds only the write-forward parameterization in the
        // cache controller (a few configuration registers).
        DesignPoint::MemOpti(_) => StorageCost {
            added_storage_bytes: 16,
            os_context_bytes: 0,
            needs_new_interconnect: false,
        },
        // SYNCOPTI adds replicated per-queue occupancy counters at each
        // core's L2 controller, plus the optional 1 KB stream cache; the
        // counters are the only new OS context (§4.1: "OS support to
        // context switch the synchronization counters").
        DesignPoint::SyncOpti(c) => {
            let counters = ARCH_QUEUES * COUNTER_BYTES * CORES;
            let sc = if c.stream_cache { 1024 } else { 0 };
            StorageCost {
                added_storage_bytes: counters + sc,
                os_context_bytes: counters,
                needs_new_interconnect: false,
            }
        }
        // HEAVYWT adds the distributed queue backing store (per-core so
        // any core can consume), occupancy counters at both ends, and a
        // dedicated interconnect whose in-flight buffers are also
        // process state (§3.5.3).
        DesignPoint::HeavyWt(h) => {
            let backing = ARCH_QUEUES * depth * ENTRY_BYTES * CORES;
            let counters = ARCH_QUEUES * COUNTER_BYTES * CORES;
            let network = h.transit * u64::from(h.sa_ops_per_cycle) * ENTRY_BYTES;
            StorageCost {
                added_storage_bytes: backing + counters + network,
                os_context_bytes: backing + counters + network,
                needs_new_interconnect: true,
            }
        }
        // Register-mapped queues need the same dedicated backing store
        // and network as HEAVYWT, plus the remapped register file space
        // is architectural state by definition.
        DesignPoint::RegMapped(r) => {
            let backing = ARCH_QUEUES * depth * ENTRY_BYTES * CORES;
            let counters = ARCH_QUEUES * COUNTER_BYTES * CORES;
            let network = r.transit * u64::from(r.sa_ops_per_cycle) * ENTRY_BYTES;
            StorageCost {
                added_storage_bytes: backing + counters + network,
                os_context_bytes: backing + counters + network,
                needs_new_interconnect: true,
            }
        }
    }
}

/// The §6 headline: the proposed design's added storage as a fraction of
/// HEAVYWT's.
pub fn sc_q64_storage_fraction() -> f64 {
    let sc = storage_cost(&DesignPoint::syncopti_sc_q64());
    let hw = storage_cost(&DesignPoint::heavywt());
    sc.added_storage_bytes as f64 / hw.added_storage_bytes as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn software_designs_add_nothing() {
        let c = storage_cost(&DesignPoint::existing());
        assert_eq!(c.added_storage_bytes, 0);
        assert_eq!(c.os_context_bytes, 0);
        assert!(!c.needs_new_interconnect);
        assert!(storage_cost(&DesignPoint::memopti()).added_storage_bytes < 64);
    }

    #[test]
    fn heavywt_storage_is_dominated_by_the_backing_store() {
        let c = storage_cost(&DesignPoint::heavywt());
        // 64 queues x 32 entries x 8 B x 2 cores = 32 KiB of backing.
        assert!(c.added_storage_bytes >= 32 * 1024);
        assert!(c.needs_new_interconnect);
        assert_eq!(c.os_context_bytes, c.added_storage_bytes);
    }

    #[test]
    fn syncopti_context_is_counters_only() {
        let c = storage_cost(&DesignPoint::syncopti_sc_q64());
        assert_eq!(c.os_context_bytes, ARCH_QUEUES * 2 * 2);
        assert!(!c.needs_new_interconnect);
        // The stream cache dominates its added storage.
        assert!(c.added_storage_bytes >= 1024);
        assert!(c.added_storage_bytes < 2048);
    }

    #[test]
    fn paper_headline_one_percent_storage() {
        let f = sc_q64_storage_fraction();
        // Paper: "only 1% of the additional on-chip storage hardware".
        assert!(
            f < 0.05,
            "SC+Q64 should use a few percent of HEAVYWT's storage, got {:.1}%",
            f * 100.0
        );
    }

    #[test]
    fn regmapped_costs_at_least_heavywt() {
        let rm = storage_cost(&DesignPoint::regmapped(0));
        let hw = storage_cost(&DesignPoint::heavywt());
        assert!(rm.added_storage_bytes >= hw.added_storage_bytes);
    }
}

//! The HEAVYWT synchronization array and its dedicated interconnect.
//!
//! Data moves from the producer core through a pipelined point-to-point
//! network (one stage per transit cycle, with per-stage back-pressure)
//! into per-queue ring buffers located at the consumer core. Because
//! stalled items wait *in the network*, a longer pipeline effectively adds
//! buffering — the §4.4 observation that a 10-cycle interconnect can
//! *help* codes that frequently fill their queues — while a freed queue
//! slot takes `transit` cycles to become visible to the producer as the
//! bubble propagates backwards (the synchronization-acknowledgment delay).
//!
//! The array services a fixed number of operations per cycle (4 in the
//! paper), shared between network arrivals and consume reads.

use std::collections::{HashMap, VecDeque};

use hfs_isa::QueueId;
use hfs_sim::ConfigError;

/// Synchronization-array configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncArrayConfig {
    /// Ring-buffer entries per queue.
    pub depth: u32,
    /// Network pipeline stages (= end-to-end transit cycles).
    pub transit: u64,
    /// Array operations serviced per cycle (arrivals + consumes).
    pub ops_per_cycle: u32,
    /// Items each network stage can hold.
    pub stage_capacity: u32,
}

impl SyncArrayConfig {
    /// The paper's §4.3 configuration for a given transit delay and depth.
    pub fn paper(transit: u64, depth: u32) -> Self {
        SyncArrayConfig {
            depth,
            transit,
            ops_per_cycle: 4,
            stage_capacity: 4,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Rejects zero depths, transits, rates, or stage capacities.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.depth == 0
            || self.transit == 0
            || self.ops_per_cycle == 0
            || self.stage_capacity == 0
        {
            return Err(ConfigError::new(
                "synchronization array dimensions must be non-zero",
            ));
        }
        Ok(())
    }
}

/// The dedicated backing store plus its network.
#[derive(Debug)]
pub struct SyncArray {
    cfg: SyncArrayConfig,
    /// `stages[0]` is the injection point; the last stage feeds the array.
    stages: Vec<VecDeque<(QueueId, u64)>>,
    rings: HashMap<QueueId, VecDeque<u64>>,
    budget: u32,
    injected: u64,
    delivered: u64,
    inject_stalls: u64,
}

impl SyncArray {
    /// Creates the array and network.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation failures.
    pub fn new(cfg: SyncArrayConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        Ok(SyncArray {
            stages: (0..cfg.transit).map(|_| VecDeque::new()).collect(),
            rings: HashMap::new(),
            budget: cfg.ops_per_cycle,
            injected: 0,
            delivered: 0,
            inject_stalls: 0,
            cfg,
        })
    }

    /// The active configuration.
    pub fn config(&self) -> SyncArrayConfig {
        self.cfg
    }

    /// Starts a new cycle: advance the network (consuming array ports for
    /// arrivals) and reset the consume budget.
    pub fn begin_cycle(&mut self) {
        self.budget = self.cfg.ops_per_cycle;
        // Drain the last stage into the rings, respecting per-queue depth
        // and the port budget, in FIFO order with head-of-line blocking.
        let last = self.stages.len() - 1;
        while self.budget > 0 {
            let Some(&(q, _)) = self.stages[last].front() else {
                break;
            };
            let ring = self.rings.entry(q).or_default();
            if ring.len() >= self.cfg.depth as usize {
                break; // head-of-line blocked on a full ring
            }
            let (_, v) = self.stages[last].pop_front().expect("front checked");
            ring.push_back(v);
            self.delivered += 1;
            self.budget -= 1;
        }
        // Advance earlier stages towards the array.
        for i in (0..last).rev() {
            while self.stages[i + 1].len() < self.cfg.stage_capacity as usize {
                match self.stages[i].pop_front() {
                    Some(item) => self.stages[i + 1].push_back(item),
                    None => break,
                }
            }
        }
    }

    /// Producer-side injection. Returns false when the first network
    /// stage is full (back-pressure reached the producer).
    pub fn try_inject(&mut self, q: QueueId, value: u64) -> bool {
        if self.stages[0].len() >= self.cfg.stage_capacity as usize {
            self.inject_stalls += 1;
            return false;
        }
        self.stages[0].push_back((q, value));
        self.injected += 1;
        true
    }

    /// Accounts `n` additional failed injections in bulk — the counter
    /// effect of a producer re-attempting into a full first stage every
    /// cycle across a fast-forwarded window.
    pub fn charge_inject_stalls(&mut self, n: u64) {
        self.inject_stalls += n;
    }

    /// Consumer-side read: pops the oldest value of `q` if present and an
    /// array port is available this cycle.
    pub fn try_consume(&mut self, q: QueueId) -> Option<u64> {
        if self.budget == 0 {
            return None;
        }
        let v = self.rings.get_mut(&q)?.pop_front()?;
        self.budget -= 1;
        Some(v)
    }

    /// Items buffered in `q`'s ring.
    pub fn occupancy(&self, q: QueueId) -> usize {
        self.rings.get(&q).map_or(0, VecDeque::len)
    }

    /// Items anywhere in the network.
    pub fn in_network(&self) -> usize {
        self.stages.iter().map(VecDeque::len).sum()
    }

    /// Whether the network and every ring are empty.
    pub fn is_empty(&self) -> bool {
        self.in_network() == 0 && self.rings.values().all(VecDeque::is_empty)
    }

    /// Total items injected.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Total items delivered into rings.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Injection attempts refused by back-pressure.
    pub fn inject_stalls(&self) -> u64 {
        self.inject_stalls
    }

    /// Array ports still unused this cycle.
    pub fn budget_left(&self) -> u32 {
        self.budget
    }

    /// Test aid: silently discards one in-flight network item, simulating
    /// a lost-item hardware fault. Returns whether anything was dropped.
    /// The injected/delivered counters are *not* adjusted, so the machine
    /// checker's conservation audit must flag the discrepancy.
    pub fn lose_one_in_network(&mut self) -> bool {
        for stage in &mut self.stages {
            if stage.pop_front().is_some() {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sa(transit: u64, depth: u32) -> SyncArray {
        SyncArray::new(SyncArrayConfig::paper(transit, depth)).unwrap()
    }

    #[test]
    fn transit_sets_delivery_delay() {
        let mut a = sa(3, 32);
        assert!(a.try_inject(QueueId(0), 7));
        // After 1 and 2 cycles: still in the network.
        a.begin_cycle();
        assert_eq!(a.try_consume(QueueId(0)), None);
        a.begin_cycle();
        assert_eq!(a.try_consume(QueueId(0)), None);
        // Third cycle: delivered.
        a.begin_cycle();
        assert_eq!(a.try_consume(QueueId(0)), Some(7));
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut a = sa(1, 32);
        for i in 0..4 {
            assert!(a.try_inject(QueueId(0), i));
        }
        // Cycle 1: the four arrivals consume the whole port budget.
        a.begin_cycle();
        assert_eq!(a.try_consume(QueueId(0)), None);
        // Cycle 2: a fresh budget serves the consumes in FIFO order.
        a.begin_cycle();
        for i in 0..4 {
            assert_eq!(a.try_consume(QueueId(0)), Some(i));
        }
    }

    #[test]
    fn ports_cap_consumes_per_cycle() {
        let mut a = sa(1, 32);
        for i in 0..8 {
            let _ = a.try_inject(QueueId(0), i);
        }
        a.begin_cycle(); // delivers up to 4 (port budget)
        a.begin_cycle(); // delivers the rest; fresh budget of 4
        let mut got = 0;
        while a.try_consume(QueueId(0)).is_some() {
            got += 1;
        }
        assert_eq!(got, 4, "port budget limits consumes per cycle");
    }

    #[test]
    fn full_ring_backpressures_into_network() {
        let mut a = sa(2, 4);
        // Fill ring (4) + network (2 stages x 4) + reject beyond.
        let mut accepted = 0;
        for i in 0..64 {
            a.begin_cycle();
            // Never consume: everything backs up.
            while a.try_inject(QueueId(0), i) {
                accepted += 1;
            }
        }
        assert_eq!(a.occupancy(QueueId(0)), 4);
        assert_eq!(a.in_network(), 8);
        assert_eq!(accepted, 12, "capacity = ring + network stages");
        assert!(a.inject_stalls() > 0);
        // Consuming one frees space that propagates back.
        a.begin_cycle();
        assert!(a.try_consume(QueueId(0)).is_some());
        a.begin_cycle(); // bubble moves into the network
        assert!(a.try_inject(QueueId(0), 99), "freed slot reaches producer");
    }

    #[test]
    fn queues_do_not_interfere_when_draining() {
        let mut a = sa(1, 32);
        a.try_inject(QueueId(0), 1);
        a.try_inject(QueueId(1), 2);
        a.begin_cycle();
        assert_eq!(a.try_consume(QueueId(1)), Some(2));
        assert_eq!(a.try_consume(QueueId(0)), Some(1));
        assert!(a.is_empty());
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(SyncArray::new(SyncArrayConfig {
            depth: 0,
            transit: 1,
            ops_per_cycle: 4,
            stage_capacity: 4
        })
        .is_err());
    }

    #[test]
    fn stats_count() {
        let mut a = sa(1, 2);
        a.try_inject(QueueId(0), 0);
        a.begin_cycle();
        assert_eq!(a.injected(), 1);
        assert_eq!(a.delivered(), 1);
    }
}

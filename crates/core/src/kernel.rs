//! Abstract workload kernels: design-independent descriptions of the
//! producer/consumer loop pairs that DSWP and StreamIt create.
//!
//! A [`KernelPair`] says *what* each thread does per iteration —
//! application work (ALU/FP/loads/stores over named regions), queue
//! produces/consumes, and loop nesting — without committing to a
//! communication mechanism. [`crate::lower`] turns a kernel into a
//! concrete ISA program for a given [`crate::DesignPoint`].

use hfs_isa::QueueId;
use hfs_sim::ConfigError;

/// One abstract step of a kernel loop body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KStep {
    /// `n` independent integer ALU instructions.
    Alu(u32),
    /// A chain of `n` dependent integer ALU instructions (dependence
    /// height). When it follows a `Consume`, the chain's first link reads
    /// the consumed value, exposing consume-to-use latency.
    AluChain(u32),
    /// A chain of `n` dependent floating-point instructions; seeded by a
    /// preceding `Consume` like [`KStep::AluChain`].
    FpChain(u32),
    /// `n` independent floating-point instructions.
    Fp(u32),
    /// A branch instruction.
    Branch,
    /// A sequential load over region `region` with the given byte stride.
    LoadStream {
        /// Kernel-local region index.
        region: usize,
        /// Byte stride per execution.
        stride: u64,
    },
    /// A load at a random 8-byte-aligned offset in `region`.
    LoadRandom {
        /// Kernel-local region index.
        region: usize,
    },
    /// A sequential store over `region`.
    StoreStream {
        /// Kernel-local region index.
        region: usize,
        /// Byte stride per execution.
        stride: u64,
    },
    /// A store at a random offset in `region`.
    StoreRandom {
        /// Kernel-local region index.
        region: usize,
    },
    /// Send one value on queue `q` (producer side).
    Produce(QueueId),
    /// Receive one value from queue `q` (consumer side).
    Consume(QueueId),
    /// An inner counted loop.
    Loop(Vec<KStep>, u64),
}

/// A named memory region a kernel touches. The size determines cache
/// behavior (working-set effects).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KRegion {
    /// Human-readable name.
    pub name: &'static str,
    /// Size in bytes.
    pub bytes: u64,
}

/// One thread's kernel: regions plus the outer-loop body.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Kernel {
    /// Regions, indexed by position (referenced by `KStep::*Stream` etc.).
    pub regions: Vec<KRegion>,
    /// Outer-loop body steps.
    pub steps: Vec<KStep>,
}

impl Kernel {
    /// A kernel with no memory regions.
    pub fn new(steps: Vec<KStep>) -> Self {
        Kernel {
            regions: Vec::new(),
            steps,
        }
    }

    /// Adds a region and returns its kernel-local index.
    pub fn add_region(&mut self, name: &'static str, bytes: u64) -> usize {
        self.regions.push(KRegion { name, bytes });
        self.regions.len() - 1
    }

    fn collect_queues(steps: &[KStep], produces: &mut Vec<QueueId>, consumes: &mut Vec<QueueId>) {
        for s in steps {
            match s {
                KStep::Produce(q) if !produces.contains(q) => {
                    produces.push(*q);
                }
                KStep::Consume(q) if !consumes.contains(q) => {
                    consumes.push(*q);
                }
                KStep::Loop(body, _) => Self::collect_queues(body, produces, consumes),
                _ => {}
            }
        }
    }

    /// Queues this kernel produces into and consumes from.
    pub fn queue_uses(&self) -> (Vec<QueueId>, Vec<QueueId>) {
        let mut p = Vec::new();
        let mut c = Vec::new();
        Self::collect_queues(&self.steps, &mut p, &mut c);
        (p, c)
    }

    fn count_comm(steps: &[KStep]) -> u64 {
        steps
            .iter()
            .map(|s| match s {
                KStep::Produce(_) | KStep::Consume(_) => 1,
                KStep::Loop(body, n) => n * Self::count_comm(body),
                _ => 0,
            })
            .sum()
    }

    /// Communication operations per outer iteration.
    pub fn comm_ops_per_iteration(&self) -> u64 {
        Self::count_comm(&self.steps)
    }
}

/// A two-thread streaming pipeline: the unit the paper evaluates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelPair {
    /// Benchmark name (Table 1).
    pub name: &'static str,
    /// The upstream (producer) thread's kernel.
    pub producer: Kernel,
    /// The downstream (consumer) thread's kernel.
    pub consumer: Kernel,
    /// Outer-loop iterations both threads execute.
    pub iterations: u64,
}

impl KernelPair {
    /// A minimal pipeline for tests and quickstarts: the producer does
    /// `work` ALU ops then produces; the consumer consumes then does
    /// `work` ALU ops. One queue, `iterations` iterations.
    pub fn simple(name: &'static str, work: u32, iterations: u64) -> Self {
        let q = QueueId(0);
        KernelPair {
            name,
            producer: Kernel::new(vec![KStep::Alu(work), KStep::Produce(q), KStep::Branch]),
            consumer: Kernel::new(vec![KStep::Consume(q), KStep::Alu(work), KStep::Branch]),
            iterations,
        }
    }

    /// Returns a copy with every queue id shifted by `offset` — used to
    /// give each pipeline of a multi-pair CMP a disjoint queue range.
    ///
    /// # Example
    ///
    /// ```
    /// use hfs_core::kernel::KernelPair;
    /// use hfs_isa::QueueId;
    ///
    /// let pair = KernelPair::simple("p", 2, 10).with_queue_offset(16);
    /// assert_eq!(pair.queues().unwrap(), vec![QueueId(16)]);
    /// ```
    #[must_use]
    pub fn with_queue_offset(&self, offset: u16) -> KernelPair {
        fn shift(steps: &[KStep], offset: u16) -> Vec<KStep> {
            steps
                .iter()
                .map(|s| match s {
                    KStep::Produce(q) => KStep::Produce(QueueId(q.0 + offset)),
                    KStep::Consume(q) => KStep::Consume(QueueId(q.0 + offset)),
                    KStep::Loop(body, n) => KStep::Loop(shift(body, offset), *n),
                    other => other.clone(),
                })
                .collect()
        }
        let mut out = self.clone();
        out.producer.steps = shift(&self.producer.steps, offset);
        out.consumer.steps = shift(&self.consumer.steps, offset);
        out
    }

    /// All queues used, in id order, with their (producer-side,
    /// consumer-side) role check.
    ///
    /// # Errors
    ///
    /// Returns an error when a queue is produced or consumed by both
    /// threads, produced but never consumed, or vice versa — pipelined
    /// streaming requires acyclic single-producer/single-consumer queues.
    pub fn queues(&self) -> Result<Vec<QueueId>, ConfigError> {
        let (pp, pc) = self.producer.queue_uses();
        let (cp, cc) = self.consumer.queue_uses();
        if !pc.is_empty() || !cp.is_empty() {
            return Err(ConfigError::new(
                "pipeline is acyclic: the producer thread may only produce and \
                 the consumer thread may only consume",
            ));
        }
        let mut ps = pp.clone();
        ps.sort_unstable();
        let mut cs = cc.clone();
        cs.sort_unstable();
        if ps != cs {
            return Err(ConfigError::new(
                "every queue must have exactly one producer and one consumer",
            ));
        }
        Ok(ps)
    }

    /// Validates structure: queue pairing and per-iteration produce /
    /// consume balance per queue.
    ///
    /// # Errors
    ///
    /// See [`KernelPair::queues`]; additionally rejects pairs whose
    /// per-iteration produce and consume counts differ for some queue.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let queues = self.queues()?;
        for q in queues {
            let p = count_queue_ops(&self.producer.steps, q, true);
            let c = count_queue_ops(&self.consumer.steps, q, false);
            if p != c {
                return Err(ConfigError::new(format!(
                    "queue {q}: {p} produces but {c} consumes per iteration"
                )));
            }
        }
        if self.iterations == 0 {
            return Err(ConfigError::new("kernel pair needs at least one iteration"));
        }
        Ok(())
    }
}

fn count_queue_ops(steps: &[KStep], q: QueueId, produce: bool) -> u64 {
    steps
        .iter()
        .map(|s| match s {
            KStep::Produce(x) if produce && *x == q => 1,
            KStep::Consume(x) if !produce && *x == q => 1,
            KStep::Loop(body, n) => n * count_queue_ops(body, q, produce),
            _ => 0,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_pair_validates() {
        let p = KernelPair::simple("t", 4, 10);
        assert!(p.validate().is_ok());
        assert_eq!(p.queues().unwrap(), vec![QueueId(0)]);
        assert_eq!(p.producer.comm_ops_per_iteration(), 1);
    }

    #[test]
    fn rejects_cyclic_pipelines() {
        let mut p = KernelPair::simple("t", 1, 10);
        p.producer.steps.push(KStep::Consume(QueueId(1)));
        assert!(p.validate().is_err());
    }

    #[test]
    fn rejects_unbalanced_queues() {
        let mut p = KernelPair::simple("t", 1, 10);
        p.producer.steps.push(KStep::Produce(QueueId(0)));
        assert!(p.validate().is_err());
    }

    #[test]
    fn rejects_unpaired_queue() {
        let mut p = KernelPair::simple("t", 1, 10);
        p.producer.steps.push(KStep::Produce(QueueId(5)));
        assert!(p.queues().is_err());
    }

    #[test]
    fn nested_loops_multiply_comm_counts() {
        let q = QueueId(0);
        let pair = KernelPair {
            name: "nest",
            producer: Kernel::new(vec![KStep::Loop(vec![KStep::Produce(q)], 4)]),
            consumer: Kernel::new(vec![KStep::Loop(vec![KStep::Consume(q)], 4)]),
            iterations: 3,
        };
        assert!(pair.validate().is_ok());
        assert_eq!(pair.producer.comm_ops_per_iteration(), 4);
    }

    #[test]
    fn regions_index_in_order() {
        let mut k = Kernel::default();
        assert_eq!(k.add_region("a", 64), 0);
        assert_eq!(k.add_region("b", 128), 1);
        assert_eq!(k.regions[1].name, "b");
    }
}

//! The design space of §3–§4: four streaming-support design points.

use std::fmt;

use hfs_sim::ConfigError;

/// Software-queue parameters (EXISTING/MEMOPTI).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoftwareConfig {
    /// Queue layout unit: slots per 128-byte cache line (Figure 5).
    /// 8 co-locates eight 8-byte datum + 8-byte flag pairs per line
    /// (dense, subject to false sharing); 1 pads each slot to a full
    /// line (no false sharing, wasted cache). The paper evaluated both
    /// and found QLU 8 uniformly better (§4.3).
    pub qlu: u32,
}

impl Default for SoftwareConfig {
    fn default() -> Self {
        SoftwareConfig { qlu: 8 }
    }
}

/// Register-mapped queue parameters (§3.1.3, iWarp/Raw style).
///
/// Communication rides existing instructions (a reserved register range
/// addresses the queues), so produce/consume cost no issue slots or
/// memory ports — but the split register space raises pressure, adding
/// spill/fill code for loops with many live values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegMappedConfig {
    /// Queue depth in entries.
    pub queue_depth: u32,
    /// Dedicated-interconnect transit in cycles.
    pub transit: u64,
    /// Backing-store operations per cycle.
    pub sa_ops_per_cycle: u32,
    /// Spill/fill pairs added per loop iteration by the reduced
    /// architectural register space (0 = enough registers remain).
    pub spill_ops: u32,
}

impl Default for RegMappedConfig {
    fn default() -> Self {
        RegMappedConfig {
            queue_depth: 32,
            transit: 1,
            sa_ops_per_cycle: 4,
            spill_ops: 0,
        }
    }
}

/// SYNCOPTI parameters (§4.2 and the §5 optimizations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncOptiConfig {
    /// Queue depth in entries (32 baseline; 64 for the Q64 optimization).
    pub queue_depth: u32,
    /// Queue layout unit: entries per 128-byte cache line (8 baseline;
    /// 16 for Q64's denser packing of 8-byte items).
    pub qlu: u32,
    /// Whether the 1 KB fully-associative stream cache is present (SC).
    pub stream_cache: bool,
}

impl Default for SyncOptiConfig {
    fn default() -> Self {
        SyncOptiConfig {
            queue_depth: 32,
            qlu: 8,
            stream_cache: false,
        }
    }
}

/// HEAVYWT parameters (§4.1): the synchronization-array design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeavyWtConfig {
    /// Queue depth in entries (32 baseline; 64 in Figure 6's third bar).
    pub queue_depth: u32,
    /// End-to-end latency of the dedicated pipelined interconnect in
    /// cycles (1 baseline; 10 in Figure 6; 4 in Figure 10).
    pub transit: u64,
    /// Synchronization-array operations serviced per cycle (4 in §4.3).
    pub sa_ops_per_cycle: u32,
    /// Consume-to-use latency of the backing store in cycles: 1 for the
    /// distributed store at the consumer core; larger for a centralized
    /// store physically farther from the cores (§3.5.2).
    pub sa_latency: u64,
}

impl Default for HeavyWtConfig {
    fn default() -> Self {
        HeavyWtConfig {
            queue_depth: 32,
            transit: 1,
            sa_ops_per_cycle: 4,
            sa_latency: 1,
        }
    }
}

/// One point in the streaming-support design space.
///
/// # Example
///
/// ```
/// use hfs_core::DesignPoint;
///
/// let d = DesignPoint::syncopti_sc_q64();
/// assert_eq!(d.label(), "SYNCOPTI+SC+Q64");
/// assert_eq!(d.queue_depth(), 64);
/// assert!(!d.is_software());
/// assert!(d.write_forwards());
/// assert!(d.validate().is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DesignPoint {
    /// Conventional shared-memory software queues (baseline commercial
    /// CMP).
    Existing(SoftwareConfig),
    /// Software queues plus L2 write-forwarding.
    MemOpti(SoftwareConfig),
    /// Produce/consume instructions with occupancy-counter
    /// synchronization over the existing memory system.
    SyncOpti(SyncOptiConfig),
    /// Dedicated synchronization-array backing store and interconnect.
    HeavyWt(HeavyWtConfig),
    /// Register-mapped queues over dedicated hardware (§3.1.3).
    RegMapped(RegMappedConfig),
}

impl DesignPoint {
    /// The EXISTING baseline (QLU 8).
    pub fn existing() -> Self {
        DesignPoint::Existing(SoftwareConfig::default())
    }

    /// EXISTING with an explicit queue layout unit (Figure 5 sweep).
    pub fn existing_with_qlu(qlu: u32) -> Self {
        DesignPoint::Existing(SoftwareConfig { qlu })
    }

    /// The MEMOPTI write-forwarding variant (QLU 8).
    pub fn memopti() -> Self {
        DesignPoint::MemOpti(SoftwareConfig::default())
    }

    /// MEMOPTI with an explicit queue layout unit.
    pub fn memopti_with_qlu(qlu: u32) -> Self {
        DesignPoint::MemOpti(SoftwareConfig { qlu })
    }

    /// Register-mapped queues with a given spill/fill burden.
    pub fn regmapped(spill_ops: u32) -> Self {
        DesignPoint::RegMapped(RegMappedConfig {
            spill_ops,
            ..RegMappedConfig::default()
        })
    }

    /// HEAVYWT with a *centralized* dedicated store: same hardware, but
    /// the single shared structure sits farther from the cores, raising
    /// the consume-to-use latency (§3.5.2).
    pub fn heavywt_centralized(sa_latency: u64) -> Self {
        DesignPoint::HeavyWt(HeavyWtConfig {
            sa_latency,
            ..HeavyWtConfig::default()
        })
    }

    /// Baseline SYNCOPTI (32-entry queues, QLU 8, no stream cache).
    pub fn syncopti() -> Self {
        DesignPoint::SyncOpti(SyncOptiConfig::default())
    }

    /// SYNCOPTI with 64-entry queues and QLU 16 (the Q64 optimization).
    pub fn syncopti_q64() -> Self {
        DesignPoint::SyncOpti(SyncOptiConfig {
            queue_depth: 64,
            qlu: 16,
            ..SyncOptiConfig::default()
        })
    }

    /// SYNCOPTI with the 1 KB stream cache (SC).
    pub fn syncopti_sc() -> Self {
        DesignPoint::SyncOpti(SyncOptiConfig {
            stream_cache: true,
            ..SyncOptiConfig::default()
        })
    }

    /// SYNCOPTI with both optimizations (SC+Q64) — the paper's proposed
    /// design, within 2% of HEAVYWT.
    pub fn syncopti_sc_q64() -> Self {
        DesignPoint::SyncOpti(SyncOptiConfig {
            queue_depth: 64,
            qlu: 16,
            stream_cache: true,
        })
    }

    /// Baseline HEAVYWT (1-cycle dedicated interconnect, 32 entries).
    pub fn heavywt() -> Self {
        DesignPoint::HeavyWt(HeavyWtConfig::default())
    }

    /// HEAVYWT with a given interconnect transit delay (Figure 6).
    pub fn heavywt_with_transit(transit: u64) -> Self {
        DesignPoint::HeavyWt(HeavyWtConfig {
            transit,
            ..HeavyWtConfig::default()
        })
    }

    /// HEAVYWT with a given transit delay and queue depth (Figure 6's
    /// rightmost bars use 10 cycles / 64 entries).
    pub fn heavywt_with(transit: u64, queue_depth: u32) -> Self {
        DesignPoint::HeavyWt(HeavyWtConfig {
            transit,
            queue_depth,
            ..HeavyWtConfig::default()
        })
    }

    /// Queue depth in entries for this design.
    pub fn queue_depth(&self) -> u32 {
        match self {
            DesignPoint::Existing(_) | DesignPoint::MemOpti(_) => 32,
            DesignPoint::SyncOpti(c) => c.queue_depth,
            DesignPoint::HeavyWt(c) => c.queue_depth,
            DesignPoint::RegMapped(c) => c.queue_depth,
        }
    }

    /// Whether communication lowers to software spin sequences (shared
    /// memory queues) rather than produce/consume instructions.
    pub fn is_software(&self) -> bool {
        matches!(self, DesignPoint::Existing(_) | DesignPoint::MemOpti(_))
    }

    /// Whether produce/consume ride existing instructions for free
    /// (register-mapped queues).
    pub fn is_register_mapped(&self) -> bool {
        matches!(self, DesignPoint::RegMapped(_))
    }

    /// Whether the design write-forwards filled streaming lines.
    pub fn write_forwards(&self) -> bool {
        matches!(self, DesignPoint::MemOpti(_) | DesignPoint::SyncOpti(_))
    }

    /// Spill/fill pairs the design's register pressure adds per loop
    /// iteration (non-zero only for register-mapped queues).
    pub fn spill_ops(&self) -> u32 {
        match self {
            DesignPoint::RegMapped(c) => c.spill_ops,
            _ => 0,
        }
    }

    /// Short display label matching the paper's figures.
    pub fn label(&self) -> String {
        match self {
            DesignPoint::Existing(c) if c.qlu == 8 => "EXISTING".to_string(),
            DesignPoint::Existing(c) => format!("EXISTING(QLU{})", c.qlu),
            DesignPoint::MemOpti(c) if c.qlu == 8 => "MEMOPTI".to_string(),
            DesignPoint::MemOpti(c) => format!("MEMOPTI(QLU{})", c.qlu),
            DesignPoint::RegMapped(c) if c.spill_ops == 0 => "REGMAPPED".to_string(),
            DesignPoint::RegMapped(c) => format!("REGMAPPED(spill{})", c.spill_ops),
            DesignPoint::SyncOpti(c) => {
                let mut s = "SYNCOPTI".to_string();
                if c.stream_cache {
                    s.push_str("+SC");
                }
                if c.queue_depth != 32 {
                    s.push_str(&format!("+Q{}", c.queue_depth));
                }
                s
            }
            DesignPoint::HeavyWt(c) => {
                if c.transit == 1 && c.queue_depth == 32 && c.sa_latency == 1 {
                    "HEAVYWT".to_string()
                } else if c.sa_latency != 1 {
                    format!("HEAVYWT(central,l={})", c.sa_latency)
                } else {
                    format!("HEAVYWT(t={},d={})", c.transit, c.queue_depth)
                }
            }
        }
    }

    /// Validates the design parameters.
    ///
    /// # Errors
    ///
    /// Rejects zero depths, QLUs that do not divide the queue depth or
    /// exceed a 128-byte line of 8-byte entries, and zero-rate hardware.
    pub fn validate(&self) -> Result<(), ConfigError> {
        match self {
            DesignPoint::Existing(c) | DesignPoint::MemOpti(c) => {
                if ![1, 2, 4, 8].contains(&c.qlu) {
                    return Err(ConfigError::new(
                        "software QLU must be 1, 2, 4 or 8 (16-byte data+flag slots                          on 128-byte lines)",
                    ));
                }
                Ok(())
            }
            DesignPoint::SyncOpti(c) => {
                if c.queue_depth == 0 {
                    return Err(ConfigError::new("queue depth must be non-zero"));
                }
                if c.qlu == 0 || c.qlu > 16 {
                    return Err(ConfigError::new(
                        "QLU must be between 1 and 16 (8-byte entries on 128-byte lines)",
                    ));
                }
                if c.queue_depth % c.qlu != 0 {
                    return Err(ConfigError::new("QLU must divide the queue depth"));
                }
                Ok(())
            }
            DesignPoint::HeavyWt(c) => {
                if c.queue_depth == 0 {
                    return Err(ConfigError::new("queue depth must be non-zero"));
                }
                if c.transit == 0 {
                    return Err(ConfigError::new("transit delay must be at least 1 cycle"));
                }
                if c.sa_ops_per_cycle == 0 {
                    return Err(ConfigError::new(
                        "the synchronization array needs at least one port",
                    ));
                }
                if c.sa_latency == 0 {
                    return Err(ConfigError::new(
                        "the backing store needs at least 1 cycle of access latency",
                    ));
                }
                Ok(())
            }
            DesignPoint::RegMapped(c) => {
                if c.queue_depth == 0 || c.transit == 0 || c.sa_ops_per_cycle == 0 {
                    return Err(ConfigError::new(
                        "register-mapped queue hardware dimensions must be non-zero",
                    ));
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(DesignPoint::existing().label(), "EXISTING");
        assert_eq!(DesignPoint::memopti().label(), "MEMOPTI");
        assert_eq!(DesignPoint::syncopti().label(), "SYNCOPTI");
        assert_eq!(DesignPoint::syncopti_sc().label(), "SYNCOPTI+SC");
        assert_eq!(DesignPoint::syncopti_q64().label(), "SYNCOPTI+Q64");
        assert_eq!(DesignPoint::syncopti_sc_q64().label(), "SYNCOPTI+SC+Q64");
        assert_eq!(DesignPoint::heavywt().label(), "HEAVYWT");
        assert_eq!(
            DesignPoint::heavywt_with(10, 64).label(),
            "HEAVYWT(t=10,d=64)"
        );
    }

    #[test]
    fn defaults_validate() {
        for d in [
            DesignPoint::existing(),
            DesignPoint::memopti(),
            DesignPoint::syncopti(),
            DesignPoint::syncopti_sc_q64(),
            DesignPoint::heavywt(),
            DesignPoint::heavywt_with_transit(10),
        ] {
            assert!(d.validate().is_ok(), "{d} should validate");
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        let d = DesignPoint::SyncOpti(SyncOptiConfig {
            qlu: 3,
            ..Default::default()
        });
        assert!(d.validate().is_err(), "qlu 3 does not divide 32");
        let d = DesignPoint::SyncOpti(SyncOptiConfig {
            qlu: 0,
            ..Default::default()
        });
        assert!(d.validate().is_err());
        let d = DesignPoint::HeavyWt(HeavyWtConfig {
            transit: 0,
            ..Default::default()
        });
        assert!(d.validate().is_err());
    }

    #[test]
    fn classification_helpers() {
        assert!(DesignPoint::existing().is_software());
        assert!(DesignPoint::memopti().is_software());
        assert!(!DesignPoint::syncopti().is_software());
        assert!(!DesignPoint::heavywt().is_software());
        assert!(!DesignPoint::existing().write_forwards());
        assert!(DesignPoint::memopti().write_forwards());
        assert!(DesignPoint::syncopti().write_forwards());
        assert!(!DesignPoint::heavywt().write_forwards());
    }

    #[test]
    fn queue_depths() {
        assert_eq!(DesignPoint::existing().queue_depth(), 32);
        assert_eq!(DesignPoint::syncopti_q64().queue_depth(), 64);
        assert_eq!(DesignPoint::heavywt_with(10, 64).queue_depth(), 64);
    }
}

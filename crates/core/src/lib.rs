//! High-frequency streaming support for CMPs — the design space of
//! Rangan et al., *Support for High-Frequency Streaming in CMPs*
//! (MICRO 2006), as an executable cycle-level model.
//!
//! The paper studies how producer/consumer thread pipelines (created by
//! DSWP or StreamIt-style parallelization) should communicate on a chip
//! multiprocessor. This crate implements the four evaluated design points
//! plus the proposed optimizations:
//!
//! * **EXISTING** — software queues in shared memory: ~10 instructions per
//!   communication (spin on a full/empty flag, fence, pointer update),
//!   coherence ping-pong on flag lines ([`DesignPoint::Existing`]);
//! * **MEMOPTI** — EXISTING plus write-forwarding: the producer's L2
//!   pushes a streaming line to the consumer's L2 once every queue entry
//!   on it has been written ([`DesignPoint::MemOpti`]);
//! * **SYNCOPTI** — `produce`/`consume` ISA instructions renamed to
//!   stream addresses, per-queue occupancy counters at the L2 controllers,
//!   bulk ACKs on the shared bus, dormant (non-recirculating) OzQ waiting,
//!   and optionally a 1 KB fully-associative stream cache and a 64-entry
//!   queue with QLU 16 ([`DesignPoint::SyncOpti`]);
//! * **HEAVYWT** — a dedicated distributed queue backing store
//!   (synchronization array) at the consumer with a dedicated pipelined
//!   interconnect ([`DesignPoint::HeavyWt`]).
//!
//! Workloads are written as abstract [`kernel::KernelPair`]s; [`lower`]
//! translates them into per-design ISA programs; [`machine::Machine`]
//! assembles cores, memory system, and streaming hardware and runs the
//! simulation to completion, producing a [`machine::RunResult`] with the
//! paper's Figure 7 stall breakdown.
//!
//! # Quickstart
//!
//! ```
//! use hfs_core::{DesignPoint, Machine, MachineConfig};
//! use hfs_core::kernel::KernelPair;
//!
//! // A tiny pipeline: 4 ALU ops + one produce per iteration.
//! let pair = KernelPair::simple("demo", 4, 200);
//! let cfg = MachineConfig::itanium2_cmp(DesignPoint::heavywt());
//! let mut machine = Machine::new_pipeline(&cfg, &pair).unwrap();
//! let result = machine.run(1_000_000).unwrap();
//! assert_eq!(result.iterations, 200);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod analytic;
mod backend;
mod config;
mod design;
pub mod kernel;
pub mod lower;
mod machine;
mod queues;
pub mod storage;
mod stream_cache;
mod sync_array;

pub use config::MachineConfig;
pub use design::{DesignPoint, HeavyWtConfig, RegMappedConfig, SoftwareConfig, SyncOptiConfig};
pub use hfs_check::{CheckLevel, Checker, Mutation, Violation};
pub use machine::{FastForwardStats, Machine, RunResult, SchedMode, SimError};
pub use queues::QueueCheck;
pub use stream_cache::StreamCache;
pub use sync_array::{SyncArray, SyncArrayConfig};

//! Whole-machine configuration (Table 2 plus a design point).

use hfs_cpu::CoreConfig;
use hfs_mem::{MemConfig, Protocol};
use hfs_sim::ConfigError;

use crate::design::DesignPoint;

/// Configuration of the simulated CMP: cores, memory hierarchy, streaming
/// design point, and run control.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Memory-hierarchy parameters.
    pub mem: MemConfig,
    /// Core pipeline parameters.
    pub core: CoreConfig,
    /// The streaming-support design point under evaluation.
    pub design: DesignPoint,
    /// Seed for workload address randomness (deterministic per seed).
    pub seed: u64,
    /// Abort the run if no core commits for this many cycles.
    pub deadlock_cycles: u64,
}

impl MachineConfig {
    /// The paper's baseline dual-core Itanium 2 CMP running `design`.
    pub fn itanium2_cmp(design: DesignPoint) -> Self {
        MachineConfig {
            mem: MemConfig::itanium2_cmp(),
            core: CoreConfig::itanium2(),
            design,
            seed: 0x5eed,
            deadlock_cycles: 200_000,
        }
    }

    /// A single-core machine for the Figure 9 single-threaded baseline.
    pub fn itanium2_single() -> Self {
        MachineConfig {
            mem: MemConfig::itanium2_single(),
            // The design point is irrelevant without communication.
            ..Self::itanium2_cmp(DesignPoint::heavywt())
        }
    }

    /// Applies the §4.5 slow-bus sensitivity setting (4-cycle bus;
    /// Figure 10). For HEAVYWT the dedicated interconnect slows to 4
    /// cycles as well, as in the paper.
    #[must_use]
    pub fn with_bus_divider(mut self, divider: u64) -> Self {
        self.mem.bus.clock_divider = divider;
        if let DesignPoint::HeavyWt(ref mut h) = self.design {
            h.transit = h.transit.max(divider);
        }
        self
    }

    /// Applies the §4.5 wide-bus setting (Figure 11).
    #[must_use]
    pub fn with_bus_width(mut self, width_bytes: u64) -> Self {
        self.mem.bus.width_bytes = width_bytes;
        self
    }

    /// Validates all components together.
    ///
    /// # Errors
    ///
    /// Propagates component validation failures.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.mem.validate()?;
        self.core.validate()?;
        self.design.validate()
    }

    /// Renders the Table 2 baseline-simulator description for this
    /// configuration.
    pub fn describe(&self) -> String {
        let m = &self.mem;
        let c = &self.core;
        let b = &m.bus;
        // The MSI string is byte-frozen: it appears verbatim in the
        // committed `results/table2.txt` golden.
        let coherence = match m.protocol {
            Protocol::Msi => "snoop-based, write-invalidate (MSI)",
            Protocol::Mesi => "snoop-based, write-invalidate (MESI)",
            Protocol::Dragon => "snoop-based, write-update (Dragon)",
        };
        format!(
            "Core            : {}-issue in-order, {} ALU, {} Memory, {} FP, {} Branch\n\
             L1D Cache       : {} cycle, {} KB, {}-way, {} B lines, write-through\n\
             L2 Cache        : {},{},{} cycles, {} KB, {}-way, {} B lines, write-back\n\
             Max Outstanding : {}\n\
             Shared L3 Cache : {} cycles, {} KB, {}-way, {} B lines, write-back\n\
             Main Memory     : {} cycles\n\
             Coherence       : {coherence}\n\
             L3 Bus          : {}-byte, {}-cycle, {}-stage pipelined, split-transaction,\n\
             \x20                round-robin arbitration\n\
             Design point    : {}",
            c.issue_width,
            c.int_alus,
            c.mem_ports,
            c.fp_units,
            c.branch_units,
            m.l1_latency,
            m.l1d.bytes / 1024,
            m.l1d.ways,
            m.l1d.line_bytes,
            m.l2_latency_min,
            m.l2_latency_min + 2,
            m.l2_latency_min + 4,
            m.l2.bytes / 1024,
            m.l2.ways,
            m.l2.line_bytes,
            m.ozq_entries,
            m.l3_latency,
            m.l3.bytes / 1024,
            m.l3.ways,
            m.l3.line_bytes,
            m.dram_latency,
            b.width_bytes,
            b.clock_divider,
            b.pipeline_stages,
            self.design,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baselines_validate() {
        assert!(MachineConfig::itanium2_cmp(DesignPoint::existing())
            .validate()
            .is_ok());
        assert!(MachineConfig::itanium2_single().validate().is_ok());
    }

    #[test]
    fn describe_names_the_protocol() {
        let mut c = MachineConfig::itanium2_cmp(DesignPoint::existing());
        assert!(c.describe().contains("write-invalidate (MSI)"));
        c.mem.protocol = Protocol::Mesi;
        assert!(c.describe().contains("write-invalidate (MESI)"));
        c.mem.protocol = Protocol::Dragon;
        assert!(c.describe().contains("write-update (Dragon)"));
    }

    #[test]
    fn bus_modifiers_apply() {
        let c = MachineConfig::itanium2_cmp(DesignPoint::heavywt())
            .with_bus_divider(4)
            .with_bus_width(128);
        assert_eq!(c.mem.bus.clock_divider, 4);
        assert_eq!(c.mem.bus.width_bytes, 128);
        match c.design {
            DesignPoint::HeavyWt(h) => assert_eq!(h.transit, 4),
            _ => unreachable!(),
        }
    }

    #[test]
    fn describe_mentions_key_numbers() {
        let d = MachineConfig::itanium2_cmp(DesignPoint::syncopti()).describe();
        assert!(d.contains("6-issue"));
        assert!(d.contains("256 KB"));
        assert!(d.contains("141 cycles"));
        assert!(d.contains("SYNCOPTI"));
        assert!(d.contains("16-byte"));
    }

    #[test]
    fn single_core_config_has_one_core() {
        assert_eq!(MachineConfig::itanium2_single().mem.cores, 1);
    }
}

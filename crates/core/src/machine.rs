//! The assembled CMP: cores + memory hierarchy + streaming hardware.

use std::error::Error;
use std::fmt;

use hfs_check::{CheckLevel, Checker};
use hfs_cpu::{BlockedAttempt, Core, CoreStats, NullStreamPort, StreamPort};
use hfs_isa::{CoreId, Sequencer};
use hfs_mem::{Completion, MemEvent, MemStats, MemSystem};
use hfs_sim::sched::{CalendarQueue, SchedStats};
use hfs_sim::stats::StallComponent;
use hfs_sim::{CancelToken, ConfigError, Cycle};
use hfs_trace::{MetricsReport, Tracer};

use crate::backend::Backend;
use crate::config::MachineConfig;
use crate::kernel::KernelPair;
use crate::lower::{lower_at, lower_fused, Role};

/// Cycles between deadlock-detector sweeps. Progress timestamps are
/// tracked exactly (per core), so striding the sweep changes only when a
/// deadlock is *noticed*, never the cycle it is declared at.
const DEADLOCK_STRIDE: u64 = 64;

/// The largest CMP the bus model supports (4 pipelines x 2 cores).
const MAX_CORES: usize = 8;

/// Fast-forward auto-disable: evaluate the skip rate every this many
/// *elapsed cycles*. Windowing on cycles rather than bound computations
/// matters on compute-dense workloads: they rarely reach a bound
/// computation at all, so a bound-counted window would take most of the
/// run to fill while every cycle kept paying the fast-forward checks.
const FF_CYCLE_WINDOW: u64 = 4096;

/// Fast-forward auto-disable: absolute minimum cycles a window must
/// skip to keep fast-forwarding — below this the per-cycle checks alone
/// outweigh the skips, however cheap the bounds were.
const FF_MIN_WINDOW_SKIP: u64 = 64;

/// Fast-forward auto-disable: cost of one bound computation, expressed
/// in skipped-cycle equivalents (a bound walks every component's
/// `next_event`, roughly half the price of stepping a live cycle). A
/// window must skip at least `window_bounds / FF_BOUND_COST_DIV` cycles
/// to have paid for its bounds; workloads that compute a bound almost
/// every cycle but jump only occasionally (e.g. streaming loops with
/// sub-cycle average skips) net out slower than plain stepping.
const FF_BOUND_COST_DIV: u64 = 2;

/// Consecutive low-skip windows required before latching off, so a
/// dense warm-up phase alone doesn't forfeit skips in a later
/// memory-bound phase.
const FF_LOW_WINDOWS: u32 = 2;

/// Event-scheduler auto-latch: a [`FF_CYCLE_WINDOW`]-cycle window is
/// *low-skip* when it skips fewer than `FF_CYCLE_WINDOW /
/// EVENT_LOW_SKIP_DIV` cycles (12.5%). After [`FF_LOW_WINDOWS`]
/// consecutive low windows the event loop latches to plain per-cycle
/// stepping for the rest of the run: on compute-dense workloads the
/// queue, the arming, and the wake bounds are pure overhead — exactly
/// the polling loop's auto-disable, applied to the scheduler itself.
/// The threshold sits well above the break-even overhead (measured
/// 5–25% of a live cycle depending on tick weight) and well below the
/// ~20% skip fraction of the sync-heavy workloads that profit.
const EVENT_LOW_SKIP_DIV: u64 = 8;

/// Scheduler token for the memory system (bus + L3/DRAM + private L2s,
/// which tick as one unit and share one `next_event` bound).
const TOK_MEM: u32 = 0;
/// Scheduler token for the strided deadlock sweep.
const TOK_SWEEP: u32 = 1;
/// Scheduler token for the sampling grid of [`Machine::run_sampled`].
const TOK_SAMPLE: u32 = 2;
/// Scheduler token for the timeout watchdog (armed once, at
/// `max_cycles + 1` — routinely exercising the calendar queue's
/// overflow heap).
const TOK_WATCH: u32 = 3;
/// First per-component token: backends at `TOK_COMP + k`, cores at
/// `TOK_COMP + backends + i`.
const TOK_COMP: u32 = 4;

/// Which run loop drives the simulation (see the `HFS_SCHED`
/// environment variable). Results are bit-identical across modes; only
/// wall-clock changes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedMode {
    /// Event-driven: components push wake times into a calendar queue
    /// when their state changes, and the run loop steps only woken
    /// components (the default).
    Event,
    /// Per-advance `next_event` polling with the fast-forward pay-floor
    /// latch — the pre-scheduler loop, kept as the debug cross-check and
    /// `HFS_SCHED=poll` escape hatch.
    Poll,
}

/// Reads `HFS_SCHED` (`poll` selects the polling loop; anything else —
/// including unset — selects the event-driven scheduler).
fn sched_from_env() -> SchedMode {
    match std::env::var("HFS_SCHED") {
        Ok(v) if v.eq_ignore_ascii_case("poll") => SchedMode::Poll,
        _ => SchedMode::Event,
    }
}

/// Arms `token` to wake at `at`, recording the wake in the caller's
/// armed-time table. Arming only ever *tightens*: a later wake than the
/// currently armed one is ignored (the token will re-arm when it
/// processes), so the queue never needs explicit cancellation — a
/// superseded entry surfaces as a stale pop and is discarded.
fn arm(
    q: &mut CalendarQueue,
    armed: &mut [u64],
    near: &mut u32,
    sched: &mut SchedStats,
    now: u64,
    token: u32,
    at: Cycle,
) {
    let at = at.as_u64();
    if at < armed[token as usize] {
        armed[token as usize] = at;
        if at <= now + 1 {
            // Fast path for the dense regime: an arm for the immediately
            // next cycle never enters the queue — it cannot be superseded
            // (no earlier wake exists), so it is guaranteed to fire and is
            // accounted for at arm time. `near` forces the next cycle to
            // be processed.
            *near += 1;
            sched.scheduled += 1;
            sched.fired += 1;
        } else {
            q.schedule(Cycle::new(at), token);
        }
    }
}

/// A simulation failure.
#[derive(Debug)]
pub enum SimError {
    /// Invalid configuration or program.
    Config(ConfigError),
    /// No core made progress for the configured deadlock window.
    Deadlock {
        /// Cycle at which the deadlock was declared.
        cycle: u64,
        /// Human-readable machine state summary.
        detail: String,
    },
    /// The run exceeded the caller's cycle budget.
    Timeout {
        /// The budget that was exceeded.
        max_cycles: u64,
    },
    /// A correctness check failed: queue FIFO/conservation semantics or,
    /// with the machine checker enabled, a cycle-level invariant.
    Verification(String),
    /// The run was abandoned because its [`CancelToken`] fired (e.g. the
    /// client that requested it disconnected).
    Cancelled {
        /// Cycle at which the cancellation was observed.
        cycle: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "{e}"),
            SimError::Deadlock { cycle, detail } => {
                write!(f, "deadlock at cycle {cycle}: {detail}")
            }
            SimError::Timeout { max_cycles } => {
                write!(f, "simulation exceeded {max_cycles} cycles")
            }
            SimError::Verification(msg) => write!(f, "verification failed: {msg}"),
            SimError::Cancelled { cycle } => {
                write!(f, "simulation cancelled at cycle {cycle}")
            }
        }
    }
}

impl Error for SimError {}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

/// The result of a completed simulation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Design-point label (e.g. "SYNCOPTI+SC+Q64").
    pub design: String,
    /// Total cycles until every thread committed its last instruction.
    pub cycles: u64,
    /// Per-core statistics, indexed by core id (producer first).
    pub cores: Vec<CoreStats>,
    /// Outer-loop iterations completed (minimum over threads).
    pub iterations: u64,
    /// Memory-system statistics.
    pub mem: MemStats,
    /// Stream-cache (hits, misses, dropped fills), when present.
    pub stream_cache: Option<(u64, u64, u64)>,
    /// Unified metrics report, present when the run was traced (see
    /// [`Machine::set_tracer`]). Boxed to keep untraced results small.
    pub metrics: Option<Box<MetricsReport>>,
    /// Whether the cycle-level machine checker was enabled for this run
    /// (`HFS_CHECK` or [`Machine::set_check_level`]); a `true` here means
    /// every cycle passed the invariant audits.
    pub checked: bool,
}

impl RunResult {
    /// The producer core's statistics (or the only core's).
    pub fn producer(&self) -> &CoreStats {
        &self.cores[0]
    }

    /// The consumer core's statistics, if this was a pipeline run.
    pub fn consumer(&self) -> Option<&CoreStats> {
        self.cores.get(1)
    }

    /// Execution time of this run relative to `base` (1.0 = same speed;
    /// bigger = slower).
    pub fn normalized_to(&self, base: &RunResult) -> f64 {
        self.cycles as f64 / base.cycles as f64
    }

    /// Speedup of this run over `base`.
    pub fn speedup_over(&self, base: &RunResult) -> f64 {
        base.cycles as f64 / self.cycles as f64
    }

    /// Cycles per completed iteration.
    pub fn cycles_per_iteration(&self) -> f64 {
        if self.iterations == 0 {
            f64::INFINITY
        } else {
            self.cycles as f64 / self.iterations as f64
        }
    }
}

/// Skip-rate accounting for idle-cycle fast-forwarding (see
/// [`Machine::fast_forward_stats`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct FastForwardStats {
    /// Jump-target (bound) computations performed so far this run.
    pub bound_computations: u64,
    /// Total cycles skipped across all fast-forward jumps this run.
    pub skipped_cycles: u64,
    /// Whether the low-skip-rate auto-disable latched fast-forward off
    /// for the remainder of the run.
    pub auto_disabled: bool,
    /// First cycle of the current evaluation window.
    window_start: u64,
    /// Cycles skipped in the current evaluation window.
    window_skipped: u64,
    /// Bound computations in the current evaluation window.
    window_bounds: u64,
    /// Consecutive windows that skipped too little to pay for
    /// themselves.
    low_windows: u32,
}

/// The simulated machine, ready to run one workload to completion.
///
/// Construct with [`Machine::new_pipeline`] (two cores, one design point)
/// or [`Machine::new_single`] (the fused single-threaded baseline of
/// Figure 9), then call [`Machine::run`].
#[derive(Debug)]
pub struct Machine {
    cfg: MachineConfig,
    mem: MemSystem,
    cores: Vec<Core>,
    seqs: Vec<Sequencer>,
    /// One backend per pipeline: cores `2i` (producer) and `2i+1`
    /// (consumer) talk to `backends[i]`. Empty for single-core runs.
    backends: Vec<Backend>,
    now: Cycle,
    tracer: Tracer,
    checker: Checker,
    /// Idle-cycle fast-forwarding (on unless `HFS_NO_FASTFWD` is set).
    /// Results are bit-identical either way; only wall-clock changes.
    fast_forward: bool,
    /// Skip-rate accounting behind the fast-forward auto-disable
    /// (poll-mode only; the event scheduler needs no pay-floor latch).
    ff: FastForwardStats,
    /// Which run loop drives the simulation (from `HFS_SCHED`).
    sched_mode: SchedMode,
    /// Calendar-queue accounting for the last event-driven run.
    sched: SchedStats,
    /// Cooperative cancellation, polled once per simulated cycle.
    cancel: Option<CancelToken>,
    /// Per-cycle scratch buffers, reused so the hot loop allocates
    /// nothing in steady state.
    events_scratch: Vec<MemEvent>,
    drop_scratch: Vec<Completion>,
}

/// Whether the `HFS_NO_FASTFWD` escape hatch is set in the environment.
fn fastfwd_enabled() -> bool {
    std::env::var_os("HFS_NO_FASTFWD").is_none_or(|v| v.is_empty())
}

impl Machine {
    /// Builds a dual-core pipeline machine for `pair` under the
    /// configured design point.
    ///
    /// # Errors
    ///
    /// Returns configuration errors from the machine config, the kernel
    /// pair, or lowering.
    pub fn new_pipeline(cfg: &MachineConfig, pair: &KernelPair) -> Result<Self, SimError> {
        Self::new_multi_pipeline(cfg, std::slice::from_ref(pair))
    }

    /// Builds a CMP running several independent pipelines at once: pair
    /// `i` runs on cores `2i`/`2i+1`, with its queues remapped to a
    /// disjoint id range and its work regions to disjoint addresses. All
    /// pipelines share the bus, L3, and (for memory-backed designs) the
    /// queue backing store — the paper's "larger-scale CMP" scenario of
    /// inter-thread operand traffic multiplexed with other requests.
    ///
    /// # Example
    ///
    /// ```
    /// use hfs_core::kernel::KernelPair;
    /// use hfs_core::{DesignPoint, Machine, MachineConfig};
    ///
    /// let pair = KernelPair::simple("demo", 3, 50);
    /// let cfg = MachineConfig::itanium2_cmp(DesignPoint::heavywt());
    /// let pairs = vec![pair.clone(), pair];
    /// let mut m = Machine::new_multi_pipeline(&cfg, &pairs).unwrap();
    /// let r = m.run(1_000_000).unwrap();
    /// assert_eq!(r.cores.len(), 4);
    /// assert_eq!(r.iterations, 50);
    /// ```
    ///
    /// # Errors
    ///
    /// Configuration errors; at most 4 pairs fit the 8-core bus model.
    pub fn new_multi_pipeline(cfg: &MachineConfig, pairs: &[KernelPair]) -> Result<Self, SimError> {
        if pairs.is_empty() || pairs.len() > 4 {
            return Err(SimError::Config(hfs_sim::ConfigError::new(
                "between 1 and 4 pipelines are supported",
            )));
        }
        let mut cfg = cfg.clone();
        cfg.mem.cores = (pairs.len() * 2) as u8;
        cfg.core.free_queue_ops = cfg.design.is_register_mapped();
        cfg.validate()?;
        let mut seqs = Vec::new();
        let mut cores = Vec::new();
        let mut backends = Vec::new();
        for (i, raw_pair) in pairs.iter().enumerate() {
            // 16 queues per pipeline keeps ids disjoint.
            let pair = raw_pair.with_queue_offset((i * 16) as u16);
            let producer_core = CoreId((2 * i) as u8);
            let consumer_core = CoreId((2 * i + 1) as u8);
            let producer = lower_at(&pair, &cfg.design, Role::Producer, i as u32)?;
            let consumer = lower_at(&pair, &cfg.design, Role::Consumer, i as u32)?;
            seqs.push(Sequencer::new(
                &producer.program,
                &producer.region_bases,
                cfg.seed + (2 * i) as u64,
            )?);
            seqs.push(Sequencer::new(
                &consumer.program,
                &consumer.region_bases,
                cfg.seed + (2 * i + 1) as u64,
            )?);
            cores.push(Core::new(producer_core, cfg.core)?);
            cores.push(Core::new(consumer_core, cfg.core)?);
            let queues = pair.queues()?;
            backends.push(Backend::new(
                &cfg.design,
                &queues,
                producer_core,
                consumer_core,
            )?);
        }
        let mut mem = MemSystem::new(cfg.mem.clone())?;
        mem.set_streaming_range(
            crate::lower::QUEUE_BASE,
            crate::lower::QUEUE_BASE + 64 * crate::lower::QUEUE_SPAN,
        );
        let mut m = Machine {
            mem,
            cores,
            seqs,
            backends,
            now: Cycle::ZERO,
            cfg,
            tracer: Tracer::disabled(),
            checker: Checker::disabled(),
            fast_forward: fastfwd_enabled(),
            ff: FastForwardStats::default(),
            sched_mode: sched_from_env(),
            sched: SchedStats::default(),
            cancel: None,
            events_scratch: Vec::new(),
            drop_scratch: Vec::new(),
        };
        m.set_checker(Checker::from_env());
        Ok(m)
    }

    /// Builds a single-core machine running the fused version of `pair`
    /// (all communication removed; producer work then consumer work per
    /// iteration).
    ///
    /// # Errors
    ///
    /// Returns configuration errors from the config, kernels, or fusing.
    pub fn new_single(cfg: &MachineConfig, pair: &KernelPair) -> Result<Self, SimError> {
        let mut cfg = cfg.clone();
        cfg.mem.cores = 1;
        cfg.validate()?;
        let fused = lower_fused(pair)?;
        let seqs = vec![Sequencer::new(
            &fused.program,
            &fused.region_bases,
            cfg.seed,
        )?];
        let cores = vec![Core::new(CoreId(0), cfg.core)?];
        let mut m = Machine {
            mem: MemSystem::new(cfg.mem.clone())?,
            cores,
            seqs,
            backends: Vec::new(),
            now: Cycle::ZERO,
            cfg,
            tracer: Tracer::disabled(),
            checker: Checker::disabled(),
            fast_forward: fastfwd_enabled(),
            ff: FastForwardStats::default(),
            sched_mode: sched_from_env(),
            sched: SchedStats::default(),
            cancel: None,
            events_scratch: Vec::new(),
            drop_scratch: Vec::new(),
        };
        m.set_checker(Checker::from_env());
        Ok(m)
    }

    /// Enables or disables idle-cycle fast-forwarding (defaults to the
    /// `HFS_NO_FASTFWD` environment variable being unset). Simulation
    /// results are bit-identical either way; only wall-clock changes.
    /// Re-enabling clears a previous skip-rate auto-disable latch.
    pub fn set_fast_forward(&mut self, on: bool) {
        self.fast_forward = on;
        self.ff.window_start = self.now.as_u64();
        self.ff.window_skipped = 0;
        self.ff.window_bounds = 0;
        self.ff.low_windows = 0;
        if on {
            self.ff.auto_disabled = false;
        }
    }

    /// Whether idle-cycle fast-forwarding is currently active. May flip
    /// from `true` to `false` mid-run when the skip-rate auto-disable
    /// latches (see [`Machine::fast_forward_stats`]).
    pub fn fast_forward_enabled(&self) -> bool {
        self.fast_forward
    }

    /// Skip-rate accounting for this run's fast-forwarding: how many jump
    /// targets were computed, how many cycles they actually skipped, and
    /// whether the low-skip-rate auto-disable fired. On workloads whose
    /// skips don't pay for the bounds that found them, the fast-forward
    /// machinery is net overhead, so after `FF_LOW_WINDOWS` consecutive
    /// `FF_CYCLE_WINDOW`-cycle windows each skipping less than its
    /// bound computations cost (or an absolute floor), the machine
    /// latches back to plain per-cycle stepping for the rest of the
    /// run. Results are bit-identical either way; only wall-clock
    /// changes.
    pub fn fast_forward_stats(&self) -> FastForwardStats {
        self.ff
    }

    /// Selects the run loop (defaults to `HFS_SCHED` from the
    /// environment). Results are bit-identical across modes; only
    /// wall-clock changes. Note that [`SchedMode::Event`] additionally
    /// requires fast-forwarding on, no enabled checker, and no recording
    /// tracer — otherwise the run falls back to the polling loop (the
    /// per-cycle bound those features pin to *is* the polling loop).
    pub fn set_sched_mode(&mut self, mode: SchedMode) {
        self.sched_mode = mode;
    }

    /// The scheduler mode selected with [`Machine::set_sched_mode`].
    pub fn sched_mode(&self) -> SchedMode {
        self.sched_mode
    }

    /// Calendar-queue accounting for the most recent event-driven run
    /// (all zero after a polling run).
    pub fn sched_stats(&self) -> &SchedStats {
        &self.sched
    }

    /// Attaches a cooperative cancellation token, polled once per
    /// simulated cycle in [`Machine::run`]. When the token fires the run
    /// aborts with [`SimError::Cancelled`]; the machine's partial state
    /// is left in place but no [`RunResult`] is produced.
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Attaches a tracer, distributing cloned handles to the memory
    /// system, every core, and every streaming backend. Call before
    /// [`Machine::run`]; with a recording tracer the caller can drain the
    /// event stream afterwards via its own clone's
    /// [`Tracer::take_events`].
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.mem.set_tracer(tracer.clone());
        for core in &mut self.cores {
            core.set_tracer(tracer.clone());
        }
        for b in &mut self.backends {
            b.set_tracer(tracer.clone());
        }
        self.tracer = tracer;
    }

    /// The tracer attached with [`Machine::set_tracer`] (disabled by
    /// default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Attaches a machine checker, distributing cloned handles to the
    /// memory system and every streaming backend. The constructors call
    /// this with [`Checker::from_env`], so setting `HFS_CHECK=1` checks
    /// every run; call explicitly (before [`Machine::run`]) to override.
    /// An enabled checker also pins simulation to its per-cycle bound so
    /// every cycle is audited (fast-forward windows are never dead to the
    /// checker's aging rules).
    pub fn set_checker(&mut self, checker: Checker) {
        self.mem.set_checker(checker.clone());
        for b in &mut self.backends {
            b.set_checker(checker.clone());
        }
        self.checker = checker;
    }

    /// Convenience wrapper over [`Machine::set_checker`]: attaches a
    /// fresh checker at `level` ([`CheckLevel::Off`] detaches).
    pub fn set_check_level(&mut self, level: CheckLevel) {
        self.set_checker(Checker::with_level(level));
    }

    /// The machine checker attached with [`Machine::set_checker`]
    /// (configured from `HFS_CHECK` at construction).
    pub fn checker(&self) -> &Checker {
        &self.checker
    }

    /// Runs to completion.
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] when no core commits for the configured
    /// window, [`SimError::Timeout`] past `max_cycles`, and
    /// [`SimError::Verification`] if queue FIFO semantics were violated.
    pub fn run(&mut self, max_cycles: u64) -> Result<RunResult, SimError> {
        Ok(self.run_sampled(max_cycles, None)?.0)
    }

    /// Runs to completion, additionally sampling `(cycle, completed
    /// iterations)` every `interval` cycles when `Some` — useful for
    /// warm-up/steady-state analysis of the streaming protocols.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Machine::run`].
    pub fn run_sampled(
        &mut self,
        max_cycles: u64,
        interval: Option<u64>,
    ) -> Result<(RunResult, Vec<(u64, u64)>), SimError> {
        // The per-cycle bound that an enabled checker or a recording
        // tracer pins to *is* the polling loop, and `HFS_NO_FASTFWD`
        // (cleared `fast_forward`) asks for exactly that bound; the
        // event scheduler drives every other configuration.
        let event = self.sched_mode == SchedMode::Event
            && self.fast_forward
            && !self.checker.is_enabled()
            && !self.tracer.is_recording();
        if event {
            self.run_sampled_event(max_cycles, interval)
        } else {
            self.run_sampled_poll(max_cycles, interval)
        }
    }

    /// The polling run loop: every component steps every cycle, with
    /// [`Machine::advance`] folding `next_event` bounds to fast-forward
    /// dead windows. Kept as the debug cross-check and `HFS_SCHED=poll`
    /// escape hatch, and as the pinned loop for checkers and recording
    /// tracers.
    // One shared copy for both call sites (the dispatcher and the event
    // loop's low-skip handoff): inlining either would fork the hot loop
    // into differently-optimized duplicates, and mode-vs-mode benchmark
    // ratios would then measure code layout instead of scheduling.
    #[inline(never)]
    fn run_sampled_poll(
        &mut self,
        max_cycles: u64,
        interval: Option<u64>,
    ) -> Result<(RunResult, Vec<(u64, u64)>), SimError> {
        let mut samples = Vec::new();
        loop {
            let now = self.now;
            if now.as_u64() > max_cycles {
                return Err(SimError::Timeout { max_cycles });
            }
            if let Some(c) = &self.cancel {
                if c.is_cancelled() {
                    return Err(SimError::Cancelled {
                        cycle: now.as_u64(),
                    });
                }
            }
            self.mem.tick(now);
            // Drain the event stream once; every backend filters it to
            // its own queues. The buffer is machine-owned and reused, so
            // the hot loop allocates nothing in steady state.
            let mut events = std::mem::take(&mut self.events_scratch);
            self.mem.take_events(&mut events);
            for b in &mut self.backends {
                b.process(&mut self.mem, &events, now);
            }
            self.events_scratch = events;
            let mut all_done = true;
            for i in 0..self.cores.len() {
                let core = &mut self.cores[i];
                let seq = &mut self.seqs[i];
                if core.finished(seq) {
                    // Drain stray completions (e.g. late store acks); the
                    // cheap probe skips the call on the common empty cycle.
                    if self.mem.has_completions(core.id(), now) {
                        self.drop_scratch.clear();
                        self.mem
                            .drain_completions_into(core.id(), now, &mut self.drop_scratch);
                    }
                    continue;
                }
                all_done = false;
                match self.backends.get_mut(i / 2) {
                    Some(b) => core.tick(now, seq, &mut self.mem, b),
                    None => {
                        let mut null = NullStreamPort;
                        core.tick(now, seq, &mut self.mem, &mut null);
                    }
                }
            }
            // Fail loudly, at the offending cycle: a machine-check
            // violation or a queue FIFO error terminates the run
            // immediately instead of surfacing as a late timeout or a
            // silently wrong figure.
            if self.checker.is_enabled() {
                if let Some(msg) = self.checker.first_violation() {
                    return Err(SimError::Verification(msg));
                }
            }
            for b in &self.backends {
                if let Some(e) = b.check().errors().first() {
                    return Err(SimError::Verification(format!("queue-check: {e}")));
                }
            }
            if all_done && self.mem.is_idle() && self.backends.iter().all(Backend::quiescent) {
                break;
            }
            // Deadlock detection: some core must commit within the
            // configured window. Commit stamps are exact, so the sweep
            // runs every DEADLOCK_STRIDE cycles and still declares the
            // cycle the live per-cycle check would have.
            if now.as_u64().is_multiple_of(DEADLOCK_STRIDE) {
                let last = self.last_progress();
                if now.saturating_since(last) > self.cfg.deadlock_cycles {
                    return Err(SimError::Deadlock {
                        cycle: last.as_u64() + self.cfg.deadlock_cycles + 1,
                        detail: self.diagnose(),
                    });
                }
            }
            if let Some(step) = interval {
                if now.as_u64().is_multiple_of(step) {
                    let iters = self
                        .seqs
                        .iter()
                        .map(Sequencer::iterations_completed)
                        .min()
                        .unwrap_or(0);
                    samples.push((now.as_u64(), iters));
                }
            }
            self.now = self.advance(now, max_cycles, interval);
        }
        if let Some(msg) = self.checker.first_violation() {
            return Err(SimError::Verification(msg));
        }
        for b in &self.backends {
            b.check().finish().map_err(SimError::Verification)?;
        }
        Ok((self.result(), samples))
    }

    /// The event-driven run loop: components push their next wake time
    /// into a calendar queue whenever their state changes, and the
    /// machine steps only woken components, jumping `now` straight to
    /// the earliest armed wake when a cycle ends with nothing due.
    ///
    /// Dueness is decided by the `armed` table (one slot per token,
    /// `u64::MAX` = unarmed), not by queue entries: a superseded entry
    /// surfaces as a stale pop and is discarded. Cores that cannot
    /// prove a wake bound (structurally blocked, or mid-execution with
    /// in-flight memory) run *reactively* — ticked every processed
    /// cycle and folded into jump computations poll-style — so the
    /// scheduler never needs a per-cycle bound it cannot justify.
    /// Results are bit-identical with the polling loop: skipped cycles
    /// are charged to sleeping and reactive cores exactly as live ticks
    /// would have, including per-cycle trace events when tracing.
    #[inline(never)]
    fn run_sampled_event(
        &mut self,
        max_cycles: u64,
        interval: Option<u64>,
    ) -> Result<(RunResult, Vec<(u64, u64)>), SimError> {
        let nb = self.backends.len();
        let ntok = TOK_COMP as usize + nb + self.cores.len();
        let mut q = CalendarQueue::new(self.now);
        let mut armed = vec![u64::MAX; ntok];
        // Cores currently without a pushed wake time; ticked every
        // processed cycle, like the polling loop would.
        let mut reactive = vec![false; self.cores.len()];
        // Arms made this cycle for the immediately next one (the fast
        // path bypassing the queue); any forces the next cycle live.
        let mut near: u32 = 0;
        // Low-skip auto-latch state: after FF_LOW_WINDOWS consecutive
        // low-skip windows the loop *wants* to latch; it hands the run
        // off to the polling loop (fast-forward disabled — plain
        // per-cycle stepping) at the first cycle with no core mid-sleep,
        // so no pre-charged idle window is ever double-counted. While
        // the latch is pending, no new sleeps are granted, which bounds
        // the wait by the longest already-armed wake.
        let mut want_latch = false;
        let mut handoff = false;
        let mut window_start = self.now.as_u64();
        let mut window_skipped: u64 = 0;
        let mut low_windows: u32 = 0;
        self.sched = SchedStats::default();
        let mut samples = Vec::new();
        // Everything wakes on the first cycle; the watchdog is armed
        // once, at the cycle the timeout fires (routinely far enough
        // out to exercise the queue's overflow heap).
        for tok in 0..ntok as u32 {
            if tok != TOK_WATCH {
                arm(
                    &mut q,
                    &mut armed,
                    &mut near,
                    &mut self.sched,
                    self.now.as_u64(),
                    tok,
                    self.now,
                );
            }
        }
        arm(
            &mut q,
            &mut armed,
            &mut near,
            &mut self.sched,
            self.now.as_u64(),
            TOK_WATCH,
            Cycle::new(max_cycles.saturating_add(1)),
        );
        let outcome: Result<(), SimError> = 'cycle: loop {
            let now = self.now;
            near = 0;
            self.sched.cycles_processed += 1;
            if now.as_u64() > max_cycles {
                break Err(SimError::Timeout { max_cycles });
            }
            if let Some(c) = &self.cancel {
                if c.is_cancelled() {
                    break Err(SimError::Cancelled {
                        cycle: now.as_u64(),
                    });
                }
            }
            if !want_latch && now.as_u64() - window_start >= FF_CYCLE_WINDOW {
                if window_skipped < FF_CYCLE_WINDOW / EVENT_LOW_SKIP_DIV {
                    low_windows += 1;
                    want_latch = low_windows >= FF_LOW_WINDOWS;
                } else {
                    low_windows = 0;
                }
                window_start = now.as_u64();
                window_skipped = 0;
            }
            if want_latch
                && (TOK_COMP as usize + nb..ntok)
                    .all(|t| armed[t] == u64::MAX || armed[t] <= now.as_u64())
            {
                // No core holds a pre-charged future wake: every idle
                // cycle charged so far lies strictly behind `now`, so
                // per-cycle stepping can take over mid-run.
                handoff = true;
                break Ok(());
            }
            // Surface due queue entries. The armed table is the
            // authority on dueness below; this drain only classifies
            // entries as fired or lazily cancelled.
            while let Some((at, tok)) = q.pop_due(now) {
                if armed[tok as usize] == at.as_u64() {
                    self.sched.fired += 1;
                } else {
                    self.sched.cancelled += 1;
                }
            }
            let mem_due = armed[TOK_MEM as usize] <= now.as_u64();
            let mut events = std::mem::take(&mut self.events_scratch);
            events.clear();
            if mem_due {
                armed[TOK_MEM as usize] = u64::MAX;
                self.mem.tick(now);
                self.mem.take_events(&mut events);
            }
            // Backends run on their own wake or whenever the
            // (single-drain) event stream is non-empty: every backend
            // filters the full stream to its own queues.
            let mut backend_ran = [false; MAX_CORES / 2];
            for (k, b) in self.backends.iter_mut().enumerate() {
                let tok = TOK_COMP as usize + k;
                if armed[tok] <= now.as_u64() || !events.is_empty() {
                    armed[tok] = u64::MAX;
                    b.process(&mut self.mem, &events, now);
                    backend_ran[k] = true;
                }
            }
            self.events_scratch = events;
            let mut all_done = true;
            for (i, reactive_i) in reactive.iter_mut().enumerate() {
                let tok = TOK_COMP + (nb + i) as u32;
                let core = &mut self.cores[i];
                let seq = &mut self.seqs[i];
                if core.finished(seq) {
                    armed[tok as usize] = u64::MAX;
                    *reactive_i = false;
                    // Drain stray completions (e.g. late store acks);
                    // the memory system's own wake covers their ready
                    // cycles, so finished cores need no wake of their
                    // own.
                    if self.mem.has_completions(core.id(), now) {
                        self.drop_scratch.clear();
                        self.mem
                            .drain_completions_into(core.id(), now, &mut self.drop_scratch);
                    }
                    continue;
                }
                all_done = false;
                if !*reactive_i && armed[tok as usize] > now.as_u64() {
                    // Asleep: already charged through its armed wake.
                    continue;
                }
                armed[tok as usize] = u64::MAX;
                match self.backends.get_mut(i / 2) {
                    Some(b) => core.tick(now, seq, &mut self.mem, b),
                    None => {
                        let mut null = NullStreamPort;
                        core.tick(now, seq, &mut self.mem, &mut null);
                    }
                }
                if core.finished(seq) {
                    // Committed its last instruction this cycle; the
                    // termination check must run on the next one.
                    *reactive_i = false;
                    arm(
                        &mut q,
                        &mut armed,
                        &mut near,
                        &mut self.sched,
                        now.as_u64(),
                        tok,
                        now.next(),
                    );
                } else if core.last_commit() == now {
                    // Busy: a committing core almost certainly commits
                    // again next cycle, so skip the bound computation
                    // (the polling loop's busy heuristic).
                    *reactive_i = false;
                    arm(
                        &mut q,
                        &mut armed,
                        &mut near,
                        &mut self.sched,
                        now.as_u64(),
                        tok,
                        now.next(),
                    );
                } else if !want_latch && core.can_sleep() {
                    // Nothing in flight and not structurally blocked:
                    // the core's own bound is exact, completed by the
                    // memory system's earliest completion for it (a
                    // drained-but-undelivered ack would otherwise pin
                    // nothing).
                    let mut wake = core.next_event(now, seq);
                    if let Some(c) = self.mem.next_completion(core.id()) {
                        let c = c.max(now.next());
                        wake = Some(wake.map_or(c, |w| w.min(c)));
                    }
                    match wake {
                        Some(w) if w > now.next() => {
                            // Sleep: charge the idle window now, at the
                            // stall component it holds throughout (no
                            // component state it depends on changes
                            // before `w`).
                            let gap = w.as_u64() - now.next().as_u64();
                            let comp = match self.backends.get(i / 2) {
                                Some(b) => core.idle_component(now.next(), &self.mem, b),
                                None => core.idle_component(now.next(), &self.mem, &NullStreamPort),
                            };
                            core.charge_idle(gap, comp);
                            if self.tracer.is_enabled() {
                                for cy in now.next().as_u64()..w.as_u64() {
                                    core.trace_idle(Cycle::new(cy), comp);
                                }
                            }
                            *reactive_i = false;
                            arm(
                                &mut q,
                                &mut armed,
                                &mut near,
                                &mut self.sched,
                                now.as_u64(),
                                tok,
                                w,
                            );
                        }
                        Some(w) => {
                            *reactive_i = false;
                            arm(
                                &mut q,
                                &mut armed,
                                &mut near,
                                &mut self.sched,
                                now.as_u64(),
                                tok,
                                w.max(now.next()),
                            );
                        }
                        None => *reactive_i = true,
                    }
                } else {
                    *reactive_i = true;
                }
            }
            // Fail loudly, at the offending cycle (the dispatcher pins
            // enabled checkers to the polling loop, so only the queue
            // self-check applies here).
            for b in &self.backends {
                if let Some(e) = b.check().errors().first() {
                    break 'cycle Err(SimError::Verification(format!("queue-check: {e}")));
                }
            }
            if all_done && self.mem.is_idle() && self.backends.iter().all(Backend::quiescent) {
                break Ok(());
            }
            // Deadlock sweep, as a scheduled event: commit stamps are
            // exact, so arming the first stride multiple at which the
            // current progress could declare is always at or before the
            // true declaration sweep (progress only moves it later, and
            // a too-early wake just re-arms).
            if now.as_u64().is_multiple_of(DEADLOCK_STRIDE) {
                let last = self.last_progress();
                if now.saturating_since(last) > self.cfg.deadlock_cycles {
                    break Err(SimError::Deadlock {
                        cycle: last.as_u64() + self.cfg.deadlock_cycles + 1,
                        detail: self.diagnose(),
                    });
                }
            }
            if armed[TOK_SWEEP as usize] <= now.as_u64() {
                armed[TOK_SWEEP as usize] = u64::MAX;
                let declare = self.last_progress().as_u64() + self.cfg.deadlock_cycles + 1;
                let sweep = (declare.div_ceil(DEADLOCK_STRIDE) * DEADLOCK_STRIDE)
                    .max((now.as_u64() / DEADLOCK_STRIDE + 1) * DEADLOCK_STRIDE);
                arm(
                    &mut q,
                    &mut armed,
                    &mut near,
                    &mut self.sched,
                    now.as_u64(),
                    TOK_SWEEP,
                    Cycle::new(sweep),
                );
            }
            if let Some(step) = interval {
                if now.as_u64().is_multiple_of(step) {
                    let iters = self
                        .seqs
                        .iter()
                        .map(Sequencer::iterations_completed)
                        .min()
                        .unwrap_or(0);
                    samples.push((now.as_u64(), iters));
                }
                if armed[TOK_SAMPLE as usize] <= now.as_u64() {
                    armed[TOK_SAMPLE as usize] = u64::MAX;
                    arm(
                        &mut q,
                        &mut armed,
                        &mut near,
                        &mut self.sched,
                        now.as_u64(),
                        TOK_SAMPLE,
                        Cycle::new((now.as_u64() / step + 1) * step),
                    );
                }
            }
            // Re-arm externally driven components whose timed state this
            // cycle touched (their own tick is covered by `*_due`). On a
            // busy cycle (some core committed) the next cycle is live
            // anyway, so active components arm `now + 1` without paying
            // their bound computation — extra ticks are exactly what
            // per-cycle stepping does, so results cannot change; real
            // bounds are computed only on commit-free cycles, where a
            // jump could actually use them (the polling loop's busy
            // heuristic, applied per re-arm).
            let busy = self.last_progress() == now;
            if mem_due || self.mem.take_touched() {
                if busy {
                    arm(
                        &mut q,
                        &mut armed,
                        &mut near,
                        &mut self.sched,
                        now.as_u64(),
                        TOK_MEM,
                        now.next(),
                    );
                } else if let Some(w) = self.mem.next_event(now) {
                    arm(
                        &mut q,
                        &mut armed,
                        &mut near,
                        &mut self.sched,
                        now.as_u64(),
                        TOK_MEM,
                        w.max(now.next()),
                    );
                }
            }
            for (k, b) in self.backends.iter_mut().enumerate() {
                if backend_ran[k] || b.take_touched() {
                    if busy {
                        arm(
                            &mut q,
                            &mut armed,
                            &mut near,
                            &mut self.sched,
                            now.as_u64(),
                            TOK_COMP + k as u32,
                            now.next(),
                        );
                    } else if let Some(w) = b.sched_wake(now) {
                        arm(
                            &mut q,
                            &mut armed,
                            &mut near,
                            &mut self.sched,
                            now.as_u64(),
                            TOK_COMP + k as u32,
                            w.max(now.next()),
                        );
                    }
                }
            }
            // Jump to the earliest armed wake, bounded by the reactive
            // cores' conservative `next_event` (poll-style; a blocked
            // core may have no bound of its own — its unblock is always
            // someone else's armed wake).
            let next = now.next();
            let mut candidate = if near > 0 {
                next
            } else {
                q.next_due().map_or(next, |c| c.max(next))
            };
            if candidate > next {
                for (i, &reactive_i) in reactive.iter().enumerate() {
                    if !reactive_i {
                        continue;
                    }
                    if let Some(t) = self.cores[i].next_event(now, &mut self.seqs[i]) {
                        candidate = candidate.min(t.max(next));
                    }
                    if candidate <= next {
                        break;
                    }
                }
            }
            if candidate > next {
                // Charge the skipped window to reactive cores only:
                // sleeping cores were charged up front, and the
                // candidate never overshoots their wake.
                let skipped = candidate.as_u64() - next.as_u64();
                self.sched.cycles_skipped += skipped;
                window_skipped += skipped;
                let mut live = [false; MAX_CORES];
                let mut comps = [StallComponent::PreL2; MAX_CORES];
                for i in 0..self.cores.len() {
                    if !reactive[i] {
                        continue;
                    }
                    live[i] = true;
                    comps[i] = match self.backends.get(i / 2) {
                        Some(b) => self.cores[i].idle_component(next, &self.mem, b),
                        None => self.cores[i].idle_component(next, &self.mem, &NullStreamPort),
                    };
                    self.cores[i].charge_idle(skipped, comps[i]);
                    match self.cores[i].blocked_attempt() {
                        Some(BlockedAttempt::OzqLoad(addr) | BlockedAttempt::OzqStore(addr)) => {
                            let id = self.cores[i].id();
                            self.mem.replay_blocked_probes(id, addr, skipped);
                        }
                        Some(BlockedAttempt::Stream { q: qid, produce }) => {
                            let id = self.cores[i].id();
                            if let Some(b) = self.backends.get_mut(i / 2) {
                                b.charge_blocked(id, qid, produce, skipped);
                            }
                        }
                        Some(BlockedAttempt::Fence) | None => {}
                    }
                }
                if self.tracer.is_enabled() {
                    // Replay per-cycle stall events in live order:
                    // cycles outermost, cores in index order.
                    for cy in next.as_u64()..candidate.as_u64() {
                        for i in 0..self.cores.len() {
                            if live[i] {
                                self.cores[i].trace_idle(Cycle::new(cy), comps[i]);
                            }
                        }
                    }
                }
                self.now = candidate;
            } else {
                self.now = next;
            }
        };
        // Fast-path arms were counted at arm time; the queue contributes
        // the far-scheduled ones (its occupancy histogram likewise
        // samples only far schedules).
        self.sched.scheduled += q.scheduled();
        self.sched.occupancy = q.occupancy().clone();
        outcome?;
        if handoff {
            // Low-skip latch: finish the run in the polling loop with
            // fast-forward disabled — plain per-cycle stepping in the
            // code path compiled for exactly that. Identical semantics
            // (the polling loop resumes from `self.now`, and its inline
            // deadlock/sample stride checks match the scheduled wakes),
            // so only wall-clock changes.
            self.fast_forward = false;
            self.ff.auto_disabled = true;
            let (result, tail) = self.run_sampled_poll(max_cycles, interval)?;
            samples.extend(tail);
            // Every cycle of the run was either processed live (by this
            // loop or the per-cycle tail) or skipped by a jump.
            self.sched.cycles_processed =
                (result.cycles + 1).saturating_sub(self.sched.cycles_skipped);
            return Ok((result, samples));
        }
        for b in &self.backends {
            b.check().finish().map_err(SimError::Verification)?;
        }
        Ok((self.result(), samples))
    }

    /// Last cycle any core committed an instruction.
    fn last_progress(&self) -> Cycle {
        self.cores
            .iter()
            .map(Core::last_commit)
            .max()
            .unwrap_or(Cycle::ZERO)
    }

    /// The next value of `self.now`: normally `now + 1`, or a later cycle
    /// when fast-forwarding proves no component can act in between. The
    /// jump target is the minimum over every component's conservative
    /// `next_event` bound plus the simulator's own scheduled events (the
    /// deadlock sweep, the sampling grid, the timeout). Skipped cycles
    /// are charged to each unfinished core exactly as live ticks would
    /// have, including per-cycle trace events when tracing.
    fn advance(&mut self, now: Cycle, max_cycles: u64, interval: Option<u64>) -> Cycle {
        let next = now.next();
        // An enabled checker forces the per-cycle bound: its audits and
        // aging rules (bus starvation, request age, per-cycle occupancy
        // checks) must observe every cycle, so fast-forward windows are
        // disabled rather than reasoned about.
        if !self.fast_forward || self.checker.is_enabled() {
            return next;
        }
        // Skip-rate auto-disable, evaluated on elapsed cycles so that
        // compute-dense stretches — which rarely even reach a bound
        // computation below — latch within a few windows instead of
        // paying the fast-forward checks for the whole run.
        if now.as_u64() - self.ff.window_start >= FF_CYCLE_WINDOW {
            let pay_floor = (self.ff.window_bounds / FF_BOUND_COST_DIV).max(FF_MIN_WINDOW_SKIP);
            if self.ff.window_skipped < pay_floor {
                self.ff.low_windows += 1;
                if self.ff.low_windows >= FF_LOW_WINDOWS {
                    self.fast_forward = false;
                    self.ff.auto_disabled = true;
                    return next;
                }
            } else {
                self.ff.low_windows = 0;
            }
            self.ff.window_start = now.as_u64();
            self.ff.window_skipped = 0;
            self.ff.window_bounds = 0;
        }
        // A core may have committed its last instruction during this very
        // cycle; the termination check must run on the next one, so never
        // jump once every program is done.
        if self
            .cores
            .iter()
            .zip(&self.seqs)
            .all(|(c, s)| c.finished(s))
        {
            return next;
        }
        // A committing machine is busy: the next cycle almost certainly
        // commits again, so skip the bound computation entirely rather
        // than pay its cost every cycle of a compute-dense stretch.
        if self.last_progress() == now {
            return next;
        }
        // Timeout fires at max_cycles + 1.
        let mut target = Cycle::new(max_cycles.saturating_add(1));
        // Next deadlock sweep that could declare: the first stride
        // multiple past the declaration point, and past `now`.
        let declare = self.last_progress().as_u64() + self.cfg.deadlock_cycles + 1;
        let sweep = (declare.div_ceil(DEADLOCK_STRIDE) * DEADLOCK_STRIDE)
            .max((now.as_u64() / DEADLOCK_STRIDE + 1) * DEADLOCK_STRIDE);
        target = target.min(Cycle::new(sweep));
        if let Some(step) = interval {
            target = target.min(Cycle::new((now.as_u64() / step + 1) * step));
        }
        if let Some(t) = self.mem.next_event(now) {
            target = target.min(t);
        }
        for b in &self.backends {
            if let Some(t) = b.next_event(now) {
                target = target.min(t);
            }
        }
        for i in 0..self.cores.len() {
            if self.cores[i].finished(&self.seqs[i]) {
                continue;
            }
            if let Some(t) = self.cores[i].next_event(now, &mut self.seqs[i]) {
                target = target.min(t);
            }
        }
        // Skip-rate accounting feeding the cycle-window auto-disable
        // above (bit-identical results either way; only wall-clock
        // changes when the latch fires).
        let skipped_by_jump = target.as_u64().saturating_sub(next.as_u64());
        self.ff.bound_computations += 1;
        self.ff.skipped_cycles += skipped_by_jump;
        self.ff.window_skipped += skipped_by_jump;
        self.ff.window_bounds += 1;
        if target <= next {
            return next;
        }
        // Charge the skipped window [now+1, target-1] to every unfinished
        // core. No component changes state in a dead window, so the stall
        // component is constant across it.
        let skipped = target.as_u64() - next.as_u64();
        let mut live = [false; MAX_CORES];
        let mut comps = [StallComponent::PreL2; MAX_CORES];
        for i in 0..self.cores.len() {
            if self.cores[i].finished(&self.seqs[i]) {
                continue;
            }
            live[i] = true;
            comps[i] = match self.backends.get(i / 2) {
                Some(b) => self.cores[i].idle_component(next, &self.mem, b),
                None => self.cores[i].idle_component(next, &self.mem, &NullStreamPort),
            };
            self.cores[i].charge_idle(skipped, comps[i]);
            // A structurally blocked issue stage would have repeated its
            // refused attempt on every skipped cycle; replay the side
            // effects that live outside the core (the L1 probe of a
            // refused demand access, the backend's blocked-path
            // counters) so statistics match per-cycle simulation.
            match self.cores[i].blocked_attempt() {
                Some(BlockedAttempt::OzqLoad(addr) | BlockedAttempt::OzqStore(addr)) => {
                    let id = self.cores[i].id();
                    self.mem.replay_blocked_probes(id, addr, skipped);
                }
                Some(BlockedAttempt::Stream { q, produce }) => {
                    let id = self.cores[i].id();
                    if let Some(b) = self.backends.get_mut(i / 2) {
                        b.charge_blocked(id, q, produce, skipped);
                    }
                }
                Some(BlockedAttempt::Fence) | None => {}
            }
        }
        if self.tracer.is_enabled() {
            // Replay the per-cycle stall events in live order: cycles
            // outermost, cores in index order within each cycle.
            for cy in next.as_u64()..target.as_u64() {
                for i in 0..self.cores.len() {
                    if live[i] {
                        self.cores[i].trace_idle(Cycle::new(cy), comps[i]);
                    }
                }
            }
        }
        target
    }

    fn diagnose(&self) -> String {
        let mut s = String::new();
        for (i, (core, seq)) in self.cores.iter().zip(&self.seqs).enumerate() {
            s.push_str(&format!(
                "core{i}: finished={} iters={} committed={} pending_mem={}; ",
                core.finished(seq),
                seq.iterations_completed(),
                core.stats().total_instrs(),
                self.mem.pending_ops(CoreId(i as u8)),
            ));
        }
        s.push_str(&format!(
            "mem idle={}\n{}",
            self.mem.is_idle(),
            self.mem.debug_state()
        ));
        s
    }

    fn result(&self) -> RunResult {
        let iterations = self
            .seqs
            .iter()
            .map(Sequencer::iterations_completed)
            .min()
            .unwrap_or(0);
        let stream_cache = self
            .backends
            .iter()
            .filter_map(Backend::stream_cache)
            .map(|sc| (sc.hits(), sc.misses(), sc.dropped_fills()))
            .fold(None, |acc, (h, m2, d)| {
                let (ah, am, ad) = acc.unwrap_or((0, 0, 0));
                Some((ah + h, am + m2, ad + d))
            });
        let metrics = self
            .tracer
            .is_enabled()
            .then(|| Box::new(self.metrics_report(iterations, stream_cache)));
        RunResult {
            design: self.cfg.design.label(),
            cycles: self.now.as_u64(),
            cores: self.cores.iter().map(|c| *c.stats()).collect(),
            iterations,
            mem: self.mem.stats(),
            stream_cache,
            metrics,
            checked: self.checker.is_enabled(),
        }
    }

    /// Assembles the unified metrics report: machine-level and per-core
    /// counters, every named memory-system counter, the tracer's event
    /// totals, its latency/occupancy histograms, and the summed Figure 7
    /// stall breakdown.
    fn metrics_report(
        &self,
        iterations: u64,
        stream_cache: Option<(u64, u64, u64)>,
    ) -> MetricsReport {
        let mut r = MetricsReport::new();
        r.counter("machine.cycles", self.now.as_u64());
        r.counter("machine.iterations", iterations);
        let (mut app, mut comm, mut ozq, mut blocked) = (0u64, 0u64, 0u64, 0u64);
        for c in &self.cores {
            let s = c.stats();
            app += s.app_instrs;
            comm += s.comm_instrs;
            ozq += s.ozq_stalls;
            blocked += s.stream_blocked;
            r.breakdown += s.breakdown;
        }
        r.counter("core.app_instrs", app);
        r.counter("core.comm_instrs", comm);
        r.counter("core.ozq_stalls", ozq);
        r.counter("core.stream_blocked", blocked);
        for c in self.mem.counters() {
            r.counter(c.name(), c.value());
        }
        if let Some((hits, misses, dropped)) = stream_cache {
            r.counter("sc.hits", hits);
            r.counter("sc.misses", misses);
            r.counter("sc.dropped_fills", dropped);
        }
        // Scheduler accounting (all zero after a polling run). Excluded
        // from harness artifact bytes and cache keys — wall-clock
        // machinery, not simulated behavior.
        r.counter("sched.scheduled", self.sched.scheduled);
        r.counter("sched.fired", self.sched.fired);
        r.counter("sched.cancelled", self.sched.cancelled);
        r.counter("sched.cycles_processed", self.sched.cycles_processed);
        r.counter("sched.cycles_skipped", self.sched.cycles_skipped);
        r.counter(
            "sched.occupancy_p50",
            self.sched.occupancy.percentile(50.0).unwrap_or(0),
        );
        r.counter(
            "sched.occupancy_p95",
            self.sched.occupancy.percentile(95.0).unwrap_or(0),
        );
        for (name, v) in self.tracer.event_counts() {
            r.counter(format!("trace.{name}"), v);
        }
        r.histogram("consume_to_use_cycles", &self.tracer.consume_to_use());
        r.histogram("queue_depth", &self.tracer.queue_depth());
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::DesignPoint;
    use hfs_sim::stats::StallComponent;

    fn run_design(design: DesignPoint, work: u32, iters: u64) -> RunResult {
        let pair = KernelPair::simple("t", work, iters);
        let cfg = MachineConfig::itanium2_cmp(design);
        let mut m = Machine::new_pipeline(&cfg, &pair).unwrap();
        m.run(20_000_000)
            .unwrap_or_else(|e| panic!("{design:?} failed: {e}"))
    }

    #[test]
    fn heavywt_pipeline_completes_and_verifies() {
        let r = run_design(DesignPoint::heavywt(), 4, 300);
        assert_eq!(r.iterations, 300);
        assert_eq!(r.cores.len(), 2);
        // Breakdown accounts for every cycle on both cores.
        for c in &r.cores {
            assert_eq!(c.breakdown.total(), c.cycles);
        }
    }

    #[test]
    fn syncopti_pipeline_completes_and_verifies() {
        let r = run_design(DesignPoint::syncopti(), 4, 300);
        assert_eq!(r.iterations, 300);
        assert!(r.mem.forwards > 0, "SYNCOPTI must write-forward lines");
    }

    #[test]
    fn syncopti_sc_q64_uses_the_stream_cache() {
        let r = run_design(DesignPoint::syncopti_sc_q64(), 4, 300);
        assert_eq!(r.iterations, 300);
        let (hits, _misses, _dropped) = r.stream_cache.expect("SC configured");
        assert!(hits > 0, "stream cache should hit");
    }

    #[test]
    fn existing_software_queues_complete() {
        let r = run_design(DesignPoint::existing(), 4, 150);
        assert_eq!(r.iterations, 150);
        assert_eq!(r.mem.forwards, 0, "EXISTING never forwards");
        // Software queues execute ~10 comm instructions per produce.
        let p = r.producer();
        assert!(p.comm_instrs >= 150 * 9, "comm instrs: {}", p.comm_instrs);
    }

    #[test]
    fn memopti_forwards_lines() {
        let r = run_design(DesignPoint::memopti(), 4, 150);
        assert_eq!(r.iterations, 150);
        assert!(r.mem.forwards > 0, "MEMOPTI must write-forward");
    }

    #[test]
    fn heavywt_beats_software_queues() {
        let hw = run_design(DesignPoint::heavywt(), 4, 200);
        let sw = run_design(DesignPoint::existing(), 4, 200);
        assert!(
            sw.cycles as f64 > hw.cycles as f64 * 1.3,
            "EXISTING {} vs HEAVYWT {}",
            sw.cycles,
            hw.cycles
        );
    }

    #[test]
    fn single_threaded_fused_run() {
        let pair = KernelPair::simple("t", 4, 200);
        let cfg = MachineConfig::itanium2_single();
        let mut m = Machine::new_single(&cfg, &pair).unwrap();
        let r = m.run(10_000_000).unwrap();
        assert_eq!(r.iterations, 200);
        assert_eq!(r.cores.len(), 1);
        assert!(r.stream_cache.is_none());
    }

    #[test]
    fn results_expose_normalization_helpers() {
        let a = run_design(DesignPoint::heavywt(), 2, 100);
        let b = run_design(DesignPoint::existing(), 2, 100);
        assert!(b.normalized_to(&a) > 1.0);
        assert!(a.speedup_over(&b) > 1.0);
        assert!(a.cycles_per_iteration() > 0.0);
    }

    #[test]
    fn deadlock_detection_fires_on_unbalanced_pair() {
        use crate::kernel::{KStep, Kernel};
        use hfs_isa::QueueId;
        // Consumer consumes twice per iteration but producer produces
        // once: validation catches it, so bypass validation via a pair
        // where counts match but the consumer consumes an extra queue the
        // producer only feeds every other... — instead simply starve:
        // producer iterates fewer times than the consumer expects.
        let pair = KernelPair {
            name: "starve",
            producer: Kernel::new(vec![KStep::Produce(QueueId(0))]),
            consumer: Kernel::new(vec![KStep::Consume(QueueId(0)), KStep::Consume(QueueId(0))]),
            iterations: 50,
        };
        // validate() rejects this; drive the machine directly.
        assert!(pair.validate().is_err());
    }

    #[test]
    fn sim_error_displays_are_informative() {
        let d = SimError::Deadlock {
            cycle: 42,
            detail: "stuck".into(),
        };
        assert!(d.to_string().contains("42"));
        assert!(d.to_string().contains("stuck"));
        let t = SimError::Timeout { max_cycles: 7 };
        assert!(t.to_string().contains('7'));
        let v = SimError::Verification("fifo broke".into());
        assert!(v.to_string().contains("fifo broke"));
        let c = SimError::from(hfs_sim::ConfigError::new("bad"));
        assert!(c.to_string().contains("bad"));
    }

    #[test]
    fn run_sampled_reports_progress() {
        let pair = KernelPair::simple("s", 3, 200);
        let cfg = MachineConfig::itanium2_cmp(DesignPoint::heavywt());
        let mut m = Machine::new_pipeline(&cfg, &pair).unwrap();
        let (r, samples) = m.run_sampled(10_000_000, Some(100)).unwrap();
        assert_eq!(r.iterations, 200);
        assert!(samples.len() > 1);
        // Samples are monotone in both cycle and iteration count.
        for w in samples.windows(2) {
            assert!(w[1].0 > w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn breakdown_has_memory_components_for_software_designs() {
        let r = run_design(DesignPoint::existing(), 2, 100);
        let p = r.producer();
        let coherence_cycles = p.breakdown[StallComponent::Bus]
            + p.breakdown[StallComponent::L2]
            + p.breakdown[StallComponent::L3];
        assert!(
            coherence_cycles > 0,
            "software queues must show memory-system stalls: {}",
            p.breakdown
        );
    }
}

//! Property-based tests for streaming hardware components and the
//! analytic model.

use hfs_core::analytic::{steady_throughput, AnalyticParams};
use hfs_core::{StreamCache, SyncArray, SyncArrayConfig};
use hfs_isa::QueueId;
use proptest::prelude::*;

proptest! {
    /// The synchronization array conserves and orders items: everything
    /// injected comes out exactly once, in FIFO order per queue.
    #[test]
    fn sync_array_conserves_fifo(
        items in prop::collection::vec(0u16..3, 1..120),
        transit in 1u64..12,
    ) {
        let mut sa = SyncArray::new(SyncArrayConfig::paper(transit, 32)).unwrap();
        let mut sent: Vec<Vec<u64>> = vec![Vec::new(); 3];
        let mut got: Vec<Vec<u64>> = vec![Vec::new(); 3];
        let mut pending: std::collections::VecDeque<(QueueId, u64)> = items
            .iter()
            .enumerate()
            .map(|(i, &q)| (QueueId(q), i as u64))
            .collect();
        for _cycle in 0..10_000 {
            sa.begin_cycle();
            // Drain whatever is available.
            for q in 0..3u16 {
                while let Some(v) = sa.try_consume(QueueId(q)) {
                    got[q as usize].push(v);
                }
            }
            // Inject as the network allows.
            while let Some(&(q, v)) = pending.front() {
                if sa.try_inject(q, v) {
                    sent[q.index()].push(v);
                    pending.pop_front();
                } else {
                    break;
                }
            }
            if pending.is_empty() && sa.is_empty() {
                break;
            }
        }
        prop_assert!(pending.is_empty() && sa.is_empty(), "items stuck in the array");
        prop_assert_eq!(got, sent);
    }

    /// The stream cache never yields a value it was not filled with, and
    /// every hit invalidates.
    #[test]
    fn stream_cache_exact_once(slots in prop::collection::vec(0u64..200, 1..80)) {
        let mut sc = StreamCache::with_capacity_bytes(256); // 32 entries
        let mut resident = std::collections::HashMap::new();
        for &s in &slots {
            if sc.fill(QueueId(0), s, s * 3) {
                resident.insert(s, s * 3);
            }
            prop_assert!(sc.len() <= sc.capacity());
        }
        for (&s, &v) in &resident {
            prop_assert_eq!(sc.take(QueueId(0), s), Some(v));
            prop_assert_eq!(sc.take(QueueId(0), s), None, "hit must invalidate");
        }
    }

    /// Analytic model: more buffers never reduce throughput, and
    /// throughput never exceeds the COMM-OP bound.
    #[test]
    fn analytic_monotone_in_buffers(
        comm in 2u64..40,
        transit in 1u64..30,
        b1 in 1u32..6,
        extra in 1u32..6,
    ) {
        let t = |buffers| steady_throughput(AnalyticParams {
            comm_a: comm,
            comm_b: comm,
            transit,
            buffers,
            compute: 0,
        });
        let low = t(b1);
        let high = t(b1 + extra);
        prop_assert!(high >= low * 0.999, "buffers {b1}->{} reduced throughput", b1 + extra);
        // Allow for the +/-1 iteration quantization at the window edges.
        prop_assert!(high <= (1.0 / comm as f64) * 1.001 + 1e-4, "throughput beats COMM-OP bound");
    }
}

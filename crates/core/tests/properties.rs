//! Randomized property tests for streaming hardware components and the
//! analytic model, driven by the workspace's deterministic [`Rng64`].

use hfs_core::analytic::{steady_throughput, AnalyticParams};
use hfs_core::{StreamCache, SyncArray, SyncArrayConfig};
use hfs_isa::QueueId;
use hfs_sim::Rng64;

const CASES: u64 = 32;

/// The synchronization array conserves and orders items: everything
/// injected comes out exactly once, in FIFO order per queue.
#[test]
fn sync_array_conserves_fifo() {
    let mut rng = Rng64::new(0xC0_0001);
    for _ in 0..CASES {
        let len = 1 + rng.below(119) as usize;
        let items: Vec<u16> = (0..len).map(|_| rng.below(3) as u16).collect();
        let transit = rng.range(1, 12);
        let mut sa = SyncArray::new(SyncArrayConfig::paper(transit, 32)).unwrap();
        let mut sent: Vec<Vec<u64>> = vec![Vec::new(); 3];
        let mut got: Vec<Vec<u64>> = vec![Vec::new(); 3];
        let mut pending: std::collections::VecDeque<(QueueId, u64)> = items
            .iter()
            .enumerate()
            .map(|(i, &q)| (QueueId(q), i as u64))
            .collect();
        for _cycle in 0..10_000 {
            sa.begin_cycle();
            // Drain whatever is available.
            for q in 0..3u16 {
                while let Some(v) = sa.try_consume(QueueId(q)) {
                    got[q as usize].push(v);
                }
            }
            // Inject as the network allows.
            while let Some(&(q, v)) = pending.front() {
                if sa.try_inject(q, v) {
                    sent[q.index()].push(v);
                    pending.pop_front();
                } else {
                    break;
                }
            }
            if pending.is_empty() && sa.is_empty() {
                break;
            }
        }
        assert!(
            pending.is_empty() && sa.is_empty(),
            "items stuck in the array"
        );
        assert_eq!(got, sent);
    }
}

/// The stream cache never yields a value it was not filled with, and
/// every hit invalidates.
#[test]
fn stream_cache_exact_once() {
    let mut rng = Rng64::new(0xC0_0002);
    for _ in 0..CASES {
        let len = 1 + rng.below(79) as usize;
        let slots: Vec<u64> = (0..len).map(|_| rng.below(200)).collect();
        let mut sc = StreamCache::with_capacity_bytes(256); // 32 entries
        let mut resident = std::collections::HashMap::new();
        for &s in &slots {
            if sc.fill(QueueId(0), s, s * 3) {
                resident.insert(s, s * 3);
            }
            assert!(sc.len() <= sc.capacity());
        }
        for (&s, &v) in &resident {
            assert_eq!(sc.take(QueueId(0), s), Some(v));
            assert_eq!(sc.take(QueueId(0), s), None, "hit must invalidate");
        }
    }
}

/// Analytic model: more buffers never reduce throughput, and
/// throughput never exceeds the COMM-OP bound.
#[test]
fn analytic_monotone_in_buffers() {
    let mut rng = Rng64::new(0xC0_0003);
    for _ in 0..CASES {
        let comm = rng.range(2, 40);
        let transit = rng.range(1, 30);
        let b1 = rng.range(1, 6) as u32;
        let extra = rng.range(1, 6) as u32;
        let t = |buffers| {
            steady_throughput(AnalyticParams {
                comm_a: comm,
                comm_b: comm,
                transit,
                buffers,
                compute: 0,
            })
        };
        let low = t(b1);
        let high = t(b1 + extra);
        assert!(
            high >= low * 0.999,
            "buffers {b1}->{} reduced throughput",
            b1 + extra
        );
        // Allow for the +/-1 iteration quantization at the window edges.
        assert!(
            high <= (1.0 / comm as f64) * 1.001 + 1e-4,
            "throughput beats COMM-OP bound"
        );
    }
}

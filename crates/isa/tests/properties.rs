//! Randomized property tests for program building and sequencing,
//! driven by the workspace's deterministic [`Rng64`].

use hfs_isa::{Addr, DynOp, ProgramBuilder, RegionId, Sequencer};
use hfs_sim::Rng64;
use std::collections::HashMap;

const CASES: u64 = 48;

/// A straight-line body expands to exactly body-size x iterations
/// dynamic instructions, in deterministic order.
#[test]
fn expansion_count_is_exact() {
    let mut rng = Rng64::new(0x15A_0001);
    for _ in 0..CASES {
        let alu = rng.range(1, 8);
        let fp = rng.below(4);
        let iters = rng.range(1, 50);
        let mut b = ProgramBuilder::new(iters);
        b.alu_work(alu).fp_work(fp).branch();
        let prog = b.build();
        let mut seq = Sequencer::new(&prog, &HashMap::new(), 0).unwrap();
        let mut n = 0u64;
        while seq.pop().is_some() {
            n += 1;
        }
        assert_eq!(n, (alu + fp + 1) * iters);
        assert!(seq.finished());
        assert_eq!(seq.iterations_completed(), iters);
    }
}

/// Stream loads walk the region by the stride and wrap inside it.
#[test]
fn stream_addresses_stay_in_region() {
    let mut rng = Rng64::new(0x15A_0002);
    for _ in 0..CASES {
        let size_words = rng.range(2, 256);
        let stride_words = rng.range(1, 8);
        let iters = rng.range(1, 100);
        let bytes = size_words * 8;
        let stride = stride_words * 8;
        let mut b = ProgramBuilder::new(iters);
        let r = b.declare_region("a", bytes);
        b.load_stream(r, stride);
        let prog = b.build();
        let mut bases = HashMap::new();
        let base = 0x10_0000u64;
        bases.insert(RegionId(0), Addr::new(base));
        let mut seq = Sequencer::new(&prog, &bases, 0).unwrap();
        let mut expect = 0u64;
        while let Some(d) = seq.pop() {
            if let DynOp::Load { addr, .. } = d.op {
                assert_eq!(addr.as_u64(), base + expect);
                assert!(addr.as_u64() < base + bytes);
                expect = (expect + stride) % bytes;
            }
        }
    }
}

/// Inner loops multiply instruction counts exactly.
#[test]
fn nested_loops_expand_exactly() {
    let mut rng = Rng64::new(0x15A_0003);
    for _ in 0..CASES {
        let outer = rng.range(1, 20);
        let inner = rng.range(1, 20);
        let body = rng.range(1, 5);
        let mut b = ProgramBuilder::new(outer);
        b.inner_loop(inner, |ib| {
            ib.alu_work(body);
        });
        let prog = b.build();
        let mut seq = Sequencer::new(&prog, &HashMap::new(), 0).unwrap();
        let mut n = 0u64;
        while seq.pop().is_some() {
            n += 1;
        }
        assert_eq!(n, outer * inner * body);
    }
}

/// The same seed yields the same dynamic stream; sequencing is pure.
#[test]
fn sequencing_is_deterministic() {
    let mut rng = Rng64::new(0x15A_0004);
    for _ in 0..CASES {
        let seed = rng.below(1000);
        let mut b = ProgramBuilder::new(30);
        let r = b.declare_region("ws", 4096);
        b.load_random(r).alu_work(2);
        let prog = b.build();
        let mut bases = HashMap::new();
        bases.insert(RegionId(0), Addr::new(0x4000));
        let collect = |seed| {
            let mut s = Sequencer::new(&prog, &bases, seed).unwrap();
            std::iter::from_fn(move || s.pop())
                .map(|d| format!("{d}"))
                .collect::<Vec<_>>()
        };
        assert_eq!(collect(seed), collect(seed));
    }
}

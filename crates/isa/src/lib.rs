//! Instruction model and dynamic sequencing for the `hfs` CMP simulator.
//!
//! The paper's workloads are producer/consumer loop kernels. This crate
//! provides:
//!
//! * [`ids`] — typed identifiers for cores, queues, registers, and memory
//!   regions,
//! * [`instr`] — the small RISC-like instruction template model, including
//!   the `produce`/`consume` ISA extension of §3.1.2,
//! * [`addr`] — byte addresses, memory regions, and address-generation
//!   patterns (sequential streams, strided walks, working-set random),
//! * [`program`] — loop-nest programs built from instruction templates,
//!   spin-synchronization steps, and queue access plans,
//! * [`seq`] — the [`seq::Sequencer`], which expands a program into the
//!   dynamic instruction stream, resolving spin-loop control flow from the
//!   values returned by flag loads,
//! * [`builder`] — an ergonomic [`builder::ProgramBuilder`].
//!
//! Registers carry *timing* (dependences) only; the sole value-dependent
//! control flow is spin loops, which the sequencer resolves directly from
//! delivered load values. This keeps the core model simple while still
//! reproducing the coherence ping-pong that spin-based software queues
//! suffer (§3.4.1 of the paper).

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod addr;
pub mod builder;
pub mod ids;
pub mod instr;
pub mod program;
pub mod seq;

pub use addr::{Addr, AddrPattern, Region};
pub use builder::ProgramBuilder;
pub use ids::{CoreId, QueueId, Reg, RegionId};
pub use instr::{DynInstr, DynOp, FuClass, InstrKind, InstrTemplate, Op, StoreValue};
pub use program::{Program, QueuePlan, QueueRole, Step};
pub use seq::{Sequencer, SpinToken, SPIN_REG};

//! Ergonomic construction of [`Program`]s.

use crate::addr::AddrPattern;
use crate::ids::{QueueId, Reg, RegionId};
use crate::instr::{InstrKind, InstrTemplate, Op, StoreValue};
use crate::program::{Program, QueuePlan, Step};
use crate::Region;

/// Builds loop-kernel [`Program`]s step by step.
///
/// Register names for destination operands are allocated round-robin from
/// a pool, so consecutive work instructions are independent unless a chain
/// is requested explicitly with [`ProgramBuilder::alu_chain`].
///
/// # Example
///
/// ```
/// use hfs_isa::ProgramBuilder;
///
/// let prog = ProgramBuilder::new(100)
///     .alu_work(3)
///     .fp_work(1)
///     .branch()
///     .build();
/// assert_eq!(prog.iterations, 100);
/// assert_eq!(prog.static_instrs_per_iteration(), 5);
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    regions: Vec<Region>,
    queues: Vec<QueuePlan>,
    body: Vec<Step>,
    iterations: u64,
    next_region: u16,
    next_reg: u8,
}

/// Registers `0..=REG_POOL_LAST` are handed out for scratch destinations.
const REG_POOL_LAST: u8 = 99;

impl ProgramBuilder {
    /// Starts a program whose outer loop runs `iterations` times.
    pub fn new(iterations: u64) -> Self {
        ProgramBuilder {
            regions: Vec::new(),
            queues: Vec::new(),
            body: Vec::new(),
            iterations,
            next_region: 0,
            next_reg: 0,
        }
    }

    fn alloc_reg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg = if self.next_reg >= REG_POOL_LAST {
            0
        } else {
            self.next_reg + 1
        };
        r
    }

    /// Declares a memory region and returns its id.
    pub fn declare_region(&mut self, name: &'static str, bytes: u64) -> RegionId {
        let id = RegionId(self.next_region);
        self.next_region += 1;
        self.regions.push(Region::new(id, name, bytes));
        id
    }

    /// Registers a queue plan (role, depth, memory layout).
    pub fn plan_queue(&mut self, plan: QueuePlan) -> &mut Self {
        self.queues.push(plan);
        self
    }

    /// Appends a raw step.
    pub fn step(&mut self, s: Step) -> &mut Self {
        self.body.push(s);
        self
    }

    /// Appends a raw instruction template.
    pub fn instr(&mut self, t: InstrTemplate) -> &mut Self {
        self.body.push(Step::Instr(t));
        self
    }

    /// Appends `n` independent integer ALU application instructions.
    pub fn alu_work(&mut self, n: u64) -> &mut Self {
        for _ in 0..n {
            let d = self.alloc_reg();
            self.body.push(Step::Instr(
                InstrTemplate::new(Op::IntAlu, InstrKind::App).dest(d),
            ));
        }
        self
    }

    /// Appends a chain of `n` *dependent* integer ALU instructions
    /// (each reads the previous one's destination), modeling dependence
    /// height within the loop body.
    pub fn alu_chain(&mut self, n: u64) -> &mut Self {
        let mut prev: Option<Reg> = None;
        for _ in 0..n {
            let d = self.alloc_reg();
            let t = InstrTemplate::new(Op::IntAlu, InstrKind::App)
                .dest(d)
                .srcs(prev, None);
            self.body.push(Step::Instr(t));
            prev = Some(d);
        }
        self
    }

    /// Appends `n` independent floating-point application instructions.
    pub fn fp_work(&mut self, n: u64) -> &mut Self {
        for _ in 0..n {
            let d = self.alloc_reg();
            self.body.push(Step::Instr(
                InstrTemplate::new(Op::FpAlu, InstrKind::App).dest(d),
            ));
        }
        self
    }

    /// Appends an application branch (the loop back-edge or an internal
    /// conditional; the sequencer treats it as straight-line).
    pub fn branch(&mut self) -> &mut Self {
        self.body
            .push(Step::Instr(InstrTemplate::new(Op::Branch, InstrKind::App)));
        self
    }

    /// Appends an application load walking `region` sequentially with the
    /// given byte stride.
    pub fn load_stream(&mut self, region: RegionId, stride: u64) -> &mut Self {
        let d = self.alloc_reg();
        self.body.push(Step::Instr(
            InstrTemplate::new(
                Op::Load(AddrPattern::Stream { region, stride }),
                InstrKind::App,
            )
            .dest(d),
        ));
        self
    }

    /// Appends an application load at a uniform-random 8-byte-aligned
    /// offset within `region` (models a large working set).
    pub fn load_random(&mut self, region: RegionId) -> &mut Self {
        let d = self.alloc_reg();
        self.body.push(Step::Instr(
            InstrTemplate::new(Op::Load(AddrPattern::Random { region }), InstrKind::App).dest(d),
        ));
        self
    }

    /// Appends an application store walking `region` sequentially.
    pub fn store_stream(&mut self, region: RegionId, stride: u64) -> &mut Self {
        self.body.push(Step::Instr(InstrTemplate::new(
            Op::Store(AddrPattern::Stream { region, stride }, StoreValue::Opaque),
            InstrKind::App,
        )));
        self
    }

    /// Appends an application store at a random offset within `region`.
    pub fn store_random(&mut self, region: RegionId) -> &mut Self {
        self.body.push(Step::Instr(InstrTemplate::new(
            Op::Store(AddrPattern::Random { region }, StoreValue::Opaque),
            InstrKind::App,
        )));
        self
    }

    /// Appends an ISA `produce` instruction on `q` (the queue must be
    /// planned with [`ProgramBuilder::plan_queue`]).
    pub fn produce(&mut self, q: QueueId) -> &mut Self {
        self.body.push(Step::Instr(InstrTemplate::new(
            Op::Produce(q),
            InstrKind::Comm,
        )));
        self
    }

    /// Appends an ISA `consume` instruction on `q`, writing a fresh
    /// destination register.
    pub fn consume(&mut self, q: QueueId) -> &mut Self {
        let _ = self.consume_into(q);
        self
    }

    /// Appends an ISA `consume` on `q` and returns the destination
    /// register, so later work can be made data-dependent on the consumed
    /// value (consume-to-use latency, §4.4).
    pub fn consume_into(&mut self, q: QueueId) -> Reg {
        let d = self.alloc_reg();
        self.body.push(Step::Instr(
            InstrTemplate::new(Op::Consume(q), InstrKind::Comm).dest(d),
        ));
        d
    }

    /// Like [`ProgramBuilder::alu_chain`], but link *i* additionally
    /// reads `seeds[i]` (typically consumed values' registers), so the
    /// chain exposes the consume-to-use latency of every seed.
    pub fn alu_chain_from(&mut self, n: u64, seeds: &[Reg]) -> &mut Self {
        let mut prev = None;
        for i in 0..n {
            let d = self.alloc_reg();
            let t = InstrTemplate::new(Op::IntAlu, InstrKind::App)
                .dest(d)
                .srcs(prev, seeds.get(i as usize).copied());
            self.body.push(Step::Instr(t));
            prev = Some(d);
        }
        self
    }

    /// A chain of `n` dependent floating-point instructions, link *i*
    /// additionally reading `seeds[i]`.
    pub fn fp_chain_from(&mut self, n: u64, seeds: &[Reg]) -> &mut Self {
        let mut prev = None;
        for i in 0..n {
            let d = self.alloc_reg();
            let t = InstrTemplate::new(Op::FpAlu, InstrKind::App)
                .dest(d)
                .srcs(prev, seeds.get(i as usize).copied());
            self.body.push(Step::Instr(t));
            prev = Some(d);
        }
        self
    }

    /// Appends a spin-synchronization step on `q`'s current slot flag.
    pub fn spin(&mut self, q: QueueId, until_full: bool) -> &mut Self {
        self.body.push(Step::Spin { q, until_full });
        self
    }

    /// Appends a local queue-index advance for `q`.
    pub fn advance_queue(&mut self, q: QueueId) -> &mut Self {
        self.body.push(Step::AdvanceQueue(q));
        self
    }

    /// Appends a release store (`st.rel`) of the current slot's flag for
    /// `q` with value `full`. Release stores order after all earlier
    /// memory operations in the memory system without blocking issue.
    pub fn release_store_flag(&mut self, q: QueueId, full: bool) -> &mut Self {
        self.body.push(Step::Instr(InstrTemplate::new(
            Op::StoreRelease(AddrPattern::QueueFlag { q }, StoreValue::Flag(full)),
            InstrKind::Comm,
        )));
        self
    }

    /// Allocates and returns a scratch register from the pool, for
    /// callers assembling raw instruction templates that must share the
    /// builder's register allocation.
    pub fn data_reg(&mut self) -> Reg {
        self.alloc_reg()
    }

    /// Appends a memory fence.
    pub fn fence(&mut self) -> &mut Self {
        self.body
            .push(Step::Instr(InstrTemplate::new(Op::Fence, InstrKind::Comm)));
        self
    }

    /// Builds an inner counted loop; `f` populates the loop body on a
    /// child builder that shares this builder's register allocator state.
    pub fn inner_loop(&mut self, count: u64, f: impl FnOnce(&mut ProgramBuilder)) -> &mut Self {
        let mut child = ProgramBuilder {
            regions: Vec::new(),
            queues: Vec::new(),
            body: Vec::new(),
            iterations: 1,
            next_region: self.next_region,
            next_reg: self.next_reg,
        };
        f(&mut child);
        assert!(
            child.regions.is_empty() && child.queues.is_empty(),
            "declare regions and queues on the outer builder, not inside a loop"
        );
        self.next_reg = child.next_reg;
        self.body.push(Step::Loop {
            body: child.body,
            count,
        });
        self
    }

    /// Finishes the program.
    pub fn build(&self) -> Program {
        Program {
            regions: self.regions.clone(),
            queues: self.queues.clone(),
            body: self.body.clone(),
            iterations: self.iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{QueueMemLayout, QueueRole};
    use crate::Addr;

    #[test]
    fn builds_validating_program() {
        let mut b = ProgramBuilder::new(10);
        let r = b.declare_region("data", 4096);
        b.alu_work(2).load_stream(r, 8).branch();
        let p = b.build();
        assert!(p.validate().is_ok());
        assert_eq!(p.static_instrs_per_iteration(), 4);
    }

    #[test]
    fn inner_loop_nests() {
        let mut b = ProgramBuilder::new(5);
        b.alu_work(1);
        b.inner_loop(3, |ib| {
            ib.alu_work(2);
        });
        let p = b.build();
        assert!(p.validate().is_ok());
        assert_eq!(p.static_instrs_per_iteration(), 1 + 3 * 2);
    }

    #[test]
    fn queue_ops_require_plan() {
        let mut b = ProgramBuilder::new(1);
        b.produce(QueueId(0));
        assert!(b.build().validate().is_err());
        b.plan_queue(QueuePlan {
            q: QueueId(0),
            role: QueueRole::Produce,
            depth: 32,
            layout: None,
        });
        assert!(b.build().validate().is_ok());
    }

    #[test]
    fn software_queue_steps_validate_with_layout() {
        let mut b = ProgramBuilder::new(2);
        b.plan_queue(QueuePlan {
            q: QueueId(1),
            role: QueueRole::Consume,
            depth: 8,
            layout: Some(QueueMemLayout {
                base: Addr::new(0x4000),
                slot_stride: 16,
                flag_offset: Some(8),
            }),
        });
        b.spin(QueueId(1), true).advance_queue(QueueId(1)).fence();
        assert!(b.build().validate().is_ok());
    }

    #[test]
    fn alu_chain_has_dependences() {
        let mut b = ProgramBuilder::new(1);
        b.alu_chain(3);
        let p = b.build();
        let mut prev_dest = None;
        for s in &p.body {
            if let Step::Instr(t) = s {
                if let Some(pd) = prev_dest {
                    assert_eq!(t.srcs[0], Some(pd));
                }
                prev_dest = t.dest;
            }
        }
    }

    #[test]
    fn reg_pool_wraps_without_touching_spin_reg() {
        let mut b = ProgramBuilder::new(1);
        b.alu_work(300);
        let p = b.build();
        for s in &p.body {
            if let Step::Instr(t) = s {
                assert!(t.dest.unwrap().0 <= REG_POOL_LAST);
            }
        }
    }
}

//! Loop-nest programs: the static representation executed by a thread.

use hfs_sim::ConfigError;

use crate::addr::{Addr, Region};
use crate::ids::{QueueId, RegionId};
use crate::instr::InstrTemplate;

/// The executing thread's relationship to a queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueRole {
    /// This thread writes (produces into) the queue.
    Produce,
    /// This thread reads (consumes from) the queue.
    Consume,
}

/// Everything a thread needs to know about one stream queue it touches:
/// its role, the queue geometry, and — for shared-memory backing stores —
/// the memory layout of Figure 5 (queue layout unit, slot stride, flag
/// placement).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueuePlan {
    /// The queue.
    pub q: QueueId,
    /// Whether this thread produces into or consumes from it.
    pub role: QueueRole,
    /// Queue depth in entries.
    pub depth: u32,
    /// Memory layout, for designs that back queues with shared memory.
    /// `None` for designs with dedicated backing stores (`produce` /
    /// `consume` never touch the memory address space there).
    pub layout: Option<QueueMemLayout>,
}

/// Shared-memory layout of a queue (Figure 5 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueMemLayout {
    /// Base address of slot 0, assigned by the machine loader.
    pub base: Addr,
    /// Byte distance between consecutive slots (`line / qlu` for data-only
    /// layouts, or data+flag pair size for software queues).
    pub slot_stride: u64,
    /// Offset of the full/empty flag within a slot, when the design keeps
    /// flags in memory (software queues). `None` for SYNCOPTI-style
    /// counter-synchronized designs.
    pub flag_offset: Option<u64>,
}

impl QueueMemLayout {
    /// Address of the data word of `slot`.
    pub fn data_addr(&self, slot: u32) -> Addr {
        self.base + u64::from(slot) * self.slot_stride
    }

    /// Address of the flag of `slot`.
    ///
    /// # Panics
    ///
    /// Panics if this layout has no in-memory flags.
    pub fn flag_addr(&self, slot: u32) -> Addr {
        let off = self
            .flag_offset
            .expect("flag_addr on a layout without in-memory flags");
        self.data_addr(slot) + off
    }
}

/// One step of a loop body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// Execute a single instruction.
    Instr(InstrTemplate),
    /// Spin-synchronize on the current slot's full/empty flag of a
    /// software queue: repeatedly `load flag; branch` until the flag reads
    /// `until_full`. Used only by shared-memory software-queue designs.
    Spin {
        /// Queue whose current slot's flag is polled.
        q: QueueId,
        /// Exit the spin when the flag equals this (consumer waits for
        /// full=1; producer waits for full=0).
        until_full: bool,
    },
    /// Advance the thread's local head/tail index for `q` by one slot,
    /// wrapping at the queue depth. Costs one ALU instruction.
    AdvanceQueue(QueueId),
    /// A counted inner loop.
    Loop {
        /// Body steps.
        body: Vec<Step>,
        /// Trip count per entry to the loop.
        count: u64,
    },
}

/// A complete single-thread program: region declarations, queue plans, and
/// an outer loop body executed `iterations` times.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Memory regions the program references.
    pub regions: Vec<Region>,
    /// Queues the program touches, with roles and layouts.
    pub queues: Vec<QueuePlan>,
    /// Outer-loop body.
    pub body: Vec<Step>,
    /// Outer-loop trip count.
    pub iterations: u64,
}

impl Program {
    /// Validates internal consistency: queue references resolve, regions
    /// are unique and non-empty, trip counts are non-zero.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first inconsistency found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.iterations == 0 {
            return Err(ConfigError::new("program iteration count must be non-zero"));
        }
        let mut seen = std::collections::HashSet::new();
        for r in &self.regions {
            if r.bytes == 0 {
                return Err(ConfigError::new(format!("region {} is empty", r.name)));
            }
            if !seen.insert(r.id) {
                return Err(ConfigError::new(format!(
                    "region id {} declared twice",
                    r.id
                )));
            }
        }
        let mut qseen = std::collections::HashSet::new();
        for qp in &self.queues {
            if qp.depth == 0 {
                return Err(ConfigError::new(format!("queue {} has zero depth", qp.q)));
            }
            if !qseen.insert(qp.q) {
                return Err(ConfigError::new(format!("queue {} planned twice", qp.q)));
            }
        }
        self.validate_steps(&self.body, 0)
    }

    fn validate_steps(&self, steps: &[Step], depth: usize) -> Result<(), ConfigError> {
        if depth > 4 {
            return Err(ConfigError::new("loop nests deeper than 4 are unsupported"));
        }
        for s in steps {
            match s {
                Step::Spin { q, .. } | Step::AdvanceQueue(q) => {
                    self.queue_plan(*q).ok_or_else(|| {
                        ConfigError::new(format!("step references unplanned queue {q}"))
                    })?;
                }
                Step::Instr(t) => self.validate_instr(t)?,
                Step::Loop { body, count } => {
                    if *count == 0 {
                        return Err(ConfigError::new("inner loop trip count must be non-zero"));
                    }
                    self.validate_steps(body, depth + 1)?;
                }
            }
        }
        Ok(())
    }

    fn validate_instr(&self, t: &InstrTemplate) -> Result<(), ConfigError> {
        use crate::addr::AddrPattern;
        use crate::instr::Op;
        let pattern = match &t.op {
            Op::Load(p) | Op::Store(p, _) => Some(*p),
            Op::Produce(q) | Op::Consume(q) => {
                self.queue_plan(*q).ok_or_else(|| {
                    ConfigError::new(format!("instruction references unplanned queue {q}"))
                })?;
                None
            }
            _ => None,
        };
        match pattern {
            Some(AddrPattern::Fixed { region, .. })
            | Some(AddrPattern::Stream { region, .. })
            | Some(AddrPattern::Random { region }) => {
                self.region(region).ok_or_else(|| {
                    ConfigError::new(format!("instruction references undeclared {region}"))
                })?;
            }
            Some(AddrPattern::QueueData { q }) | Some(AddrPattern::QueueFlag { q }) => {
                let plan = self.queue_plan(q).ok_or_else(|| {
                    ConfigError::new(format!("instruction references unplanned queue {q}"))
                })?;
                if plan.layout.is_none() {
                    return Err(ConfigError::new(format!(
                        "queue-memory access to {q}, which has no memory layout"
                    )));
                }
            }
            None => {}
        }
        Ok(())
    }

    /// Looks up the plan for a queue.
    pub fn queue_plan(&self, q: QueueId) -> Option<&QueuePlan> {
        self.queues.iter().find(|p| p.q == q)
    }

    /// Looks up a region declaration.
    pub fn region(&self, id: RegionId) -> Option<&Region> {
        self.regions.iter().find(|r| r.id == id)
    }

    /// Counts static instructions in one outer-loop iteration, treating a
    /// spin as its best-case two instructions (one flag load, one branch)
    /// and expanding inner loops by their trip counts.
    pub fn static_instrs_per_iteration(&self) -> u64 {
        fn count(steps: &[Step]) -> u64 {
            steps
                .iter()
                .map(|s| match s {
                    Step::Instr(_) => 1,
                    Step::Spin { .. } => 2,
                    Step::AdvanceQueue(_) => 1,
                    Step::Loop { body, count: c } => c * count(body),
                })
                .sum()
        }
        count(&self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::AddrPattern;
    use crate::ids::Reg;
    use crate::instr::{InstrKind, Op};

    fn simple_program() -> Program {
        Program {
            regions: vec![Region::new(RegionId(0), "a", 1024)],
            queues: vec![QueuePlan {
                q: QueueId(0),
                role: QueueRole::Produce,
                depth: 32,
                layout: Some(QueueMemLayout {
                    base: Addr::new(0x1000),
                    slot_stride: 16,
                    flag_offset: Some(8),
                }),
            }],
            body: vec![
                Step::Instr(InstrTemplate::new(Op::IntAlu, InstrKind::App).dest(Reg(1))),
                Step::Spin {
                    q: QueueId(0),
                    until_full: false,
                },
                Step::Instr(InstrTemplate::new(
                    Op::Store(
                        AddrPattern::QueueData { q: QueueId(0) },
                        crate::instr::StoreValue::QueuePayload(QueueId(0)),
                    ),
                    InstrKind::Comm,
                )),
                Step::AdvanceQueue(QueueId(0)),
            ],
            iterations: 10,
        }
    }

    #[test]
    fn validate_ok() {
        assert!(simple_program().validate().is_ok());
    }

    #[test]
    fn validate_rejects_zero_iterations() {
        let mut p = simple_program();
        p.iterations = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_duplicate_region() {
        let mut p = simple_program();
        p.regions.push(Region::new(RegionId(0), "dup", 8));
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_unplanned_queue() {
        let mut p = simple_program();
        p.body.push(Step::AdvanceQueue(QueueId(9)));
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_queue_mem_access_without_layout() {
        let mut p = simple_program();
        p.queues[0].layout = None;
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_empty_region() {
        let mut p = simple_program();
        p.regions[0].bytes = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn layout_addresses() {
        let l = QueueMemLayout {
            base: Addr::new(0x2000),
            slot_stride: 16,
            flag_offset: Some(8),
        };
        assert_eq!(l.data_addr(0), Addr::new(0x2000));
        assert_eq!(l.data_addr(3), Addr::new(0x2030));
        assert_eq!(l.flag_addr(3), Addr::new(0x2038));
    }

    #[test]
    fn static_instr_count_expands_loops() {
        let mut p = simple_program();
        // body currently: 1 instr + spin(2) + store(1) + advance(1) = 5
        assert_eq!(p.static_instrs_per_iteration(), 5);
        p.body.push(Step::Loop {
            body: vec![Step::Instr(InstrTemplate::new(Op::IntAlu, InstrKind::App))],
            count: 4,
        });
        assert_eq!(p.static_instrs_per_iteration(), 9);
    }

    #[test]
    fn lookup_helpers() {
        let p = simple_program();
        assert!(p.queue_plan(QueueId(0)).is_some());
        assert!(p.queue_plan(QueueId(5)).is_none());
        assert!(p.region(RegionId(0)).is_some());
        assert!(p.region(RegionId(7)).is_none());
    }
}

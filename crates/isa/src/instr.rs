//! The instruction template and dynamic instruction model.

use std::fmt;

use crate::addr::{Addr, AddrPattern};
use crate::ids::{QueueId, Reg};

/// Functional-unit class an instruction executes on, mirroring the
/// Itanium 2 mix of Table 2 (6 ALU, 4 memory ports, 2 FP, 3 branch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuClass {
    /// Integer ALU.
    IntAlu,
    /// Floating-point unit.
    Fp,
    /// Branch unit.
    Branch,
    /// Memory port (loads, stores, produce/consume data movement).
    Mem,
}

impl FuClass {
    /// Execution latency in cycles for register-to-register operations.
    /// Memory-class latency is determined by the memory system instead.
    pub fn latency(self) -> u64 {
        match self {
            FuClass::IntAlu => 1,
            FuClass::Fp => 4,
            FuClass::Branch => 1,
            FuClass::Mem => 1,
        }
    }
}

/// Whether an instruction is part of the application's own work or part of
/// the communication/synchronization overhead — the distinction plotted in
/// Figure 8 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrKind {
    /// Application work.
    App,
    /// Communication or synchronization overhead (COMM-OP instructions).
    Comm,
}

/// The value a store template writes; evaluated by the sequencer into a
/// concrete 64-bit value at expansion time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreValue {
    /// An uninterpreted value (application data); stored as 0.
    Opaque,
    /// The next payload of the given queue: the per-queue produce counter,
    /// so FIFO order can be verified end to end.
    QueuePayload(QueueId),
    /// A full/empty flag value: 1 when `true` (full), 0 when `false`.
    Flag(bool),
}

/// An instruction template: one static instruction inside a loop body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstrTemplate {
    /// Operation performed.
    pub op: Op,
    /// Destination register, if any.
    pub dest: Option<Reg>,
    /// Source registers (up to two).
    pub srcs: [Option<Reg>; 2],
    /// Application work or communication overhead.
    pub kind: InstrKind,
}

impl InstrTemplate {
    /// Creates a template with no register operands.
    pub fn new(op: Op, kind: InstrKind) -> Self {
        InstrTemplate {
            op,
            dest: None,
            srcs: [None, None],
            kind,
        }
    }

    /// Sets the destination register (builder style).
    #[must_use]
    pub fn dest(mut self, r: Reg) -> Self {
        self.dest = Some(r);
        self
    }

    /// Sets one or two source registers (builder style).
    #[must_use]
    pub fn srcs(mut self, a: Option<Reg>, b: Option<Reg>) -> Self {
        self.srcs = [a, b];
        self
    }
}

/// A static operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Integer ALU operation (1-cycle).
    IntAlu,
    /// Floating-point operation (4-cycle).
    FpAlu,
    /// Branch (control only; direction handled by the sequencer).
    Branch,
    /// Load from memory.
    Load(AddrPattern),
    /// Store to memory.
    Store(AddrPattern, StoreValue),
    /// Release store (`st.rel`): performs only after all earlier memory
    /// operations from this core (software-queue flag publication).
    StoreRelease(AddrPattern, StoreValue),
    /// Memory fence: stalls issue until all prior memory operations from
    /// this core have performed (required by the software-queue sequences,
    /// §3.1.1).
    Fence,
    /// ISA `produce` instruction (§3.1.2): enqueue one datum on a stream
    /// queue. Blocks (dormant) while the queue is full.
    Produce(QueueId),
    /// ISA `consume` instruction (§3.1.2): dequeue one datum from a stream
    /// queue. Blocks (dormant) while the queue is empty.
    Consume(QueueId),
}

impl Op {
    /// The functional-unit class this operation executes on.
    pub fn fu_class(&self) -> FuClass {
        match self {
            Op::IntAlu => FuClass::IntAlu,
            Op::FpAlu => FuClass::Fp,
            Op::Branch => FuClass::Branch,
            Op::Load(_)
            | Op::Store(..)
            | Op::StoreRelease(..)
            | Op::Produce(_)
            | Op::Consume(_) => FuClass::Mem,
            // A fence issues through the memory pipeline.
            Op::Fence => FuClass::Mem,
        }
    }

    /// Whether this operation accesses memory or a stream queue.
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Op::Load(_) | Op::Store(..) | Op::StoreRelease(..) | Op::Produce(_) | Op::Consume(_)
        )
    }
}

/// A dynamic operation: an [`Op`] with its address/value operands resolved
/// by the sequencer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynOp {
    /// Integer ALU operation.
    IntAlu,
    /// Floating-point operation.
    FpAlu,
    /// Branch.
    Branch,
    /// Load from a concrete address. `spin` carries the token the core
    /// must use to deliver the loaded value back to the sequencer when
    /// this load is part of a spin-synchronization sequence.
    Load {
        /// Concrete byte address.
        addr: Addr,
        /// Set when the sequencer needs the loaded value to resolve a spin.
        spin: Option<crate::seq::SpinToken>,
    },
    /// Store of a concrete value to a concrete address.
    Store {
        /// Concrete byte address.
        addr: Addr,
        /// Concrete 64-bit value written.
        value: u64,
        /// Release-store ordering (`st.rel`).
        release: bool,
    },
    /// Memory fence.
    Fence,
    /// ISA produce of a concrete payload.
    Produce {
        /// Queue written.
        q: QueueId,
        /// Payload (the queue's produce sequence number).
        value: u64,
    },
    /// ISA consume.
    Consume {
        /// Queue read.
        q: QueueId,
    },
}

impl DynOp {
    /// The functional-unit class of the dynamic operation.
    pub fn fu_class(&self) -> FuClass {
        match self {
            DynOp::IntAlu => FuClass::IntAlu,
            DynOp::FpAlu => FuClass::Fp,
            DynOp::Branch => FuClass::Branch,
            DynOp::Load { .. }
            | DynOp::Store { .. }
            | DynOp::Produce { .. }
            | DynOp::Consume { .. }
            | DynOp::Fence => FuClass::Mem,
        }
    }
}

/// One dynamic instruction, produced by the sequencer and executed by the
/// core model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynInstr {
    /// Per-thread dynamic sequence number (program order).
    pub seq: u64,
    /// Resolved operation.
    pub op: DynOp,
    /// Destination register, if any.
    pub dest: Option<Reg>,
    /// Source registers.
    pub srcs: [Option<Reg>; 2],
    /// Application work or communication overhead.
    pub kind: InstrKind,
}

impl fmt::Display for DynInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{} {:?}", self.seq, self.op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::RegionId;

    #[test]
    fn fu_classes() {
        assert_eq!(Op::IntAlu.fu_class(), FuClass::IntAlu);
        assert_eq!(Op::FpAlu.fu_class(), FuClass::Fp);
        assert_eq!(Op::Branch.fu_class(), FuClass::Branch);
        assert_eq!(
            Op::Load(AddrPattern::Fixed {
                region: RegionId(0),
                offset: 0
            })
            .fu_class(),
            FuClass::Mem
        );
        assert_eq!(Op::Produce(QueueId(0)).fu_class(), FuClass::Mem);
        assert_eq!(Op::Fence.fu_class(), FuClass::Mem);
    }

    #[test]
    fn fu_latencies() {
        assert_eq!(FuClass::IntAlu.latency(), 1);
        assert_eq!(FuClass::Fp.latency(), 4);
        assert_eq!(FuClass::Branch.latency(), 1);
    }

    #[test]
    fn is_memory() {
        assert!(Op::Consume(QueueId(1)).is_memory());
        assert!(!Op::IntAlu.is_memory());
        assert!(!Op::Fence.is_memory());
    }

    #[test]
    fn template_builders() {
        let t = InstrTemplate::new(Op::IntAlu, InstrKind::App)
            .dest(Reg(3))
            .srcs(Some(Reg(1)), Some(Reg(2)));
        assert_eq!(t.dest, Some(Reg(3)));
        assert_eq!(t.srcs, [Some(Reg(1)), Some(Reg(2))]);
        assert_eq!(t.kind, InstrKind::App);
    }

    #[test]
    fn dyn_instr_display() {
        let d = DynInstr {
            seq: 4,
            op: DynOp::IntAlu,
            dest: None,
            srcs: [None, None],
            kind: InstrKind::App,
        };
        assert!(d.to_string().contains("#4"));
    }
}

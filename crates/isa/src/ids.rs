//! Typed identifiers used throughout the simulator.

use std::fmt;

/// Identifies one processor core (and its single hardware thread) in the
/// CMP. The paper's evaluation uses a dual-core machine; larger ids are
/// permitted by the type but validated by machine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct CoreId(pub u8);

impl CoreId {
    /// The producer core in the canonical two-thread pipeline.
    pub const PRODUCER: CoreId = CoreId(0);
    /// The consumer core in the canonical two-thread pipeline.
    pub const CONSUMER: CoreId = CoreId(1);

    /// Zero-based index, usable for array indexing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// Identifies one inter-thread stream queue. The evaluated machines
/// provide 64 architectural queues (§4.3); ids beyond the configured count
/// are rejected at machine construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct QueueId(pub u16);

impl QueueId {
    /// Zero-based index, usable for array indexing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for QueueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// An architectural register name. Registers carry timing dependences
/// only; see the crate-level documentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Reg(pub u8);

impl Reg {
    /// Number of architectural registers modeled per core.
    pub const COUNT: usize = 128;

    /// Zero-based index, usable for array indexing.
    ///
    /// # Panics
    ///
    /// Debug-asserts the register is within [`Reg::COUNT`].
    #[inline]
    pub fn index(self) -> usize {
        debug_assert!((self.0 as usize) < Reg::COUNT);
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifies a named memory region (array, heap arena, …) declared by a
/// program. The machine assigns each region a base address at load time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct RegionId(pub u16);

impl RegionId {
    /// Zero-based index, usable for array indexing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "region{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(CoreId(1).to_string(), "core1");
        assert_eq!(QueueId(7).to_string(), "q7");
        assert_eq!(Reg(3).to_string(), "r3");
        assert_eq!(RegionId(2).to_string(), "region2");
    }

    #[test]
    fn indices() {
        assert_eq!(CoreId::PRODUCER.index(), 0);
        assert_eq!(CoreId::CONSUMER.index(), 1);
        assert_eq!(QueueId(63).index(), 63);
        assert_eq!(Reg(5).index(), 5);
        assert_eq!(RegionId(9).index(), 9);
    }

    #[test]
    fn ordering_is_derived() {
        assert!(CoreId(0) < CoreId(1));
        assert!(QueueId(1) < QueueId(2));
    }
}

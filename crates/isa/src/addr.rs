//! Byte addresses, memory regions, and address-generation patterns.

use std::fmt;
use std::ops::Add;

use crate::ids::{QueueId, RegionId};

/// A physical byte address in the simulated machine.
///
/// # Example
///
/// ```
/// use hfs_isa::Addr;
///
/// let a = Addr::new(0x1000);
/// assert_eq!(a.line(128), 0x20);
/// assert_eq!((a + 8).as_u64(), 0x1008);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte offset.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// The raw byte address.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Cache line number for the given line size in bytes.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `line_bytes` is a power of two.
    #[inline]
    pub fn line(self, line_bytes: u64) -> u64 {
        debug_assert!(line_bytes.is_power_of_two());
        self.0 / line_bytes
    }

    /// Address of the first byte of this address's cache line.
    #[inline]
    #[must_use]
    pub fn line_base(self, line_bytes: u64) -> Addr {
        Addr(self.0 & !(line_bytes - 1))
    }
}

impl Add<u64> for Addr {
    type Output = Addr;

    #[inline]
    fn add(self, rhs: u64) -> Addr {
        Addr(self.0 + rhs)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// A named, sized memory region declared by a program. The machine's
/// loader assigns a base address to each region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Identifier referenced by [`AddrPattern`]s.
    pub id: RegionId,
    /// Human-readable name, for diagnostics.
    pub name: &'static str,
    /// Region size in bytes.
    pub bytes: u64,
}

impl Region {
    /// Creates a region description.
    pub fn new(id: RegionId, name: &'static str, bytes: u64) -> Self {
        Region { id, name, bytes }
    }
}

/// How a load or store template generates its dynamic addresses.
///
/// Pattern state (stream cursors, RNG) lives in the sequencer, keyed by the
/// instruction template's position, so two instances of the same pattern
/// advance independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddrPattern {
    /// A fixed offset within a region (scalar/global access).
    Fixed {
        /// Region accessed.
        region: RegionId,
        /// Byte offset within the region.
        offset: u64,
    },
    /// A sequential walk: advances by `stride` bytes per execution and
    /// wraps at the region size. Models array streaming with spatial
    /// locality.
    Stream {
        /// Region walked.
        region: RegionId,
        /// Byte stride per dynamic execution.
        stride: u64,
    },
    /// A uniform-random access within the region. Models pointer chasing
    /// over a working set larger than the caches (mcf, equake).
    Random {
        /// Region accessed; its size sets the working-set size.
        region: RegionId,
    },
    /// The data word of the current slot of a software-queue (the slot the
    /// executing thread's local head/tail index designates).
    QueueData {
        /// Queue accessed.
        q: QueueId,
    },
    /// The full/empty flag byte of the current slot of a software queue.
    QueueFlag {
        /// Queue accessed.
        q: QueueId,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_arithmetic() {
        let a = Addr::new(0x100);
        assert_eq!((a + 0x28).as_u64(), 0x128);
        assert_eq!(a.line(64), 4);
        assert_eq!(Addr::new(0x17f).line_base(128), Addr::new(0x100));
    }

    #[test]
    fn addr_display_is_hex() {
        assert_eq!(Addr::new(255).to_string(), "0xff");
    }

    #[test]
    fn region_fields() {
        let r = Region::new(RegionId(1), "heap", 4096);
        assert_eq!(r.id, RegionId(1));
        assert_eq!(r.name, "heap");
        assert_eq!(r.bytes, 4096);
    }

    #[test]
    fn patterns_are_copy_eq() {
        let p = AddrPattern::Stream {
            region: RegionId(0),
            stride: 8,
        };
        let q = p;
        assert_eq!(p, q);
    }
}

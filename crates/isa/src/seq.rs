//! Dynamic instruction sequencing.
//!
//! A [`Sequencer`] compiles a [`Program`] into a small bytecode and expands
//! it on demand into [`DynInstr`]s. All control flow is resolved here:
//! counted loops from trip counts, and spin loops from the values the core
//! delivers for flag loads (via [`Sequencer::deliver_spin`]). The core
//! model stays oblivious to program structure — it just pulls instructions.

use std::collections::HashMap;

use hfs_sim::Rng64;

use crate::addr::{Addr, AddrPattern};
use crate::ids::{QueueId, Reg, RegionId};
use crate::instr::{DynInstr, DynOp, InstrKind, InstrTemplate, Op, StoreValue};
use crate::program::{Program, QueueMemLayout, Step};

/// Identifies one spin attempt's flag load; the core passes it back with
/// the loaded value via [`Sequencer::deliver_spin`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpinToken(pub u64);

/// The register spin-flag loads write and spin branches read. Reserved by
/// convention; programs should not use it for application values.
pub const SPIN_REG: Reg = Reg(127);

/// Compiled bytecode step.
#[derive(Debug, Clone)]
enum CStep {
    Instr { site: usize, t: InstrTemplate },
    Spin { q: QueueId, until_full: bool },
    Advance(QueueId),
    LoopStart { count: u64 },
    LoopEnd { start: usize },
}

/// Spin-expansion micro-state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SpinState {
    /// Not in a spin.
    Idle,
    /// Emitted the flag load; the spin branch comes next.
    EmitBranch { token: SpinToken },
    /// Both load and branch emitted; waiting for the load value.
    AwaitValue { token: SpinToken },
}

/// Expands a program into its dynamic instruction stream.
///
/// # Example
///
/// ```
/// use hfs_isa::{ProgramBuilder, Sequencer};
///
/// let prog = ProgramBuilder::new(3).alu_work(2).build();
/// let mut seq = Sequencer::new(&prog, &Default::default(), 1).unwrap();
/// let mut n = 0;
/// while seq.pop().is_some() {
///     n += 1;
/// }
/// assert_eq!(n, 6); // 2 ALU ops x 3 iterations
/// assert!(seq.finished());
/// ```
#[derive(Debug)]
pub struct Sequencer {
    code: Vec<CStep>,
    pc: usize,
    outer_remaining: u64,
    loop_counters: Vec<u64>,
    /// Per-site stream cursors (byte offsets).
    cursors: Vec<u64>,
    region_base: HashMap<RegionId, Addr>,
    region_size: HashMap<RegionId, u64>,
    queue_layout: HashMap<QueueId, QueueMemLayout>,
    queue_depth: HashMap<QueueId, u32>,
    /// Thread-local head/tail slot index per queue.
    slot: HashMap<QueueId, u32>,
    /// Per-queue produce payload counter.
    payload: HashMap<QueueId, u64>,
    spin: SpinState,
    spin_q: QueueId,
    spin_until_full: bool,
    /// A flag value delivered before the spin branch was generated
    /// (the core can resolve a flag load faster than it fetches the
    /// following branch); applied when the spin reaches `AwaitValue`.
    spin_value_early: Option<(SpinToken, u64)>,
    next_token: u64,
    next_seq: u64,
    iterations_done: u64,
    finished: bool,
    /// Buffered next instruction for peek/pop.
    lookahead: Option<DynInstr>,
    rng: Rng64,
    emitted_app: u64,
    emitted_comm: u64,
}

impl Sequencer {
    /// Creates a sequencer for `program`, with region base addresses
    /// assigned by `region_bases` and deterministic randomness from
    /// `seed`.
    ///
    /// # Errors
    ///
    /// Returns a [`hfs_sim::ConfigError`] if the program fails
    /// [`Program::validate`] or a referenced region has no base address.
    pub fn new(
        program: &Program,
        region_bases: &HashMap<RegionId, Addr>,
        seed: u64,
    ) -> Result<Self, hfs_sim::ConfigError> {
        program.validate()?;
        for r in &program.regions {
            if !region_bases.contains_key(&r.id) {
                return Err(hfs_sim::ConfigError::new(format!(
                    "no base address assigned for region {} ({})",
                    r.id, r.name
                )));
            }
        }
        let mut code = Vec::new();
        let mut sites = 0usize;
        compile(&program.body, &mut code, &mut sites);
        let mut queue_layout = HashMap::new();
        let mut queue_depth = HashMap::new();
        let mut slot = HashMap::new();
        let mut payload = HashMap::new();
        for qp in &program.queues {
            if let Some(l) = qp.layout {
                queue_layout.insert(qp.q, l);
            }
            queue_depth.insert(qp.q, qp.depth);
            slot.insert(qp.q, 0);
            payload.insert(qp.q, 0);
        }
        Ok(Sequencer {
            code,
            pc: 0,
            outer_remaining: program.iterations,
            loop_counters: Vec::new(),
            cursors: vec![0; sites],
            region_base: region_bases.clone(),
            region_size: program.regions.iter().map(|r| (r.id, r.bytes)).collect(),
            queue_layout,
            queue_depth,
            slot,
            payload,
            spin: SpinState::Idle,
            spin_q: QueueId(0),
            spin_until_full: false,
            spin_value_early: None,
            next_token: 0,
            next_seq: 0,
            iterations_done: 0,
            finished: program.iterations == 0,
            lookahead: None,
            rng: Rng64::new(seed),
            emitted_app: 0,
            emitted_comm: 0,
        })
    }

    /// Whether the program has run to completion.
    pub fn finished(&self) -> bool {
        self.finished && self.lookahead.is_none()
    }

    /// Outer-loop iterations completed so far.
    pub fn iterations_completed(&self) -> u64 {
        self.iterations_done
    }

    /// Dynamic application instructions emitted so far.
    pub fn emitted_app(&self) -> u64 {
        self.emitted_app
    }

    /// Dynamic communication instructions emitted so far.
    pub fn emitted_comm(&self) -> u64 {
        self.emitted_comm
    }

    /// The next instruction, if one is available without further input.
    /// Returns `None` when finished **or** when blocked awaiting a spin
    /// value (distinguish with [`Sequencer::finished`]).
    pub fn peek(&mut self) -> Option<&DynInstr> {
        if self.lookahead.is_none() {
            self.lookahead = self.generate();
        }
        self.lookahead.as_ref()
    }

    /// Consumes and returns the next instruction.
    pub fn pop(&mut self) -> Option<DynInstr> {
        if self.lookahead.is_none() {
            self.lookahead = self.generate();
        }
        self.lookahead.take()
    }

    /// Delivers the value loaded by the spin flag load identified by
    /// `token`. Unblocks the sequencer: either the spin exits or another
    /// load/branch attempt is emitted.
    ///
    /// Tokens from superseded attempts are ignored, which lets the core
    /// deliver completions in any order safely.
    pub fn deliver_spin(&mut self, token: SpinToken, value: u64) {
        match self.spin {
            SpinState::AwaitValue { token: want } if want == token => {
                self.resolve_spin(value);
            }
            SpinState::EmitBranch { token: want } if want == token => {
                // The value beat the branch generation; hold it until the
                // spin reaches `AwaitValue`.
                self.spin_value_early = Some((token, value));
            }
            _ => {}
        }
    }

    /// Applies a delivered flag value: exits the spin or re-enters the
    /// Spin step (pc was not advanced) to emit a fresh load/branch pair.
    fn resolve_spin(&mut self, value: u64) {
        let full = value != 0;
        self.spin = SpinState::Idle;
        if full == self.spin_until_full {
            self.pc += 1;
        }
    }

    fn emit(
        &mut self,
        op: DynOp,
        dest: Option<Reg>,
        srcs: [Option<Reg>; 2],
        kind: InstrKind,
    ) -> DynInstr {
        let d = DynInstr {
            seq: self.next_seq,
            op,
            dest,
            srcs,
            kind,
        };
        self.next_seq += 1;
        match kind {
            InstrKind::App => self.emitted_app += 1,
            InstrKind::Comm => self.emitted_comm += 1,
        }
        d
    }

    /// Advances the bytecode VM until an instruction is produced, the
    /// sequencer blocks on a spin value, or the program finishes.
    fn generate(&mut self) -> Option<DynInstr> {
        loop {
            if self.finished {
                return None;
            }
            // Mid-spin handling takes priority over the pc.
            match self.spin {
                SpinState::EmitBranch { token } => {
                    self.spin = SpinState::AwaitValue { token };
                    return Some(self.emit(
                        DynOp::Branch,
                        None,
                        [Some(SPIN_REG), None],
                        InstrKind::Comm,
                    ));
                }
                SpinState::AwaitValue { token } => {
                    // A value may have arrived while the branch was still
                    // being generated.
                    match self.spin_value_early.take() {
                        Some((t, v)) if t == token => {
                            self.resolve_spin(v);
                            continue;
                        }
                        _ => return None, // blocked
                    }
                }
                SpinState::Idle => {}
            }
            if self.pc >= self.code.len() {
                // Outer iteration boundary.
                self.iterations_done += 1;
                self.outer_remaining -= 1;
                self.pc = 0;
                if self.outer_remaining == 0 {
                    self.finished = true;
                    return None;
                }
                continue;
            }
            let step = self.code[self.pc].clone();
            match step {
                CStep::Instr { site, t } => {
                    self.pc += 1;
                    let d = self.expand(site, &t);
                    return Some(d);
                }
                CStep::Spin { q, until_full } => {
                    // Emit the flag load; the branch and the wait follow.
                    self.spin_q = q;
                    self.spin_until_full = until_full;
                    let token = SpinToken(self.next_token);
                    self.next_token += 1;
                    self.spin = SpinState::EmitBranch { token };
                    let addr = self.queue_flag_addr(q);
                    return Some(self.emit(
                        DynOp::Load {
                            addr,
                            spin: Some(token),
                        },
                        Some(SPIN_REG),
                        [None, None],
                        InstrKind::Comm,
                    ));
                }
                CStep::Advance(q) => {
                    self.pc += 1;
                    let depth = self.queue_depth[&q];
                    let s = self.slot.get_mut(&q).expect("validated queue");
                    *s = (*s + 1) % depth;
                    return Some(self.emit(DynOp::IntAlu, None, [None, None], InstrKind::Comm));
                }
                CStep::LoopStart { count } => {
                    self.loop_counters.push(count);
                    self.pc += 1;
                }
                CStep::LoopEnd { start } => {
                    let c = self
                        .loop_counters
                        .last_mut()
                        .expect("loop counter underflow");
                    *c -= 1;
                    if *c == 0 {
                        self.loop_counters.pop();
                        self.pc += 1;
                    } else {
                        self.pc = start + 1;
                    }
                }
            }
        }
    }

    fn expand(&mut self, site: usize, t: &InstrTemplate) -> DynInstr {
        let op = match &t.op {
            Op::IntAlu => DynOp::IntAlu,
            Op::FpAlu => DynOp::FpAlu,
            Op::Branch => DynOp::Branch,
            Op::Fence => DynOp::Fence,
            Op::Load(p) => DynOp::Load {
                addr: self.gen_addr(site, *p),
                spin: None,
            },
            Op::Store(p, v) => {
                let addr = self.gen_addr(site, *p);
                let value = self.store_value(*v);
                DynOp::Store {
                    addr,
                    value,
                    release: false,
                }
            }
            Op::StoreRelease(p, v) => {
                let addr = self.gen_addr(site, *p);
                let value = self.store_value(*v);
                DynOp::Store {
                    addr,
                    value,
                    release: true,
                }
            }
            Op::Produce(q) => {
                let value = self.next_payload(*q);
                DynOp::Produce { q: *q, value }
            }
            Op::Consume(q) => DynOp::Consume { q: *q },
        };
        self.emit(op, t.dest, t.srcs, t.kind)
    }

    fn store_value(&mut self, v: StoreValue) -> u64 {
        match v {
            StoreValue::Opaque => 0,
            StoreValue::Flag(full) => u64::from(full),
            StoreValue::QueuePayload(q) => self.next_payload(q),
        }
    }

    fn next_payload(&mut self, q: QueueId) -> u64 {
        let c = self.payload.get_mut(&q).expect("validated queue");
        let v = *c;
        *c += 1;
        v
    }

    fn gen_addr(&mut self, site: usize, p: AddrPattern) -> Addr {
        match p {
            AddrPattern::Fixed { region, offset } => self.region_base[&region] + offset,
            AddrPattern::Stream { region, stride } => {
                let size = self.region_size[&region];
                let cur = &mut self.cursors[site];
                let a = self.region_base[&region] + *cur;
                *cur = (*cur + stride) % size;
                a
            }
            AddrPattern::Random { region } => {
                let size = self.region_size[&region];
                // 8-byte aligned uniform offset.
                let words = (size / 8).max(1);
                let off = self.rng.below(words) * 8;
                self.region_base[&region] + off
            }
            AddrPattern::QueueData { q } => {
                let slot = self.slot[&q];
                self.queue_layout[&q].data_addr(slot)
            }
            AddrPattern::QueueFlag { q } => self.queue_flag_addr(q),
        }
    }

    fn queue_flag_addr(&self, q: QueueId) -> Addr {
        let slot = self.slot[&q];
        self.queue_layout[&q].flag_addr(slot)
    }

    /// The current slot index this thread would access next on `q`.
    pub fn current_slot(&self, q: QueueId) -> Option<u32> {
        self.slot.get(&q).copied()
    }
}

fn compile(steps: &[Step], out: &mut Vec<CStep>, sites: &mut usize) {
    for s in steps {
        match s {
            Step::Instr(t) => {
                out.push(CStep::Instr {
                    site: *sites,
                    t: t.clone(),
                });
                *sites += 1;
            }
            Step::Spin { q, until_full } => out.push(CStep::Spin {
                q: *q,
                until_full: *until_full,
            }),
            Step::AdvanceQueue(q) => out.push(CStep::Advance(*q)),
            Step::Loop { body, count } => {
                let start = out.len();
                out.push(CStep::LoopStart { count: *count });
                compile(body, out, sites);
                out.push(CStep::LoopEnd { start });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Region;
    use crate::program::{QueuePlan, QueueRole};

    fn alu(kind: InstrKind) -> Step {
        Step::Instr(InstrTemplate::new(Op::IntAlu, kind))
    }

    fn bases() -> HashMap<RegionId, Addr> {
        let mut m = HashMap::new();
        m.insert(RegionId(0), Addr::new(0x10000));
        m
    }

    #[test]
    fn expands_flat_body_times_iterations() {
        let p = Program {
            regions: vec![],
            queues: vec![],
            body: vec![alu(InstrKind::App), alu(InstrKind::App)],
            iterations: 3,
        };
        let mut s = Sequencer::new(&p, &HashMap::new(), 0).unwrap();
        let mut n = 0;
        while s.pop().is_some() {
            n += 1;
        }
        assert_eq!(n, 6);
        assert!(s.finished());
        assert_eq!(s.iterations_completed(), 3);
        assert_eq!(s.emitted_app(), 6);
    }

    #[test]
    fn inner_loops_multiply() {
        let p = Program {
            regions: vec![],
            queues: vec![],
            body: vec![
                alu(InstrKind::App),
                Step::Loop {
                    body: vec![alu(InstrKind::App)],
                    count: 4,
                },
            ],
            iterations: 2,
        };
        let mut s = Sequencer::new(&p, &HashMap::new(), 0).unwrap();
        let mut n = 0;
        while s.pop().is_some() {
            n += 1;
        }
        assert_eq!(n, 2 * (1 + 4));
    }

    #[test]
    fn stream_pattern_advances_and_wraps() {
        let p = Program {
            regions: vec![Region::new(RegionId(0), "a", 32)],
            queues: vec![],
            body: vec![Step::Instr(InstrTemplate::new(
                Op::Load(AddrPattern::Stream {
                    region: RegionId(0),
                    stride: 16,
                }),
                InstrKind::App,
            ))],
            iterations: 3,
        };
        let mut s = Sequencer::new(&p, &bases(), 0).unwrap();
        let addrs: Vec<u64> = std::iter::from_fn(|| s.pop())
            .map(|d| match d.op {
                DynOp::Load { addr, .. } => addr.as_u64(),
                _ => panic!("expected load"),
            })
            .collect();
        assert_eq!(addrs, vec![0x10000, 0x10010, 0x10000]);
    }

    #[test]
    fn missing_region_base_is_an_error() {
        let p = Program {
            regions: vec![Region::new(RegionId(0), "a", 32)],
            queues: vec![],
            body: vec![alu(InstrKind::App)],
            iterations: 1,
        };
        assert!(Sequencer::new(&p, &HashMap::new(), 0).is_err());
    }

    fn spin_program(until_full: bool) -> Program {
        Program {
            regions: vec![],
            queues: vec![QueuePlan {
                q: QueueId(0),
                role: QueueRole::Produce,
                depth: 4,
                layout: Some(QueueMemLayout {
                    base: Addr::new(0x8000),
                    slot_stride: 16,
                    flag_offset: Some(8),
                }),
            }],
            body: vec![
                Step::Spin {
                    q: QueueId(0),
                    until_full,
                },
                Step::AdvanceQueue(QueueId(0)),
            ],
            iterations: 2,
        }
    }

    #[test]
    fn spin_blocks_until_value_delivered() {
        let mut s = Sequencer::new(&spin_program(false), &HashMap::new(), 0).unwrap();
        // First: flag load carrying a token.
        let load = s.pop().unwrap();
        let token = match load.op {
            DynOp::Load {
                spin: Some(t),
                addr,
            } => {
                assert_eq!(addr, Addr::new(0x8008));
                t
            }
            other => panic!("expected spin load, got {other:?}"),
        };
        // Then the spin branch.
        let br = s.pop().unwrap();
        assert_eq!(br.op, DynOp::Branch);
        // Now blocked.
        assert!(s.pop().is_none());
        assert!(!s.finished());
        // Flag reads 1 (full) but we want empty: retry emitted.
        s.deliver_spin(token, 1);
        let retry = s.pop().unwrap();
        let token2 = match retry.op {
            DynOp::Load { spin: Some(t), .. } => t,
            other => panic!("expected retry load, got {other:?}"),
        };
        assert_ne!(token, token2);
        let _br2 = s.pop().unwrap();
        assert!(s.pop().is_none());
        // Now the flag reads 0 (empty): spin exits, advance comes next.
        s.deliver_spin(token2, 0);
        let adv = s.pop().unwrap();
        assert_eq!(adv.op, DynOp::IntAlu);
        assert_eq!(adv.kind, InstrKind::Comm);
    }

    #[test]
    fn stale_spin_token_is_ignored() {
        let mut s = Sequencer::new(&spin_program(true), &HashMap::new(), 0).unwrap();
        let load = s.pop().unwrap();
        let tok = match load.op {
            DynOp::Load { spin: Some(t), .. } => t,
            _ => unreachable!(),
        };
        let _ = s.pop(); // branch
        s.deliver_spin(SpinToken(tok.0 + 999), 1); // bogus token
        assert!(s.pop().is_none()); // still blocked
        s.deliver_spin(tok, 1); // full, and we wait until_full
        assert!(s.pop().is_some());
    }

    #[test]
    fn advance_wraps_slot_index() {
        let p = spin_program(false);
        let mut s = Sequencer::new(&p, &HashMap::new(), 0).unwrap();
        assert_eq!(s.current_slot(QueueId(0)), Some(0));
        // Drive one full iteration: load, branch, deliver(0), advance.
        let load = s.pop().unwrap();
        let tok = match load.op {
            DynOp::Load { spin: Some(t), .. } => t,
            _ => unreachable!(),
        };
        let _ = s.pop();
        s.deliver_spin(tok, 0);
        let _adv = s.pop().unwrap();
        assert_eq!(s.current_slot(QueueId(0)), Some(1));
    }

    #[test]
    fn produce_payloads_count_up() {
        let p = Program {
            regions: vec![],
            queues: vec![QueuePlan {
                q: QueueId(3),
                role: QueueRole::Produce,
                depth: 8,
                layout: None,
            }],
            body: vec![Step::Instr(InstrTemplate::new(
                Op::Produce(QueueId(3)),
                InstrKind::Comm,
            ))],
            iterations: 3,
        };
        let mut s = Sequencer::new(&p, &HashMap::new(), 0).unwrap();
        let vals: Vec<u64> = std::iter::from_fn(|| s.pop())
            .map(|d| match d.op {
                DynOp::Produce { value, .. } => value,
                _ => panic!(),
            })
            .collect();
        assert_eq!(vals, vec![0, 1, 2]);
        assert_eq!(s.emitted_comm(), 3);
    }

    #[test]
    fn random_pattern_stays_in_region() {
        let p = Program {
            regions: vec![Region::new(RegionId(0), "ws", 256)],
            queues: vec![],
            body: vec![Step::Instr(InstrTemplate::new(
                Op::Load(AddrPattern::Random {
                    region: RegionId(0),
                }),
                InstrKind::App,
            ))],
            iterations: 50,
        };
        let mut s = Sequencer::new(&p, &bases(), 42).unwrap();
        while let Some(d) = s.pop() {
            if let DynOp::Load { addr, .. } = d.op {
                assert!(addr.as_u64() >= 0x10000 && addr.as_u64() < 0x10000 + 256);
                assert_eq!(addr.as_u64() % 8, 0);
            }
        }
    }

    #[test]
    fn determinism_across_same_seed() {
        let p = Program {
            regions: vec![Region::new(RegionId(0), "ws", 1024)],
            queues: vec![],
            body: vec![Step::Instr(InstrTemplate::new(
                Op::Load(AddrPattern::Random {
                    region: RegionId(0),
                }),
                InstrKind::App,
            ))],
            iterations: 20,
        };
        let run = |seed| {
            let mut s = Sequencer::new(&p, &bases(), seed).unwrap();
            std::iter::from_fn(|| s.pop())
                .map(|d| format!("{:?}", d.op))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn peek_does_not_consume() {
        let p = Program {
            regions: vec![],
            queues: vec![],
            body: vec![alu(InstrKind::App)],
            iterations: 1,
        };
        let mut s = Sequencer::new(&p, &HashMap::new(), 0).unwrap();
        let a = s.peek().cloned().unwrap();
        let b = s.pop().unwrap();
        assert_eq!(a, b);
        assert!(s.pop().is_none());
    }
}

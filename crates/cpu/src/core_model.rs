//! The in-order core pipeline model.

use std::collections::VecDeque;

use hfs_isa::{
    Addr, CoreId, DynInstr, DynOp, FuClass, InstrKind, QueueId, Reg, Sequencer, SpinToken,
};
use hfs_mem::{MemOp, MemSystem, MemToken, Submit};
use hfs_sim::stats::{Breakdown, StallComponent};
use hfs_sim::{Cycle, TimedQueue};
use hfs_trace::{CoreActivity, TraceEvent, Tracer};

use crate::config::CoreConfig;
use crate::port::{StreamPort, StreamSubmit, StreamToken};

/// Sentinel for "register busy until an asynchronous completion".
const PENDING: Cycle = Cycle::new(u64::MAX / 2);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Executing on a functional unit or already finished; commits once
    /// `done` has passed.
    Done { done: Cycle },
    /// Waiting on the memory system.
    WaitMem { token: MemToken },
    /// Waiting on the streaming hardware.
    WaitStream { token: StreamToken },
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    instr: DynInstr,
    status: Status,
}

/// Per-core execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Total cycles the core was ticked until it finished.
    pub cycles: u64,
    /// Committed application instructions.
    pub app_instrs: u64,
    /// Committed communication/synchronization instructions.
    pub comm_instrs: u64,
    /// Figure 7 stall breakdown (busy + six components).
    pub breakdown: Breakdown,
    /// Issue attempts refused because the OzQ was full.
    pub ozq_stalls: u64,
    /// Issue attempts refused by blocked streaming hardware.
    pub stream_blocked: u64,
}

impl CoreStats {
    /// Committed instructions of both kinds.
    pub fn total_instrs(&self) -> u64 {
        self.app_instrs + self.comm_instrs
    }

    /// Dynamic communication-to-application instruction ratio (Figure 8).
    pub fn comm_ratio(&self) -> f64 {
        if self.app_instrs == 0 {
            0.0
        } else {
            self.comm_instrs as f64 / self.app_instrs as f64
        }
    }
}

/// One in-order core executing a [`Sequencer`]'s instruction stream.
///
/// Drive it by calling [`Core::tick`] once per cycle with the shared
/// memory system and the design's stream port; check [`Core::finished`].
#[derive(Debug)]
pub struct Core {
    id: CoreId,
    cfg: CoreConfig,
    reg_ready: [Cycle; Reg::COUNT],
    window: VecDeque<InFlight>,
    spin_deliveries: TimedQueue<(SpinToken, u64)>,
    stats: CoreStats,
    tracer: Tracer,
    /// Last cycle this core committed at least one instruction (folded
    /// ones included) — drives the machine's strided deadlock detector.
    last_commit: Cycle,
    /// Per-tick scratch buffers, reused every cycle so draining
    /// completions allocates nothing in steady state.
    mem_scratch: Vec<hfs_mem::Completion>,
    stream_scratch: Vec<crate::StreamCompletion>,
    /// The structural block the issue stage hit on the last tick, if
    /// any; lets fast-forward replicate the per-cycle side effects of
    /// the re-attempts it skips.
    blocked: Option<BlockedAttempt>,
    /// Window entries currently waiting on a memory or stream completion
    /// (`WaitMem`/`WaitStream`); maintained incrementally so the
    /// event-driven scheduler's sleep check is O(1).
    waiting_ops: u32,
}

/// An issue attempt refused by structural back-pressure. While the
/// blocking state persists the core repeats the identical attempt every
/// cycle, so each variant records what a re-attempt touches: the stall
/// counters on the core plus (for OzQ-refused demand accesses) an L1
/// probe, and (for stream operations) whatever the backend's blocked
/// path mutates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockedAttempt {
    /// A demand load the OzQ refused; every attempt probes the L1 first.
    OzqLoad(Addr),
    /// A store the OzQ refused; every attempt touches the L1 first.
    OzqStore(Addr),
    /// A produce/consume the streaming hardware refused.
    Stream {
        /// The queue the operation targets.
        q: QueueId,
        /// True for produce, false for consume.
        produce: bool,
    },
    /// A release fence waiting on outstanding stores (no side effects).
    Fence,
}

impl Core {
    /// Creates a core.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreConfig::validate`] failures.
    pub fn new(id: CoreId, cfg: CoreConfig) -> Result<Self, hfs_sim::ConfigError> {
        cfg.validate()?;
        Ok(Core {
            id,
            cfg,
            reg_ready: [Cycle::ZERO; Reg::COUNT],
            window: VecDeque::new(),
            spin_deliveries: TimedQueue::new(),
            stats: CoreStats::default(),
            tracer: Tracer::disabled(),
            last_commit: Cycle::ZERO,
            mem_scratch: Vec::new(),
            stream_scratch: Vec::new(),
            blocked: None,
            waiting_ops: 0,
        })
    }

    /// Installs a tracer handle.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// This core's id.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Whether the program has fully committed.
    pub fn finished(&self, seq: &Sequencer) -> bool {
        seq.finished() && self.window.is_empty()
    }

    /// Last cycle this core committed an instruction (folded queue
    /// operations included). Feeds the machine's deadlock detector.
    pub fn last_commit(&self) -> Cycle {
        self.last_commit
    }

    /// Conservative lower bound on the next cycle this core could act on
    /// its own: deliver a spin value, commit the window front, or attempt
    /// an issue. `None` means progress depends entirely on external
    /// completions, whose timing the memory system's and backend's own
    /// bounds cover. Issue *attempts* count as events even when they end
    /// up blocked, because blocked attempts bump stall counters — so the
    /// bound never skips past a cycle where the sources are ready.
    pub fn next_event(&self, now: Cycle, seq: &mut Sequencer) -> Option<Cycle> {
        let floor = now.next();
        let mut best: Option<Cycle> = None;
        let mut fold = |t: Cycle| {
            let t = t.max(floor);
            best = Some(best.map_or(t, |b| b.min(t)));
        };
        if let Some(t) = self.spin_deliveries.next_ready() {
            fold(t);
        }
        if let Some(e) = self.window.front() {
            if let Status::Done { done } = e.status {
                fold(done);
            }
        }
        if self.window.len() < self.cfg.window as usize {
            if self.blocked.is_some() && !self.tracer.is_enabled() {
                // The head instruction's last attempt hit structural
                // back-pressure whose release is tracked by another
                // component's bound; re-attempts repeat identically and
                // fast-forward bulk-charges their side effects. Traced
                // runs keep the conservative bound so the per-cycle
                // event stream needs no replay of probe events.
            } else if let Some(instr) = seq.peek() {
                let mut ready = Cycle::ZERO;
                let mut pending = false;
                for r in instr.srcs.iter().flatten() {
                    let t = self.reg_ready[r.index()];
                    if t == PENDING {
                        pending = true;
                    } else {
                        ready = ready.max(t);
                    }
                }
                if !pending {
                    fold(ready);
                }
            }
        }
        best
    }

    /// Advances the core one cycle.
    pub fn tick(
        &mut self,
        now: Cycle,
        seq: &mut Sequencer,
        mem: &mut MemSystem,
        stream: &mut dyn StreamPort,
    ) {
        self.stats.cycles += 1;
        self.blocked = None;

        // 1. Deliver spin values whose load data is now available.
        while let Some((tok, val)) = self.spin_deliveries.pop_ready(now) {
            seq.deliver_spin(tok, val);
        }

        // 2. Drain memory completions into the core-owned scratch (taken
        // out of `self` so the handling loop can borrow `self` mutably).
        let mut mcs = std::mem::take(&mut self.mem_scratch);
        mcs.clear();
        mem.drain_completions_into(self.id, now, &mut mcs);
        for &c in &mcs {
            if c.background {
                // Background operations belong to the streaming hardware.
                stream.on_mem_completion(c);
                continue;
            }
            if let Some(e) = self
                .window
                .iter_mut()
                .find(|e| e.status == (Status::WaitMem { token: c.token }))
            {
                e.status = Status::Done { done: c.at };
                self.waiting_ops -= 1;
                if let (Some(dest), Some(v)) = (e.instr.dest, c.value) {
                    self.reg_ready[dest.index()] = c.at;
                    let _ = v;
                }
                if let DynOp::Load {
                    spin: Some(tok), ..
                } = e.instr.op
                {
                    let v = c.value.expect("load completions carry values");
                    self.spin_deliveries.push(c.at, (tok, v));
                }
            }
        }
        self.mem_scratch = mcs;

        // 3. Drain streaming completions, same scratch discipline.
        let mut scs = std::mem::take(&mut self.stream_scratch);
        scs.clear();
        stream.poll(self.id, now, &mut scs);
        for &c in &scs {
            if let Some(e) = self
                .window
                .iter_mut()
                .find(|e| e.status == (Status::WaitStream { token: c.token }))
            {
                e.status = Status::Done { done: c.at };
                self.waiting_ops -= 1;
                if let Some(dest) = e.instr.dest {
                    self.reg_ready[dest.index()] = c.at;
                }
            }
        }
        self.stream_scratch = scs;

        // 4. In-order commit. Register-mapped (folded) queue operations
        // ride other instructions, so they consume no commit bandwidth.
        let mut commits = 0;
        while commits < self.cfg.issue_width {
            match self.window.front() {
                Some(e) => match e.status {
                    Status::Done { done } if done <= now => {
                        let comm = match e.instr.kind {
                            InstrKind::App => {
                                self.stats.app_instrs += 1;
                                false
                            }
                            InstrKind::Comm => {
                                self.stats.comm_instrs += 1;
                                true
                            }
                        };
                        self.tracer.emit(|| TraceEvent::Issue {
                            core: self.id,
                            at: now.as_u64(),
                            comm,
                        });
                        let folded = self.cfg.free_queue_ops
                            && matches!(e.instr.op, DynOp::Produce { .. } | DynOp::Consume { .. });
                        self.window.pop_front();
                        self.last_commit = now;
                        if !folded {
                            commits += 1;
                        }
                    }
                    _ => break,
                },
                None => break,
            }
        }

        // 5. Issue.
        let mut issued = 0u32;
        let mut fu_used = [0u32; 4]; // IntAlu, Fp, Branch, Mem
        loop {
            if issued >= self.cfg.issue_width {
                break;
            }
            if self.window.len() >= self.cfg.window as usize {
                break;
            }
            let Some(instr) = seq.peek().copied() else {
                break; // finished or blocked on a spin value
            };
            if !self.sources_ready(&instr, now) {
                break; // in-order: a stalled instruction blocks later ones
            }
            let class = instr.op.fu_class();
            // Register-mapped queue operations ride existing
            // instructions: no issue slot, no memory port.
            let folded = self.cfg.free_queue_ops
                && matches!(instr.op, DynOp::Produce { .. } | DynOp::Consume { .. });
            let (slot, cap) = match class {
                FuClass::IntAlu => (0, self.cfg.int_alus),
                FuClass::Fp => (1, self.cfg.fp_units),
                FuClass::Branch => (2, self.cfg.branch_units),
                FuClass::Mem => (3, self.cfg.mem_ports),
            };
            if !folded && fu_used[slot] >= cap {
                break;
            }
            // Attempt the operation's side effects.
            let status = match instr.op {
                DynOp::IntAlu | DynOp::FpAlu | DynOp::Branch => Status::Done {
                    done: now + class.latency(),
                },
                DynOp::Fence => {
                    // Release-fence semantics (Itanium st.rel): every
                    // prior *store* must have performed. Loads in flight
                    // do not block, preserving memory-level parallelism.
                    if mem.pending_stores(self.id) > 0 {
                        self.blocked = Some(BlockedAttempt::Fence);
                        break;
                    }
                    Status::Done { done: now + 1 }
                }
                DynOp::Load { addr, spin } => match mem.submit(self.id, MemOp::load(addr), now) {
                    Submit::L1Hit { value, at } => {
                        if let Some(tok) = spin {
                            self.spin_deliveries.push(at, (tok, value));
                        }
                        if let Some(dest) = instr.dest {
                            self.reg_ready[dest.index()] = at;
                        }
                        Status::Done { done: at }
                    }
                    Submit::Accepted(token) => {
                        if let Some(dest) = instr.dest {
                            self.reg_ready[dest.index()] = PENDING;
                        }
                        Status::WaitMem { token }
                    }
                    Submit::Rejected(_) => {
                        self.stats.ozq_stalls += 1;
                        self.blocked = Some(BlockedAttempt::OzqLoad(addr));
                        break;
                    }
                },
                DynOp::Store {
                    addr,
                    value,
                    release,
                } => {
                    let mut op = MemOp::store(addr, value);
                    if release {
                        op = op.release_store();
                    }
                    match mem.submit(self.id, op, now) {
                        Submit::Accepted(_) => {
                            // Stores retire through the OzQ (store-buffer
                            // semantics); the instruction commits quickly.
                            Status::Done { done: now + 1 }
                        }
                        Submit::Rejected(_) => {
                            self.stats.ozq_stalls += 1;
                            self.blocked = Some(BlockedAttempt::OzqStore(addr));
                            break;
                        }
                        Submit::L1Hit { .. } => unreachable!("stores never L1-hit-complete"),
                    }
                }
                DynOp::Produce { q, value } => {
                    match stream.try_produce(mem, self.id, q, value, now) {
                        StreamSubmit::Done { at, .. } => Status::Done { done: at },
                        StreamSubmit::Pending(token) => Status::WaitStream { token },
                        StreamSubmit::Blocked => {
                            self.stats.stream_blocked += 1;
                            self.blocked = Some(BlockedAttempt::Stream { q, produce: true });
                            break;
                        }
                    }
                }
                DynOp::Consume { q } => match stream.try_consume(mem, self.id, q, now) {
                    StreamSubmit::Done { at, .. } => {
                        if let Some(dest) = instr.dest {
                            self.reg_ready[dest.index()] = at;
                        }
                        Status::Done { done: at }
                    }
                    StreamSubmit::Pending(token) => {
                        if let Some(dest) = instr.dest {
                            self.reg_ready[dest.index()] = PENDING;
                        }
                        Status::WaitStream { token }
                    }
                    StreamSubmit::Blocked => {
                        self.stats.stream_blocked += 1;
                        self.blocked = Some(BlockedAttempt::Stream { q, produce: false });
                        break;
                    }
                },
            };
            // For register-writing non-memory ops, publish readiness.
            if let Status::Done { done } = status {
                if let Some(dest) = instr.dest {
                    if !matches!(instr.op, DynOp::Load { .. } | DynOp::Consume { .. }) {
                        self.reg_ready[dest.index()] = done;
                    }
                }
            }
            let _ = seq.pop();
            if matches!(status, Status::WaitMem { .. } | Status::WaitStream { .. }) {
                self.waiting_ops += 1;
            }
            self.window.push_back(InFlight { instr, status });
            if !folded {
                fu_used[slot] += 1;
                issued += 1;
            }
        }

        // 6. Stall attribution.
        if commits > 0 {
            self.stats.breakdown.charge_busy(1);
            self.tracer.emit(|| TraceEvent::CoreState {
                core: self.id,
                at: now.as_u64(),
                state: CoreActivity::Busy,
            });
        } else {
            let component = self.stall_component(now, mem, stream);
            self.stats.breakdown.charge(component, 1);
            self.tracer.emit(|| TraceEvent::CoreState {
                core: self.id,
                at: now.as_u64(),
                state: CoreActivity::Stall(component),
            });
        }
    }

    /// The stall component an idle (non-committing) cycle charges right
    /// now; exposed so the machine can bulk-charge fast-forwarded
    /// windows, during which the component cannot change.
    pub fn idle_component(
        &self,
        now: Cycle,
        mem: &MemSystem,
        stream: &dyn StreamPort,
    ) -> StallComponent {
        self.stall_component(now, mem, stream)
    }

    /// Accounts `cycles` fast-forwarded idle cycles in one step: the
    /// machine proved this core cannot commit or issue during them, so
    /// they all charge `component`, exactly as ticking each would have.
    pub fn charge_idle(&mut self, cycles: u64, component: StallComponent) {
        self.stats.cycles += cycles;
        self.stats.breakdown.charge(component, cycles);
        // A blocked issue attempt would have repeated (and been refused)
        // on every skipped cycle; account its stall counter in bulk.
        match self.blocked {
            Some(BlockedAttempt::OzqLoad(_) | BlockedAttempt::OzqStore(_)) => {
                self.stats.ozq_stalls += cycles;
            }
            Some(BlockedAttempt::Stream { .. }) => self.stats.stream_blocked += cycles,
            Some(BlockedAttempt::Fence) | None => {}
        }
    }

    /// The structural block the issue stage hit on the last tick, if any
    /// — the machine replicates its external side effects (L1 probes,
    /// backend counters) across fast-forwarded windows.
    pub fn blocked_attempt(&self) -> Option<BlockedAttempt> {
        self.blocked
    }

    /// Whether this core's future is fully determined by its own
    /// `next_event` bound plus pending memory completions: no structural
    /// block to re-attempt and nothing in the window waiting on an
    /// external completion whose arrival time the bound cannot see. The
    /// event-driven scheduler only puts such cores to sleep; everything
    /// else stays reactive (ticked every processed cycle).
    pub fn can_sleep(&self) -> bool {
        self.blocked.is_none() && self.waiting_ops == 0
    }

    /// Emits the `CoreState` trace event a live idle cycle would have
    /// produced at `at`, keeping fast-forwarded traces bit-identical.
    pub fn trace_idle(&self, at: Cycle, component: StallComponent) {
        self.tracer.emit(|| TraceEvent::CoreState {
            core: self.id,
            at: at.as_u64(),
            state: CoreActivity::Stall(component),
        });
    }

    fn sources_ready(&self, instr: &DynInstr, now: Cycle) -> bool {
        instr
            .srcs
            .iter()
            .flatten()
            .all(|r| self.reg_ready[r.index()] <= now)
    }

    fn stall_component(
        &self,
        now: Cycle,
        mem: &MemSystem,
        stream: &dyn StreamPort,
    ) -> StallComponent {
        match self.window.front() {
            None => StallComponent::PreL2,
            Some(e) => match e.status {
                Status::Done { done } => {
                    if done > now && matches!(e.instr.op.fu_class(), FuClass::Mem) {
                        StallComponent::PostL2
                    } else {
                        StallComponent::PreL2
                    }
                }
                Status::WaitMem { token } => mem
                    .location(token)
                    .map(|l| l.component())
                    .unwrap_or(StallComponent::PostL2),
                Status::WaitStream { token } => stream.location(token),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::port::NullStreamPort;
    use hfs_isa::{Addr, ProgramBuilder, RegionId};
    use hfs_mem::MemConfig;
    use std::collections::HashMap;

    fn mem() -> MemSystem {
        MemSystem::new(MemConfig::itanium2_cmp()).unwrap()
    }

    fn bases() -> HashMap<RegionId, Addr> {
        let mut m = HashMap::new();
        m.insert(RegionId(0), Addr::new(0x100000));
        m
    }

    fn run(prog: &hfs_isa::Program, limit: u64) -> (Core, Sequencer) {
        let mut seq = Sequencer::new(prog, &bases(), 0).unwrap();
        let mut core = Core::new(CoreId(0), CoreConfig::itanium2()).unwrap();
        let mut m = mem();
        let mut port = NullStreamPort;
        for t in 0..limit {
            let now = Cycle::new(t);
            m.tick(now);
            core.tick(now, &mut seq, &mut m, &mut port);
            if core.finished(&seq) {
                break;
            }
        }
        assert!(
            core.finished(&seq),
            "program did not finish in {limit} cycles"
        );
        (core, seq)
    }

    #[test]
    fn independent_alu_ops_reach_issue_width() {
        let prog = ProgramBuilder::new(100).alu_work(6).build();
        let (core, _) = run(&prog, 10_000);
        let s = core.stats();
        assert_eq!(s.total_instrs(), 600);
        // 6-wide: ~1 iteration per cycle (plus pipeline fill).
        assert!(s.cycles < 130, "took {} cycles", s.cycles);
    }

    #[test]
    fn dependent_chain_serializes() {
        let prog = ProgramBuilder::new(10).alu_chain(10).build();
        let (core, _) = run(&prog, 10_000);
        // 100 dependent 1-cycle ops need at least ~100 cycles.
        assert!(
            core.stats().cycles >= 90,
            "chain finished too fast: {}",
            core.stats().cycles
        );
    }

    #[test]
    fn fp_latency_is_longer() {
        let chain_int = ProgramBuilder::new(50).alu_chain(4).build();
        let (int_core, _) = run(&chain_int, 10_000);
        let mut b = ProgramBuilder::new(50);
        b.fp_work(4); // independent FPs, but only 2 FP units
        let (fp_core, _) = run(&b.build(), 10_000);
        assert!(fp_core.stats().cycles > int_core.stats().cycles / 4);
    }

    #[test]
    fn breakdown_accounts_every_cycle() {
        let mut b = ProgramBuilder::new(20);
        let r = b.declare_region("ws", 1 << 20);
        b.alu_work(2).load_random(r).branch();
        let (core, _) = run(&b.build(), 200_000);
        let s = core.stats();
        assert_eq!(s.breakdown.total(), s.cycles);
        // Cold random loads over 1 MB mostly miss: memory components show.
        assert!(s.breakdown[StallComponent::Mem] > 0);
    }

    #[test]
    fn loads_that_hit_l1_are_fast() {
        let mut b = ProgramBuilder::new(200);
        let r = b.declare_region("small", 512); // fits L1 easily
        b.load_stream(r, 8);
        let (core, _) = run(&b.build(), 50_000);
        let s = core.stats();
        // After warmup, each iteration is an L1 hit: ~1-2 cycles each.
        assert!(s.cycles < 3_000, "took {}", s.cycles);
    }

    #[test]
    fn fence_waits_for_store_drain() {
        let mut with_fence = ProgramBuilder::new(50);
        let r = with_fence.declare_region("buf", 4096);
        with_fence.store_stream(r, 8).fence();
        let (fenced, _) = run(&with_fence.build(), 100_000);

        let mut without = ProgramBuilder::new(50);
        let r2 = without.declare_region("buf", 4096);
        without.store_stream(r2, 8).alu_work(1);
        let (free, _) = run(&without.build(), 100_000);

        assert!(
            fenced.stats().cycles > free.stats().cycles * 2,
            "fence {} vs free {}",
            fenced.stats().cycles,
            free.stats().cycles
        );
    }

    #[test]
    fn spin_resolves_from_loaded_flag_and_counts_comm() {
        use hfs_isa::program::QueueMemLayout;
        use hfs_isa::{QueueId, QueuePlan, QueueRole};
        let layout = QueueMemLayout {
            base: Addr::new(0x200000),
            slot_stride: 16,
            flag_offset: Some(8),
        };
        let mut b = ProgramBuilder::new(4);
        b.plan_queue(QueuePlan {
            q: QueueId(0),
            role: QueueRole::Consume,
            depth: 8,
            layout: Some(layout),
        });
        b.alu_work(3)
            .spin(QueueId(0), true)
            .advance_queue(QueueId(0));
        let prog = b.build();

        let mut seq = Sequencer::new(&prog, &bases(), 0).unwrap();
        let mut core = Core::new(CoreId(0), CoreConfig::itanium2()).unwrap();
        let mut m = mem();
        // Pre-set every slot's flag to "full" so each spin exits after
        // one load+branch attempt.
        for slot in 0..8 {
            let flag = layout.flag_addr(slot);
            m.func_mem_mut().write(flag, 1);
        }
        let mut port = NullStreamPort;
        for t in 0..100_000 {
            let now = Cycle::new(t);
            m.tick(now);
            core.tick(now, &mut seq, &mut m, &mut port);
            if core.finished(&seq) {
                break;
            }
        }
        assert!(core.finished(&seq));
        let s = core.stats();
        assert_eq!(s.app_instrs, 12); // 3 ALU x 4 iterations
                                      // Per iteration: flag load + branch + advance = 3 comm instrs.
        assert_eq!(s.comm_instrs, 12);
        assert!((s.comm_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn free_queue_ops_do_not_consume_issue_slots() {
        use hfs_isa::{QueueId, QueuePlan, QueueRole};
        // 6 ALU + 2 produces per iteration: at 6-wide issue this takes
        // 2 cycles per iteration normally, 1 with register-mapped
        // (folded) queue operations.
        let build = || {
            let mut b = ProgramBuilder::new(200);
            b.plan_queue(QueuePlan {
                q: QueueId(0),
                role: QueueRole::Produce,
                depth: 32,
                layout: None,
            });
            b.alu_work(6).produce(QueueId(0)).produce(QueueId(0));
            b.build()
        };
        // A trivially-accepting stream port.
        struct FreePort;
        impl StreamPort for FreePort {
            fn try_produce(
                &mut self,
                _mem: &mut MemSystem,
                _core: CoreId,
                _q: hfs_isa::QueueId,
                _value: u64,
                now: Cycle,
            ) -> StreamSubmit {
                StreamSubmit::Done {
                    at: now + 1,
                    value: None,
                }
            }
            fn try_consume(
                &mut self,
                _mem: &mut MemSystem,
                _core: CoreId,
                _q: hfs_isa::QueueId,
                _now: Cycle,
            ) -> StreamSubmit {
                unreachable!()
            }
            fn poll(
                &mut self,
                _core: CoreId,
                _now: Cycle,
                _out: &mut Vec<crate::StreamCompletion>,
            ) {
            }
            fn location(&self, _token: StreamToken) -> StallComponent {
                StallComponent::PreL2
            }
        }
        let run = |free: bool| {
            let prog = build();
            let mut seq = Sequencer::new(&prog, &HashMap::new(), 0).unwrap();
            let mut cfg = CoreConfig::itanium2();
            cfg.free_queue_ops = free;
            let mut core = Core::new(CoreId(0), cfg).unwrap();
            let mut m = mem();
            let mut port = FreePort;
            for t in 0..100_000 {
                let now = Cycle::new(t);
                m.tick(now);
                core.tick(now, &mut seq, &mut m, &mut port);
                if core.finished(&seq) {
                    return core.stats().cycles;
                }
            }
            panic!("did not finish");
        };
        let normal = run(false);
        let folded = run(true);
        assert!(
            folded < normal,
            "folded queue ops must save issue slots: {folded} vs {normal}"
        );
    }

    #[test]
    fn window_limits_inflight() {
        // 1 MB random loads: many misses; the window and OzQ bound
        // in-flight ops, so the run completes without panic.
        let mut b = ProgramBuilder::new(30);
        let r = b.declare_region("ws", 1 << 20);
        for _ in 0..8 {
            b.load_random(r);
        }
        let (core, _) = run(&b.build(), 500_000);
        assert_eq!(core.stats().total_instrs(), 240);
    }
}

//! In-order core model for the `hfs` CMP simulator.
//!
//! Models an Itanium-2-like core (Table 2): 6-issue in-order with 6
//! integer ALUs, 4 memory ports, 2 FP units, and 3 branch units. The core
//! pulls dynamic instructions from an [`hfs_isa::Sequencer`], tracks
//! register readiness with a scoreboard, sends memory operations to an
//! [`hfs_mem::MemSystem`], and routes `produce`/`consume` instructions to
//! a design-specific [`StreamPort`] implemented by the machine model in
//! `hfs-core`.
//!
//! Every cycle with no commit is charged to the paper's Figure 7 stall
//! component determined by where the oldest in-flight instruction
//! currently is (PreL2 / L2 / BUS / L3 / MEM / PostL2).

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod config;
mod core_model;
mod port;

pub use config::CoreConfig;
pub use core_model::{BlockedAttempt, Core, CoreStats};
pub use port::{NullStreamPort, StreamCompletion, StreamPort, StreamSubmit, StreamToken};

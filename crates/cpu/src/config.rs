//! Core pipeline configuration.

use hfs_sim::ConfigError;

/// Configuration of one in-order core (Table 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Instructions issued per cycle.
    pub issue_width: u32,
    /// Integer ALUs.
    pub int_alus: u32,
    /// Floating-point units.
    pub fp_units: u32,
    /// Branch units.
    pub branch_units: u32,
    /// Memory ports (loads/stores/produce/consume issued per cycle).
    pub mem_ports: u32,
    /// In-flight instruction window (in-order commit).
    pub window: u32,
    /// Register-mapped queues (§3.1.3 of the paper): produce/consume
    /// ride existing instructions, costing no issue slots or memory
    /// ports.
    pub free_queue_ops: bool,
}

impl CoreConfig {
    /// The paper's 6-issue Itanium 2 core: 6 ALU, 4 memory, 2 FP,
    /// 3 branch.
    pub fn itanium2() -> Self {
        CoreConfig {
            issue_width: 6,
            int_alus: 6,
            fp_units: 2,
            branch_units: 3,
            mem_ports: 4,
            window: 32,
            free_queue_ops: false,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Rejects zero widths and empty windows.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.issue_width == 0 {
            return Err(ConfigError::new("issue width must be non-zero"));
        }
        if self.int_alus == 0 || self.branch_units == 0 || self.mem_ports == 0 {
            return Err(ConfigError::new(
                "cores need at least one ALU, branch unit, and memory port",
            ));
        }
        if self.window == 0 {
            return Err(ConfigError::new("instruction window must be non-zero"));
        }
        Ok(())
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig::itanium2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn itanium2_matches_table2() {
        let c = CoreConfig::itanium2();
        assert_eq!(c.issue_width, 6);
        assert_eq!(c.int_alus, 6);
        assert_eq!(c.fp_units, 2);
        assert_eq!(c.branch_units, 3);
        assert_eq!(c.mem_ports, 4);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn rejects_zero_fields() {
        let mut c = CoreConfig::itanium2();
        c.issue_width = 0;
        assert!(c.validate().is_err());
        let mut c = CoreConfig::itanium2();
        c.mem_ports = 0;
        assert!(c.validate().is_err());
        let mut c = CoreConfig::itanium2();
        c.window = 0;
        assert!(c.validate().is_err());
    }
}

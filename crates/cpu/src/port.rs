//! The stream port: how `produce`/`consume` instructions reach the
//! design-specific streaming hardware.

use hfs_isa::{CoreId, QueueId};
use hfs_sim::stats::StallComponent;
use hfs_sim::Cycle;

/// Identifies one in-flight produce/consume accepted by a stream port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamToken(pub u64);

/// The result of offering a produce/consume to the streaming hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamSubmit {
    /// The operation completed with a fixed latency; the consumed value
    /// (if any) is available at `at`.
    Done {
        /// Completion cycle.
        at: Cycle,
        /// Consumed value (None for produce).
        value: Option<u64>,
    },
    /// Accepted; completion arrives later via [`StreamPort::poll`].
    Pending(StreamToken),
    /// The hardware cannot accept the operation this cycle (structural
    /// back-pressure); the core retries and the cycle charges PreL2.
    Blocked,
}

/// A deferred stream-operation completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamCompletion {
    /// Token returned by the earlier submission.
    pub token: StreamToken,
    /// Consumed value (None for produce).
    pub value: Option<u64>,
    /// Cycle the result is architecturally available.
    pub at: Cycle,
}

/// Design-specific streaming hardware as seen by a core.
///
/// `hfs-core` implements this for each design point: HEAVYWT routes to the
/// synchronization array over the dedicated interconnect; SYNCOPTI renames
/// to stream addresses, checks occupancy counters, and issues gated memory
/// operations; software-queue designs never see these calls, because their
/// communication is ordinary loads and stores.
pub trait StreamPort {
    /// Offers a produce of `value` on `q` from `core`. Backends that
    /// back queues with memory use `mem` to submit gated operations.
    fn try_produce(
        &mut self,
        mem: &mut hfs_mem::MemSystem,
        core: CoreId,
        q: QueueId,
        value: u64,
        now: Cycle,
    ) -> StreamSubmit;

    /// Offers a consume on `q` from `core`.
    fn try_consume(
        &mut self,
        mem: &mut hfs_mem::MemSystem,
        core: CoreId,
        q: QueueId,
        now: Cycle,
    ) -> StreamSubmit;

    /// Drains completions for operations previously accepted as pending,
    /// appending them to the caller-owned `out` buffer (not cleared) so
    /// the per-cycle poll allocates nothing.
    fn poll(&mut self, core: CoreId, now: Cycle, out: &mut Vec<StreamCompletion>);

    /// Stall component charged while `token` is outstanding.
    fn location(&self, token: StreamToken) -> StallComponent;

    /// Replays the side effects of `n` additional back-to-back refused
    /// attempts of the given operation (true = produce). Fast-forward
    /// calls this for a core whose issue stage was blocked on the
    /// streaming hardware across skipped cycles; the default no-op
    /// suits backends whose blocked path mutates nothing.
    fn charge_blocked(&mut self, core: CoreId, q: QueueId, produce: bool, n: u64) {
        let _ = (core, q, produce, n);
    }

    /// Receives background memory completions (the core routes every
    /// completion whose `background` flag is set here). Streaming
    /// backends submit their gated queue accesses as background
    /// operations so the results come back to them rather than to a
    /// register. The default implementation drops them.
    fn on_mem_completion(&mut self, completion: hfs_mem::Completion) {
        let _ = completion;
    }
}

/// A stream port that refuses every operation; used for single-threaded
/// runs and programs without queue instructions.
///
/// # Panics
///
/// [`StreamPort::try_produce`] and [`StreamPort::try_consume`] panic:
/// reaching them means a program with produce/consume instructions was run
/// on a machine without streaming hardware.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullStreamPort;

impl StreamPort for NullStreamPort {
    fn try_produce(
        &mut self,
        _mem: &mut hfs_mem::MemSystem,
        core: CoreId,
        q: QueueId,
        _value: u64,
        _now: Cycle,
    ) -> StreamSubmit {
        panic!("{core} executed produce on {q} but no streaming hardware is configured");
    }

    fn try_consume(
        &mut self,
        _mem: &mut hfs_mem::MemSystem,
        core: CoreId,
        q: QueueId,
        _now: Cycle,
    ) -> StreamSubmit {
        panic!("{core} executed consume on {q} but no streaming hardware is configured");
    }

    fn poll(&mut self, _core: CoreId, _now: Cycle, _out: &mut Vec<StreamCompletion>) {}

    fn location(&self, _token: StreamToken) -> StallComponent {
        StallComponent::PreL2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_port_polls_empty() {
        let mut p = NullStreamPort;
        let mut out = Vec::new();
        p.poll(CoreId(0), Cycle::ZERO, &mut out);
        assert!(out.is_empty());
        assert_eq!(p.location(StreamToken(0)), StallComponent::PreL2);
    }

    #[test]
    #[should_panic(expected = "no streaming hardware")]
    fn null_port_rejects_produce() {
        let mut p = NullStreamPort;
        let mut mem = hfs_mem::MemSystem::new(hfs_mem::MemConfig::itanium2_single()).unwrap();
        let _ = p.try_produce(&mut mem, CoreId(0), QueueId(0), 1, Cycle::ZERO);
    }
}

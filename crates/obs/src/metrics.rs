//! The live metric registry and its Prometheus-text exposition.
//!
//! Three instrument kinds, all cheap enough for hot paths:
//!
//! - [`Counter`] — a monotonically increasing `AtomicU64`. Exposed with
//!   the conventional `_total` suffix already part of the name.
//! - [`Gauge`] — a signed `AtomicI64` that can move both ways (queue
//!   depth, in-flight jobs, open connections).
//! - [`HistogramMetric`] — a mutex-guarded [`hfs_sim::stats::Histogram`]
//!   with unit-width buckets, summarized at exposition time through
//!   [`hfs_trace::HistogramSummary`] as a Prometheus `summary` with
//!   p50/p95/p99 quantiles plus `_sum`/`_count`.
//!
//! Handles are `Arc`-backed: registering the same name twice returns a
//! handle to the same underlying instrument, so call sites can hold
//! their own copies without coordination. Names are kept in a sorted
//! map, which makes [`Registry::render_prometheus`] deterministic —
//! the exposition golden in `tests/obs.rs` depends on that.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use hfs_sim::stats::Histogram;
use hfs_trace::HistogramSummary;

/// A monotonically increasing counter handle.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a signed value that moves both directions.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Adds 1.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts 1.
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A histogram handle recording integer observations (typically
/// milliseconds). Observations above the configured max land in the
/// overflow bucket and clamp percentile reads to the top bucket.
#[derive(Debug, Clone)]
pub struct HistogramMetric(Arc<Mutex<Histogram>>);

impl HistogramMetric {
    fn new(max: usize) -> HistogramMetric {
        HistogramMetric(Arc::new(Mutex::new(Histogram::new(max))))
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        self.0.lock().unwrap().record(v);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.0.lock().unwrap().count()
    }

    /// The p50/p95/p99 summary snapshot.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary::of(&self.0.lock().unwrap())
    }
}

#[derive(Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(HistogramMetric),
}

/// A named collection of instruments with deterministic exposition.
///
/// Each serving process owns one (`hfs-serve`'s dispatcher, the
/// harness engine); [`global`] provides a process-wide default for
/// call sites with no registry in scope. Instrument lookups are
/// get-or-create, so components can register the same name
/// independently and share the instrument.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created at zero on first use.
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().unwrap();
        match inner
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// The gauge named `name`, created at zero on first use.
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().unwrap();
        match inner
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// The histogram named `name`, created on first use with unit-width
    /// buckets `0..max` plus an overflow bucket. `max` is ignored when
    /// the histogram already exists.
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str, max: usize) -> HistogramMetric {
        let mut inner = self.inner.lock().unwrap();
        match inner
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(HistogramMetric::new(max)))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Renders every instrument in Prometheus text exposition format,
    /// sorted by name. Counters render as `counter`, gauges as `gauge`,
    /// histograms as `summary` with p50/p95/p99 quantile lines plus
    /// `{name}_sum` and `{name}_count`.
    pub fn render_prometheus(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let mut out = String::new();
        for (name, metric) in inner.iter() {
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.get()));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", g.get()));
                }
                Metric::Histogram(h) => {
                    let s = h.summary();
                    out.push_str(&format!("# TYPE {name} summary\n"));
                    out.push_str(&format!("{name}{{quantile=\"0.5\"}} {}\n", s.p50));
                    out.push_str(&format!("{name}{{quantile=\"0.95\"}} {}\n", s.p95));
                    out.push_str(&format!("{name}{{quantile=\"0.99\"}} {}\n", s.p99));
                    out.push_str(&format!("{name}_sum {}\n", s.sum));
                    out.push_str(&format!("{name}_count {}\n", s.count));
                }
            }
        }
        out
    }
}

/// The process-wide default registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = Registry::new();
        let c = reg.counter("hfs_jobs_submitted_total");
        c.inc();
        c.add(4);
        // A second lookup shares the instrument.
        assert_eq!(reg.counter("hfs_jobs_submitted_total").get(), 5);

        let g = reg.gauge("hfs_queue_depth");
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-2);
        assert_eq!(reg.gauge("hfs_queue_depth").get(), -2);
    }

    #[test]
    fn histogram_summary_percentiles() {
        let reg = Registry::new();
        let h = reg.histogram("hfs_job_exec_wall_ms", 100);
        for v in 1..=100 {
            h.observe(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5050);
        assert_eq!(s.p50, 50);
        assert_eq!(s.p95, 95);
        assert_eq!(s.p99, 99);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("hfs_thing");
        reg.gauge("hfs_thing");
    }

    #[test]
    fn exposition_is_sorted_and_well_formed() {
        let reg = Registry::new();
        reg.counter("hfs_b_total").add(2);
        reg.gauge("hfs_a_depth").set(3);
        let h = reg.histogram("hfs_c_ms", 10);
        h.observe(4);
        let text = reg.render_prometheus();
        let expected = "# TYPE hfs_a_depth gauge\n\
                        hfs_a_depth 3\n\
                        # TYPE hfs_b_total counter\n\
                        hfs_b_total 2\n\
                        # TYPE hfs_c_ms summary\n\
                        hfs_c_ms{quantile=\"0.5\"} 4\n\
                        hfs_c_ms{quantile=\"0.95\"} 4\n\
                        hfs_c_ms{quantile=\"0.99\"} 4\n\
                        hfs_c_ms_sum 4\n\
                        hfs_c_ms_count 1\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn concurrent_increments_sum_exactly() {
        let reg = Registry::new();
        let c = reg.counter("hfs_concurrent_total");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }
}

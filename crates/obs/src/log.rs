//! The leveled structured logger.
//!
//! One log record is one line of compact JSON:
//!
//! ```json
//! {"seq":7,"ts_ms":152,"level":"info","component":"serve","event":"listening","endpoint":"unix:/tmp/hfs.sock"}
//! ```
//!
//! `seq` is a per-logger monotonic sequence (strictly increasing in the
//! order lines reach the sink — sequence assignment and the write
//! happen under one lock), `ts_ms` is milliseconds since the logger was
//! created (monotonic clock, never wall time), `component` names the
//! subsystem (`serve`, `harness`, `client`, `net`, …) and `event` is a
//! stable machine-matchable tag. Additional fields are typed via
//! [`Value`]. The whole line is emitted with a single `write_all`, so
//! lines from concurrent threads never interleave.
//!
//! The process logger ([`logger`]) is configured once from the
//! environment: `HFS_LOG=error|warn|info|debug` selects the level
//! (default `info`; anything unrecognized falls back to `info`), and
//! `HFS_LOG_FILE=<path>` redirects output from stderr to an append-mode
//! file. Tests build private [`Logger`] instances over a [`BufferSink`]
//! and assert on parsed fields, never on raw stderr text.

use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Level environment variable (`HFS_LOG=error|warn|info|debug`).
pub const ENV_LOG: &str = "HFS_LOG";
/// Log-destination environment variable (`HFS_LOG_FILE=<path>`).
pub const ENV_LOG_FILE: &str = "HFS_LOG_FILE";

/// Log severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Failures that lose work or break a connection.
    Error,
    /// Recoverable anomalies worth surfacing.
    Warn,
    /// Normal operational milestones (startup, drain, job progress).
    Info,
    /// Per-connection / per-event chatter for debugging.
    Debug,
}

impl Level {
    /// The level's lowercase wire name.
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parses a level name (case-insensitive); `None` on unknown input.
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }

    fn from_env() -> Level {
        std::env::var(ENV_LOG)
            .ok()
            .and_then(|v| Level::parse(&v))
            .unwrap_or(Level::Info)
    }
}

/// A typed structured-field value.
#[derive(Debug, Clone)]
pub enum Value {
    /// A string field (JSON-escaped on emission).
    Str(String),
    /// An unsigned integer field.
    U64(u64),
    /// A signed integer field.
    I64(i64),
    /// A float field (emitted with up to 3 decimal places).
    F64(f64),
    /// A boolean field.
    Bool(bool),
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(u64::from(v))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

/// Appends `s` to `out` as a JSON string literal.
fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn value_into(out: &mut String, v: &Value) {
    match v {
        Value::Str(s) => escape_into(out, s),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::F64(f) => {
            if f.is_finite() {
                // Up to 3 decimals, trailing zeros trimmed, never "1." —
                // keeps lines compact and valid JSON.
                let s = format!("{f:.3}");
                let s = s.trim_end_matches('0').trim_end_matches('.');
                out.push_str(if s.is_empty() { "0" } else { s });
            } else {
                out.push_str("null");
            }
        }
    }
}

/// A cloneable in-memory sink for tests: collects everything written,
/// readable back via [`BufferSink::contents`].
#[derive(Debug, Clone, Default)]
pub struct BufferSink(Arc<Mutex<Vec<u8>>>);

impl BufferSink {
    /// An empty buffer sink.
    pub fn new() -> BufferSink {
        BufferSink::default()
    }

    /// Everything written so far, as UTF-8.
    pub fn contents(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).expect("log lines are UTF-8")
    }
}

impl Write for BufferSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

struct Sink {
    seq: u64,
    writer: Box<dyn Write + Send>,
}

/// A leveled JSON-lines logger. See the [module docs](self) for the
/// line format and concurrency guarantees.
pub struct Logger {
    level: Level,
    epoch: Instant,
    sink: Mutex<Sink>,
    dropped: AtomicU64,
}

impl Logger {
    /// A logger writing to an explicit sink — the test constructor.
    pub fn with_sink(level: Level, writer: Box<dyn Write + Send>) -> Logger {
        Logger {
            level,
            epoch: Instant::now(),
            sink: Mutex::new(Sink { seq: 0, writer }),
            dropped: AtomicU64::new(0),
        }
    }

    /// The production configuration: level from `HFS_LOG` (default
    /// `info`), destination from `HFS_LOG_FILE` (append mode; falls
    /// back to stderr if the file cannot be opened, and on no setting).
    pub fn from_env() -> Logger {
        let level = Level::from_env();
        let writer: Box<dyn Write + Send> = match std::env::var_os(ENV_LOG_FILE)
            .filter(|v| !v.is_empty())
            .and_then(|p| {
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(p)
                    .ok()
            }) {
            Some(f) => Box::new(f),
            None => Box::new(std::io::stderr()),
        };
        Logger::with_sink(level, writer)
    }

    /// The configured level.
    pub fn level(&self) -> Level {
        self.level
    }

    /// Whether records at `level` would be emitted.
    pub fn enabled(&self, level: Level) -> bool {
        level <= self.level
    }

    /// Lines that failed to reach the sink (I/O errors only — level
    /// filtering does not count as dropping).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Emits one record. `component` names the subsystem, `event` is a
    /// stable tag, and `fields` are appended in order after the
    /// standard `seq`/`ts_ms`/`level`/`component`/`event` prefix.
    pub fn log(&self, level: Level, component: &str, event: &str, fields: &[(&str, Value)]) {
        if !self.enabled(level) {
            return;
        }
        // Build everything but `seq` outside the lock.
        let ts_ms = self.epoch.elapsed().as_millis() as u64;
        let mut tail = String::with_capacity(96);
        tail.push_str(",\"ts_ms\":");
        tail.push_str(&ts_ms.to_string());
        tail.push_str(",\"level\":\"");
        tail.push_str(level.name());
        tail.push_str("\",\"component\":");
        escape_into(&mut tail, component);
        tail.push_str(",\"event\":");
        escape_into(&mut tail, event);
        for (k, v) in fields {
            tail.push(',');
            escape_into(&mut tail, k);
            tail.push(':');
            value_into(&mut tail, v);
        }
        tail.push_str("}\n");

        // Sequence assignment and the write share one critical section,
        // so sequences are strictly increasing in sink order and lines
        // never interleave.
        let mut sink = self.sink.lock().unwrap();
        sink.seq += 1;
        let line = format!("{{\"seq\":{}{}", sink.seq, tail);
        let ok = sink.writer.write_all(line.as_bytes()).is_ok() && sink.writer.flush().is_ok();
        drop(sink);
        if !ok {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// [`Logger::log`] at [`Level::Error`].
    pub fn error(&self, component: &str, event: &str, fields: &[(&str, Value)]) {
        self.log(Level::Error, component, event, fields);
    }

    /// [`Logger::log`] at [`Level::Warn`].
    pub fn warn(&self, component: &str, event: &str, fields: &[(&str, Value)]) {
        self.log(Level::Warn, component, event, fields);
    }

    /// [`Logger::log`] at [`Level::Info`].
    pub fn info(&self, component: &str, event: &str, fields: &[(&str, Value)]) {
        self.log(Level::Info, component, event, fields);
    }

    /// [`Logger::log`] at [`Level::Debug`].
    pub fn debug(&self, component: &str, event: &str, fields: &[(&str, Value)]) {
        self.log(Level::Debug, component, event, fields);
    }
}

/// The process logger, configured from the environment on first use.
pub fn logger() -> &'static Logger {
    static GLOBAL: OnceLock<Logger> = OnceLock::new();
    GLOBAL.get_or_init(Logger::from_env)
}

/// Logs at error level on the process logger.
pub fn error(component: &str, event: &str, fields: &[(&str, Value)]) {
    logger().error(component, event, fields);
}

/// Logs at warn level on the process logger.
pub fn warn(component: &str, event: &str, fields: &[(&str, Value)]) {
    logger().warn(component, event, fields);
}

/// Logs at info level on the process logger.
pub fn info(component: &str, event: &str, fields: &[(&str, Value)]) {
    logger().info(component, event, fields);
}

/// Logs at debug level on the process logger.
pub fn debug(component: &str, event: &str, fields: &[(&str, Value)]) {
    logger().debug(component, event, fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(sink: &BufferSink) -> Vec<String> {
        sink.contents()
            .lines()
            .map(str::to_string)
            .collect::<Vec<_>>()
    }

    #[test]
    fn level_ordering_and_parse() {
        assert!(Level::Error < Level::Debug);
        assert_eq!(Level::parse("DEBUG"), Some(Level::Debug));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("nope"), None);
    }

    #[test]
    fn records_below_level_are_suppressed() {
        let sink = BufferSink::new();
        let log = Logger::with_sink(Level::Error, Box::new(sink.clone()));
        log.info("serve", "connection_accepted", &[("conn", Value::U64(1))]);
        log.debug("serve", "noise", &[]);
        assert!(sink.contents().is_empty(), "HFS_LOG=error silences info");
        log.error("serve", "accept_failed", &[("error", "boom".into())]);
        let l = lines(&sink);
        assert_eq!(l.len(), 1);
        assert!(l[0].contains("\"event\":\"accept_failed\""));
        assert!(l[0].contains("\"seq\":1"));
    }

    #[test]
    fn fields_serialize_typed_and_escaped() {
        let sink = BufferSink::new();
        let log = Logger::with_sink(Level::Debug, Box::new(sink.clone()));
        log.info(
            "test",
            "kinds",
            &[
                ("s", Value::Str("a\"b\\c\nd".into())),
                ("u", Value::U64(7)),
                ("i", Value::I64(-3)),
                ("f", Value::F64(1.25)),
                ("t", Value::Bool(true)),
            ],
        );
        let l = lines(&sink);
        assert_eq!(l.len(), 1);
        assert!(l[0].contains("\"s\":\"a\\\"b\\\\c\\nd\""));
        assert!(l[0].contains("\"u\":7"));
        assert!(l[0].contains("\"i\":-3"));
        assert!(l[0].contains("\"f\":1.25"));
        assert!(l[0].contains("\"t\":true"));
    }

    #[test]
    fn float_rendering_stays_json() {
        let sink = BufferSink::new();
        let log = Logger::with_sink(Level::Debug, Box::new(sink.clone()));
        log.info(
            "test",
            "floats",
            &[
                ("whole", Value::F64(2.0)),
                ("nan", Value::F64(f64::NAN)),
                ("tiny", Value::F64(0.0004)),
            ],
        );
        let line = sink.contents();
        assert!(line.contains("\"whole\":2,"));
        assert!(line.contains("\"nan\":null"));
        assert!(line.contains("\"tiny\":0,") || line.contains("\"tiny\":0}"));
    }

    #[test]
    fn sequences_are_strict_in_sink_order() {
        let sink = BufferSink::new();
        let log = std::sync::Arc::new(Logger::with_sink(Level::Debug, Box::new(sink.clone())));
        std::thread::scope(|s| {
            for t in 0..4 {
                let log = std::sync::Arc::clone(&log);
                s.spawn(move || {
                    for i in 0..50 {
                        log.info(
                            "test",
                            "tick",
                            &[("t", Value::U64(t)), ("i", Value::U64(i))],
                        );
                    }
                });
            }
        });
        let l = lines(&sink);
        assert_eq!(l.len(), 200);
        let mut last = 0u64;
        for line in &l {
            let seq: u64 = line
                .strip_prefix("{\"seq\":")
                .and_then(|r| r.split(',').next())
                .and_then(|n| n.parse().ok())
                .expect("line starts with a seq");
            assert!(seq > last, "sequences strictly increase in sink order");
            last = seq;
        }
        assert_eq!(log.dropped(), 0);
    }
}

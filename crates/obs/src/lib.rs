//! `hfs-obs` — service-layer observability for the hfs serving stack.
//!
//! Two subsystems, both std-only:
//!
//! - [`log`]: a leveled structured logger emitting JSON-lines to stderr
//!   or `HFS_LOG_FILE`, controlled by `HFS_LOG=error|warn|info|debug`.
//!   Every line carries a process-monotonic sequence number and a
//!   `component` field, and is written with a single `write_all` so
//!   concurrent writers never interleave mid-line.
//! - [`metrics`]: a metric registry (counters, gauges, histograms with
//!   p50/p95/p99 summaries reusing [`hfs_sim::stats::Histogram`]) with
//!   Prometheus-text exposition. One [`metrics::Registry`] per serving
//!   process (the `hfs-serve` dispatcher and the harness engine each
//!   own one); [`metrics::global`] provides the process-wide default.
//!
//! **Inertness rule**: nothing in this crate may influence simulation
//! results. Log lines and metric values never enter cache keys,
//! artifact bytes, or machine state — artifacts are byte-identical
//! with logging/metrics on or off, which `scripts/ci.sh` enforces.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod log;
pub mod metrics;

pub use crate::log::{
    debug, error, info, logger, warn, BufferSink, Level, Logger, Value, ENV_LOG, ENV_LOG_FILE,
};
pub use crate::metrics::{global, Counter, Gauge, HistogramMetric, Registry};

//! The Table 1 benchmark registry.

use hfs_core::kernel::{KStep, Kernel, KernelPair};
use hfs_isa::QueueId;

/// Benchmark suite of origin (Table 1 / §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    /// SPEC CPU2000.
    Spec2000,
    /// Mediabench.
    Mediabench,
    /// Unix utilities.
    Unix,
    /// StreamIt benchmarks (hand-parallelized C versions).
    StreamIt,
}

impl Suite {
    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            Suite::Spec2000 => "SPEC-CPU2000",
            Suite::Mediabench => "Mediabench",
            Suite::Unix => "Unix",
            Suite::StreamIt => "StreamIt",
        }
    }
}

/// One evaluated benchmark: Table 1 metadata plus the kernel pair.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Short name used in the figures (`wc`, `mcf`, `fft2`, …).
    pub name: &'static str,
    /// The parallelized function (Table 1).
    pub function: &'static str,
    /// Percent of total execution time the loop covers (Table 1);
    /// `None` for the StreamIt kernels, which are whole programs.
    pub exec_time_pct: Option<u32>,
    /// Originating suite.
    pub suite: Suite,
    /// The two-thread pipeline kernel.
    pub pair: KernelPair,
}

impl Benchmark {
    /// Returns a copy with a different outer-loop iteration count
    /// (smaller for quick tests, larger for steady-state measurements).
    #[must_use]
    pub fn with_iterations(&self, iterations: u64) -> Benchmark {
        let mut b = self.clone();
        b.pair.iterations = iterations;
        b
    }
}

/// The benchmark plotting order used by the paper's figures.
pub fn paper_order() -> [&'static str; 9] {
    [
        "art", "equake", "mcf", "bzip2", "adpcmdec", "epicdec", "wc", "fir", "fft2",
    ]
}

/// Looks up one benchmark by name.
pub fn benchmark(name: &str) -> Option<Benchmark> {
    all_benchmarks().into_iter().find(|b| b.name == name)
}

/// All nine benchmarks with their default iteration counts.
pub fn all_benchmarks() -> Vec<Benchmark> {
    vec![
        art(),
        equake(),
        mcf(),
        bzip2(),
        adpcmdec(),
        epicdec(),
        wc(),
        fir(),
        fft2(),
    ]
}

const Q0: QueueId = QueueId(0);
const Q1: QueueId = QueueId(1);
const Q2: QueueId = QueueId(2);

/// 179.art `match`: FP neural-network matching. Moderate loop, FP-heavy
/// consumer (consumer-bound: the producer frequently finds the queue
/// full, making it transit-tolerant in Figure 6).
fn art() -> Benchmark {
    let mut producer = Kernel::default();
    let f1 = producer.add_region("f1_layer", 64 * 1024);
    producer.steps = vec![
        KStep::LoadStream {
            region: f1,
            stride: 8,
        },
        KStep::Fp(1),
        KStep::Alu(2),
        KStep::Produce(Q0),
        KStep::Branch,
    ];
    let mut consumer = Kernel::default();
    let bus = consumer.add_region("bus_weights", 64 * 1024);
    consumer.steps = vec![
        KStep::Consume(Q0),
        KStep::FpChain(2),
        KStep::LoadStream {
            region: bus,
            stride: 8,
        },
        KStep::Fp(2),
        KStep::Alu(1),
        KStep::Branch,
    ];
    Benchmark {
        name: "art",
        function: "match",
        exec_time_pct: Some(20),
        suite: Suite::Spec2000,
        pair: KernelPair {
            name: "art",
            producer,
            consumer,
            iterations: 1500,
        },
    }
}

/// 183.equake `smvp`: sparse matrix-vector product. Memory intensive
/// (working set beyond the L3) with FP reduction in the consumer.
fn equake() -> Benchmark {
    let mut producer = Kernel::default();
    let matrix = producer.add_region("sparse_matrix", 4 * 1024 * 1024);
    producer.steps = vec![
        KStep::LoadRandom { region: matrix },
        KStep::LoadStream {
            region: matrix,
            stride: 24,
        },
        KStep::Alu(3),
        KStep::Produce(Q0),
        KStep::Produce(Q1),
        KStep::Branch,
    ];
    let mut consumer = Kernel::default();
    let vec_out = consumer.add_region("result_vector", 128 * 1024);
    consumer.steps = vec![
        KStep::Consume(Q0),
        KStep::Consume(Q1),
        KStep::FpChain(2),
        KStep::Fp(2),
        KStep::AluChain(2),
        KStep::StoreStream {
            region: vec_out,
            stride: 8,
        },
        KStep::Branch,
    ];
    Benchmark {
        name: "equake",
        function: "smvp",
        exec_time_pct: Some(68),
        suite: Suite::Spec2000,
        pair: KernelPair {
            name: "equake",
            producer,
            consumer,
            iterations: 800,
        },
    }
}

/// 181.mcf `refresh_potential`: pointer chasing over a multi-megabyte
/// node arena — the most memory-bound loop.
fn mcf() -> Benchmark {
    let mut producer = Kernel::default();
    let nodes = producer.add_region("node_arena", 6 * 1024 * 1024);
    producer.steps = vec![
        KStep::LoadRandom { region: nodes },
        KStep::LoadRandom { region: nodes },
        KStep::AluChain(3),
        KStep::Alu(2),
        KStep::Produce(Q0),
        KStep::Branch,
    ];
    let mut consumer = Kernel::default();
    let pots = consumer.add_region("potentials", 2 * 1024 * 1024);
    consumer.steps = vec![
        KStep::Consume(Q0),
        KStep::AluChain(2),
        KStep::LoadRandom { region: pots },
        KStep::Alu(2),
        KStep::StoreRandom { region: pots },
        KStep::Branch,
    ];
    Benchmark {
        name: "mcf",
        function: "refresh_potential",
        exec_time_pct: Some(30),
        suite: Suite::Spec2000,
        pair: KernelPair {
            name: "mcf",
            producer,
            consumer,
            iterations: 700,
        },
    }
}

/// 256.bzip2 `getAndMoveToFrontDecode`: a two-deep loop nest with
/// inter-thread communication at *both* levels. The outer-loop stream
/// cannot be pipelined (the producer reaches the outer produce only after
/// finishing every inner iteration), which is why a 10-cycle interconnect
/// slows this benchmark ~33% in Figure 6.
fn bzip2() -> Benchmark {
    // Inner trip count equals the 32-entry queue depth: the producer can
    // run at most one nest ahead before the inner queue back-pressures
    // it, so the outer stream's transit delay lands on the critical path
    // (Figure 6) — and a 64-entry queue restores the slack.
    const INNER: u64 = 32;
    let mut producer = Kernel::default();
    let block = producer.add_region("mtf_block", 4 * 1024);
    producer.steps = vec![
        KStep::Loop(
            vec![
                KStep::LoadStream {
                    region: block,
                    stride: 8,
                },
                KStep::AluChain(1),
                KStep::Produce(Q0),
            ],
            INNER,
        ),
        KStep::Alu(2),
        KStep::Produce(Q1), // outer-loop stream: produced after the nest
        KStep::Branch,
    ];
    let mut consumer = Kernel::default();
    let out = consumer.add_region("unzftab", 4 * 1024);
    consumer.steps = vec![
        // The outer-loop value gates the whole iteration: the consumer
        // blocks here until the producer finishes its previous nest, so
        // the outer stream is never pipelined (the Figure 6 sensitivity).
        KStep::Consume(Q1),
        KStep::AluChain(2),
        KStep::Loop(
            vec![
                KStep::Consume(Q0),
                KStep::AluChain(2),
                KStep::Alu(1),
                KStep::StoreStream {
                    region: out,
                    stride: 8,
                },
            ],
            INNER,
        ),
        KStep::Branch,
    ];
    Benchmark {
        name: "bzip2",
        function: "getAndMoveToFrontDecode",
        exec_time_pct: Some(17),
        suite: Suite::Spec2000,
        pair: KernelPair {
            name: "bzip2",
            producer,
            consumer,
            iterations: 150,
        },
    }
}

/// adpcmdec `adpcm_decoder`: tight DSP loop, one stream, dependent ALU
/// chains on both sides.
fn adpcmdec() -> Benchmark {
    let mut producer = Kernel::default();
    let input = producer.add_region("compressed", 32 * 1024);
    producer.steps = vec![
        KStep::LoadStream {
            region: input,
            stride: 8,
        },
        KStep::AluChain(4),
        KStep::Produce(Q0),
        KStep::Branch,
    ];
    let mut consumer = Kernel::default();
    let pcm = consumer.add_region("pcm_out", 32 * 1024);
    consumer.steps = vec![
        KStep::Consume(Q0),
        KStep::AluChain(5),
        KStep::StoreStream {
            region: pcm,
            stride: 8,
        },
        KStep::Branch,
    ];
    Benchmark {
        name: "adpcmdec",
        function: "adpcm_decoder",
        exec_time_pct: Some(98),
        suite: Suite::Mediabench,
        pair: KernelPair {
            name: "adpcmdec",
            producer,
            consumer,
            iterations: 2000,
        },
    }
}

/// epicdec `read_and_huffman_decode`: tight streaming decode loop.
fn epicdec() -> Benchmark {
    let mut producer = Kernel::default();
    let bits = producer.add_region("bitstream", 32 * 1024);
    producer.steps = vec![
        KStep::LoadStream {
            region: bits,
            stride: 8,
        },
        KStep::Alu(3),
        KStep::Produce(Q0),
        KStep::Branch,
    ];
    let mut consumer = Kernel::default();
    let sym = consumer.add_region("symbols", 32 * 1024);
    consumer.steps = vec![
        KStep::Consume(Q0),
        KStep::AluChain(2),
        KStep::Alu(2),
        KStep::StoreStream {
            region: sym,
            stride: 8,
        },
        KStep::Branch,
    ];
    Benchmark {
        name: "epicdec",
        function: "read_and_huffman_decode",
        exec_time_pct: Some(21),
        suite: Suite::Mediabench,
        pair: KernelPair {
            name: "epicdec",
            producer,
            consumer,
            iterations: 2000,
        },
    }
}

/// `wc` `cnt`: the tightest loop of the study — three streams with one
/// consume each per iteration and almost no application work, making it
/// maximally sensitive to consume-to-use latency (§4.4: SYNCOPTI is
/// almost twice as slow as HEAVYWT here).
fn wc() -> Benchmark {
    let mut producer = Kernel::default();
    let text = producer.add_region("text", 8 * 1024);
    producer.steps = vec![
        KStep::LoadStream {
            region: text,
            stride: 8,
        },
        KStep::Alu(2),
        KStep::Produce(Q0), // character class
        KStep::Produce(Q1), // in-word flag
        KStep::Produce(Q2), // newline flag
        KStep::Branch,
    ];
    let consumer = Kernel::new(vec![
        KStep::Consume(Q0),
        KStep::Consume(Q1),
        KStep::Consume(Q2),
        KStep::AluChain(3),
        KStep::Branch,
    ]);
    Benchmark {
        name: "wc",
        function: "cnt",
        exec_time_pct: Some(100),
        suite: Suite::Unix,
        pair: KernelPair {
            name: "wc",
            producer,
            consumer,
            iterations: 2000,
        },
    }
}

/// StreamIt `fir`: FP filter pipeline; the consumer's tap accumulation
/// dominates, so the producer often waits on a full queue.
fn fir() -> Benchmark {
    let mut producer = Kernel::default();
    let samples = producer.add_region("samples", 8 * 1024);
    producer.steps = vec![
        KStep::LoadStream {
            region: samples,
            stride: 8,
        },
        KStep::Fp(1),
        KStep::Produce(Q0),
        KStep::Branch,
    ];
    let consumer = Kernel::new(vec![
        KStep::Consume(Q0),
        KStep::FpChain(3),
        KStep::AluChain(2),
        KStep::Branch,
    ]);
    Benchmark {
        name: "fir",
        function: "fir (StreamIt)",
        exec_time_pct: None,
        suite: Suite::StreamIt,
        pair: KernelPair {
            name: "fir",
            producer,
            consumer,
            iterations: 2000,
        },
    }
}

/// StreamIt `fft2`: butterfly stages split across two streams.
fn fft2() -> Benchmark {
    let mut producer = Kernel::default();
    let twiddle = producer.add_region("twiddle", 32 * 1024);
    producer.steps = vec![
        KStep::LoadStream {
            region: twiddle,
            stride: 16,
        },
        KStep::Fp(2),
        KStep::Alu(1),
        KStep::Produce(Q0),
        KStep::Produce(Q1),
        KStep::Branch,
    ];
    let mut consumer = Kernel::default();
    let spectrum = consumer.add_region("spectrum", 32 * 1024);
    consumer.steps = vec![
        KStep::Consume(Q0),
        KStep::Consume(Q1),
        KStep::FpChain(2),
        KStep::Fp(1),
        KStep::StoreStream {
            region: spectrum,
            stride: 8,
        },
        KStep::Branch,
    ];
    Benchmark {
        name: "fft2",
        function: "fft2 (StreamIt)",
        exec_time_pct: None,
        suite: Suite::StreamIt,
        pair: KernelPair {
            name: "fft2",
            producer,
            consumer,
            iterations: 1500,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_nine_present_and_valid() {
        let all = all_benchmarks();
        assert_eq!(all.len(), 9);
        for b in &all {
            b.pair
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        }
    }

    #[test]
    fn paper_order_matches_registry() {
        let names: Vec<_> = all_benchmarks().iter().map(|b| b.name).collect();
        for n in paper_order() {
            assert!(names.contains(&n), "missing {n}");
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(benchmark("wc").is_some());
        assert!(benchmark("nonesuch").is_none());
        assert_eq!(benchmark("mcf").unwrap().function, "refresh_potential");
    }

    #[test]
    fn table1_exec_times_match_paper() {
        let pct = |n: &str| benchmark(n).unwrap().exec_time_pct;
        assert_eq!(pct("wc"), Some(100));
        assert_eq!(pct("adpcmdec"), Some(98));
        assert_eq!(pct("equake"), Some(68));
        assert_eq!(pct("mcf"), Some(30));
        assert_eq!(pct("epicdec"), Some(21));
        assert_eq!(pct("art"), Some(20));
        assert_eq!(pct("bzip2"), Some(17));
        assert_eq!(pct("fir"), None);
        assert_eq!(pct("fft2"), None);
    }

    #[test]
    fn wc_has_three_consumes_per_iteration() {
        let wc = benchmark("wc").unwrap();
        assert_eq!(wc.pair.consumer.comm_ops_per_iteration(), 3);
    }

    #[test]
    fn bzip2_communicates_at_both_nest_levels() {
        let b = benchmark("bzip2").unwrap();
        // 32 inner + 1 outer produce per outer iteration.
        assert_eq!(b.pair.producer.comm_ops_per_iteration(), 33);
        let has_loop = b
            .pair
            .producer
            .steps
            .iter()
            .any(|s| matches!(s, KStep::Loop(..)));
        assert!(has_loop);
    }

    #[test]
    fn communication_frequency_in_paper_band() {
        // Figure 8: one communication every 5-20 dynamic application
        // instructions. Statically estimate app instrs per comm op.
        for b in all_benchmarks() {
            for kernel in [&b.pair.producer, &b.pair.consumer] {
                let comm = kernel.comm_ops_per_iteration() as f64;
                let app = static_app_instrs(&kernel.steps) as f64;
                let per = app / comm;
                assert!(
                    (1.0..=20.0).contains(&per),
                    "{}: {per:.1} app instrs per comm op",
                    b.name
                );
            }
        }
    }

    fn static_app_instrs(steps: &[KStep]) -> u64 {
        steps
            .iter()
            .map(|s| match s {
                KStep::Alu(n) | KStep::AluChain(n) | KStep::Fp(n) | KStep::FpChain(n) => {
                    u64::from(*n)
                }
                KStep::Branch => 1,
                KStep::LoadStream { .. }
                | KStep::LoadRandom { .. }
                | KStep::StoreStream { .. }
                | KStep::StoreRandom { .. } => 1,
                KStep::Produce(_) | KStep::Consume(_) => 0,
                KStep::Loop(body, n) => n * static_app_instrs(body),
            })
            .sum()
    }

    #[test]
    fn with_iterations_overrides() {
        let b = benchmark("fir").unwrap().with_iterations(10);
        assert_eq!(b.pair.iterations, 10);
    }

    #[test]
    fn suites_label() {
        assert_eq!(Suite::Spec2000.label(), "SPEC-CPU2000");
        assert_eq!(Suite::StreamIt.label(), "StreamIt");
        assert_eq!(benchmark("wc").unwrap().suite, Suite::Unix);
        assert_eq!(benchmark("adpcmdec").unwrap().suite, Suite::Mediabench);
    }
}

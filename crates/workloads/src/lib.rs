//! Benchmark kernels for the `hfs` streaming simulator.
//!
//! The paper evaluates nine two-thread pipelines (Table 1): seven
//! DSWP-parallelized loops from SPEC CPU2000, Mediabench, and the Unix
//! `wc` utility, plus two hand-parallelized StreamIt kernels (`fir`,
//! `fft2`). The original binaries and the OpenIMPACT DSWP compiler are
//! not available, so each benchmark is modeled as a synthetic
//! [`hfs_core::kernel::KernelPair`] calibrated to the paper's published
//! characterization:
//!
//! * communication frequency — one queue operation every 5–20 dynamic
//!   application instructions (Figure 8), with `wc` tightest (three
//!   consumes per tiny iteration, §4.4),
//! * loop character — tight ALU/DSP loops (`wc`, `adpcmdec`, `epicdec`),
//!   FP pipelines (`art`, `fir`, `fft2`), memory-intensive loops with
//!   working sets beyond the L3 (`mcf`, `equake`, §4.5),
//! * decoupling structure — `bzip2` is a two-deep loop nest with both
//!   inner- and outer-loop streams, whose poor outer-loop decoupling
//!   explains its Figure 6 transit sensitivity,
//! * balance — `art`, `equake`, and `fir` are consumer-bound, so their
//!   producers frequently hit queue-full (why extra in-network storage
//!   helps them in Figure 6).

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod registry;

pub use registry::{all_benchmarks, benchmark, paper_order, Benchmark, Suite};

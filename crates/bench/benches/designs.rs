//! Microbenchmarks: simulator throughput per design point.
//!
//! Hand-rolled `std::time` harness (`harness = false` — the workspace is
//! std-only, so there is no criterion). Each benchmark runs a short
//! two-thread pipeline to completion and reports wall-clock time per
//! simulated run — useful for tracking simulator performance regressions
//! across the design-point backends.

use std::time::Instant;

use hfs_core::kernel::KernelPair;
use hfs_core::{DesignPoint, Machine, MachineConfig};

const ITERATIONS: u64 = 200;
const WARMUP: usize = 2;
const SAMPLES: usize = 10;

/// Times `f` over `SAMPLES` runs (after warmup) and prints median/mean.
fn time(name: &str, mut f: impl FnMut() -> u64) {
    for _ in 0..WARMUP {
        f();
    }
    let mut samples: Vec<f64> = Vec::with_capacity(SAMPLES);
    let mut checksum = 0u64;
    for _ in 0..SAMPLES {
        let start = Instant::now();
        checksum = checksum.wrapping_add(f());
        samples.push(start.elapsed().as_secs_f64() * 1e3);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!("{name:<28} median {median:8.3} ms   mean {mean:8.3} ms   (checksum {checksum})");
}

fn run_design(design: DesignPoint) -> u64 {
    let pair = KernelPair::simple("bench", 4, ITERATIONS);
    let cfg = MachineConfig::itanium2_cmp(design);
    Machine::new_pipeline(&cfg, &pair)
        .unwrap()
        .run(50_000_000)
        .unwrap()
        .cycles
}

fn main() {
    println!("design_points ({SAMPLES} samples, {ITERATIONS} iterations/run)");
    for (name, design) in [
        ("existing", DesignPoint::existing()),
        ("memopti", DesignPoint::memopti()),
        ("syncopti", DesignPoint::syncopti()),
        ("syncopti_sc_q64", DesignPoint::syncopti_sc_q64()),
        ("heavywt", DesignPoint::heavywt()),
    ] {
        time(name, || run_design(design));
    }

    let pair = KernelPair::simple("bench", 4, ITERATIONS);
    let cfg = MachineConfig::itanium2_single();
    time("single_threaded_fused", || {
        Machine::new_single(&cfg, &pair)
            .unwrap()
            .run(50_000_000)
            .unwrap()
            .cycles
    });
}

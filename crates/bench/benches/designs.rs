//! Criterion microbenchmarks: simulator throughput per design point.
//!
//! Each benchmark runs a short two-thread pipeline to completion and
//! reports wall-clock time per simulated run — useful for tracking
//! simulator performance regressions across the design-point backends.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hfs_core::kernel::KernelPair;
use hfs_core::{DesignPoint, Machine, MachineConfig};

const ITERATIONS: u64 = 200;

fn run_design(design: DesignPoint) -> u64 {
    let pair = KernelPair::simple("bench", 4, ITERATIONS);
    let cfg = MachineConfig::itanium2_cmp(design);
    Machine::new_pipeline(&cfg, &pair)
        .unwrap()
        .run(50_000_000)
        .unwrap()
        .cycles
}

fn design_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("design_points");
    group.sample_size(10);
    for (name, design) in [
        ("existing", DesignPoint::existing()),
        ("memopti", DesignPoint::memopti()),
        ("syncopti", DesignPoint::syncopti()),
        ("syncopti_sc_q64", DesignPoint::syncopti_sc_q64()),
        ("heavywt", DesignPoint::heavywt()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &design, |b, &d| {
            b.iter(|| run_design(d));
        });
    }
    group.finish();
}

fn single_threaded(c: &mut Criterion) {
    c.bench_function("single_threaded_fused", |b| {
        let pair = KernelPair::simple("bench", 4, ITERATIONS);
        let cfg = MachineConfig::itanium2_single();
        b.iter(|| {
            Machine::new_single(&cfg, &pair)
                .unwrap()
                .run(50_000_000)
                .unwrap()
                .cycles
        });
    });
}

criterion_group!(benches, design_points, single_threaded);
criterion_main!(benches);

//! Criterion benchmarks of the paper's per-figure workloads: one short
//! Table 1 benchmark per figure family, so `cargo bench` exercises every
//! experiment code path (the full paper-scale tables come from the
//! `fig*` binaries).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hfs_core::analytic::{iterations_in, AnalyticParams};
use hfs_core::{DesignPoint, Machine, MachineConfig};
use hfs_workloads::benchmark;

fn run(bench_name: &str, cfg: MachineConfig) -> u64 {
    let b = benchmark(bench_name).unwrap().with_iterations(150);
    Machine::new_pipeline(&cfg, &b.pair)
        .unwrap()
        .run(50_000_000)
        .unwrap()
        .cycles
}

fn fig3_analytic(c: &mut Criterion) {
    c.bench_function("fig3_analytic_window", |b| {
        b.iter(|| {
            iterations_in(AnalyticParams::fig3b(), 150)
                + iterations_in(AnalyticParams::fig3c(), 150)
        });
    });
}

fn fig6_transit(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_bzip2_transit");
    group.sample_size(10);
    for transit in [1u64, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(transit), &transit, |b, &t| {
            let d = DesignPoint::heavywt_with(t, 32);
            b.iter(|| run("bzip2", MachineConfig::itanium2_cmp(d)));
        });
    }
    group.finish();
}

fn fig7_designs_on_wc(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_wc");
    group.sample_size(10);
    for (name, d) in [
        ("heavywt", DesignPoint::heavywt()),
        ("syncopti", DesignPoint::syncopti()),
        ("existing", DesignPoint::existing()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &d, |b, &d| {
            b.iter(|| run("wc", MachineConfig::itanium2_cmp(d)));
        });
    }
    group.finish();
}

fn fig10_slow_bus(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_adpcmdec_bus");
    group.sample_size(10);
    for divider in [1u64, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(divider), &divider, |b, &dv| {
            let cfg = MachineConfig::itanium2_cmp(DesignPoint::existing()).with_bus_divider(dv);
            b.iter(|| run("adpcmdec", cfg.clone()));
        });
    }
    group.finish();
}

fn fig12_sc_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_fir_variants");
    group.sample_size(10);
    for (name, d) in [
        ("syncopti", DesignPoint::syncopti()),
        ("sc_q64", DesignPoint::syncopti_sc_q64()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &d, |b, &d| {
            b.iter(|| run("fir", MachineConfig::itanium2_cmp(d)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    fig3_analytic,
    fig6_transit,
    fig7_designs_on_wc,
    fig10_slow_bus,
    fig12_sc_variants
);
criterion_main!(benches);

//! Microbenchmarks of the paper's per-figure workloads: one short
//! Table 1 benchmark per figure family, so `cargo bench` exercises every
//! experiment code path (the full paper-scale tables come from the
//! `fig*` binaries and `all_figures`).
//!
//! Hand-rolled `std::time` harness (`harness = false` — the workspace is
//! std-only, so there is no criterion).

use std::time::Instant;

use hfs_core::analytic::{iterations_in, AnalyticParams};
use hfs_core::{DesignPoint, Machine, MachineConfig};
use hfs_workloads::benchmark;

const WARMUP: usize = 2;
const SAMPLES: usize = 10;

/// Times `f` over `SAMPLES` runs (after warmup) and prints median/mean.
fn time(name: &str, mut f: impl FnMut() -> u64) {
    for _ in 0..WARMUP {
        f();
    }
    let mut samples: Vec<f64> = Vec::with_capacity(SAMPLES);
    let mut checksum = 0u64;
    for _ in 0..SAMPLES {
        let start = Instant::now();
        checksum = checksum.wrapping_add(f());
        samples.push(start.elapsed().as_secs_f64() * 1e3);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!("{name:<28} median {median:8.3} ms   mean {mean:8.3} ms   (checksum {checksum})");
}

fn run(bench_name: &str, cfg: MachineConfig) -> u64 {
    let b = benchmark(bench_name).unwrap().with_iterations(150);
    Machine::new_pipeline(&cfg, &b.pair)
        .unwrap()
        .run(50_000_000)
        .unwrap()
        .cycles
}

fn main() {
    println!("figure workloads ({SAMPLES} samples)");

    time("fig3_analytic_window", || {
        iterations_in(AnalyticParams::fig3b(), 150) + iterations_in(AnalyticParams::fig3c(), 150)
    });

    for transit in [1u64, 10] {
        let d = DesignPoint::heavywt_with(transit, 32);
        time(&format!("fig6_bzip2_transit/{transit}"), || {
            run("bzip2", MachineConfig::itanium2_cmp(d))
        });
    }

    for (name, d) in [
        ("heavywt", DesignPoint::heavywt()),
        ("syncopti", DesignPoint::syncopti()),
        ("existing", DesignPoint::existing()),
    ] {
        time(&format!("fig7_wc/{name}"), || {
            run("wc", MachineConfig::itanium2_cmp(d))
        });
    }

    for divider in [1u64, 4] {
        let cfg = MachineConfig::itanium2_cmp(DesignPoint::existing()).with_bus_divider(divider);
        time(&format!("fig10_adpcmdec_bus/{divider}"), || {
            run("adpcmdec", cfg.clone())
        });
    }

    for (name, d) in [
        ("syncopti", DesignPoint::syncopti()),
        ("sc_q64", DesignPoint::syncopti_sc_q64()),
    ] {
        time(&format!("fig12_fir_variants/{name}"), || {
            run("fir", MachineConfig::itanium2_cmp(d))
        });
    }
}

//! Shared plumbing for the wall-clock perf benchmarks (`simbench`,
//! `sweepbench`).
//!
//! Each benchmark bin commits a `BENCH_*.json` artifact at the repo
//! root recording its measurements, re-runs in `--quick` mode against
//! `target/`, and gates CI with `--check` against the committed
//! baseline. The conventions those bins share — the timestamp override,
//! the iso-8601 clock, the regression floor, and the committed-artifact
//! loader — live here so the artifacts stay mutually consistent.

use hfs_harness::Json;

/// Environment variable letting the CI driver pin the artifact's
/// `host.timestamp` (any string, conventionally iso-8601); unset, the
/// wall clock is used.
pub const ENV_BENCH_TIMESTAMP: &str = "HFS_BENCH_TIMESTAMP";

/// Throughput floor relative to the committed baseline: below
/// `cur >= CHECK_FLOOR * old`, a point counts as a regression under
/// `--check`.
pub const CHECK_FLOOR: f64 = 0.9;

/// An iso-8601 UTC timestamp (`YYYY-MM-DDThh:mm:ssZ`) hand-rolled from
/// `SystemTime` (std-only; no chrono). Uses Howard Hinnant's
/// civil-from-days algorithm for the date part.
pub fn iso8601_now() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    let rem = secs % 86_400;
    let (hh, mm, ss) = (rem / 3600, (rem % 3600) / 60, rem % 60);
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}T{hh:02}:{mm:02}:{ss:02}Z")
}

/// The artifact timestamp: [`ENV_BENCH_TIMESTAMP`] when set (so CI
/// drivers can pin it), else [`iso8601_now`].
pub fn bench_timestamp() -> String {
    std::env::var(ENV_BENCH_TIMESTAMP)
        .ok()
        .filter(|v| !v.is_empty())
        .unwrap_or_else(iso8601_now)
}

/// Rounds to two decimal places for artifact-friendly ratios.
pub fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

/// Loads a committed benchmark artifact's `points` array, if present
/// and valid.
pub fn load_committed_points(committed_path: &str) -> Option<Vec<Json>> {
    let text = std::fs::read_to_string(committed_path).ok()?;
    let doc = hfs_harness::parse(&text).ok()?;
    Some(doc.get("points").and_then(Json::as_arr)?.to_vec())
}

/// Writes a benchmark artifact, creating the parent directory and
/// round-tripping the text through the harness parser as a self-check.
///
/// # Panics
///
/// Panics when the artifact is not well-formed JSON or cannot be
/// written — a benchmark that cannot record its results has failed.
pub fn write_artifact(out_path: &str, doc: &Json) {
    let text = doc.to_pretty();
    hfs_harness::parse(&text).expect("benchmark artifact is well-formed JSON");
    if let Some(parent) = std::path::Path::new(out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    std::fs::write(out_path, &text).expect("write benchmark artifact");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamps_are_iso8601_shaped() {
        let t = iso8601_now();
        assert_eq!(t.len(), 20, "{t}");
        assert_eq!(&t[4..5], "-");
        assert_eq!(&t[10..11], "T");
        assert!(t.ends_with('Z'));
    }

    #[test]
    fn round2_keeps_two_decimals() {
        assert_eq!(round2(4.75159), 4.75);
        assert_eq!(round2(1.339), 1.34);
        assert_eq!(round2(2.0), 2.0);
    }

    #[test]
    fn missing_committed_artifact_is_none() {
        assert!(load_committed_points("target/definitely-not-here.json").is_none());
    }
}

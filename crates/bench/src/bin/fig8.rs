//! Regenerates Figure 8 (communication frequency).
fn main() {
    print!("{}", hfs_bench::experiments::fig8::run().render());
}

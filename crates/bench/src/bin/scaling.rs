//! CMP scaling sweep: 1-4 concurrent pipelines per design point.
fn main() {
    print!("{}", hfs_bench::experiments::scaling::run());
}

//! Regenerates Table 2.
fn main() {
    print!("{}", hfs_bench::experiments::table2::run());
}

//! Regenerates Table 1.
fn main() {
    print!("{}", hfs_bench::experiments::table1::run().render());
}

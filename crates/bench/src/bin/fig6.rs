//! Regenerates Figure 6 (transit-delay sensitivity).
//!
//! Pass `--trace <path>` (or set `HFS_TRACE=<path>`) to also record a
//! Chrome trace of the demo HEAVYWT design point, loadable in Perfetto.
fn main() {
    print!("{}", hfs_bench::experiments::fig6::run().render());
    if let Some(p) = hfs_bench::runner::maybe_write_demo_trace() {
        eprintln!("fig6: wrote demo trace to {}", p.display());
    }
}

//! Regenerates Figure 6 (transit-delay sensitivity).
//!
//! Pass `--trace <path>` (or set `HFS_TRACE=<path>`) to also record a
//! Chrome trace of the demo HEAVYWT design point, loadable in Perfetto.
//!
//! Pass `--dump-jobs <path>` to write the figure's sweep spec as JSON
//! (for `hfs-client submit`) instead of simulating.
fn main() {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--dump-jobs" {
            let path = args.next().unwrap_or_else(|| {
                eprintln!("fig6: --dump-jobs requires a path");
                std::process::exit(2);
            });
            let jobs = hfs_bench::experiments::fig6::jobs();
            let spec = hfs_harness::sweep_to_json("fig6", &jobs).to_pretty();
            if let Err(e) = std::fs::write(&path, spec) {
                eprintln!("fig6: failed to write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("fig6: wrote {} jobs to {path}", jobs.len());
            return;
        }
    }
    print!("{}", hfs_bench::experiments::fig6::run().render());
    if let Some(p) = hfs_bench::runner::maybe_write_demo_trace() {
        eprintln!("fig6: wrote demo trace to {}", p.display());
    }
}

//! Regenerates Figure 6 (transit-delay sensitivity).
fn main() {
    print!("{}", hfs_bench::experiments::fig6::run().render());
}

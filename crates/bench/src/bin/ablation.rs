//! Runs every design-choice ablation sweep.
fn main() {
    print!("{}", hfs_bench::experiments::ablation::run_all());
}

//! Regenerates Figure 3 (analytic model).
fn main() {
    print!("{}", hfs_bench::experiments::fig3::run().render());
}

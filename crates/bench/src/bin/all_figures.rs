//! Regenerates every table and figure in one run.
//!
//! Set `HFS_OUT_DIR=<dir>` to additionally write each artifact as a
//! `.txt` file and each underlying table as a `.csv`.

use std::fs;
use std::path::PathBuf;

use hfs_bench::experiments as ex;
use hfs_bench::table::TextTable;

struct Sink {
    dir: Option<PathBuf>,
}

impl Sink {
    fn new() -> Self {
        let dir = std::env::var_os("HFS_OUT_DIR").map(PathBuf::from);
        if let Some(d) = &dir {
            fs::create_dir_all(d).expect("create HFS_OUT_DIR");
        }
        Sink { dir }
    }

    fn text(&self, name: &str, body: &str) {
        print!("{body}");
        println!();
        if let Some(d) = &self.dir {
            fs::write(d.join(format!("{name}.txt")), body).expect("write artifact");
        }
    }

    fn csv(&self, name: &str, table: &TextTable) {
        if let Some(d) = &self.dir {
            fs::write(d.join(format!("{name}.csv")), table.to_csv()).expect("write csv");
        }
    }
}

fn main() {
    let sink = Sink::new();

    let t1 = ex::table1::run();
    sink.csv("table1", &t1);
    sink.text("table1", &t1.render());

    sink.text("table2", &ex::table2::run());

    sink.text("fig3", &ex::fig3::run().render());

    let f6 = ex::fig6::run();
    sink.csv("fig6", &f6.table());
    sink.text("fig6", &f6.render());

    let f7 = ex::fig7::run();
    sink.csv("fig7_producer", &f7.producer_table("Figure 7"));
    sink.csv("fig7_consumer", &f7.consumer_table("Figure 7"));
    sink.text("fig7", &f7.render("Figure 7: design points, baseline bus"));

    let f8 = ex::fig8::run();
    sink.csv("fig8", &f8.table());
    sink.text("fig8", &f8.render());

    let f9 = ex::fig9::run();
    sink.csv("fig9", &f9.table());
    sink.text("fig9", &f9.render());

    let f10 = ex::fig10::run();
    sink.csv("fig10_producer", &f10.producer_table("Figure 10"));
    sink.csv("fig10_consumer", &f10.consumer_table("Figure 10"));
    sink.text("fig10", &f10.render("Figure 10: 4-cycle bus"));

    let f11 = ex::fig11::run();
    sink.csv("fig11_producer", &f11.producer_table("Figure 11"));
    sink.csv("fig11_consumer", &f11.consumer_table("Figure 11"));
    sink.text("fig11", &f11.render("Figure 11: 4-cycle, 128-byte bus"));

    let f12 = ex::fig12::run();
    sink.csv("fig12_producer", &f12.producer_table());
    sink.csv("fig12_consumer", &f12.consumer_table());
    sink.text("fig12", &f12.render());

    sink.text("ablation", &ex::ablation::run_all());
}

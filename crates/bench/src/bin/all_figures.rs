//! Regenerates every table and figure in one run.
//!
//! All simulation work routes through the shared `hfs-harness` engine:
//! jobs run in parallel (`HFS_JOBS` workers), completed runs land in the
//! on-disk cache (`HFS_CACHE_DIR`, default `results/cache`), and each
//! experiment's machine-readable artifact is written to
//! `HFS_RESULTS_DIR` (default `results`).
//!
//! Set `HFS_OUT_DIR=<dir>` to additionally write each rendered figure as
//! a `.txt` file and each underlying table as a `.csv`.
//!
//! Observability hooks: `HFS_METRICS=1` attaches a metrics report to
//! every run in the artifacts and writes `harness_metrics.json`;
//! `HFS_TRACE_DIR=<dir>` additionally exports a Chrome trace per
//! executed job; `--trace <path>` / `HFS_TRACE=<path>` records a
//! Perfetto-loadable trace of one demo design point. A figure that
//! fails (watchdog timeout, deadlock) is reported and skipped; the run
//! continues, exits nonzero, and an immediate re-run resumes from the
//! cache.

use std::fs;
use std::path::PathBuf;

use hfs_bench::experiments as ex;
use hfs_bench::runner::{engine, protocol_suffixed};
use hfs_bench::table::TextTable;

struct Sink {
    dir: Option<PathBuf>,
}

impl Sink {
    fn new() -> Self {
        let dir = std::env::var_os("HFS_OUT_DIR").map(PathBuf::from);
        if let Some(d) = &dir {
            fs::create_dir_all(d).expect("create HFS_OUT_DIR");
        }
        Sink { dir }
    }

    fn text(&self, name: &str, body: &str) {
        print!("{body}");
        println!();
        if let Some(d) = &self.dir {
            // Non-MSI sweeps write `<name>__<protocol>.txt`, keeping the
            // committed MSI goldens untouched.
            let name = protocol_suffixed(name);
            fs::write(d.join(format!("{name}.txt")), body).expect("write artifact");
        }
    }

    fn csv(&self, name: &str, table: &TextTable) {
        if let Some(d) = &self.dir {
            let name = protocol_suffixed(name);
            fs::write(d.join(format!("{name}.csv")), table.to_csv()).expect("write csv");
        }
    }
}

/// Runs one figure, converting a panic (failed batch, model bug) into a
/// reported failure instead of aborting the whole regeneration.
fn figure(name: &str, failed: &mut Vec<String>, f: impl FnOnce() + std::panic::UnwindSafe) {
    if std::panic::catch_unwind(f).is_err() {
        // The panic payload was already printed by the default hook.
        hfs_obs::error("bench", "figure_failed", &[("figure", name.into())]);
        failed.push(name.to_string());
    }
}

fn main() {
    let sink = Sink::new();
    let mut failed = Vec::new();

    figure("table1", &mut failed, || {
        let t1 = ex::table1::run();
        sink.csv("table1", &t1);
        sink.text("table1", &t1.render());
    });

    figure("table2", &mut failed, || {
        sink.text("table2", &ex::table2::run());
    });

    figure("fig3", &mut failed, || {
        sink.text("fig3", &ex::fig3::run().render());
    });

    figure("fig6", &mut failed, || {
        let f6 = ex::fig6::run();
        sink.csv("fig6", &f6.table());
        sink.text("fig6", &f6.render());
    });

    figure("fig7", &mut failed, || {
        let f7 = ex::fig7::run();
        sink.csv("fig7_producer", &f7.producer_table("Figure 7"));
        sink.csv("fig7_consumer", &f7.consumer_table("Figure 7"));
        sink.text("fig7", &f7.render("Figure 7: design points, baseline bus"));
    });

    figure("fig8", &mut failed, || {
        let f8 = ex::fig8::run();
        sink.csv("fig8", &f8.table());
        sink.text("fig8", &f8.render());
    });

    figure("fig9", &mut failed, || {
        let f9 = ex::fig9::run();
        sink.csv("fig9", &f9.table());
        sink.text("fig9", &f9.render());
    });

    figure("fig10", &mut failed, || {
        let f10 = ex::fig10::run();
        sink.csv("fig10_producer", &f10.producer_table("Figure 10"));
        sink.csv("fig10_consumer", &f10.consumer_table("Figure 10"));
        sink.text("fig10", &f10.render("Figure 10: 4-cycle bus"));
    });

    figure("fig11", &mut failed, || {
        let f11 = ex::fig11::run();
        sink.csv("fig11_producer", &f11.producer_table("Figure 11"));
        sink.csv("fig11_consumer", &f11.consumer_table("Figure 11"));
        sink.text("fig11", &f11.render("Figure 11: 4-cycle, 128-byte bus"));
    });

    figure("fig12", &mut failed, || {
        let f12 = ex::fig12::run();
        sink.csv("fig12_producer", &f12.producer_table());
        sink.csv("fig12_consumer", &f12.consumer_table());
        sink.text("fig12", &f12.render());
    });

    figure("ablation", &mut failed, || {
        sink.text("ablation", &ex::ablation::run_all());
    });

    figure("scaling", &mut failed, || {
        sink.text("scaling", &ex::scaling::run());
    });

    // The multi-line cache/pool summary is a human report, not a log
    // line; it still honors the logger's level so `HFS_LOG=warn`
    // silences routine chatter.
    if hfs_obs::logger().enabled(hfs_obs::Level::Info) {
        eprintln!("{}", engine().summary());
    }
    if engine().metrics_enabled() {
        if let Some(dir) = engine().results_dir() {
            fs::create_dir_all(dir).expect("create results dir");
            let json = hfs_harness::metrics_to_json(&engine().metrics_report()).to_pretty();
            let path = dir.join("harness_metrics.json");
            fs::write(&path, json).expect("write harness metrics");
            hfs_obs::info(
                "bench",
                "metrics_written",
                &[("path", path.display().to_string().into())],
            );
        }
    }
    if let Some(p) = hfs_bench::runner::maybe_write_demo_trace() {
        hfs_obs::info(
            "bench",
            "trace_written",
            &[("path", p.display().to_string().into())],
        );
    }
    if !failed.is_empty() {
        hfs_obs::error(
            "bench",
            "figures_failed",
            &[
                ("count", failed.len().into()),
                ("figures", failed.join(",").into()),
            ],
        );
        std::process::exit(1);
    }
}

//! CI smoke test for the tracing subsystem.
//!
//! Checks three properties, exiting nonzero (panicking) on any failure:
//!
//! 1. **Disabled-path golden cycles** — with tracing off, a fixed set of
//!    design points reproduces known cycle counts exactly, so the
//!    observability layer cannot have perturbed the simulation.
//! 2. **Trace validity** — the demo Chrome trace parses as JSON, and
//!    every declared track (thread-name metadata record) carries at
//!    least one event.
//! 3. **Traced == untraced** — the traced demo run reports the same
//!    cycle count as its golden untraced counterpart, and its metrics
//!    report includes consume-to-use percentiles.

use std::collections::BTreeSet;

use hfs_bench::runner::{demo_trace, run_design};
use hfs_core::DesignPoint;
use hfs_harness::Json;
use hfs_workloads::benchmark;

/// Cycle counts captured before the tracing subsystem existed
/// (benchmarks at 300 iterations on the baseline machine).
const GOLDEN: &[(&str, &str, u64)] = &[
    ("existing", "fir", 5433),
    ("existing", "mcf", 28349),
    ("syncopti_sc_q64", "fir", 4059),
    ("syncopti_sc_q64", "mcf", 14400),
    ("heavywt", "fir", 3590),
    ("heavywt", "mcf", 14010),
];

fn design(name: &str) -> DesignPoint {
    match name {
        "existing" => DesignPoint::existing(),
        "syncopti_sc_q64" => DesignPoint::syncopti_sc_q64(),
        "heavywt" => DesignPoint::heavywt(),
        other => panic!("unknown golden design `{other}`"),
    }
}

fn main() {
    for &(d, bench, expect) in GOLDEN {
        let b = benchmark(bench).unwrap().with_iterations(300);
        let r = run_design(&b, design(d));
        assert_eq!(
            r.cycles, expect,
            "{bench}/{}: disabled-path cycle count drifted",
            r.design
        );
        println!(
            "trace_smoke: {bench}/{} = {} cycles (golden)",
            r.design, r.cycles
        );
    }

    let (json, result) = demo_trace();
    assert_eq!(
        result.cycles, 3590,
        "traced demo run must match the untraced golden cycle count"
    );
    let metrics = result.metrics.as_ref().expect("traced run carries metrics");
    let c2u = metrics
        .get_histogram("consume_to_use_cycles")
        .expect("metrics include the consume-to-use histogram");
    assert!(c2u.count > 0, "consume-to-use histogram has samples");
    println!(
        "trace_smoke: consume_to_use n={} p50={} p99={}",
        c2u.count, c2u.p50, c2u.p99
    );

    let doc = hfs_harness::parse(&json).expect("demo trace is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("trace has a traceEvents array");
    assert!(!events.is_empty(), "trace has events");
    let mut tracks = BTreeSet::new();
    let mut populated = BTreeSet::new();
    for e in events {
        let tid = e.get("tid").and_then(Json::as_u64).expect("event tid");
        if e.get("ph").and_then(Json::as_str) == Some("M") {
            tracks.insert(tid);
        } else {
            populated.insert(tid);
        }
    }
    assert!(!tracks.is_empty(), "trace declares named tracks");
    for t in &tracks {
        assert!(populated.contains(t), "track tid={t} has no events");
    }
    println!(
        "trace_smoke: {} events across {} tracks; all checks passed",
        events.len(),
        tracks.len()
    );
}

//! Regenerates Figure 9 (speedup over single-threaded).
fn main() {
    print!("{}", hfs_bench::experiments::fig9::run().render());
}

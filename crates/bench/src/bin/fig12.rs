//! Regenerates Figure 12 (SYNCOPTI optimizations).
fn main() {
    print!("{}", hfs_bench::experiments::fig12::run().render());
}

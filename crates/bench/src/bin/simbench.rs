//! Wall-clock benchmark of the simulation hot loop.
//!
//! Runs a fixed set of (benchmark × design point) configurations through
//! [`hfs_harness::execute_once`] (no engine, no cache — every simulated
//! cycle is paid for) and reports **simulated cycles per wall-clock
//! second** for each, measured with `std::time::Instant`. Each point is
//! timed twice: once with the scheduled loop enabled (the event-driven
//! calendar-queue scheduler by default; the polling fast-forward loop
//! under `HFS_SCHED=poll`) and once pinned to plain per-cycle stepping
//! via the `HFS_NO_FASTFWD` escape hatch, so the headline speedup of
//! the scheduled loop is recorded alongside the absolute rate. Every
//! point is tagged with the `sched` mode that produced its fast sample,
//! and the artifact's top-level `geomean_speedup` summarizes the whole
//! set (schema `simbench-v2`). A `host` block records `nproc`, the
//! scheduler mode, and an iso-8601 timestamp (overridable via
//! `HFS_BENCH_TIMESTAMP` so CI drivers can pin it); `--check` matches
//! baseline rows by point keys only and ignores it.
//!
//! The full run writes `BENCH_simloop.json` at the current directory
//! (the repo root under `scripts/ci.sh`), recording the perf trajectory
//! of the loop over time. `--quick` runs a reduced point set and writes
//! to `target/BENCH_simloop_quick.json` instead (so the committed
//! artifact stays clean). The full set includes the quick points, so
//! quick runs always have committed rows to compare against.
//!
//! `--check` turns the comparison into a gate: any point more than 10%
//! slower than its committed `BENCH_simloop.json` row (matched by
//! bench, design, *and* iteration count) is re-measured once with a 4×
//! longer window to damp scheduler noise, and the run exits non-zero if
//! the regression persists. Without `--check`, deltas are printed
//! informationally.

use std::time::Instant;

use hfs_bench::perfbench::{
    bench_timestamp, load_committed_points, round2, write_artifact, CHECK_FLOOR,
};
use hfs_core::{DesignPoint, MachineConfig};
use hfs_harness::{execute_once, Job, Json};
use hfs_sim::stats::geomean;
use hfs_workloads::benchmark;

/// Environment variable that disables the fast-forward loop.
const ENV_NO_FASTFWD: &str = "HFS_NO_FASTFWD";

/// Environment variable selecting the run loop (`poll` pins the polling
/// loop; anything else is the event-driven scheduler).
const ENV_SCHED: &str = "HFS_SCHED";

/// The scheduler-mode label tagged onto every measured point: which run
/// loop produced the fast (`cycles_per_sec`) sample. The slow sample is
/// always plain per-cycle stepping (`HFS_NO_FASTFWD=1`).
fn sched_label() -> &'static str {
    match std::env::var(ENV_SCHED) {
        Ok(v) if v.eq_ignore_ascii_case("poll") => "poll",
        _ => "event",
    }
}

/// One benchmark × design configuration to time.
struct Point {
    bench: &'static str,
    design: DesignPoint,
    iterations: u64,
}

/// Result of timing one configuration in one loop mode.
struct Sample {
    sim_cycles: u64,
    runs: u64,
    wall_secs: f64,
}

impl Sample {
    fn cycles_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.sim_cycles as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// The full measurement set: the three golden designs on both a tight
/// FP kernel (`fir`) and a memory-bound loop (`mcf`), iteration counts
/// chosen so each point simulates a few hundred thousand cycles per
/// run — plus the `--quick` points, so the committed artifact always
/// carries baseline rows for the CI quick gate.
fn full_points() -> Vec<Point> {
    let mut points = vec![
        point("fir", DesignPoint::existing(), 20_000),
        point("fir", DesignPoint::syncopti_sc_q64(), 20_000),
        point("fir", DesignPoint::heavywt(), 20_000),
        point("mcf", DesignPoint::existing(), 5_000),
        point("mcf", DesignPoint::syncopti_sc_q64(), 5_000),
        point("mcf", DesignPoint::heavywt(), 5_000),
    ];
    points.extend(quick_points());
    points
}

/// The `--quick` set: one streaming point per backend family, small
/// iteration counts, for CI smoke use.
fn quick_points() -> Vec<Point> {
    vec![
        point("fir", DesignPoint::syncopti_sc_q64(), 2_000),
        point("fir", DesignPoint::heavywt(), 2_000),
    ]
}

fn point(bench: &'static str, design: DesignPoint, iterations: u64) -> Point {
    Point {
        bench,
        design,
        iterations,
    }
}

/// Runs `p` repeatedly until at least `min_secs` of wall time has
/// accumulated, returning total simulated cycles and elapsed time.
fn time_point(p: &Point, min_secs: f64) -> Sample {
    let b = benchmark(p.bench)
        .unwrap_or_else(|| panic!("unknown benchmark `{}`", p.bench))
        .with_iterations(p.iterations);
    let cfg = MachineConfig::itanium2_cmp(p.design);
    let job = Job::pipeline(
        format!("simbench/{}/{}", p.bench, p.design),
        b.pair,
        cfg.clone(),
    );
    // Warm-up run: page in code, prime allocator arenas.
    let warm = execute_once(&job).unwrap_or_else(|e| panic!("{}: {e}", job.label));
    let mut sim_cycles = 0u64;
    let mut runs = 0u64;
    let start = Instant::now();
    loop {
        let r = execute_once(&job).unwrap_or_else(|e| panic!("{}: {e}", job.label));
        assert_eq!(r.cycles, warm.cycles, "{}: nondeterministic run", job.label);
        sim_cycles += r.cycles;
        runs += 1;
        if start.elapsed().as_secs_f64() >= min_secs {
            break;
        }
    }
    Sample {
        sim_cycles,
        runs,
        wall_secs: start.elapsed().as_secs_f64(),
    }
}

/// Measurement windows per mode; the fastest per mode is kept for the
/// absolute rates. Scheduler interference only ever *slows* a window
/// down, so the max-rate window is the least-contaminated estimate of
/// the true throughput.
const BEST_OF: usize = 5;

fn keep_best(best: &mut Option<Sample>, s: Sample) {
    if best
        .as_ref()
        .is_none_or(|b| s.cycles_per_sec() > b.cycles_per_sec())
    {
        *best = Some(s);
    }
}

/// One configuration measured in both loop modes. `speedup` is the
/// paired-ratio estimate, not `ff`/`no_ff` of the best windows: the two
/// maxima are contaminated independently, so their ratio carries twice
/// the noise of a back-to-back pair.
struct Measurement {
    ff: Sample,
    no_ff: Sample,
    speedup: f64,
}

/// Times one window of `p` in the given loop mode.
fn time_mode(p: &Point, min_secs: f64, fastfwd: bool) -> Sample {
    if fastfwd {
        std::env::remove_var(ENV_NO_FASTFWD);
    } else {
        std::env::set_var(ENV_NO_FASTFWD, "1");
    }
    let s = time_point(p, min_secs);
    std::env::remove_var(ENV_NO_FASTFWD);
    s
}

/// Times `p` with the fast-forward loop on and off: [`BEST_OF`] window
/// *pairs*, each pair run back-to-back with the mode order alternating.
/// Adjacent windows share the interference environment, so slow drift
/// (CPU frequency ramps, noisy neighbors) cancels inside each pair's
/// ratio, and alternating the order cancels what linear drift remains.
/// The reported speedup is the *median* pair ratio — robust to a
/// contaminated pair in a way the ratio of two independent best-of
/// maxima is not. Absolute rates still report each mode's best window.
fn measure(p: &Point, min_secs: f64) -> Measurement {
    let mut ff: Option<Sample> = None;
    let mut no_ff: Option<Sample> = None;
    let mut ratios: Vec<f64> = Vec::with_capacity(BEST_OF);
    for i in 0..BEST_OF {
        let (f, n) = if i % 2 == 0 {
            let f = time_mode(p, min_secs, true);
            let n = time_mode(p, min_secs, false);
            (f, n)
        } else {
            let n = time_mode(p, min_secs, false);
            let f = time_mode(p, min_secs, true);
            (f, n)
        };
        if n.cycles_per_sec() > 0.0 {
            ratios.push(f.cycles_per_sec() / n.cycles_per_sec());
        }
        keep_best(&mut ff, f);
        keep_best(&mut no_ff, n);
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
    let speedup = if ratios.is_empty() {
        0.0
    } else {
        ratios[ratios.len() / 2]
    };
    Measurement {
        ff: ff.unwrap(),
        no_ff: no_ff.unwrap(),
        speedup,
    }
}

fn point_json(p: &Point, m: &Measurement) -> Json {
    let (ff, no_ff) = (&m.ff, &m.no_ff);
    Json::obj(vec![
        ("bench", Json::Str(p.bench.to_string())),
        ("design", Json::Str(p.design.to_string())),
        ("iterations", Json::U64(p.iterations)),
        ("runs", Json::U64(ff.runs)),
        ("sim_cycles", Json::U64(ff.sim_cycles)),
        ("wall_secs", Json::F64(ff.wall_secs)),
        ("cycles_per_sec", Json::F64(ff.cycles_per_sec().round())),
        (
            "cycles_per_sec_no_fastfwd",
            Json::F64(no_ff.cycles_per_sec().round()),
        ),
        ("fastfwd_speedup", Json::F64(round2(m.speedup))),
        ("sched", Json::Str(sched_label().to_string())),
    ])
}

/// Geometric mean of the per-point speedups (the artifact's headline
/// number: how much faster the scheduled loop is than per-cycle
/// stepping across the whole point set).
fn geomean_speedup(rows: &[Json]) -> f64 {
    let speedups: Vec<f64> = rows
        .iter()
        .filter_map(|r| r.get("fastfwd_speedup").and_then(Json::as_f64))
        .filter(|&s| s > 0.0)
        .collect();
    if speedups.is_empty() {
        0.0
    } else {
        geomean(speedups)
    }
}

/// Finds the committed row matching a current point — by bench, design,
/// *and* iteration count, since cycles/sec varies with run length.
fn baseline_for<'a>(committed: &'a [Json], p: &Json) -> Option<&'a Json> {
    committed.iter().find(|c| {
        (c.get("bench"), c.get("design"), c.get("iterations"))
            == (p.get("bench"), p.get("design"), p.get("iterations"))
    })
}

/// Reads the committed artifact and prints per-point deltas against the
/// current measurements (informational only).
fn print_delta(current: &Json, committed_path: &str) {
    let Some(committed) = load_committed_points(committed_path) else {
        println!("simbench: no committed {committed_path}; skipping delta");
        return;
    };
    let points = current.get("points").and_then(Json::as_arr).unwrap_or(&[]);
    for p in points {
        let Some(base) = baseline_for(&committed, p) else {
            continue;
        };
        let cur = rate(p);
        let old = rate(base);
        if old > 0.0 {
            println!(
                "simbench: {}/{}: {:.2}x vs committed baseline ({:.0} vs {:.0} cyc/s; informational)",
                p.get("bench").and_then(Json::as_str).unwrap_or("?"),
                p.get("design").and_then(Json::as_str).unwrap_or("?"),
                cur / old,
                cur,
                old,
            );
        }
    }
}

/// Gates the current measurements against the committed baseline.
/// A point slower than [`CHECK_FLOOR`]× its committed rate is
/// re-measured once with a 4× window (damping transient scheduler
/// noise), updating its row in `rows`; persistent regressions are
/// returned as failure messages.
fn run_check(
    points: &[Point],
    rows: &mut [Json],
    min_secs: f64,
    committed_path: &str,
) -> Vec<String> {
    let Some(committed) = load_committed_points(committed_path) else {
        println!("simbench: no committed {committed_path}; nothing to check against");
        return Vec::new();
    };
    let mut failures = Vec::new();
    for (p, row) in points.iter().zip(rows.iter_mut()) {
        let Some(base) = baseline_for(&committed, row) else {
            println!(
                "simbench: {}/{} iters={} has no committed baseline; skipping",
                p.bench, p.design, p.iterations
            );
            continue;
        };
        let old = rate(base);
        if old <= 0.0 {
            continue;
        }
        let mut cur = rate(row);
        if cur < CHECK_FLOOR * old {
            println!(
                "simbench: {}/{}: {:.0} cyc/s is below {:.0}% of committed {:.0}; re-measuring",
                p.bench,
                p.design,
                cur,
                CHECK_FLOOR * 100.0,
                old,
            );
            let m = measure(p, min_secs * 4.0);
            *row = point_json(p, &m);
            cur = rate(row);
        }
        if cur < CHECK_FLOOR * old {
            failures.push(format!(
                "{}/{} iters={}: {:.0} cyc/s vs committed {:.0} ({:.2}x, floor {:.2}x)",
                p.bench,
                p.design,
                p.iterations,
                cur,
                old,
                cur / old,
                CHECK_FLOOR,
            ));
        } else {
            println!(
                "simbench: {}/{}: {:.2}x vs committed baseline — ok",
                p.bench,
                p.design,
                cur / old,
            );
        }
    }
    // The committed side of the key match: baseline rows no current
    // point covers (e.g. a point set change) are surfaced rather than
    // silently ignored.
    for c in &committed {
        if baseline_for(rows, c).is_none() {
            println!(
                "simbench: committed {}/{} iters={} matched no current point (unchecked)",
                c.get("bench").and_then(Json::as_str).unwrap_or("?"),
                c.get("design").and_then(Json::as_str).unwrap_or("?"),
                c.get("iterations").and_then(Json::as_u64).unwrap_or(0),
            );
        }
    }
    failures
}

/// Host metadata recorded alongside the measurements: worker-thread
/// capacity, the scheduler mode, and when the run happened. Purely
/// descriptive — `--check` matches baseline rows by the `points` keys
/// only, so this block never affects the regression gate.
fn host_json() -> Json {
    let nproc = std::thread::available_parallelism().map_or(0, |n| n.get() as u64);
    let timestamp = bench_timestamp();
    Json::obj(vec![
        ("nproc", Json::U64(nproc)),
        ("sched", Json::Str(sched_label().to_string())),
        ("timestamp", Json::Str(timestamp)),
    ])
}

fn rate(p: &Json) -> f64 {
    match p.get("cycles_per_sec") {
        Some(Json::F64(v)) => *v,
        Some(Json::U64(v)) => *v as f64,
        _ => 0.0,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let check = std::env::args().any(|a| a == "--check");
    let (points, min_secs, out_path) = if quick {
        (quick_points(), 1.0, "target/BENCH_simloop_quick.json")
    } else {
        // Two-second windows: at half a second, turbo/thermal drift
        // within a pair still swings ratios by ±10%, which is larger
        // than the effect being measured.
        (full_points(), 2.0, "BENCH_simloop.json")
    };

    let mut rows = Vec::new();
    for p in &points {
        let m = measure(p, min_secs);
        println!(
            "simbench: {}/{} iters={} — {:.0} cyc/s fastfwd, {:.0} cyc/s no-fastfwd ({:.2}x), {} runs",
            p.bench,
            p.design,
            p.iterations,
            m.ff.cycles_per_sec(),
            m.no_ff.cycles_per_sec(),
            m.speedup,
            m.ff.runs,
        );
        rows.push(point_json(p, &m));
    }

    let failures = if check {
        run_check(&points, &mut rows, min_secs, "BENCH_simloop.json")
    } else {
        Vec::new()
    };

    let gm = geomean_speedup(&rows);
    println!(
        "simbench: geomean speedup {:.2}x over per-cycle stepping ({} loop, {} points)",
        gm,
        sched_label(),
        rows.len(),
    );
    let doc = Json::obj(vec![
        ("schema", Json::Str("simbench-v2".to_string())),
        (
            "mode",
            Json::Str(if quick { "quick" } else { "full" }.to_string()),
        ),
        ("geomean_speedup", Json::F64(round2(gm))),
        ("host", host_json()),
        ("points", Json::Arr(rows)),
    ]);
    write_artifact(out_path, &doc);
    println!("simbench: wrote {out_path}");

    if quick && !check {
        print_delta(&doc, "BENCH_simloop.json");
    }
    if !failures.is_empty() {
        eprintln!(
            "simbench: {} point(s) regressed more than {:.0}% vs the committed baseline:",
            failures.len(),
            (1.0 - CHECK_FLOOR) * 100.0,
        );
        for f in &failures {
            eprintln!("simbench:   {f}");
        }
        std::process::exit(1);
    }
}

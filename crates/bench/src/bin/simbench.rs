//! Wall-clock benchmark of the simulation hot loop.
//!
//! Runs a fixed set of (benchmark × design point) configurations through
//! [`hfs_harness::execute_once`] (no engine, no cache — every simulated
//! cycle is paid for) and reports **simulated cycles per wall-clock
//! second** for each, measured with `std::time::Instant`. Each point is
//! timed twice: once with the idle-cycle fast-forward enabled (the
//! default) and once with it disabled via the `HFS_NO_FASTFWD` escape
//! hatch, so the headline speedup of the event-driven loop is recorded
//! alongside the absolute rate.
//!
//! The full run writes `BENCH_simloop.json` at the current directory
//! (the repo root under `scripts/ci.sh`), recording the perf trajectory
//! of the loop over time. `--quick` runs a reduced point set, writes to
//! `target/BENCH_simloop_quick.json` instead (so the committed artifact
//! stays clean), and prints an informational cycles/sec delta against
//! the committed `BENCH_simloop.json` when one is present — container
//! performance varies, so the delta is advisory, never a gate.

use std::time::Instant;

use hfs_core::{DesignPoint, MachineConfig};
use hfs_harness::{execute_once, Job, Json};
use hfs_workloads::benchmark;

/// Environment variable that disables the fast-forward loop.
const ENV_NO_FASTFWD: &str = "HFS_NO_FASTFWD";

/// One benchmark × design configuration to time.
struct Point {
    bench: &'static str,
    design: DesignPoint,
    iterations: u64,
}

/// Result of timing one configuration in one loop mode.
struct Sample {
    sim_cycles: u64,
    runs: u64,
    wall_secs: f64,
}

impl Sample {
    fn cycles_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.sim_cycles as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// The full measurement set: the three golden designs on both a tight
/// FP kernel (`fir`) and a memory-bound loop (`mcf`), iteration counts
/// chosen so each point simulates a few hundred thousand cycles per run.
fn full_points() -> Vec<Point> {
    vec![
        point("fir", DesignPoint::existing(), 20_000),
        point("fir", DesignPoint::syncopti_sc_q64(), 20_000),
        point("fir", DesignPoint::heavywt(), 20_000),
        point("mcf", DesignPoint::existing(), 5_000),
        point("mcf", DesignPoint::syncopti_sc_q64(), 5_000),
        point("mcf", DesignPoint::heavywt(), 5_000),
    ]
}

/// The `--quick` set: one streaming point per backend family, small
/// iteration counts, for CI smoke use.
fn quick_points() -> Vec<Point> {
    vec![
        point("fir", DesignPoint::syncopti_sc_q64(), 2_000),
        point("fir", DesignPoint::heavywt(), 2_000),
    ]
}

fn point(bench: &'static str, design: DesignPoint, iterations: u64) -> Point {
    Point {
        bench,
        design,
        iterations,
    }
}

/// Runs `p` repeatedly until at least `min_secs` of wall time has
/// accumulated, returning total simulated cycles and elapsed time.
fn time_point(p: &Point, min_secs: f64) -> Sample {
    let b = benchmark(p.bench)
        .unwrap_or_else(|| panic!("unknown benchmark `{}`", p.bench))
        .with_iterations(p.iterations);
    let cfg = MachineConfig::itanium2_cmp(p.design);
    let job = Job::pipeline(
        format!("simbench/{}/{}", p.bench, p.design),
        b.pair,
        cfg.clone(),
    );
    // Warm-up run: page in code, prime allocator arenas.
    let warm = execute_once(&job).unwrap_or_else(|e| panic!("{}: {e}", job.label));
    let mut sim_cycles = 0u64;
    let mut runs = 0u64;
    let start = Instant::now();
    loop {
        let r = execute_once(&job).unwrap_or_else(|e| panic!("{}: {e}", job.label));
        assert_eq!(r.cycles, warm.cycles, "{}: nondeterministic run", job.label);
        sim_cycles += r.cycles;
        runs += 1;
        if start.elapsed().as_secs_f64() >= min_secs {
            break;
        }
    }
    Sample {
        sim_cycles,
        runs,
        wall_secs: start.elapsed().as_secs_f64(),
    }
}

/// Times `p` with the fast-forward loop on and off.
fn measure(p: &Point, min_secs: f64) -> (Sample, Sample) {
    std::env::remove_var(ENV_NO_FASTFWD);
    let ff = time_point(p, min_secs);
    std::env::set_var(ENV_NO_FASTFWD, "1");
    let no_ff = time_point(p, min_secs);
    std::env::remove_var(ENV_NO_FASTFWD);
    (ff, no_ff)
}

fn point_json(p: &Point, ff: &Sample, no_ff: &Sample) -> Json {
    let speedup = if no_ff.cycles_per_sec() > 0.0 {
        ff.cycles_per_sec() / no_ff.cycles_per_sec()
    } else {
        0.0
    };
    Json::obj(vec![
        ("bench", Json::Str(p.bench.to_string())),
        ("design", Json::Str(p.design.to_string())),
        ("iterations", Json::U64(p.iterations)),
        ("runs", Json::U64(ff.runs)),
        ("sim_cycles", Json::U64(ff.sim_cycles)),
        ("wall_secs", Json::F64(ff.wall_secs)),
        ("cycles_per_sec", Json::F64(ff.cycles_per_sec().round())),
        (
            "cycles_per_sec_no_fastfwd",
            Json::F64(no_ff.cycles_per_sec().round()),
        ),
        ("fastfwd_speedup", Json::F64(round2(speedup))),
    ])
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

/// Reads the committed artifact and prints per-point deltas against the
/// current measurements (informational only).
fn print_delta(current: &Json, committed_path: &str) {
    let Ok(text) = std::fs::read_to_string(committed_path) else {
        println!("simbench: no committed {committed_path}; skipping delta");
        return;
    };
    let Ok(doc) = hfs_harness::parse(&text) else {
        println!("simbench: committed {committed_path} is not valid JSON");
        return;
    };
    let committed = doc.get("points").and_then(Json::as_arr).unwrap_or(&[]);
    let points = current.get("points").and_then(Json::as_arr).unwrap_or(&[]);
    for p in points {
        let (bench, design) = (p.get("bench"), p.get("design"));
        let Some(base) = committed
            .iter()
            .find(|c| (c.get("bench"), c.get("design")) == (bench, design))
        else {
            continue;
        };
        let cur = rate(p);
        let old = rate(base);
        if old > 0.0 {
            println!(
                "simbench: {}/{}: {:.2}x vs committed baseline ({:.0} vs {:.0} cyc/s; informational)",
                p.get("bench").and_then(Json::as_str).unwrap_or("?"),
                p.get("design").and_then(Json::as_str).unwrap_or("?"),
                cur / old,
                cur,
                old,
            );
        }
    }
}

fn rate(p: &Json) -> f64 {
    match p.get("cycles_per_sec") {
        Some(Json::F64(v)) => *v,
        Some(Json::U64(v)) => *v as f64,
        _ => 0.0,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (points, min_secs, out_path) = if quick {
        (quick_points(), 0.05, "target/BENCH_simloop_quick.json")
    } else {
        (full_points(), 0.5, "BENCH_simloop.json")
    };

    let mut rows = Vec::new();
    for p in &points {
        let (ff, no_ff) = measure(p, min_secs);
        println!(
            "simbench: {}/{} iters={} — {:.0} cyc/s fastfwd, {:.0} cyc/s no-fastfwd ({:.2}x), {} runs",
            p.bench,
            p.design,
            p.iterations,
            ff.cycles_per_sec(),
            no_ff.cycles_per_sec(),
            if no_ff.cycles_per_sec() > 0.0 {
                ff.cycles_per_sec() / no_ff.cycles_per_sec()
            } else {
                0.0
            },
            ff.runs,
        );
        rows.push(point_json(p, &ff, &no_ff));
    }

    let doc = Json::obj(vec![
        ("schema", Json::Str("simbench-v1".to_string())),
        (
            "mode",
            Json::Str(if quick { "quick" } else { "full" }.to_string()),
        ),
        ("points", Json::Arr(rows)),
    ]);
    let text = doc.to_pretty();
    // Self-check: the artifact must round-trip through the harness parser.
    hfs_harness::parse(&text).expect("simbench artifact is well-formed JSON");

    if let Some(parent) = std::path::Path::new(out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    std::fs::write(out_path, &text).expect("write benchmark artifact");
    println!("simbench: wrote {out_path}");

    if quick {
        print_delta(&doc, "BENCH_simloop.json");
    }
}

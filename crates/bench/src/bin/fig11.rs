//! Regenerates Figure 11 (4-cycle, 128-byte bus).
fn main() {
    print!(
        "{}",
        hfs_bench::experiments::fig11::run().render("Figure 11: 4-cycle, 128-byte bus")
    );
}

//! Prints the §6 storage/OS-cost comparison across the design space.
use hfs_bench::table::TextTable;
use hfs_core::storage::{sc_q64_storage_fraction, storage_cost};
use hfs_core::DesignPoint;

fn main() {
    let mut t = TextTable::new(
        "Dedicated storage and OS context cost per design point",
        &[
            "design",
            "added storage (B)",
            "OS context (B)",
            "new interconnect",
        ],
    );
    for d in [
        DesignPoint::existing(),
        DesignPoint::memopti(),
        DesignPoint::syncopti(),
        DesignPoint::syncopti_sc_q64(),
        DesignPoint::heavywt(),
        DesignPoint::regmapped(0),
    ] {
        let c = storage_cost(&d);
        t.row(vec![
            d.label(),
            c.added_storage_bytes.to_string(),
            c.os_context_bytes.to_string(),
            if c.needs_new_interconnect {
                "yes"
            } else {
                "no"
            }
            .to_string(),
        ]);
    }
    print!("{}", t.render());
    println!(
        "SC+Q64 uses {:.1}% of HEAVYWT's added storage (paper: ~1%)",
        sc_q64_storage_fraction() * 100.0
    );
}

//! Regenerates Figure 10 (4-cycle bus).
fn main() {
    print!(
        "{}",
        hfs_bench::experiments::fig10::run().render("Figure 10: 4-cycle bus")
    );
}

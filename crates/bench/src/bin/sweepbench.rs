//! Wall-clock benchmark of sweep-scale submission throughput through
//! `hfs-serve`.
//!
//! Drives a synthetic design-space sweep — thousands of distinct-key,
//! constant-cost jobs (the key varies via the cycle budget, which never
//! binds, so every job simulates identical work) — through an
//! in-process server on a real Unix socket, and measures **jobs per
//! wall-clock second** end to end: framing, admission, dispatch,
//! caching, and result delivery all included.
//!
//! Each run measures a 2×2 matrix (schema `sweepbench-v1`):
//!
//! - **path** `baseline`: the legacy conversation — one `submit` frame
//!   carrying the whole sweep, one `job` frame back per job — against a
//!   server with the in-memory hot cache disabled (disk cache only);
//! - **path** `batched`: the pipelined path — chunked `submit_batch`
//!   frames (`HFS_SUBMIT_CHUNK`/`HFS_SUBMIT_WINDOW`), chunked
//!   `batch_results` frames back — against a server with the hot cache
//!   at its default budget;
//! - **phase** `cold`: a fresh cache directory, every job simulated;
//! - **phase** `warm`: the same sweep resubmitted, every job a cache
//!   hit.
//!
//! The artifact's headline `warm_speedup` is warm-batched over
//! warm-baseline jobs/s — the payoff of the hot cache plus batched
//! framing on a re-entrant sweep; `cold_ratio` (cold-batched over
//! cold-baseline) guards against the batched path taxing first-run
//! sweeps. A `host` block records `nproc` and a timestamp
//! (`HFS_BENCH_TIMESTAMP` pins it; `--check` matches rows by
//! path/phase keys only and ignores it).
//!
//! The full run (10⁴ jobs) writes `BENCH_sweep.json` at the current
//! directory (the repo root under `scripts/ci.sh`); `--quick` sweeps
//! 10³ jobs and writes `target/BENCH_sweep_quick.json` so the committed
//! artifact stays clean. Since jobs/s is a rate, quick rows compare
//! against the committed full rows directly.
//!
//! `--check` gates each row's jobs/s at 90% of its committed
//! counterpart (matched by path and phase); a regressing path is
//! re-measured once from scratch (fresh server, fresh cache) to damp
//! scheduler noise, and the run exits non-zero if the regression
//! persists.

use std::path::PathBuf;
use std::time::Instant;

use hfs_bench::perfbench::{
    bench_timestamp, load_committed_points, round2, write_artifact, CHECK_FLOOR,
};
use hfs_core::kernel::KernelPair;
use hfs_core::{DesignPoint, MachineConfig};
use hfs_harness::{Job, Json};
use hfs_serve::{Client, Endpoint, Server, ServerConfig, Subscribe};

/// Sweep sizes: the committed artifact uses the full sweep; `--quick`
/// trades statistical weight for CI latency.
const FULL_JOBS: usize = 10_000;
const QUICK_JOBS: usize = 1_000;

/// The synthetic sweep: constant-cost jobs with distinct content keys.
/// The cycle budget varies per job — far above what the 40-iteration
/// kernel ever uses, so outcomes are identical while every job keys
/// (and caches) separately, exactly like a real parameter sweep.
fn sweep_jobs(n: usize) -> Vec<Job> {
    (0..n)
        .map(|i| {
            Job::pipeline(
                format!("sweepbench/p{i}"),
                KernelPair::simple("sweep", 2, 40),
                MachineConfig::itanium2_cmp(DesignPoint::heavywt()),
            )
            .with_max_cycles(1_000_000 + i as u64)
        })
        .collect()
}

/// One measured cell of the path × phase matrix.
struct Row {
    path: &'static str,
    phase: &'static str,
    jobs: u64,
    wall_secs: f64,
}

impl Row {
    fn jobs_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.jobs as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("path", Json::Str(self.path.to_string())),
            ("phase", Json::Str(self.phase.to_string())),
            ("jobs", Json::U64(self.jobs)),
            ("wall_secs", Json::F64(self.wall_secs)),
            ("jobs_per_sec", Json::F64(self.jobs_per_sec().round())),
        ])
    }
}

/// Submits the sweep once on the given path and times it end to end.
fn time_sweep(path: &'static str, phase: &'static str, client: &mut Client, n: usize) -> Row {
    let jobs = sweep_jobs(n);
    let start = Instant::now();
    let batch = match path {
        "baseline" => client.submit("sweepbench", jobs, |_| {}),
        _ => client.submit_batched("sweepbench", jobs, Subscribe::Final, |_| {}),
    }
    .unwrap_or_else(|e| panic!("sweepbench {path}/{phase} submit failed: {e}"));
    let wall_secs = start.elapsed().as_secs_f64();
    assert_eq!(batch.records.len(), n, "{path}/{phase}: short batch");
    assert!(batch.all_ok(), "{path}/{phase}: sweep had failing jobs");
    Row {
        path,
        phase,
        jobs: n as u64,
        wall_secs,
    }
}

/// Stands up a fresh server (fresh cache directory — cold by
/// construction), runs the cold then warm sweep on one path, and tears
/// everything down.
fn run_path(path: &'static str, n: usize) -> (Row, Row) {
    let pid = std::process::id();
    let sock = PathBuf::from(format!("target/sweepbench-{pid}-{path}.sock"));
    let cache = PathBuf::from(format!("target/sweepbench-{pid}-{path}-cache"));
    let _ = std::fs::remove_file(&sock);
    let _ = std::fs::remove_dir_all(&cache);
    std::fs::create_dir_all(&cache).expect("create sweepbench cache dir");

    let config = ServerConfig {
        // The legacy path carries the whole sweep in one submission, so
        // admission must clear it; the batched client windows itself
        // and never needs the headroom.
        queue_limit: n + 1,
        cache_dir: Some(cache.clone()),
        // The baseline predates the hot cache: disk-only, so warm hits
        // pay the per-job read+parse the hot layer exists to avoid.
        hot_cache_mb: if path == "baseline" { Some(0) } else { None },
        ..ServerConfig::default()
    };
    let endpoint = Endpoint::Unix(sock.clone());
    let server = Server::bind(&endpoint, &config).expect("bind sweepbench server");
    let handle = std::thread::spawn(move || server.run());

    let mut client = Client::connect(&endpoint).expect("connect to sweepbench server");
    let cold = time_sweep(path, "cold", &mut client, n);
    let warm = time_sweep(path, "warm", &mut client, n);
    client
        .shutdown_server()
        .expect("shut down sweepbench server");
    drop(client);
    handle
        .join()
        .expect("server thread")
        .expect("sweepbench server run");

    let _ = std::fs::remove_dir_all(&cache);
    let _ = std::fs::remove_file(&sock);
    (cold, warm)
}

const PATHS: [&str; 2] = ["baseline", "batched"];

/// Runs the full matrix: rows ordered baseline-cold, baseline-warm,
/// batched-cold, batched-warm.
fn run_matrix(n: usize) -> Vec<Row> {
    let mut rows = Vec::with_capacity(4);
    for path in PATHS {
        let (cold, warm) = run_path(path, n);
        for row in [cold, warm] {
            println!(
                "sweepbench: {}/{}: {} jobs in {:.2}s — {:.0} jobs/s",
                row.path,
                row.phase,
                row.jobs,
                row.wall_secs,
                row.jobs_per_sec(),
            );
            rows.push(row);
        }
    }
    rows
}

fn rate_of(row: &Json) -> f64 {
    match row.get("jobs_per_sec") {
        Some(Json::F64(v)) => *v,
        Some(Json::U64(v)) => *v as f64,
        _ => 0.0,
    }
}

/// Finds the row matching `path`/`phase` (jobs/s is a rate, so sweep
/// size is deliberately not part of the key — quick runs check against
/// the committed full rows).
fn find_row<'a>(rows: &'a [Json], path: &str, phase: &str) -> Option<&'a Json> {
    rows.iter().find(|r| {
        r.get("path").and_then(Json::as_str) == Some(path)
            && r.get("phase").and_then(Json::as_str) == Some(phase)
    })
}

/// The headline ratio between two measured rows' rates.
fn ratio(rows: &[Row], path_num: &str, path_den: &str, phase: &str) -> f64 {
    let num = rows
        .iter()
        .find(|r| r.path == path_num && r.phase == phase)
        .map_or(0.0, Row::jobs_per_sec);
    let den = rows
        .iter()
        .find(|r| r.path == path_den && r.phase == phase)
        .map_or(0.0, Row::jobs_per_sec);
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

/// Gates current rows against the committed artifact. A regressing
/// path is re-measured once from scratch (fresh server and cache)
/// before counting as a failure.
fn run_check(rows: &mut Vec<Row>, n: usize, committed_path: &str) -> Vec<String> {
    let Some(committed) = load_committed_points(committed_path) else {
        println!("sweepbench: no committed {committed_path}; nothing to check against");
        return Vec::new();
    };
    let mut failures = Vec::new();
    for path in PATHS {
        let regressed = rows.iter().any(|row| {
            let Some(base) = find_row(&committed, row.path, row.phase) else {
                return false;
            };
            row.path == path
                && rate_of(base) > 0.0
                && row.jobs_per_sec() < CHECK_FLOOR * rate_of(base)
        });
        if regressed {
            println!("sweepbench: {path} path below floor; re-measuring from scratch");
            let (cold, warm) = run_path(path, n);
            rows.retain(|r| r.path != path);
            rows.extend([cold, warm]);
        }
    }
    for row in rows.iter() {
        let Some(base) = find_row(&committed, row.path, row.phase) else {
            println!(
                "sweepbench: {}/{} has no committed baseline; skipping",
                row.path, row.phase
            );
            continue;
        };
        let old = rate_of(base);
        if old <= 0.0 {
            continue;
        }
        let cur = row.jobs_per_sec();
        if cur < CHECK_FLOOR * old {
            failures.push(format!(
                "{}/{}: {:.0} jobs/s vs committed {:.0} ({:.2}x, floor {:.2}x)",
                row.path,
                row.phase,
                cur,
                old,
                cur / old,
                CHECK_FLOOR,
            ));
        } else {
            println!(
                "sweepbench: {}/{}: {:.2}x vs committed baseline — ok",
                row.path,
                row.phase,
                cur / old,
            );
        }
    }
    failures
}

fn host_json() -> Json {
    let nproc = std::thread::available_parallelism().map_or(0, |n| n.get() as u64);
    Json::obj(vec![
        ("nproc", Json::U64(nproc)),
        ("timestamp", Json::Str(bench_timestamp())),
    ])
}

fn main() {
    // The measurement includes the server's logging path; pin it to
    // errors-only (unless the caller overrides) so jobs/s reflects the
    // protocol, not stderr formatting. Must land before the first log
    // call latches the process logger.
    if std::env::var_os(hfs_obs::ENV_LOG).is_none() {
        std::env::set_var(hfs_obs::ENV_LOG, "error");
    }
    let quick = std::env::args().any(|a| a == "--quick");
    let check = std::env::args().any(|a| a == "--check");
    let (n, out_path) = if quick {
        (QUICK_JOBS, "target/BENCH_sweep_quick.json")
    } else {
        (FULL_JOBS, "BENCH_sweep.json")
    };

    let mut rows = run_matrix(n);
    let failures = if check {
        run_check(&mut rows, n, "BENCH_sweep.json")
    } else {
        Vec::new()
    };

    let warm_speedup = ratio(&rows, "batched", "baseline", "warm");
    let cold_ratio = ratio(&rows, "batched", "baseline", "cold");
    println!(
        "sweepbench: warm batched path is {warm_speedup:.2}x baseline jobs/s \
         (cold ratio {cold_ratio:.2}x, {n} jobs)",
    );

    let doc = Json::obj(vec![
        ("schema", Json::Str("sweepbench-v1".to_string())),
        (
            "mode",
            Json::Str(if quick { "quick" } else { "full" }.to_string()),
        ),
        ("warm_speedup", Json::F64(round2(warm_speedup))),
        ("cold_ratio", Json::F64(round2(cold_ratio))),
        ("host", host_json()),
        ("points", Json::Arr(rows.iter().map(Row::to_json).collect())),
    ]);
    write_artifact(out_path, &doc);
    println!("sweepbench: wrote {out_path}");

    if !failures.is_empty() {
        eprintln!(
            "sweepbench: {} row(s) regressed more than {:.0}% vs the committed baseline:",
            failures.len(),
            (1.0 - CHECK_FLOOR) * 100.0,
        );
        for f in &failures {
            eprintln!("sweepbench:   {f}");
        }
        std::process::exit(1);
    }
}

//! Regenerates Figure 7 (design-point comparison).
fn main() {
    print!(
        "{}",
        hfs_bench::experiments::fig7::run().render("Figure 7: design points, baseline bus")
    );
}

//! One module per reproduced table/figure.

pub mod ablation;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig3;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod scaling;
pub mod table1;
pub mod table2;

use hfs_core::RunResult;
use hfs_cpu::CoreStats;
use hfs_sim::stats::StallComponent;

use crate::table::{f2, TextTable};

/// Builds a Figure 7-style table: per benchmark and design, execution
/// time normalized to the first design, plus the six stall components of
/// the chosen core as fractions of its own total.
pub(crate) fn breakdown_table(
    title: &str,
    designs: &[String],
    rows: &[(String, Vec<RunResult>)],
    consumer_side: bool,
) -> TextTable {
    let mut headers: Vec<String> = vec!["bench".to_string()];
    for d in designs {
        headers.push(format!("{d} (norm)"));
    }
    headers.push("components of last design: PreL2/L2/BUS/L3/MEM/PostL2".to_string());
    let hdr_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = TextTable::new(title, &hdr_refs);
    for (bench, results) in rows {
        let base = results[0].cycles as f64;
        let mut cells = vec![bench.clone()];
        for r in results {
            cells.push(f2(r.cycles as f64 / base));
        }
        let last = results.last().expect("at least one design");
        let stats = side(last, consumer_side);
        let comps: Vec<String> = StallComponent::ALL
            .iter()
            .map(|&c| f2(stats.breakdown.fraction(c)))
            .collect();
        cells.push(comps.join("/"));
        t.row(cells);
    }
    t
}

pub(crate) fn side(r: &RunResult, consumer: bool) -> &CoreStats {
    if consumer {
        r.consumer().unwrap_or_else(|| r.producer())
    } else {
        r.producer()
    }
}

/// Geometric mean over one design column of `rows`, normalized to the
/// first design.
pub(crate) fn column_geomean(rows: &[(String, Vec<RunResult>)], col: usize) -> f64 {
    hfs_sim::stats::geomean(
        rows.iter()
            .map(|(_, rs)| rs[col].cycles as f64 / rs[0].cycles as f64),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfs_cpu::CoreStats;
    use hfs_mem::MemStats;
    use hfs_sim::stats::Breakdown;

    fn fake_result(cycles: u64) -> RunResult {
        let mut b = Breakdown::new();
        b.charge_busy(cycles / 2);
        b.charge(StallComponent::Bus, cycles - cycles / 2);
        let stats = CoreStats {
            cycles,
            breakdown: b,
            ..Default::default()
        };
        RunResult {
            design: "X".into(),
            cycles,
            cores: vec![stats, stats],
            iterations: 10,
            mem: MemStats::default(),
            stream_cache: None,
            metrics: None,
            checked: false,
        }
    }

    #[test]
    fn column_geomean_normalizes_to_first_column() {
        let rows = vec![
            ("a".to_string(), vec![fake_result(100), fake_result(200)]),
            ("b".to_string(), vec![fake_result(50), fake_result(200)]),
        ];
        // Ratios: 2.0 and 4.0 -> geomean sqrt(8) ~= 2.828.
        let g = column_geomean(&rows, 1);
        assert!((g - (8.0f64).sqrt()).abs() < 1e-9);
        assert!((column_geomean(&rows, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn breakdown_table_shapes_rows() {
        let rows = vec![("wc".to_string(), vec![fake_result(100), fake_result(150)])];
        let designs = vec!["HW".to_string(), "SW".to_string()];
        let t = breakdown_table("demo", &designs, &rows, false);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("wc"));
        assert!(s.contains("1.50"), "normalized column present:\n{s}");
        // Six component fractions joined with '/'.
        assert!(s.matches('/').count() >= 5);
    }

    #[test]
    fn side_selects_consumer_when_asked() {
        let mut r = fake_result(10);
        r.cores[1].cycles = 99;
        assert_eq!(side(&r, false).cycles, 10);
        assert_eq!(side(&r, true).cycles, 99);
    }
}

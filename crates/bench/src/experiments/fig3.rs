//! Figure 3: the analytic effect of buffering and COMM-OP delay.

use hfs_core::analytic::{iterations_in, steady_throughput, AnalyticParams};

use crate::table::{f2, TextTable};

/// Figure 3 results.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// Iterations completed in the 150-cycle window for (a), (b), (c).
    pub iterations: [u64; 3],
    /// Steady-state throughput (iterations/cycle) for (a), (b), (c).
    pub throughput: [f64; 3],
}

/// Runs the three Figure 3 scenarios.
pub fn run() -> Fig3 {
    let ps = [
        AnalyticParams::fig3a(),
        AnalyticParams::fig3b(),
        AnalyticParams::fig3c(),
    ];
    Fig3 {
        iterations: [
            iterations_in(ps[0], 150),
            iterations_in(ps[1], 150),
            iterations_in(ps[2], 150),
        ],
        throughput: [
            steady_throughput(ps[0]),
            steady_throughput(ps[1]),
            steady_throughput(ps[2]),
        ],
    }
}

impl Fig3 {
    /// Renders the comparison table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "Figure 3: transit vs COMM-OP delay (analytic model)",
            &[
                "scenario",
                "buffers",
                "COMM-OP",
                "iters in 150cy",
                "steady iters/cycle",
            ],
        );
        let meta = [
            ("(a) single buffer", 1, 20),
            ("(b) queue", 4, 20),
            ("(c) queue, COMM-OP/2", 6, 10),
        ];
        for (i, (name, bufs, comm)) in meta.iter().enumerate() {
            t.row(vec![
                name.to_string(),
                bufs.to_string(),
                comm.to_string(),
                self.iterations[i].to_string(),
                f2(self.throughput[i] * 1000.0) + "e-3",
            ]);
        }
        let mut s = t.render();
        s.push_str(&format!(
            "queue-over-single speedup: {:.2}x; halved COMM-OP speedup: {:.2}x\n",
            self.throughput[1] / self.throughput[0],
            self.throughput[2] / self.throughput[1],
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn reproduces_paper_counts() {
        let f = super::run();
        assert_eq!(f.iterations[1], 7, "Figure 3b: 7 iterations in 150 cycles");
        assert_eq!(
            f.iterations[2], 14,
            "Figure 3c: 14 iterations in 150 cycles"
        );
        assert!(f.throughput[1] > 2.5 * f.throughput[0]);
        assert!(f.throughput[2] > 1.8 * f.throughput[1]);
        assert!(f.render().contains("Figure 3"));
    }
}

//! Figure 8: dynamic communication-to-application instruction ratios.
//!
//! Measured on HEAVYWT runs (the produce/consume ISA), matching the
//! paper's "codes with produce-consume instructions". The headline
//! characterization: one communication every 5–20 application
//! instructions.

use hfs_core::DesignPoint;
use hfs_workloads::all_benchmarks;

use crate::runner::{design_job, run_batch};
use crate::table::{f2, TextTable};

/// One benchmark's measured ratios.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Benchmark name.
    pub bench: String,
    /// Producer-thread comm:app dynamic instruction ratio.
    pub producer: f64,
    /// Consumer-thread comm:app dynamic instruction ratio.
    pub consumer: f64,
}

/// Figure 8 results.
#[derive(Debug, Clone)]
pub struct Fig8 {
    /// Rows in paper order.
    pub rows: Vec<Fig8Row>,
}

/// Measures the ratios under HEAVYWT. These jobs share cache keys with
/// Figure 7's HEAVYWT column, so a combined regeneration simulates each
/// run once.
pub fn run() -> Fig8 {
    let benches = all_benchmarks();
    let jobs = benches
        .iter()
        .map(|b| design_job("fig8", b, DesignPoint::heavywt()))
        .collect();
    let results = run_batch("fig8", jobs).expect_results();
    let rows = benches
        .iter()
        .zip(&results)
        .map(|(b, r)| Fig8Row {
            bench: b.name.to_string(),
            producer: r.producer().comm_ratio(),
            consumer: r.consumer().expect("pipeline run").comm_ratio(),
        })
        .collect();
    Fig8 { rows }
}

impl Fig8 {
    /// Renders the ratio table.
    pub fn render(&self) -> String {
        self.table().render()
    }

    /// The ratio table, including the implied "one communication every N
    /// application instructions".
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Figure 8: dynamic comm:app instruction ratio (HEAVYWT)",
            &[
                "bench",
                "producer",
                "consumer",
                "app instrs per comm (P)",
                "(C)",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.bench.clone(),
                f2(r.producer),
                f2(r.consumer),
                f2(1.0 / r.producer.max(1e-9)),
                f2(1.0 / r.consumer.max(1e-9)),
            ]);
        }
        let gp = hfs_sim::stats::geomean(self.rows.iter().map(|r| r.producer));
        let gc = hfs_sim::stats::geomean(self.rows.iter().map(|r| r.consumer));
        t.row(vec![
            "GeoMean".into(),
            f2(gp),
            f2(gc),
            f2(1.0 / gp),
            f2(1.0 / gc),
        ]);
        t
    }
}

//! Figure 9: HEAVYWT loop speedup over single-threaded execution.
//!
//! The paper reports a ~29% geomean speedup, establishing that only
//! efficient communication support makes DSWP parallelization profitable
//! at all.

use hfs_core::DesignPoint;
use hfs_sim::stats::geomean;
use hfs_workloads::all_benchmarks;

use crate::runner::{design_job, run_batch, single_job};
use crate::table::{f2, TextTable};

/// One benchmark's speedup.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// Benchmark name.
    pub bench: String,
    /// Single-threaded (fused) execution cycles.
    pub single_cycles: u64,
    /// HEAVYWT pipeline execution cycles.
    pub heavywt_cycles: u64,
    /// Speedup of the pipeline over single-threaded.
    pub speedup: f64,
}

/// Figure 9 results.
#[derive(Debug, Clone)]
pub struct Fig9 {
    /// Rows in paper order.
    pub rows: Vec<Fig9Row>,
}

/// Runs HEAVYWT and the fused single-threaded baseline per benchmark in
/// one engine batch (pipeline job then single job, per benchmark).
pub fn run() -> Fig9 {
    let benches = all_benchmarks();
    let jobs = benches
        .iter()
        .flat_map(|b| {
            [
                design_job("fig9", b, DesignPoint::heavywt()),
                single_job("fig9", b),
            ]
        })
        .collect();
    let results = run_batch("fig9", jobs).expect_results();
    let rows = benches
        .iter()
        .zip(results.chunks_exact(2))
        .map(|(b, runs)| {
            let (hw, single) = (&runs[0], &runs[1]);
            Fig9Row {
                bench: b.name.to_string(),
                single_cycles: single.cycles,
                heavywt_cycles: hw.cycles,
                speedup: single.cycles as f64 / hw.cycles as f64,
            }
        })
        .collect();
    Fig9 { rows }
}

impl Fig9 {
    /// Geomean speedup over the single-threaded baseline.
    pub fn geomean_speedup(&self) -> f64 {
        geomean(self.rows.iter().map(|r| r.speedup))
    }

    /// Renders the speedup table.
    pub fn render(&self) -> String {
        self.table().render()
    }

    /// The speedup table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Figure 9: HEAVYWT speedup over single-threaded execution",
            &["bench", "single (cycles)", "HEAVYWT (cycles)", "speedup"],
        );
        for r in &self.rows {
            t.row(vec![
                r.bench.clone(),
                r.single_cycles.to_string(),
                r.heavywt_cycles.to_string(),
                f2(r.speedup),
            ]);
        }
        t.row(vec![
            "GeoMean".into(),
            String::new(),
            String::new(),
            f2(self.geomean_speedup()),
        ]);
        t
    }
}

//! Figure 7: normalized execution times and stall breakdowns for the four
//! design points on the baseline machine.

use hfs_core::{DesignPoint, MachineConfig, RunResult};
use hfs_workloads::all_benchmarks;

use crate::experiments::{breakdown_table, column_geomean};
use crate::runner::{pipeline_job, run_batch};
use crate::table::f2;

/// The design order used by Figures 7/10/11: HEAVYWT, SYNCOPTI,
/// EXISTING, MEMOPTI (execution times are normalized to HEAVYWT).
pub fn designs() -> [DesignPoint; 4] {
    [
        DesignPoint::heavywt(),
        DesignPoint::syncopti(),
        DesignPoint::existing(),
        DesignPoint::memopti(),
    ]
}

/// Figure 7-family results (also used by Figures 10/11 with modified
/// machine configurations).
#[derive(Debug, Clone)]
pub struct DesignSweep {
    /// Design labels in column order.
    pub designs: Vec<String>,
    /// Per-benchmark runs, one per design.
    pub rows: Vec<(String, Vec<RunResult>)>,
}

/// Runs the four designs over every benchmark with a configuration
/// derived from the baseline by `tweak`, as one engine batch named
/// `batch` (Figure 7 itself, plus Figures 10/11 with bus tweaks).
pub fn run_with(batch: &str, tweak: impl Fn(MachineConfig) -> MachineConfig) -> DesignSweep {
    let ds = designs();
    let benches = all_benchmarks();
    let jobs = benches
        .iter()
        .flat_map(|b| {
            ds.iter()
                .map(|&d| pipeline_job(batch, b, tweak(MachineConfig::itanium2_cmp(d))))
        })
        .collect();
    let results = run_batch(batch, jobs).expect_results();
    let rows = benches
        .iter()
        .zip(results.chunks_exact(ds.len()))
        .map(|(b, runs)| (b.name.to_string(), runs.to_vec()))
        .collect();
    DesignSweep {
        designs: ds.iter().map(|d| d.label()).collect(),
        rows,
    }
}

/// Runs Figure 7 on the baseline machine.
pub fn run() -> DesignSweep {
    run_with("fig7", |c| c)
}

impl DesignSweep {
    /// Geomean normalized execution time of design column `col` relative
    /// to the first column (HEAVYWT).
    pub fn geomean(&self, col: usize) -> f64 {
        column_geomean(&self.rows, col)
    }

    /// The run for `(bench, design-column)`.
    pub fn result(&self, bench: &str, col: usize) -> Option<&RunResult> {
        self.rows
            .iter()
            .find(|(n, _)| n == bench)
            .map(|(_, rs)| &rs[col])
    }

    /// The producer-side breakdown table.
    pub fn producer_table(&self, title: &str) -> crate::table::TextTable {
        breakdown_table(
            &format!("{title} (producer core)"),
            &self.designs,
            &self.rows,
            false,
        )
    }

    /// The consumer-side breakdown table.
    pub fn consumer_table(&self, title: &str) -> crate::table::TextTable {
        breakdown_table(
            &format!("{title} (consumer core)"),
            &self.designs,
            &self.rows,
            true,
        )
    }

    /// Renders producer-side and consumer-side breakdown tables.
    pub fn render(&self, title: &str) -> String {
        let mut s = self.producer_table(title).render();
        s.push('\n');
        s.push_str(&self.consumer_table(title).render());
        s.push_str("GeoMean normalized execution time:");
        for (i, d) in self.designs.iter().enumerate() {
            s.push_str(&format!("  {d}={}", f2(self.geomean(i))));
        }
        s.push('\n');
        s
    }
}

//! Table 2: the baseline simulator configuration.

use hfs_core::{DesignPoint, MachineConfig};

/// Renders the Table 2 machine description for the EXISTING baseline.
pub fn run() -> String {
    let cfg = MachineConfig::itanium2_cmp(DesignPoint::existing());
    format!("== Table 2: Baseline Simulator ==\n{}\n", cfg.describe())
}

#[cfg(test)]
mod tests {
    #[test]
    fn mentions_table2_parameters() {
        let s = super::run();
        for needle in [
            "6-issue",
            "16 KB",
            "256 KB",
            "1536 KB",
            "141 cycles",
            "16-byte",
            "snoop-based",
        ] {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
    }
}

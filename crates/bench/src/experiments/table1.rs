//! Table 1: benchmark loop information.

use hfs_workloads::all_benchmarks;

use crate::table::TextTable;

/// Renders Table 1 (benchmark, function, % exec time, suite, plus the
/// synthetic-kernel communication counts documenting the substitution).
pub fn run() -> TextTable {
    let mut t = TextTable::new(
        "Table 1: Benchmark Loop Information",
        &[
            "Benchmark",
            "Function",
            "% Exec. Time",
            "Suite",
            "comm ops/iter (P)",
            "iterations",
        ],
    );
    for b in all_benchmarks() {
        t.row(vec![
            b.name.to_string(),
            b.function.to_string(),
            b.exec_time_pct
                .map(|p| format!("{p}%"))
                .unwrap_or_else(|| "-".to_string()),
            b.suite.label().to_string(),
            b.pair.producer.comm_ops_per_iteration().to_string(),
            b.pair.iterations.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn table_has_nine_rows_with_paper_values() {
        let t = super::run();
        assert_eq!(t.len(), 9);
        let s = t.render();
        assert!(s.contains("refresh_potential"));
        assert!(s.contains("100%"));
        assert!(s.contains("getAndMoveToFrontDecode"));
    }
}

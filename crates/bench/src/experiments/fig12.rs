//! Figure 12: the §5 SYNCOPTI optimizations — stream cache (SC) and
//! 64-entry/QLU-16 queues (Q64) — against HEAVYWT.
//!
//! Paper finding: SC+Q64 reaches ~98% of HEAVYWT (a 2x speedup over
//! EXISTING/MEMOPTI) using ~1% of the dedicated storage.

use hfs_core::{DesignPoint, RunResult};
use hfs_workloads::all_benchmarks;

use crate::experiments::{breakdown_table, column_geomean};
use crate::runner::{design_job, run_batch};
use crate::table::f2;

/// The variant order: HEAVYWT, SC+Q64, SC, Q64, plain SYNCOPTI
/// (matching the paper's bar order 1..5).
pub fn variants() -> [DesignPoint; 5] {
    [
        DesignPoint::heavywt(),
        DesignPoint::syncopti_sc_q64(),
        DesignPoint::syncopti_sc(),
        DesignPoint::syncopti_q64(),
        DesignPoint::syncopti(),
    ]
}

/// Figure 12 results.
#[derive(Debug, Clone)]
pub struct Fig12 {
    /// Variant labels in column order.
    pub designs: Vec<String>,
    /// Per-benchmark runs, one per variant.
    pub rows: Vec<(String, Vec<RunResult>)>,
}

/// Runs the five variants over every benchmark as one engine batch.
pub fn run() -> Fig12 {
    let vs = variants();
    let benches = all_benchmarks();
    let jobs = benches
        .iter()
        .flat_map(|b| vs.iter().map(|&v| design_job("fig12", b, v)))
        .collect();
    let results = run_batch("fig12", jobs).expect_results();
    let rows = benches
        .iter()
        .zip(results.chunks_exact(vs.len()))
        .map(|(b, runs)| (b.name.to_string(), runs.to_vec()))
        .collect();
    Fig12 {
        designs: vs.iter().map(|d| d.label()).collect(),
        rows,
    }
}

impl Fig12 {
    /// Geomean execution time of variant `col` normalized to HEAVYWT.
    pub fn geomean(&self, col: usize) -> f64 {
        column_geomean(&self.rows, col)
    }

    /// The producer-side breakdown table.
    pub fn producer_table(&self) -> crate::table::TextTable {
        breakdown_table(
            "Figure 12: SYNCOPTI optimizations (producer core)",
            &self.designs,
            &self.rows,
            false,
        )
    }

    /// The consumer-side breakdown table.
    pub fn consumer_table(&self) -> crate::table::TextTable {
        breakdown_table(
            "Figure 12: SYNCOPTI optimizations (consumer core)",
            &self.designs,
            &self.rows,
            true,
        )
    }

    /// Renders producer and consumer breakdown tables plus the headline
    /// SC+Q64-vs-HEAVYWT gap.
    pub fn render(&self) -> String {
        let mut s = self.producer_table().render();
        s.push('\n');
        s.push_str(&self.consumer_table().render());
        s.push_str("GeoMean normalized to HEAVYWT:");
        for (i, d) in self.designs.iter().enumerate() {
            s.push_str(&format!("  {d}={}", f2(self.geomean(i))));
        }
        let gap = (self.geomean(1) - 1.0) * 100.0;
        s.push_str(&format!(
            "\nSC+Q64 is within {gap:.1}% of HEAVYWT (paper: ~2%)\n"
        ));
        s
    }
}

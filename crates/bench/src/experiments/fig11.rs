//! Figure 11: the 4-cycle bus widened to 128 bytes.
//!
//! Widening the data path to a full line per bus cycle removes the
//! arbitration backlog of Figure 10, showing that *bandwidth*, not
//! latency, is what high-frequency streaming needs from the interconnect.

use crate::experiments::fig7::{run_with, DesignSweep};

/// Runs the four designs with a 4-cycle, 128-byte bus.
pub fn run() -> DesignSweep {
    run_with("fig11", |c| c.with_bus_divider(4).with_bus_width(128))
}

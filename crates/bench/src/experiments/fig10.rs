//! Figure 10: sensitivity to a 4-cycle bus (increased wire delay).
//!
//! The paper's §4.5 finding: tight-loop benchmarks (`adpcmdec`, `wc`,
//! `epicdec`) suffer most, and even the memory-intensive `mcf`/`equake`
//! show large BUS components from arbitration backlog, because a 128-byte
//! line takes 8 bus cycles = 32 CPU cycles on the 16-byte bus.

use crate::experiments::fig7::{run_with, DesignSweep};

/// Runs the four designs with a bus clock divider of 4 (HEAVYWT's
/// dedicated interconnect slows to 4 cycles as well, as in the paper).
pub fn run() -> DesignSweep {
    run_with("fig10", |c| c.with_bus_divider(4))
}

//! Figure 6: effect of transit delay on streaming codes.
//!
//! Three HEAVYWT variants differing only in dedicated-interconnect
//! latency and queue size: 1-cycle/32-entry, 10-cycle/32-entry,
//! 10-cycle/64-entry. The paper's findings: transit delay is largely
//! tolerated; `bzip2` slows ~33% at 10 cycles because its outer-loop
//! stream cannot be pipelined; `art`/`equake`/`fir` get slightly *faster*
//! because the pipelined interconnect acts as extra queue storage; a
//! 64-entry queue recovers the losses.

use hfs_core::DesignPoint;
use hfs_sim::stats::geomean;
use hfs_workloads::all_benchmarks;

use crate::runner::{design_job, run_batch};
use crate::table::{f2, TextTable};

/// One benchmark's normalized execution times.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Benchmark name.
    pub bench: String,
    /// 10-cycle transit, 32-entry queue, relative to 1-cycle/32.
    pub t10_q32: f64,
    /// 10-cycle transit, 64-entry queue, relative to 1-cycle/32.
    pub t10_q64: f64,
}

/// Figure 6 results.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// Per-benchmark rows in paper order.
    pub rows: Vec<Fig6Row>,
}

/// The figure's job list: three HEAVYWT variants per benchmark, in
/// submission order. Exposed so `fig6 --dump-jobs` can write the sweep
/// spec for `hfs-client submit` without simulating anything.
pub fn jobs() -> Vec<hfs_harness::Job> {
    let variants = [
        DesignPoint::heavywt_with(1, 32),
        DesignPoint::heavywt_with(10, 32),
        DesignPoint::heavywt_with(10, 64),
    ];
    all_benchmarks()
        .iter()
        .flat_map(|b| variants.iter().map(|&v| design_job("fig6", b, v)))
        .collect()
}

/// Runs the three HEAVYWT variants over all benchmarks (one engine
/// batch: 3 jobs per benchmark, gathered in submission order).
pub fn run() -> Fig6 {
    let benches = all_benchmarks();
    let results = run_batch("fig6", jobs()).expect_results();
    let rows = benches
        .iter()
        .zip(results.chunks_exact(3))
        .map(|(b, runs)| Fig6Row {
            bench: b.name.to_string(),
            t10_q32: runs[1].cycles as f64 / runs[0].cycles as f64,
            t10_q64: runs[2].cycles as f64 / runs[0].cycles as f64,
        })
        .collect();
    Fig6 { rows }
}

impl Fig6 {
    /// Geomean of the 10-cycle/32-entry bars.
    pub fn geomean_t10_q32(&self) -> f64 {
        geomean(self.rows.iter().map(|r| r.t10_q32))
    }

    /// Geomean of the 10-cycle/64-entry bars.
    pub fn geomean_t10_q64(&self) -> f64 {
        geomean(self.rows.iter().map(|r| r.t10_q64))
    }

    /// Renders the normalized execution-time table.
    pub fn render(&self) -> String {
        self.table().render()
    }

    /// The normalized execution-time table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Figure 6: effect of transit delay (normalized to 1-cycle/32-entry HEAVYWT)",
            &["bench", "1cy/32", "10cy/32", "10cy/64"],
        );
        for r in &self.rows {
            t.row(vec![r.bench.clone(), f2(1.0), f2(r.t10_q32), f2(r.t10_q64)]);
        }
        t.row(vec![
            "GeoMean".to_string(),
            f2(1.0),
            f2(self.geomean_t10_q32()),
            f2(self.geomean_t10_q64()),
        ]);
        t
    }
}

//! CMP scaling: multiple streaming pipelines multiplexed on the shared
//! memory network.
//!
//! The paper argues its dual-core conclusions extend to larger CMPs, and
//! that SYNCOPTI's reuse of the existing memory interconnect is what
//! makes it attractive there — provided the network is provisioned for
//! total bandwidth (§1, §4.2). This experiment runs 1–4 independent
//! producer/consumer pairs (2–8 cores) concurrently and reports each
//! design's contention slowdown relative to its own single-pair run.

use hfs_core::DesignPoint;
use hfs_workloads::benchmark;

use crate::runner::{multi_job, run_batch};
use crate::table::{f2, TextTable};

/// The designs compared in the scaling sweep.
pub fn designs() -> [DesignPoint; 3] {
    [
        DesignPoint::heavywt(),
        DesignPoint::syncopti_sc_q64(),
        DesignPoint::existing(),
    ]
}

/// One design's cycles at each pair count.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Design label.
    pub design: String,
    /// Total cycles with 1, 2, 3, 4 concurrent pipelines.
    pub cycles: [u64; 4],
}

impl ScalingRow {
    /// Contention slowdown at `pairs` pipelines vs one.
    pub fn slowdown(&self, pairs: usize) -> f64 {
        self.cycles[pairs - 1] as f64 / self.cycles[0] as f64
    }
}

/// Runs the sweep on clones of the given benchmark (default: adpcmdec, a
/// bandwidth-sensitive tight loop).
pub fn run_on(bench_name: &str) -> Vec<ScalingRow> {
    let b = benchmark(bench_name).expect("known benchmark");
    let ds = designs();
    let b = &b;
    let jobs = ds
        .iter()
        .flat_map(|&design| (1..=4u8).map(move |pairs| multi_job("scaling", b, design, pairs)))
        .collect();
    let results = run_batch("scaling", jobs).expect_results();
    ds.iter()
        .zip(results.chunks_exact(4))
        .map(|(design, runs)| {
            let mut cycles = [0u64; 4];
            for (slot, r) in cycles.iter_mut().zip(runs) {
                *slot = r.cycles;
            }
            ScalingRow {
                design: design.label(),
                cycles,
            }
        })
        .collect()
}

/// Renders the scaling table.
pub fn render(bench_name: &str, rows: &[ScalingRow]) -> String {
    let mut t = TextTable::new(
        format!("CMP scaling: concurrent {bench_name} pipelines (slowdown vs 1 pair)"),
        &["design", "1 pair", "2 pairs", "3 pairs", "4 pairs"],
    );
    for r in rows {
        t.row(vec![
            r.design.clone(),
            f2(1.0),
            f2(r.slowdown(2)),
            f2(r.slowdown(3)),
            f2(r.slowdown(4)),
        ]);
    }
    t.render()
}

/// Runs and renders the default sweep.
pub fn run() -> String {
    let rows = run_on("adpcmdec");
    render("adpcmdec", &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slowdown_is_relative_to_one_pair() {
        let r = ScalingRow {
            design: "X".into(),
            cycles: [100, 150, 200, 400],
        };
        assert!((r.slowdown(1) - 1.0).abs() < 1e-12);
        assert!((r.slowdown(2) - 1.5).abs() < 1e-12);
        assert!((r.slowdown(4) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn render_contains_design_rows() {
        let rows = vec![ScalingRow {
            design: "HEAVYWT".into(),
            cycles: [10, 10, 11, 12],
        }];
        let s = render("demo", &rows);
        assert!(s.contains("HEAVYWT"));
        assert!(s.contains("demo"));
    }
}

//! Ablation sweeps over the design choices DESIGN.md calls out.
//!
//! These reproduce the paper's side experiments and design discussion:
//!
//! * **QLU sweep** — §4.3: "Experiments were also conducted with QLU 1,
//!   but since performance was uniformly better with QLU 8 … the results
//!   have been omitted." Here they are.
//! * **Queue-depth sweep** — §2/Figure 3: enough buffering is what turns
//!   transit delay from critical into irrelevant.
//! * **Register-mapped queues** — §3.1.3: free communication operations,
//!   at the cost of spill/fill code once register pressure bites.
//! * **Centralized vs distributed dedicated store** — §3.5.2: a single
//!   shared structure is farther away, raising consume-to-use latency.
//! * **OzQ size** — footnote 1 / §4.4: the ordered transaction queue is
//!   where software-queue designs drown.

use hfs_core::{DesignPoint, MachineConfig};
use hfs_harness::Job;
use hfs_workloads::benchmark;

use crate::runner::{pipeline_job, run_batch};
use crate::table::{f2, TextTable};

/// A pipeline job for the named benchmark with a mutated configuration.
fn job(
    batch: &str,
    bench_name: &str,
    design: DesignPoint,
    mutate: impl Fn(&mut MachineConfig),
) -> Job {
    let b = benchmark(bench_name).expect("known benchmark");
    let mut cfg = MachineConfig::itanium2_cmp(design);
    mutate(&mut cfg);
    pipeline_job(batch, &b, cfg)
}

/// Runs one sweep's jobs as an engine batch and returns their cycle
/// counts in submission order.
fn cycles_batch(batch: &str, jobs: Vec<Job>) -> Vec<u64> {
    run_batch(batch, jobs)
        .expect_results()
        .iter()
        .map(|r| r.cycles)
        .collect()
}

/// QLU 1/2/4/8 for the software designs (Figure 5's layouts).
pub fn qlu_sweep() -> TextTable {
    let mut t = TextTable::new(
        "Ablation: queue layout unit for software queues (cycles, lower is better)",
        &["bench", "QLU1", "QLU2", "QLU4", "QLU8"],
    );
    let benches = ["wc", "adpcmdec", "fir"];
    let qlus = [1, 2, 4, 8];
    let jobs = benches
        .iter()
        .flat_map(|b| {
            qlus.iter().map(|&qlu| {
                job(
                    "ablation_qlu",
                    b,
                    DesignPoint::existing_with_qlu(qlu),
                    |_| {},
                )
            })
        })
        .collect();
    let cycles = cycles_batch("ablation_qlu", jobs);
    for (bench, chunk) in benches.iter().zip(cycles.chunks_exact(qlus.len())) {
        let mut row = vec![bench.to_string()];
        row.extend(chunk.iter().map(u64::to_string));
        t.row(row);
    }
    t
}

/// HEAVYWT queue-depth sweep: decoupling vs storage.
pub fn depth_sweep() -> TextTable {
    let mut t = TextTable::new(
        "Ablation: HEAVYWT queue depth (cycles)",
        &["bench", "d=4", "d=8", "d=16", "d=32", "d=64"],
    );
    // bzip2 is excluded below depth 32: its outer-gated consumer
    // requires the inner queue to hold a whole nest, so shallower queues
    // deadlock by construction (caught by the machine's detector).
    let benches = ["fir", "wc"];
    let depths = [4, 8, 16, 32, 64];
    let jobs = benches
        .iter()
        .flat_map(|b| {
            depths
                .iter()
                .map(|&d| job("ablation_depth", b, DesignPoint::heavywt_with(1, d), |_| {}))
        })
        .collect();
    let cycles = cycles_batch("ablation_depth", jobs);
    for (bench, chunk) in benches.iter().zip(cycles.chunks_exact(depths.len())) {
        let mut row = vec![bench.to_string()];
        row.extend(chunk.iter().map(u64::to_string));
        t.row(row);
    }
    t
}

/// Register-mapped queues vs HEAVYWT as spill pressure grows (§3.1.3).
pub fn regmapped_sweep() -> TextTable {
    let mut t = TextTable::new(
        "Ablation: register-mapped queues vs HEAVYWT (normalized to HEAVYWT)",
        &["bench", "HEAVYWT", "spill0", "spill2", "spill4", "spill8"],
    );
    let benches = ["wc", "adpcmdec"];
    let spills = [0, 2, 4, 8];
    let jobs = benches
        .iter()
        .flat_map(|b| {
            std::iter::once(job("ablation_regmapped", b, DesignPoint::heavywt(), |_| {})).chain(
                spills
                    .iter()
                    .map(|&s| job("ablation_regmapped", b, DesignPoint::regmapped(s), |_| {})),
            )
        })
        .collect();
    let cycles = cycles_batch("ablation_regmapped", jobs);
    for (bench, chunk) in benches.iter().zip(cycles.chunks_exact(1 + spills.len())) {
        let base = chunk[0] as f64;
        let mut row = vec![bench.to_string(), f2(1.0)];
        row.extend(chunk[1..].iter().map(|&c| f2(c as f64 / base)));
        t.row(row);
    }
    t
}

/// Centralized vs distributed dedicated store (§3.5.2): the access
/// latency of the backing store is the consume-to-use delay.
pub fn store_placement_sweep() -> TextTable {
    let mut t = TextTable::new(
        "Ablation: dedicated-store placement (consume-to-use latency; normalized)",
        &[
            "bench",
            "distributed (1cy)",
            "central 3cy",
            "central 6cy",
            "central 12cy",
        ],
    );
    let benches = ["wc", "fir"];
    let lats = [3, 6, 12];
    let jobs = benches
        .iter()
        .flat_map(|b| {
            std::iter::once(job("ablation_store", b, DesignPoint::heavywt(), |_| {})).chain(
                lats.iter().map(|&l| {
                    job(
                        "ablation_store",
                        b,
                        DesignPoint::heavywt_centralized(l),
                        |_| {},
                    )
                }),
            )
        })
        .collect();
    let cycles = cycles_batch("ablation_store", jobs);
    for (bench, chunk) in benches.iter().zip(cycles.chunks_exact(1 + lats.len())) {
        let base = chunk[0] as f64;
        let mut row = vec![bench.to_string(), f2(1.0)];
        row.extend(chunk[1..].iter().map(|&c| f2(c as f64 / base)));
        t.row(row);
    }
    t
}

/// OzQ (outstanding-transaction) capacity for the software baseline.
pub fn ozq_sweep() -> TextTable {
    let mut t = TextTable::new(
        "Ablation: OzQ entries under EXISTING (cycles)",
        &["bench", "ozq=4", "ozq=8", "ozq=16", "ozq=32"],
    );
    let benches = ["adpcmdec", "mcf"];
    let sizes = [4u32, 8, 16, 32];
    let jobs = benches
        .iter()
        .flat_map(|b| {
            sizes.iter().map(|&entries| {
                job("ablation_ozq", b, DesignPoint::existing(), move |cfg| {
                    cfg.mem.ozq_entries = entries;
                })
            })
        })
        .collect();
    let cycles = cycles_batch("ablation_ozq", jobs);
    for (bench, chunk) in benches.iter().zip(cycles.chunks_exact(sizes.len())) {
        let mut row = vec![bench.to_string()];
        row.extend(chunk.iter().map(u64::to_string));
        t.row(row);
    }
    t
}

/// L2 port count under SYNCOPTI (the design leans on L2 bandwidth).
pub fn l2_ports_sweep() -> TextTable {
    let mut t = TextTable::new(
        "Ablation: L2 ports under SYNCOPTI (cycles)",
        &["bench", "1 port", "2 ports", "4 ports"],
    );
    let benches = ["wc", "epicdec"];
    let port_counts = [1u32, 2, 4];
    let jobs = benches
        .iter()
        .flat_map(|b| {
            port_counts.iter().map(|&ports| {
                job(
                    "ablation_l2ports",
                    b,
                    DesignPoint::syncopti_sc_q64(),
                    move |cfg| {
                        cfg.mem.l2_ports = ports;
                    },
                )
            })
        })
        .collect();
    let cycles = cycles_batch("ablation_l2ports", jobs);
    for (bench, chunk) in benches.iter().zip(cycles.chunks_exact(port_counts.len())) {
        let mut row = vec![bench.to_string()];
        row.extend(chunk.iter().map(u64::to_string));
        t.row(row);
    }
    t
}

/// §4.2's arbiter: favor application memory requests over inter-thread
/// operand traffic. Application performance should not degrade (and may
/// improve under contention), while pipelined streaming tolerates the
/// extra arbitration delay.
pub fn arbiter_priority_sweep() -> TextTable {
    let mut t = TextTable::new(
        "Ablation: bus arbiter favoring application traffic (cycles)",
        &["bench", "fair arbiter", "favor app", "delta"],
    );
    // Contention only matters on the §4.5 slow bus, where line
    // transfers take 32 CPU cycles and requests back up.
    let benches = ["mcf", "equake", "wc"];
    let jobs = benches
        .iter()
        .flat_map(|b| {
            [
                job(
                    "ablation_arbiter",
                    b,
                    DesignPoint::syncopti_sc_q64(),
                    |cfg| {
                        *cfg = cfg.clone().with_bus_divider(4);
                    },
                ),
                job(
                    "ablation_arbiter",
                    b,
                    DesignPoint::syncopti_sc_q64(),
                    |cfg| {
                        *cfg = cfg.clone().with_bus_divider(4);
                        cfg.mem.bus.favor_app_traffic = true;
                    },
                ),
            ]
        })
        .collect();
    let cycles = cycles_batch("ablation_arbiter", jobs);
    for (bench, chunk) in benches.iter().zip(cycles.chunks_exact(2)) {
        let (fair, fav) = (chunk[0], chunk[1]);
        t.row(vec![
            bench.to_string(),
            fair.to_string(),
            fav.to_string(),
            format!("{:+.1}%", (fav as f64 / fair as f64 - 1.0) * 100.0),
        ]);
    }
    t
}

/// Renders every ablation.
pub fn run_all() -> String {
    let mut s = String::new();
    for table in [
        qlu_sweep(),
        depth_sweep(),
        regmapped_sweep(),
        store_placement_sweep(),
        ozq_sweep(),
        l2_ports_sweep(),
        arbiter_priority_sweep(),
    ] {
        s.push_str(&table.render());
        s.push('\n');
    }
    s
}

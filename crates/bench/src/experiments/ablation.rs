//! Ablation sweeps over the design choices DESIGN.md calls out.
//!
//! These reproduce the paper's side experiments and design discussion:
//!
//! * **QLU sweep** — §4.3: "Experiments were also conducted with QLU 1,
//!   but since performance was uniformly better with QLU 8 … the results
//!   have been omitted." Here they are.
//! * **Queue-depth sweep** — §2/Figure 3: enough buffering is what turns
//!   transit delay from critical into irrelevant.
//! * **Register-mapped queues** — §3.1.3: free communication operations,
//!   at the cost of spill/fill code once register pressure bites.
//! * **Centralized vs distributed dedicated store** — §3.5.2: a single
//!   shared structure is farther away, raising consume-to-use latency.
//! * **OzQ size** — footnote 1 / §4.4: the ordered transaction queue is
//!   where software-queue designs drown.

use hfs_core::{DesignPoint, Machine, MachineConfig};
use hfs_workloads::benchmark;

use crate::runner::{scaled, MAX_CYCLES};
use crate::table::{f2, TextTable};

fn cycles(bench_name: &str, design: DesignPoint, mutate: impl Fn(&mut MachineConfig)) -> u64 {
    let b = scaled(&benchmark(bench_name).expect("known benchmark"));
    let mut cfg = MachineConfig::itanium2_cmp(design);
    mutate(&mut cfg);
    Machine::new_pipeline(&cfg, &b.pair)
        .and_then(|mut m| m.run(MAX_CYCLES))
        .unwrap_or_else(|e| panic!("{bench_name} under {design:?}: {e}"))
        .cycles
}

/// QLU 1/2/4/8 for the software designs (Figure 5's layouts).
pub fn qlu_sweep() -> TextTable {
    let mut t = TextTable::new(
        "Ablation: queue layout unit for software queues (cycles, lower is better)",
        &["bench", "QLU1", "QLU2", "QLU4", "QLU8"],
    );
    for bench in ["wc", "adpcmdec", "fir"] {
        let mut row = vec![bench.to_string()];
        for qlu in [1, 2, 4, 8] {
            row.push(cycles(bench, DesignPoint::existing_with_qlu(qlu), |_| {}).to_string());
        }
        t.row(row);
    }
    t
}

/// HEAVYWT queue-depth sweep: decoupling vs storage.
pub fn depth_sweep() -> TextTable {
    let mut t = TextTable::new(
        "Ablation: HEAVYWT queue depth (cycles)",
        &["bench", "d=4", "d=8", "d=16", "d=32", "d=64"],
    );
    // bzip2 is excluded below depth 32: its outer-gated consumer
    // requires the inner queue to hold a whole nest, so shallower queues
    // deadlock by construction (caught by the machine's detector).
    for bench in ["fir", "wc"] {
        let mut row = vec![bench.to_string()];
        for depth in [4, 8, 16, 32, 64] {
            row.push(cycles(bench, DesignPoint::heavywt_with(1, depth), |_| {}).to_string());
        }
        t.row(row);
    }
    t
}

/// Register-mapped queues vs HEAVYWT as spill pressure grows (§3.1.3).
pub fn regmapped_sweep() -> TextTable {
    let mut t = TextTable::new(
        "Ablation: register-mapped queues vs HEAVYWT (normalized to HEAVYWT)",
        &["bench", "HEAVYWT", "spill0", "spill2", "spill4", "spill8"],
    );
    for bench in ["wc", "adpcmdec"] {
        let base = cycles(bench, DesignPoint::heavywt(), |_| {}) as f64;
        let mut row = vec![bench.to_string(), f2(1.0)];
        for spill in [0, 2, 4, 8] {
            let c = cycles(bench, DesignPoint::regmapped(spill), |_| {}) as f64;
            row.push(f2(c / base));
        }
        t.row(row);
    }
    t
}

/// Centralized vs distributed dedicated store (§3.5.2): the access
/// latency of the backing store is the consume-to-use delay.
pub fn store_placement_sweep() -> TextTable {
    let mut t = TextTable::new(
        "Ablation: dedicated-store placement (consume-to-use latency; normalized)",
        &["bench", "distributed (1cy)", "central 3cy", "central 6cy", "central 12cy"],
    );
    for bench in ["wc", "fir"] {
        let base = cycles(bench, DesignPoint::heavywt(), |_| {}) as f64;
        let mut row = vec![bench.to_string(), f2(1.0)];
        for lat in [3, 6, 12] {
            let c = cycles(bench, DesignPoint::heavywt_centralized(lat), |_| {}) as f64;
            row.push(f2(c / base));
        }
        t.row(row);
    }
    t
}

/// OzQ (outstanding-transaction) capacity for the software baseline.
pub fn ozq_sweep() -> TextTable {
    let mut t = TextTable::new(
        "Ablation: OzQ entries under EXISTING (cycles)",
        &["bench", "ozq=4", "ozq=8", "ozq=16", "ozq=32"],
    );
    for bench in ["adpcmdec", "mcf"] {
        let mut row = vec![bench.to_string()];
        for entries in [4u32, 8, 16, 32] {
            row.push(
                cycles(bench, DesignPoint::existing(), |cfg| {
                    cfg.mem.ozq_entries = entries;
                })
                .to_string(),
            );
        }
        t.row(row);
    }
    t
}

/// L2 port count under SYNCOPTI (the design leans on L2 bandwidth).
pub fn l2_ports_sweep() -> TextTable {
    let mut t = TextTable::new(
        "Ablation: L2 ports under SYNCOPTI (cycles)",
        &["bench", "1 port", "2 ports", "4 ports"],
    );
    for bench in ["wc", "epicdec"] {
        let mut row = vec![bench.to_string()];
        for ports in [1u32, 2, 4] {
            row.push(
                cycles(bench, DesignPoint::syncopti_sc_q64(), |cfg| {
                    cfg.mem.l2_ports = ports;
                })
                .to_string(),
            );
        }
        t.row(row);
    }
    t
}

/// §4.2's arbiter: favor application memory requests over inter-thread
/// operand traffic. Application performance should not degrade (and may
/// improve under contention), while pipelined streaming tolerates the
/// extra arbitration delay.
pub fn arbiter_priority_sweep() -> TextTable {
    let mut t = TextTable::new(
        "Ablation: bus arbiter favoring application traffic (cycles)",
        &["bench", "fair arbiter", "favor app", "delta"],
    );
    // Contention only matters on the §4.5 slow bus, where line
    // transfers take 32 CPU cycles and requests back up.
    for bench in ["mcf", "equake", "wc"] {
        let fair = cycles(bench, DesignPoint::syncopti_sc_q64(), |cfg| {
            *cfg = cfg.clone().with_bus_divider(4);
        });
        let fav = cycles(bench, DesignPoint::syncopti_sc_q64(), |cfg| {
            *cfg = cfg.clone().with_bus_divider(4);
            cfg.mem.bus.favor_app_traffic = true;
        });
        t.row(vec![
            bench.to_string(),
            fair.to_string(),
            fav.to_string(),
            format!("{:+.1}%", (fav as f64 / fair as f64 - 1.0) * 100.0),
        ]);
    }
    t
}

/// Renders every ablation.
pub fn run_all() -> String {
    let mut s = String::new();
    for table in [
        qlu_sweep(),
        depth_sweep(),
        regmapped_sweep(),
        store_placement_sweep(),
        ozq_sweep(),
        l2_ports_sweep(),
        arbiter_priority_sweep(),
    ] {
        s.push_str(&table.render());
        s.push('\n');
    }
    s
}

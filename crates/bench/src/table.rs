//! Plain-text table rendering for experiment output.

use std::fmt::Write as _;

/// A simple fixed-width text table with a title, column headers, and
/// string cells. Numeric formatting is the caller's concern.
#[derive(Debug, Clone)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        TextTable {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are kept.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.headers.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i == 0 {
                    let _ = write!(out, "{cell:<w$}");
                } else {
                    let _ = write!(out, "  {cell:>w$}");
                }
            }
            let _ = writeln!(out);
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for r in &self.rows {
            line(&mut out, r);
        }
        out
    }

    /// Renders the table as CSV (title omitted).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                r.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Formats a ratio with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new("demo", &["bench", "cycles"]);
        t.row(vec!["wc".into(), "123".into()]);
        t.row(vec!["adpcmdec".into(), "7".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("bench"));
        let lines: Vec<&str> = s.lines().collect();
        // header + rule + 2 rows + title
        assert_eq!(lines.len(), 5);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = TextTable::new("x", &["a", "b"]);
        t.row(vec!["v,1".into(), "plain".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"v,1\",plain"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(pct(0.125), "12.5%");
    }
}

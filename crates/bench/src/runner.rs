//! Shared run helpers for the experiments.

use hfs_core::{DesignPoint, Machine, MachineConfig, RunResult};
use hfs_workloads::Benchmark;

/// Upper bound on simulated cycles per run; hitting it is a harness bug.
pub const MAX_CYCLES: u64 = 500_000_000;

/// Iteration cap applied when `HFS_QUICK=1` is set, trading steady-state
/// fidelity for speed.
pub const QUICK_ITERATIONS: u64 = 300;

/// Returns the benchmark with quick-mode iteration capping applied.
pub fn scaled(bench: &Benchmark) -> Benchmark {
    if std::env::var_os("HFS_QUICK").is_some() {
        bench.with_iterations(bench.pair.iterations.min(QUICK_ITERATIONS))
    } else {
        bench.clone()
    }
}

/// Runs `bench` as a two-thread pipeline under `design` on the baseline
/// machine.
///
/// # Panics
///
/// Panics on simulation errors (deadlock/verification), which indicate a
/// harness or model bug, with the failing benchmark named.
pub fn run_design(bench: &Benchmark, design: DesignPoint) -> RunResult {
    run_with_config(bench, &MachineConfig::itanium2_cmp(design))
}

/// Runs `bench` under an explicit machine configuration.
///
/// # Panics
///
/// See [`run_design`].
pub fn run_with_config(bench: &Benchmark, cfg: &MachineConfig) -> RunResult {
    let b = scaled(bench);
    Machine::new_pipeline(cfg, &b.pair)
        .and_then(|mut m| m.run(MAX_CYCLES))
        .unwrap_or_else(|e| panic!("{} under {}: {e}", b.name, cfg.design))
}

/// Runs the fused single-threaded version of `bench` (Figure 9 baseline).
///
/// # Panics
///
/// See [`run_design`].
pub fn run_single(bench: &Benchmark) -> RunResult {
    let b = scaled(bench);
    let cfg = MachineConfig::itanium2_single();
    Machine::new_single(&cfg, &b.pair)
        .and_then(|mut m| m.run(MAX_CYCLES))
        .unwrap_or_else(|e| panic!("{} single-threaded: {e}", b.name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfs_workloads::benchmark;

    #[test]
    fn run_design_completes_quickly_scaled() {
        let b = benchmark("fir").unwrap().with_iterations(50);
        let r = run_design(&b, DesignPoint::heavywt());
        assert_eq!(r.iterations, 50);
    }

    #[test]
    fn run_single_completes() {
        let b = benchmark("wc").unwrap().with_iterations(50);
        let r = run_single(&b);
        assert_eq!(r.iterations, 50);
        assert_eq!(r.cores.len(), 1);
    }
}

//! Shared run helpers for the experiments.
//!
//! Every experiment routes its simulation work through the shared
//! [`hfs_harness::Engine`] returned by [`engine`]: jobs are built with
//! the helpers here, submitted as a batch, executed on the worker pool
//! (cache-aware, watchdog-guarded), and gathered back in submission
//! order.

use std::path::PathBuf;
use std::sync::OnceLock;

use hfs_core::{DesignPoint, MachineConfig, RunResult, SimError};
use hfs_harness::{Batch, Engine, Job};
use hfs_mem::Protocol;
use hfs_trace::{chrome_trace_json, Tracer};
use hfs_workloads::Benchmark;

/// Upper bound on simulated cycles per run; hitting it is a harness bug.
pub const MAX_CYCLES: u64 = hfs_harness::DEFAULT_MAX_CYCLES;

/// Iteration cap applied when `HFS_QUICK=1` is set, trading steady-state
/// fidelity for speed.
pub const QUICK_ITERATIONS: u64 = 300;

/// Environment variable naming a file to receive the demo Chrome trace
/// (equivalent to the `--trace <path>` flag on the fig binaries).
pub const ENV_TRACE: &str = "HFS_TRACE";

/// Set to route experiment batches through a running `hfs-serve`
/// instance (`HFS_VIA_SERVER=1`; endpoint from `HFS_SOCK`/`HFS_ADDR`)
/// instead of the in-process engine. Artifacts stay byte-identical.
pub const ENV_VIA_SERVER: &str = "HFS_VIA_SERVER";

/// Selects the coherence protocol every job helper builds machines with
/// (`HFS_PROTOCOL=msi|mesi|dragon`; default MSI). Non-default protocols
/// also suffix batch/artifact names (see [`protocol_suffixed`]) so the
/// committed MSI goldens are never clobbered by a protocol sweep.
pub const ENV_PROTOCOL: &str = "HFS_PROTOCOL";

/// The coherence protocol selected by `HFS_PROTOCOL` (default MSI).
///
/// # Panics
///
/// Panics when the variable names an unknown protocol — a silent
/// fallback would sweep the wrong design axis.
pub fn protocol() -> Protocol {
    match std::env::var(ENV_PROTOCOL) {
        Err(_) => Protocol::Msi,
        Ok(s) if s.is_empty() => Protocol::Msi,
        Ok(s) => {
            Protocol::parse(&s).unwrap_or_else(|| panic!("{ENV_PROTOCOL}: unknown protocol `{s}`"))
        }
    }
}

/// `name` with the suffix non-default protocols carry (`fig6` becomes
/// `fig6__mesi`); MSI names pass through unchanged, keeping every
/// committed artifact path stable.
pub fn protocol_suffixed(name: &str) -> String {
    match protocol() {
        Protocol::Msi => name.to_string(),
        p => format!("{name}__{}", p.label()),
    }
}

fn apply_protocol(mut cfg: MachineConfig) -> MachineConfig {
    cfg.mem.protocol = protocol();
    cfg
}

/// The process-wide experiment engine, configured from the `HFS_*`
/// environment (`HFS_JOBS`, `HFS_CACHE_DIR`, `HFS_NO_CACHE`,
/// `HFS_RETRIES`, `HFS_RESULTS_DIR`, `HFS_NO_PROGRESS`) on first use.
pub fn engine() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(Engine::from_env)
}

fn env_flag(name: &str) -> bool {
    std::env::var_os(name).is_some_and(|v| v != "0" && !v.is_empty())
}

/// Whether batches route through an `hfs-serve` instance.
pub fn via_server() -> bool {
    env_flag(ENV_VIA_SERVER)
}

/// Runs an experiment batch — the single entry point every experiment
/// uses. Locally this is [`Engine::run_batch`]; with `HFS_VIA_SERVER=1`
/// the batch is instead submitted to the `hfs-serve` instance named by
/// `HFS_SOCK`/`HFS_ADDR` on the pipelined batched path
/// (`HFS_SUBMIT_CHUNK`/`HFS_SUBMIT_WINDOW`), streaming chunked progress
/// back and writing the same byte-identical `results/<name>.json`
/// artifact.
///
/// # Panics
///
/// In server mode, panics when the server is unreachable or rejects the
/// batch — silently falling back to local execution would defeat the
/// point of routing through the shared cache/dedup service.
pub fn run_batch(name: &str, jobs: Vec<Job>) -> Batch {
    // Protocol sweeps land in their own artifact files (`fig6__dragon`);
    // the default MSI name is untouched.
    let name = &protocol_suffixed(name);
    if !via_server() {
        return engine().run_batch(name, jobs);
    }
    // Mirror Engine::run_batch's metrics handling so cache keys and
    // artifact bytes match whichever path executes the sweep.
    let jobs: Vec<Job> = if engine().metrics_enabled() {
        jobs.into_iter().map(|j| j.with_metrics(true)).collect()
    } else {
        jobs
    };
    let progress = !env_flag("HFS_NO_PROGRESS");
    let mut client = hfs_serve::Client::from_env()
        .unwrap_or_else(|e| panic!("HFS_VIA_SERVER=1 but cannot reach hfs-serve: {e}"));
    let batch = client
        .submit_batched(name, jobs, hfs_serve::Subscribe::Final, |u| {
            if progress {
                hfs_serve::print_update(name, u);
            }
        })
        .unwrap_or_else(|e| panic!("server batch `{name}` failed: {e}"));
    if let Some(dir) = engine().results_dir() {
        if let Err(e) = batch.write_artifact(dir) {
            hfs_obs::error(
                "harness",
                "artifact_write_failed",
                &[
                    ("batch", name.as_str().into()),
                    ("error", e.to_string().into()),
                ],
            );
        }
    }
    batch
}

/// Returns the benchmark with quick-mode iteration capping applied.
pub fn scaled(bench: &Benchmark) -> Benchmark {
    if std::env::var_os("HFS_QUICK").is_some() {
        bench.with_iterations(bench.pair.iterations.min(QUICK_ITERATIONS))
    } else {
        bench.clone()
    }
}

/// A pipeline job for `bench` (quick-scaled) under `cfg`, labeled
/// `<batch>/<bench>/<design>`.
pub fn pipeline_job(batch: &str, bench: &Benchmark, cfg: MachineConfig) -> Job {
    let b = scaled(bench);
    let label = format!("{batch}/{}/{}", b.name, cfg.design);
    Job::pipeline(label, b.pair, apply_protocol(cfg))
}

/// A pipeline job for `bench` under `design` on the baseline machine.
pub fn design_job(batch: &str, bench: &Benchmark, design: DesignPoint) -> Job {
    pipeline_job(batch, bench, MachineConfig::itanium2_cmp(design))
}

/// A fused single-threaded job for `bench` (Figure 9 baseline).
pub fn single_job(batch: &str, bench: &Benchmark) -> Job {
    let b = scaled(bench);
    Job::single(
        format!("{batch}/{}/single", b.name),
        b.pair,
        apply_protocol(MachineConfig::itanium2_single()),
    )
}

/// A multi-pipeline job: `pairs` concurrent copies of `bench` under
/// `design` (the CMP scaling sweep).
pub fn multi_job(batch: &str, bench: &Benchmark, design: DesignPoint, pairs: u8) -> Job {
    let b = scaled(bench);
    Job::multi(
        format!("{batch}/{}/{}/x{pairs}", b.name, design.label()),
        b.pair,
        apply_protocol(MachineConfig::itanium2_cmp(design)),
        pairs,
    )
}

/// Runs `bench` under an explicit machine configuration, without the
/// engine (no cache, no pool) — the building block for one-off runs.
///
/// # Errors
///
/// Any [`SimError`] from machine construction or the run.
pub fn try_run_with_config(bench: &Benchmark, cfg: &MachineConfig) -> Result<RunResult, SimError> {
    let b = scaled(bench);
    hfs_harness::execute_once(&Job::pipeline(
        b.name,
        b.pair.clone(),
        apply_protocol(cfg.clone()),
    ))
}

/// Runs the fused single-threaded version of `bench`.
///
/// # Errors
///
/// See [`try_run_with_config`].
pub fn try_run_single(bench: &Benchmark) -> Result<RunResult, SimError> {
    let b = scaled(bench);
    let cfg = apply_protocol(MachineConfig::itanium2_single());
    hfs_harness::execute_once(&Job::single(b.name, b.pair.clone(), cfg))
}

/// Runs `bench` as a two-thread pipeline under `design` on the baseline
/// machine.
///
/// # Panics
///
/// Panics on simulation errors (deadlock/verification), which indicate a
/// harness or model bug, with the failing benchmark named.
pub fn run_design(bench: &Benchmark, design: DesignPoint) -> RunResult {
    run_with_config(bench, &MachineConfig::itanium2_cmp(design))
}

/// Runs `bench` under an explicit machine configuration.
///
/// # Panics
///
/// See [`run_design`].
pub fn run_with_config(bench: &Benchmark, cfg: &MachineConfig) -> RunResult {
    try_run_with_config(bench, cfg)
        .unwrap_or_else(|e| panic!("{} under {}: {e}", bench.name, cfg.design))
}

/// Runs the fused single-threaded version of `bench` (Figure 9 baseline).
///
/// # Panics
///
/// See [`run_design`].
pub fn run_single(bench: &Benchmark) -> RunResult {
    try_run_single(bench).unwrap_or_else(|e| panic!("{} single-threaded: {e}", bench.name))
}

/// Runs the demo design point — the Figure 6 HEAVYWT pipeline on `fir`,
/// capped at [`QUICK_ITERATIONS`] — with a recording tracer, returning
/// the Chrome trace-event JSON and the (metrics-carrying) run result.
///
/// # Panics
///
/// Panics if the demo run fails, which indicates a model bug.
pub fn demo_trace() -> (String, RunResult) {
    let b = hfs_workloads::benchmark("fir").expect("fir benchmark exists");
    let b = b.with_iterations(b.pair.iterations.min(QUICK_ITERATIONS));
    let job = design_job("trace-demo", &b, DesignPoint::heavywt());
    let tracer = Tracer::recording();
    let result = hfs_harness::execute_once_with(&job, &tracer)
        .unwrap_or_else(|e| panic!("trace demo run failed: {e}"));
    (chrome_trace_json(&tracer.take_events()), result)
}

/// Honors the fig binaries' trace hook: when `--trace <path>` was passed
/// on the command line or `HFS_TRACE=<path>` is set, writes the
/// [`demo_trace`] Chrome JSON to that path and returns it.
///
/// # Panics
///
/// Panics if the trace file cannot be written.
pub fn maybe_write_demo_trace() -> Option<PathBuf> {
    let mut cli = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace" {
            cli = args.next().map(PathBuf::from);
        }
    }
    let path = cli.or_else(|| {
        std::env::var_os(ENV_TRACE)
            .filter(|v| !v.is_empty())
            .map(PathBuf::from)
    })?;
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).expect("create trace output directory");
    }
    let (json, _) = demo_trace();
    std::fs::write(&path, json).expect("write trace file");
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfs_workloads::benchmark;

    #[test]
    fn run_design_completes_quickly_scaled() {
        let b = benchmark("fir").unwrap().with_iterations(50);
        let r = run_design(&b, DesignPoint::heavywt());
        assert_eq!(r.iterations, 50);
    }

    #[test]
    fn run_single_completes() {
        let b = benchmark("wc").unwrap().with_iterations(50);
        let r = run_single(&b);
        assert_eq!(r.iterations, 50);
        assert_eq!(r.cores.len(), 1);
    }

    #[test]
    fn try_variants_report_errors_instead_of_panicking() {
        // An undersized queue deadlocks bzip2's nested stream by
        // construction; the fallible API must surface that as Err.
        let b = benchmark("bzip2").unwrap().with_iterations(50);
        let cfg = MachineConfig::itanium2_cmp(DesignPoint::heavywt_with(1, 4));
        assert!(try_run_with_config(&b, &cfg).is_err());
    }

    #[test]
    fn demo_trace_produces_chrome_json_with_metrics() {
        let (json, r) = demo_trace();
        assert!(json.starts_with("{\"traceEvents\":["), "chrome envelope");
        let m = r.metrics.expect("traced run carries metrics");
        assert!(m.get_counter("trace.produce").unwrap_or(0) > 0);
    }

    #[test]
    fn default_protocol_keeps_artifact_names() {
        // HFS_PROTOCOL is unset under `cargo test`, so the helpers must
        // build MSI machines and leave artifact names untouched.
        assert_eq!(protocol(), Protocol::Msi);
        assert_eq!(protocol_suffixed("fig6"), "fig6");
        let b = benchmark("fir").unwrap().with_iterations(50);
        let j = design_job("fig6", &b, DesignPoint::existing());
        assert_eq!(j.cfg.mem.protocol, Protocol::Msi);
    }

    #[test]
    fn job_labels_follow_batch_bench_design() {
        let b = benchmark("fir").unwrap().with_iterations(50);
        let j = design_job("fig7", &b, DesignPoint::heavywt());
        assert_eq!(j.label, "fig7/fir/HEAVYWT");
        let s = single_job("fig9", &b);
        assert_eq!(s.label, "fig9/fir/single");
        let m = multi_job("scaling", &b, DesignPoint::existing(), 3);
        assert_eq!(m.label, "scaling/fir/EXISTING/x3");
    }
}

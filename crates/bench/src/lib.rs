//! Experiment harness regenerating every table and figure of
//! *Support for High-Frequency Streaming in CMPs* (MICRO 2006).
//!
//! Each experiment lives in [`experiments`] and has a matching binary:
//!
//! | Artifact | Binary | What it reproduces |
//! |---|---|---|
//! | Table 1 | `table1` | Benchmark loop inventory |
//! | Table 2 | `table2` | Baseline simulator configuration |
//! | Figure 3 | `fig3` | Analytic single-buffer vs queue vs reduced COMM-OP |
//! | Figure 6 | `fig6` | HEAVYWT transit-delay sensitivity |
//! | Figure 7 | `fig7` | Normalized execution time + stall breakdown per design |
//! | Figure 8 | `fig8` | Communication-to-application instruction ratios |
//! | Figure 9 | `fig9` | HEAVYWT speedup over single-threaded execution |
//! | Figure 10 | `fig10` | 4-cycle bus sensitivity |
//! | Figure 11 | `fig11` | 128-byte bus sensitivity |
//! | Figure 12 | `fig12` | SYNCOPTI stream-cache / queue-size optimizations |
//!
//! Run everything with `cargo run -p hfs-bench --release --bin all_figures`.
//! Set `HFS_QUICK=1` to cap per-benchmark iteration counts for a fast
//! (less steady-state) pass.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod experiments;
pub mod perfbench;
pub mod runner;
pub mod table;

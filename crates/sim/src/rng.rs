//! Deterministic pseudo-random number generation.
//!
//! The simulator must be reproducible bit-for-bit from a seed (results are
//! cached by content hash and compared across runs), so all randomness in
//! the workspace flows through this splittable, dependency-free generator
//! rather than an external crate: a SplitMix64 seed scrambler feeding an
//! xorshift64* stream.
//!
//! # Example
//!
//! ```
//! use hfs_sim::Rng64;
//!
//! let mut a = Rng64::new(42);
//! let mut b = Rng64::new(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! assert!(a.below(10) < 10);
//! ```

/// A deterministic 64-bit PRNG (SplitMix64-seeded xorshift64*).
///
/// Not cryptographically secure; used for workload address streams and
/// randomized tests only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator from `seed`. Any seed (including 0) is valid;
    /// the SplitMix64 scrambler guarantees a non-zero internal state.
    pub fn new(seed: u64) -> Self {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Rng64 {
            state: if z == 0 { 0x9E37_79B9_7F4A_7C15 } else { z },
        }
    }

    /// Derives an independent child generator. Streams seeded from
    /// distinct `stream` values are uncorrelated in practice.
    pub fn split(&self, stream: u64) -> Rng64 {
        Rng64::new(self.state ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A uniform value in `0..n` via Lemire's multiply-shift reduction.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "Rng64::below(0)");
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }

    /// A uniform value in `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "Rng64::range: empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// A uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A uniform float in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng64::new(7);
        let mut b = Rng64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Rng64::new(0);
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng64::new(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = r.below(8);
            assert!(v < 8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable: {seen:?}");
    }

    #[test]
    fn range_bounds() {
        let mut r = Rng64::new(4);
        for _ in 0..100 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn split_streams_differ() {
        let base = Rng64::new(9);
        let mut a = base.split(0);
        let mut b = base.split(1);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = Rng64::new(5);
        for _ in 0..100 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        Rng64::new(0).below(0);
    }
}

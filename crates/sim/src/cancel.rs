//! Cooperative cancellation for long-running simulations.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cloneable, thread-safe cancellation flag.
///
/// The owner of a simulation (e.g. a server dispatching jobs for remote
/// clients) keeps one handle and hands a clone to the machine; calling
/// [`CancelToken::cancel`] from any thread makes the machine abandon the
/// run at the next top-of-loop poll. Polling is a single relaxed atomic
/// load, cheap enough for the simulation hot loop.
///
/// A fresh token is not cancelled; cancellation is sticky (there is no
/// reset — make a new token instead, so a stale cancel can never leak
/// into a re-enqueued job).
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A new, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_not_cancelled() {
        assert!(!CancelToken::new().is_cancelled());
    }

    #[test]
    fn cancel_is_visible_to_all_clones() {
        let t = CancelToken::new();
        let t2 = t.clone();
        t.cancel();
        assert!(t2.is_cancelled());
        // Sticky and idempotent.
        t2.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn token_crosses_threads() {
        let t = CancelToken::new();
        let t2 = t.clone();
        std::thread::spawn(move || t2.cancel()).join().unwrap();
        assert!(t.is_cancelled());
    }
}

//! Calendar-queue event scheduler for the simulation hot loop.
//!
//! The machine's event-driven run mode replaces per-cycle `next_event`
//! polling with *pushed* wake times: whenever a component's state
//! changes, the machine schedules its next wake into a [`CalendarQueue`]
//! — a bucketed timing wheel over [`Cycle`] with an overflow min-heap
//! for events beyond the wheel's horizon. Popping the next non-empty
//! bucket yields the next cycle anything can happen, so dead windows are
//! skipped in O(1) per component instead of O(components) per advance.
//!
//! Entries are *lazily* invalidated: re-arming a token earlier simply
//! pushes a second entry, and the machine discards the superseded one
//! when it surfaces (its recorded wake no longer matches the token's
//! armed time). A stale early entry therefore costs at most one spurious
//! — and harmless — processed cycle.
//!
//! # Example
//!
//! ```
//! use hfs_sim::sched::CalendarQueue;
//! use hfs_sim::Cycle;
//!
//! let mut q = CalendarQueue::new(Cycle::ZERO);
//! q.schedule(Cycle::new(3), 0);
//! q.schedule(Cycle::new(9_000), 1); // far future: overflow heap
//! assert_eq!(q.next_due(), Some(Cycle::new(3)));
//! assert_eq!(q.pop_due(Cycle::new(5)), Some((Cycle::new(3), 0)));
//! assert_eq!(q.pop_due(Cycle::new(5)), None);
//! assert_eq!(q.next_due(), Some(Cycle::new(9_000)));
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::stats::Histogram;
use crate::Cycle;

/// Wheel size in one-cycle buckets. Events within this many cycles of
/// the cursor index directly into their bucket; later events park in the
/// overflow heap and are promoted as the cursor advances. 256 covers the
/// longest component-internal latencies (DRAM, idle-flush timeouts) for
/// the configured machines, so promotion is rare.
const WHEEL_SLOTS: u64 = 256;

/// Occupancy histogram resolution (entries outstanding at schedule time).
const OCCUPANCY_BUCKETS: usize = 64;

/// Counters describing one run of the event-driven scheduler (surfaced
/// in `MetricsReport` as `sched.*` under `HFS_METRICS=1`).
#[derive(Debug, Clone)]
pub struct SchedStats {
    /// Wake times pushed into the queue.
    pub scheduled: u64,
    /// Due entries that matched their token's armed wake time.
    pub fired: u64,
    /// Due entries superseded by a later re-arm (lazily cancelled).
    pub cancelled: u64,
    /// Cycles the machine actually stepped.
    pub cycles_processed: u64,
    /// Cycles the machine skipped by jumping between wake times.
    pub cycles_skipped: u64,
    /// Queue occupancy sampled at each `schedule` call.
    pub occupancy: Histogram,
}

impl Default for SchedStats {
    fn default() -> Self {
        SchedStats {
            scheduled: 0,
            fired: 0,
            cancelled: 0,
            cycles_processed: 0,
            cycles_skipped: 0,
            occupancy: Histogram::new(OCCUPANCY_BUCKETS),
        }
    }
}

/// A calendar queue: a timing wheel of one-cycle buckets plus an
/// overflow min-heap for events beyond the wheel horizon.
///
/// Each entry is a `(wake cycle, token)` pair; tokens are small integers
/// chosen by the caller (the machine uses one per component plus a few
/// for its own scheduled events — deadlock sweep, sampling grid,
/// watchdog deadline). The queue never coalesces entries: cancellation
/// is the caller's job via its own armed-time table (see the module
/// docs).
#[derive(Debug)]
pub struct CalendarQueue {
    /// `wheel[c % WHEEL_SLOTS]` holds every entry with wake cycle `c`
    /// for `c` in `[cursor, cursor + WHEEL_SLOTS)`. Within that window
    /// the mapping is bijective, so all entries in one bucket share the
    /// same wake cycle.
    wheel: Vec<Vec<(u64, u32)>>,
    /// All entries have wake cycle `>= cursor`; buckets behind the
    /// cursor are empty.
    cursor: u64,
    /// Entries with wake cycle `>= cursor + WHEEL_SLOTS`, promoted into
    /// the wheel as the cursor advances.
    overflow: BinaryHeap<Reverse<(u64, u32)>>,
    /// Entry count currently in the wheel (not the overflow heap).
    wheel_len: usize,
    /// Wake times pushed so far.
    scheduled: u64,
    /// Occupancy at each push.
    occupancy: Histogram,
}

impl CalendarQueue {
    /// An empty queue whose cursor starts at `start`.
    pub fn new(start: Cycle) -> CalendarQueue {
        CalendarQueue {
            wheel: vec![Vec::new(); WHEEL_SLOTS as usize],
            cursor: start.as_u64(),
            overflow: BinaryHeap::new(),
            wheel_len: 0,
            scheduled: 0,
            occupancy: Histogram::new(OCCUPANCY_BUCKETS),
        }
    }

    /// Schedules `token` to surface at cycle `at` (clamped to the
    /// cursor: the past is not reachable, so an overdue wake surfaces
    /// immediately).
    pub fn schedule(&mut self, at: Cycle, token: u32) {
        let at = at.as_u64().max(self.cursor);
        self.scheduled += 1;
        self.occupancy
            .record(self.wheel_len as u64 + self.overflow.len() as u64);
        if at < self.cursor + WHEEL_SLOTS {
            self.wheel[(at % WHEEL_SLOTS) as usize].push((at, token));
            self.wheel_len += 1;
        } else {
            self.overflow.push(Reverse((at, token)));
        }
    }

    /// Pops one entry with wake cycle `<= now`, advancing the cursor as
    /// needed; `None` once nothing remains due. Entries for one cycle
    /// surface before any entry of a later cycle (wake-time
    /// monotonicity).
    pub fn pop_due(&mut self, now: Cycle) -> Option<(Cycle, u32)> {
        let now = now.as_u64();
        loop {
            if self.cursor > now {
                return None;
            }
            if self.wheel_len == 0 {
                // Nothing inside the horizon: hop the cursor straight to
                // the earliest overflow entry instead of walking empty
                // buckets one by one.
                match self.overflow.peek() {
                    Some(&Reverse((at, _))) if at <= now => {
                        self.cursor = at;
                        self.promote();
                    }
                    _ => {
                        // The jump can pull overflow entries inside the
                        // horizon; promote them now so the wheel invariant
                        // holds for the next schedule/next_due call.
                        self.cursor = now + 1;
                        self.promote();
                        return None;
                    }
                }
                continue;
            }
            let bucket = (self.cursor % WHEEL_SLOTS) as usize;
            if let Some((at, token)) = self.wheel[bucket].pop() {
                debug_assert_eq!(at, self.cursor, "bucket holds one wake cycle");
                self.wheel_len -= 1;
                return Some((Cycle::new(at), token));
            }
            self.cursor += 1;
            self.promote();
        }
    }

    /// The earliest scheduled wake cycle, without popping. In the dense
    /// case the first bucket is non-empty and this is O(1); a long empty
    /// stretch costs one wheel scan right before a correspondingly long
    /// jump.
    pub fn next_due(&self) -> Option<Cycle> {
        let overflow_min = self.overflow.peek().map(|&Reverse((at, _))| at);
        if self.wheel_len > 0 {
            for d in 0..WHEEL_SLOTS {
                let bucket = ((self.cursor + d) % WHEEL_SLOTS) as usize;
                if let Some(&(at, _)) = self.wheel[bucket].first() {
                    // With the horizon invariant the wheel hit is always
                    // earliest, but take the min against the overflow
                    // peek so a future invariant slip can't reorder
                    // wakes silently.
                    return Some(Cycle::new(match overflow_min {
                        Some(o) => at.min(o),
                        None => at,
                    }));
                }
            }
        }
        overflow_min.map(Cycle::new)
    }

    /// Entries currently scheduled (wheel + overflow).
    pub fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    /// Whether no entries are scheduled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total `schedule` calls so far.
    pub fn scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Queue occupancy sampled at each `schedule` call.
    pub fn occupancy(&self) -> &Histogram {
        &self.occupancy
    }

    /// Moves overflow entries that now fall inside the wheel horizon
    /// into their buckets.
    fn promote(&mut self) {
        while let Some(&Reverse((at, token))) = self.overflow.peek() {
            if at >= self.cursor + WHEEL_SLOTS {
                break;
            }
            self.overflow.pop();
            self.wheel[(at % WHEEL_SLOTS) as usize].push((at, token));
            self.wheel_len += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng64;

    #[test]
    fn pop_due_is_monotone_in_wake_time() {
        // Random schedule order; pops must come back sorted by wake
        // cycle, including entries that start in the overflow heap.
        let mut q = CalendarQueue::new(Cycle::ZERO);
        let mut rng = Rng64::new(7);
        let mut expect: Vec<u64> = (0..500).map(|_| rng.below(4 * WHEEL_SLOTS)).collect();
        for (i, &at) in expect.iter().enumerate() {
            q.schedule(Cycle::new(at), i as u32);
        }
        expect.sort_unstable();
        let mut got = Vec::new();
        let mut last = 0;
        while let Some((at, _)) = q.pop_due(Cycle::new(u64::MAX / 4)) {
            assert!(at.as_u64() >= last, "pops must be monotone");
            last = at.as_u64();
            got.push(at.as_u64());
        }
        assert_eq!(got, expect);
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_entries_promote_from_overflow() {
        let mut q = CalendarQueue::new(Cycle::ZERO);
        let far = WHEEL_SLOTS * 10 + 17;
        q.schedule(Cycle::new(far), 42);
        assert_eq!(q.len(), 1);
        // Parked in the overflow heap, still visible to next_due.
        assert_eq!(q.next_due(), Some(Cycle::new(far)));
        // Not due before its time.
        assert_eq!(q.pop_due(Cycle::new(far - 1)), None);
        // Due exactly at its wake cycle, after promotion.
        assert_eq!(q.pop_due(Cycle::new(far)), Some((Cycle::new(far), 42)));
        assert!(q.is_empty());
        assert_eq!(q.next_due(), None);
    }

    #[test]
    fn near_and_far_entries_interleave_correctly() {
        let mut q = CalendarQueue::new(Cycle::new(100));
        q.schedule(Cycle::new(105), 1);
        q.schedule(Cycle::new(100 + WHEEL_SLOTS + 3), 2);
        q.schedule(Cycle::new(102), 3);
        assert_eq!(q.next_due(), Some(Cycle::new(102)));
        assert_eq!(q.pop_due(Cycle::new(200)), Some((Cycle::new(102), 3)));
        assert_eq!(q.pop_due(Cycle::new(200)), Some((Cycle::new(105), 1)));
        // The far entry is beyond `now`; nothing else is due yet.
        assert_eq!(q.pop_due(Cycle::new(200)), None);
        let far = Cycle::new(100 + WHEEL_SLOTS + 3);
        assert_eq!(q.next_due(), Some(far));
        assert_eq!(q.pop_due(far), Some((far, 2)));
    }

    #[test]
    fn empty_pop_jump_promotes_overflow_into_horizon() {
        // Regression: pop_due's cursor jump over an empty window used to
        // skip promote(), leaving an overflow entry inside the wheel
        // horizon; a later wheel schedule then shadowed it in next_due()
        // and the machine could jump past a pending armed wake.
        let mut q = CalendarQueue::new(Cycle::ZERO);
        q.schedule(Cycle::new(300), 1); // beyond horizon: overflow heap
        assert_eq!(q.pop_due(Cycle::new(100)), None); // cursor hops to 101
        q.schedule(Cycle::new(350), 2); // inside horizon: wheel
        assert_eq!(q.next_due(), Some(Cycle::new(300)));
        assert_eq!(q.pop_due(Cycle::new(400)), Some((Cycle::new(300), 1)));
        assert_eq!(q.pop_due(Cycle::new(400)), Some((Cycle::new(350), 2)));
        assert!(q.is_empty());
    }

    #[test]
    fn past_schedules_clamp_to_cursor() {
        let mut q = CalendarQueue::new(Cycle::new(50));
        q.schedule(Cycle::new(10), 7); // in the past: surfaces at cursor
        assert_eq!(q.pop_due(Cycle::new(50)), Some((Cycle::new(50), 7)));
    }

    #[test]
    fn stats_track_scheduling() {
        let mut q = CalendarQueue::new(Cycle::ZERO);
        for i in 0..10 {
            q.schedule(Cycle::new(i), i as u32);
        }
        assert_eq!(q.scheduled(), 10);
        assert_eq!(q.occupancy().count(), 10);
        // First sample sees an empty queue, last sees nine entries.
        assert_eq!(q.occupancy().percentile(100.0), Some(9));
    }

    #[test]
    fn sched_stats_default_is_zeroed() {
        let s = SchedStats::default();
        assert_eq!(s.scheduled + s.fired + s.cancelled, 0);
        assert_eq!(s.cycles_processed + s.cycles_skipped, 0);
        assert_eq!(s.occupancy.count(), 0);
    }
}

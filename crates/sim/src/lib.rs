//! Simulation kernel for the `hfs` cycle-level CMP simulator.
//!
//! This crate provides the time base and bookkeeping primitives shared by
//! every other crate in the workspace:
//!
//! * [`Cycle`] — a newtype over `u64` representing simulated time,
//! * [`TimedQueue`] and [`Pipe`] — latency-stamped message channels used to
//!   connect hardware components without shared mutable aliasing,
//! * [`stats`] — counters, histograms, and the per-component stall
//!   [`stats::Breakdown`] that reproduces the paper's Figure 7 accounting
//!   (`PreL2` / `L2` / `BUS` / `L3` / `MEM` / `PostL2`),
//! * [`Rng64`] — the workspace-wide deterministic PRNG (SplitMix64-seeded
//!   xorshift64*) behind workload address randomness and randomized tests,
//! * [`FnvMap`] — a `u64`-keyed FNV-1a open-addressing map for
//!   per-transaction hot-path state (cheaper than SipHash `HashMap`),
//! * [`ConfigError`] — validation errors for machine configuration,
//! * [`CancelToken`] — a thread-safe cooperative cancellation flag polled
//!   by long-running simulations (used by the `hfs-serve` service layer
//!   to abandon jobs whose clients disconnected),
//! * [`sched`] — the calendar queue behind the machine's event-driven
//!   run mode ([`sched::CalendarQueue`] timing wheel + overflow heap).
//!
//! # Example
//!
//! ```
//! use hfs_sim::{Cycle, Pipe};
//!
//! // A 3-cycle pipelined link: a message sent at cycle 10 pops at cycle 13.
//! let mut link: Pipe<&'static str> = Pipe::new(3);
//! link.push(Cycle::new(10), "hello");
//! assert_eq!(link.pop_ready(Cycle::new(12)), None);
//! assert_eq!(link.pop_ready(Cycle::new(13)), Some("hello"));
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod cancel;
mod cycle;
mod error;
mod map;
mod queue;
mod rng;
pub mod sched;
pub mod stats;

pub use cancel::CancelToken;
pub use cycle::Cycle;
pub use error::ConfigError;
pub use map::FnvMap;
pub use queue::{Pipe, TimedQueue};
pub use rng::Rng64;

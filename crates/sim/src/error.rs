//! Configuration validation errors.

use std::error::Error;
use std::fmt;

/// An invalid machine or component configuration.
///
/// Returned by constructors throughout the workspace when a caller supplies
/// parameters that do not describe realizable hardware (zero-way caches,
/// non-power-of-two line sizes, empty queues, and so on).
///
/// # Example
///
/// ```
/// use hfs_sim::ConfigError;
///
/// let err = ConfigError::new("queue depth must be non-zero");
/// assert_eq!(err.to_string(), "invalid configuration: queue depth must be non-zero");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    /// Creates a configuration error with a human-readable explanation.
    pub fn new(message: impl Into<String>) -> Self {
        ConfigError {
            message: message.into(),
        }
    }

    /// The explanation supplied at construction.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.message)
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_message() {
        let e = ConfigError::new("bad");
        assert_eq!(e.message(), "bad");
        assert!(e.to_string().contains("bad"));
    }

    #[test]
    fn is_std_error_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ConfigError>();
    }
}

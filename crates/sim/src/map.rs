//! A small open-addressing hash map for hot per-transaction state.
//!
//! The simulator keys almost all of its transient bookkeeping by `u64`
//! (cache-line addresses, memory tokens). `std::collections::HashMap`
//! pays for SipHash's DoS resistance on every probe, which is wasted
//! work on a trusted, in-process key space that sits on the per-cycle
//! hot path. [`FnvMap`] replaces it there: FNV-1a over the eight key
//! bytes, power-of-two capacity, linear probing, and backward-shift
//! deletion (no tombstones, so probe sequences never degrade).
//!
//! Iteration order follows the probe table and is **not** insertion
//! order; like `HashMap`, callers that fold iteration order into
//! simulation outcomes must sort first.

use std::fmt;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Initial slot count on first insert (power of two).
const INITIAL_SLOTS: usize = 16;

/// FNV-1a over the little-endian bytes of `key`.
fn fnv1a(key: u64) -> u64 {
    let mut h = FNV_OFFSET;
    for b in key.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A `u64`-keyed open-addressing map (see module docs).
#[derive(Clone)]
pub struct FnvMap<V> {
    slots: Vec<Option<(u64, V)>>,
    len: usize,
}

impl<V> FnvMap<V> {
    /// Creates an empty map; no allocation until the first insert.
    pub fn new() -> Self {
        FnvMap {
            slots: Vec::new(),
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn mask(&self) -> usize {
        self.slots.len() - 1
    }

    /// Index of the slot holding `key`, if present.
    fn find(&self, key: u64) -> Option<usize> {
        if self.slots.is_empty() {
            return None;
        }
        let mut i = (fnv1a(key) as usize) & self.mask();
        loop {
            match &self.slots[i] {
                Some((k, _)) if *k == key => return Some(i),
                Some(_) => i = (i + 1) & self.mask(),
                None => return None,
            }
        }
    }

    /// Returns a reference to the value for `key`.
    pub fn get(&self, key: u64) -> Option<&V> {
        self.find(key)
            .map(|i| &self.slots[i].as_ref().expect("occupied slot").1)
    }

    /// Returns a mutable reference to the value for `key`.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        self.find(key)
            .map(|i| &mut self.slots[i].as_mut().expect("occupied slot").1)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: u64) -> bool {
        self.find(key).is_some()
    }

    /// Inserts `key → value`, returning the previous value if any.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        if self.slots.is_empty() || self.len * 4 >= self.slots.len() * 3 {
            self.grow();
        }
        let mut i = (fnv1a(key) as usize) & self.mask();
        loop {
            match &mut self.slots[i] {
                Some((k, v)) if *k == key => {
                    return Some(std::mem::replace(v, value));
                }
                Some(_) => i = (i + 1) & self.mask(),
                None => {
                    self.slots[i] = Some((key, value));
                    self.len += 1;
                    return None;
                }
            }
        }
    }

    /// Removes `key`, returning its value if present.
    ///
    /// Uses backward-shift deletion: subsequent entries in the probe
    /// chain are moved up so lookups never cross a hole.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let mut hole = self.find(key)?;
        let (_, value) = self.slots[hole].take().expect("occupied slot");
        self.len -= 1;
        let mask = self.mask();
        let mut i = (hole + 1) & mask;
        while let Some((k, _)) = &self.slots[i] {
            let home = (fnv1a(*k) as usize) & mask;
            // Shift the entry into the hole unless the hole lies outside
            // its probe path (cyclic interval home..=i excludes hole).
            let between = if home <= i {
                home <= hole && hole <= i
            } else {
                home <= hole || hole <= i
            };
            if between {
                self.slots[hole] = self.slots[i].take();
                hole = i;
            }
            i = (i + 1) & mask;
        }
        Some(value)
    }

    /// Iterates over `(key, &value)` pairs in probe-table order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|(k, v)| (*k, v)))
    }

    /// Doubles the table (or allocates the initial one) and rehashes.
    fn grow(&mut self) {
        let new_cap = if self.slots.is_empty() {
            INITIAL_SLOTS
        } else {
            self.slots.len() * 2
        };
        let old = std::mem::replace(&mut self.slots, (0..new_cap).map(|_| None).collect());
        let mask = new_cap - 1;
        for (key, value) in old.into_iter().flatten() {
            let mut i = (fnv1a(key) as usize) & mask;
            while self.slots[i].is_some() {
                i = (i + 1) & mask;
            }
            self.slots[i] = Some((key, value));
        }
    }
}

impl<V> Default for FnvMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: fmt::Debug> fmt::Debug for FnvMap<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng64;
    use std::collections::HashMap;

    #[test]
    fn basic_insert_get_remove() {
        let mut m = FnvMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(7, "a"), None);
        assert_eq!(m.insert(7, "b"), Some("a"));
        assert_eq!(m.get(7), Some(&"b"));
        assert!(m.contains_key(7));
        assert_eq!(m.len(), 1);
        *m.get_mut(7).unwrap() = "c";
        assert_eq!(m.remove(7), Some("c"));
        assert_eq!(m.remove(7), None);
        assert!(m.is_empty());
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut m = FnvMap::new();
        for k in 0..1000u64 {
            m.insert(k, k * 3);
        }
        assert_eq!(m.len(), 1000);
        for k in 0..1000u64 {
            assert_eq!(m.get(k), Some(&(k * 3)));
        }
    }

    #[test]
    fn iter_visits_every_entry_once() {
        let mut m = FnvMap::new();
        for k in [64u64, 128, 192, 5, 999] {
            m.insert(k, ());
        }
        let mut keys: Vec<u64> = m.iter().map(|(k, _)| k).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![5, 64, 128, 192, 999]);
    }

    #[test]
    fn backward_shift_preserves_colliding_chains() {
        // Cache-line keys are multiples of the line size, a worst case
        // for weak hashes: build a dense cluster, then delete from the
        // middle and verify every survivor remains reachable.
        let mut m = FnvMap::new();
        let keys: Vec<u64> = (0..64).map(|i| i * 128).collect();
        for &k in &keys {
            m.insert(k, k + 1);
        }
        for &k in keys.iter().step_by(3) {
            assert_eq!(m.remove(k), Some(k + 1));
        }
        for (i, &k) in keys.iter().enumerate() {
            if i % 3 == 0 {
                assert_eq!(m.get(k), None);
            } else {
                assert_eq!(m.get(k), Some(&(k + 1)));
            }
        }
    }

    /// Keys whose home slot in a 16-slot table is `>= lo`, in ascending
    /// key order. Used to build probe chains that wrap past the last
    /// slot back to index 0.
    fn keys_homed_at(lo: usize, n: usize) -> Vec<u64> {
        let mask = INITIAL_SLOTS - 1;
        (0u64..)
            .filter(|&k| (fnv1a(k) as usize) & mask >= lo)
            .take(n)
            .collect()
    }

    #[test]
    fn backward_shift_across_wraparound_chain() {
        // Six keys homed in the table's top two slots must spill past
        // the end into slots 0..: every removal order then forces
        // backward shifts across the wrap boundary, where `remove`'s
        // cyclic-interval test (home > i) decides which entries move.
        // Try all 720 orders; survivors must stay reachable throughout.
        let keys = keys_homed_at(INITIAL_SLOTS - 2, 6);
        let mut full = FnvMap::new();
        for &k in &keys {
            full.insert(k, k ^ 0xdead);
        }
        assert_eq!(full.len(), keys.len());

        let mut order: Vec<usize> = (0..keys.len()).collect();
        permute(&mut order, 0, &mut |order| {
            let mut m = full.clone();
            let mut gone = vec![false; keys.len()];
            for &idx in order {
                assert_eq!(m.remove(keys[idx]), Some(keys[idx] ^ 0xdead));
                gone[idx] = true;
                for (j, &k) in keys.iter().enumerate() {
                    let want = if gone[j] { None } else { Some(&(k ^ 0xdead)) };
                    assert_eq!(m.get(k), want, "key {k:#x} after removing {idx}");
                }
            }
            assert!(m.is_empty());
        });
    }

    /// Calls `f` with every permutation of `v[at..]` (Heap-style swap
    /// recursion); `v` is restored on return.
    fn permute(v: &mut Vec<usize>, at: usize, f: &mut impl FnMut(&[usize])) {
        if at == v.len() {
            f(v);
            return;
        }
        for i in at..v.len() {
            v.swap(at, i);
            permute(v, at + 1, f);
            v.swap(at, i);
        }
    }

    #[test]
    fn wrapped_chain_churn_matches_std_hashmap() {
        // Model test pinned to the wrap-around regime: every key homes
        // in the top quarter of a 16-slot table and occupancy is held
        // below the growth threshold, so probe chains routinely cross
        // the end of the table and deletions shift entries back across
        // it. The reference HashMap must agree after every operation.
        let pool = keys_homed_at(INITIAL_SLOTS - INITIAL_SLOTS / 4, 40);
        let mut rng = Rng64::new(0x3a7b);
        let mut ours = FnvMap::new();
        let mut reference: HashMap<u64, u64> = HashMap::new();
        for step in 0..30_000u64 {
            let key = pool[(rng.next_u64() % pool.len() as u64) as usize];
            // Growth triggers at len * 4 >= slots * 3; stay under it.
            let full = ours.len() == INITIAL_SLOTS * 3 / 4 - 1;
            match rng.next_u64() % 4 {
                0 | 1 if !full => {
                    assert_eq!(ours.insert(key, step), reference.insert(key, step));
                }
                3 => {
                    assert_eq!(ours.get(key), reference.get(&key));
                    assert_eq!(ours.contains_key(key), reference.contains_key(&key));
                }
                _ => {
                    assert_eq!(ours.remove(key), reference.remove(&key));
                }
            }
            assert_eq!(ours.len(), reference.len());
        }
        // The table must never have grown: all churn stayed wrapped.
        assert_eq!(ours.slots.len(), INITIAL_SLOTS);
        let mut a: Vec<(u64, u64)> = ours.iter().map(|(k, v)| (k, *v)).collect();
        a.sort_unstable();
        let mut b: Vec<(u64, u64)> = reference.into_iter().collect();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn random_ops_match_std_hashmap() {
        let mut rng = Rng64::new(0xf17e);
        let mut ours = FnvMap::new();
        let mut reference: HashMap<u64, u64> = HashMap::new();
        for step in 0..20_000u64 {
            // Small key space forces heavy insert/remove churn on the
            // same slots, exercising deletion shifts and rehashing.
            let key = rng.next_u64() % 257;
            match rng.next_u64() % 4 {
                0 | 1 => {
                    assert_eq!(ours.insert(key, step), reference.insert(key, step));
                }
                2 => {
                    assert_eq!(ours.remove(key), reference.remove(&key));
                }
                _ => {
                    assert_eq!(ours.get(key), reference.get(&key));
                }
            }
            assert_eq!(ours.len(), reference.len());
        }
        let mut a: Vec<(u64, u64)> = ours.iter().map(|(k, v)| (k, *v)).collect();
        a.sort_unstable();
        let mut b: Vec<(u64, u64)> = reference.into_iter().collect();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}

//! Latency-stamped message channels.
//!
//! Hardware components in the simulator never call each other directly;
//! they exchange messages through [`TimedQueue`]s (arbitrary per-message
//! delivery times) or [`Pipe`]s (fixed-latency pipelined links). Both
//! preserve FIFO order among messages that become ready on the same cycle,
//! which keeps the simulation deterministic.

use std::collections::VecDeque;

use crate::Cycle;

/// A FIFO of messages, each carrying the cycle at which it becomes visible
/// to the receiver.
///
/// Messages must be pushed with monotonically non-decreasing ready times
/// relative to the *front* of the queue only in the sense that a message
/// can never be popped before an earlier-pushed message: `TimedQueue` is a
/// strict FIFO whose head is additionally gated by its ready stamp. This
/// models an ordered channel (a wire or queue) with per-message latency.
///
/// # Example
///
/// ```
/// use hfs_sim::{Cycle, TimedQueue};
///
/// let mut q = TimedQueue::new();
/// q.push(Cycle::new(5), 'a');
/// q.push(Cycle::new(3), 'b'); // behind 'a' despite earlier stamp
/// assert_eq!(q.pop_ready(Cycle::new(4)), None);
/// assert_eq!(q.pop_ready(Cycle::new(5)), Some('a'));
/// assert_eq!(q.pop_ready(Cycle::new(5)), Some('b'));
/// ```
#[derive(Debug, Clone)]
pub struct TimedQueue<T> {
    entries: VecDeque<(Cycle, T)>,
}

impl<T> TimedQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        TimedQueue {
            entries: VecDeque::new(),
        }
    }

    /// Enqueues `value`, to become visible at `ready`.
    pub fn push(&mut self, ready: Cycle, value: T) {
        self.entries.push_back((ready, value));
    }

    /// Pops the head if its ready stamp is at or before `now`.
    pub fn pop_ready(&mut self, now: Cycle) -> Option<T> {
        match self.entries.front() {
            Some((ready, _)) if *ready <= now => self.entries.pop_front().map(|(_, v)| v),
            _ => None,
        }
    }

    /// Peeks at the head message if it is ready at `now`.
    pub fn peek_ready(&self, now: Cycle) -> Option<&T> {
        match self.entries.front() {
            Some((ready, v)) if *ready <= now => Some(v),
            _ => None,
        }
    }

    /// The ready stamp of the head message, if any.
    ///
    /// Because the queue is a strict FIFO gated only by its head stamp,
    /// this is the *exact* earliest cycle at which the next pop can
    /// succeed — the building block for event-driven fast-forwarding.
    pub fn next_ready(&self) -> Option<Cycle> {
        self.entries.front().map(|(ready, _)| *ready)
    }

    /// Number of messages in flight (ready or not).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no messages are in flight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all in-flight messages in FIFO order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.entries.iter().map(|(_, v)| v)
    }

    /// Drains every message regardless of readiness (used by context-switch
    /// and teardown paths that must collect in-flight state).
    pub fn drain_all(&mut self) -> impl Iterator<Item = T> + '_ {
        self.entries.drain(..).map(|(_, v)| v)
    }
}

impl<T> Default for TimedQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// A fixed-latency, fully pipelined link: every message pushed at cycle `c`
/// becomes visible at `c + latency`. One message may be accepted per push
/// call; callers model initiation-interval limits themselves.
///
/// # Example
///
/// ```
/// use hfs_sim::{Cycle, Pipe};
///
/// let mut p = Pipe::new(2);
/// p.push(Cycle::new(0), 1u32);
/// p.push(Cycle::new(1), 2u32);
/// assert_eq!(p.pop_ready(Cycle::new(2)), Some(1));
/// assert_eq!(p.pop_ready(Cycle::new(2)), None); // 2 arrives at cycle 3
/// assert_eq!(p.pop_ready(Cycle::new(3)), Some(2));
/// ```
#[derive(Debug, Clone)]
pub struct Pipe<T> {
    latency: u64,
    inner: TimedQueue<T>,
}

impl<T> Pipe<T> {
    /// Creates a pipelined link with the given end-to-end latency in cycles.
    pub fn new(latency: u64) -> Self {
        Pipe {
            latency,
            inner: TimedQueue::new(),
        }
    }

    /// The end-to-end latency of this link.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Sends `value` at cycle `now`; it arrives at `now + latency`.
    pub fn push(&mut self, now: Cycle, value: T) {
        self.inner.push(now + self.latency, value);
    }

    /// Receives the head message if it has arrived by `now`.
    pub fn pop_ready(&mut self, now: Cycle) -> Option<T> {
        self.inner.pop_ready(now)
    }

    /// Peeks at the head message if it has arrived by `now`.
    pub fn peek_ready(&self, now: Cycle) -> Option<&T> {
        self.inner.peek_ready(now)
    }

    /// The arrival stamp of the head message, if any (see
    /// [`TimedQueue::next_ready`]).
    pub fn next_ready(&self) -> Option<Cycle> {
        self.inner.next_ready()
    }

    /// Number of messages in flight.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the link is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Drains every in-flight message regardless of arrival time.
    pub fn drain_all(&mut self) -> impl Iterator<Item = T> + '_ {
        self.inner.drain_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_queue_fifo_gated_by_ready() {
        let mut q = TimedQueue::new();
        q.push(Cycle::new(10), "x");
        q.push(Cycle::new(2), "y");
        assert_eq!(q.len(), 2);
        assert!(q.pop_ready(Cycle::new(9)).is_none());
        assert_eq!(q.peek_ready(Cycle::new(10)), Some(&"x"));
        assert_eq!(q.pop_ready(Cycle::new(10)), Some("x"));
        // "y" was stamped earlier but is strictly behind "x".
        assert_eq!(q.pop_ready(Cycle::new(10)), Some("y"));
        assert!(q.is_empty());
    }

    #[test]
    fn next_ready_reports_head_stamp() {
        let mut q = TimedQueue::new();
        assert_eq!(q.next_ready(), None);
        q.push(Cycle::new(10), "x");
        q.push(Cycle::new(2), "y");
        // The head gates the whole queue, even when a later message has
        // an earlier stamp.
        assert_eq!(q.next_ready(), Some(Cycle::new(10)));
        q.pop_ready(Cycle::new(10));
        assert_eq!(q.next_ready(), Some(Cycle::new(2)));

        let mut p = Pipe::new(4);
        assert_eq!(p.next_ready(), None);
        p.push(Cycle::new(1), ());
        assert_eq!(p.next_ready(), Some(Cycle::new(5)));
    }

    #[test]
    fn timed_queue_drain_ignores_readiness() {
        let mut q = TimedQueue::new();
        q.push(Cycle::new(100), 1);
        q.push(Cycle::new(200), 2);
        let all: Vec<_> = q.drain_all().collect();
        assert_eq!(all, vec![1, 2]);
        assert!(q.is_empty());
    }

    #[test]
    fn pipe_applies_latency() {
        let mut p = Pipe::new(5);
        assert_eq!(p.latency(), 5);
        p.push(Cycle::new(7), 42u8);
        assert!(p.pop_ready(Cycle::new(11)).is_none());
        assert_eq!(p.pop_ready(Cycle::new(12)), Some(42));
    }

    #[test]
    fn pipe_zero_latency_is_same_cycle() {
        let mut p = Pipe::new(0);
        p.push(Cycle::new(3), ());
        assert_eq!(p.pop_ready(Cycle::new(3)), Some(()));
    }

    #[test]
    fn pipe_preserves_order_of_backtoback_messages() {
        let mut p = Pipe::new(3);
        for i in 0..4u32 {
            p.push(Cycle::new(u64::from(i)), i);
        }
        let mut out = Vec::new();
        for now in 0..10u64 {
            while let Some(v) = p.pop_ready(Cycle::new(now)) {
                out.push((now, v));
            }
        }
        assert_eq!(out, vec![(3, 0), (4, 1), (5, 2), (6, 3)]);
    }

    #[test]
    fn iter_visits_in_fifo_order() {
        let mut q = TimedQueue::new();
        q.push(Cycle::new(1), 'a');
        q.push(Cycle::new(2), 'b');
        let seen: Vec<_> = q.iter().copied().collect();
        assert_eq!(seen, vec!['a', 'b']);
    }
}

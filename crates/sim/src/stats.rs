//! Statistics: counters, histograms, and the Figure 7 stall breakdown.
//!
//! The paper aggregates non-overlappable stall cycles into six components
//! according to which part of the machine holds the instruction that is
//! blocking forward progress: everything before the L2 (`PreL2`), the L2
//! itself, the shared bus, the L3, main memory, and everything after the L2
//! (`PostL2`: fills and writebacks). [`Breakdown`] reproduces exactly that
//! accounting and is reported by every simulation run.

use std::fmt;
use std::ops::{Add, AddAssign, Index};

/// The machine region charged for a stall cycle, following the paper's
/// Figure 7 component naming.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StallComponent {
    /// Pipeline stages preceding the L2: front end, scoreboard
    /// dependences, fences, OzQ back-pressure, queue-full/empty dormancy.
    PreL2,
    /// Time spent occupying or waiting for the private L2 cache.
    L2,
    /// Time spent arbitrating for or occupying the shared bus.
    Bus,
    /// Time spent in the shared L3 cache.
    L3,
    /// Time spent in main memory.
    Mem,
    /// Stages following the L2: L1 fill and writeback.
    PostL2,
}

impl StallComponent {
    /// All components, in the paper's plotting order (bottom of the stacked
    /// bar first).
    pub const ALL: [StallComponent; 6] = [
        StallComponent::PreL2,
        StallComponent::L2,
        StallComponent::Bus,
        StallComponent::L3,
        StallComponent::Mem,
        StallComponent::PostL2,
    ];

    /// Short label used in tables ("PreL2", "L2", "BUS", "L3", "MEM",
    /// "PostL2").
    pub fn label(self) -> &'static str {
        match self {
            StallComponent::PreL2 => "PreL2",
            StallComponent::L2 => "L2",
            StallComponent::Bus => "BUS",
            StallComponent::L3 => "L3",
            StallComponent::Mem => "MEM",
            StallComponent::PostL2 => "PostL2",
        }
    }

    fn index(self) -> usize {
        match self {
            StallComponent::PreL2 => 0,
            StallComponent::L2 => 1,
            StallComponent::Bus => 2,
            StallComponent::L3 => 3,
            StallComponent::Mem => 4,
            StallComponent::PostL2 => 5,
        }
    }
}

impl fmt::Display for StallComponent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-component stall-cycle totals plus busy (committing) cycles.
///
/// The invariant `busy + sum(components) == total cycles` is maintained by
/// the core model and checked by integration tests.
///
/// # Example
///
/// ```
/// use hfs_sim::stats::{Breakdown, StallComponent};
///
/// let mut b = Breakdown::new();
/// b.charge(StallComponent::Bus, 3);
/// b.charge_busy(7);
/// assert_eq!(b[StallComponent::Bus], 3);
/// assert_eq!(b.total(), 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Breakdown {
    components: [u64; 6],
    busy: u64,
}

impl Breakdown {
    /// Creates an all-zero breakdown.
    pub fn new() -> Self {
        Breakdown::default()
    }

    /// Adds `cycles` of stall attributed to `component`.
    pub fn charge(&mut self, component: StallComponent, cycles: u64) {
        self.components[component.index()] += cycles;
    }

    /// Adds `cycles` of productive (committing) time.
    pub fn charge_busy(&mut self, cycles: u64) {
        self.busy += cycles;
    }

    /// Productive cycles (at least one instruction committed).
    pub fn busy(&self) -> u64 {
        self.busy
    }

    /// Total stall cycles across all components.
    pub fn stall_total(&self) -> u64 {
        self.components.iter().sum()
    }

    /// Total accounted cycles: busy plus all stalls.
    pub fn total(&self) -> u64 {
        self.busy + self.stall_total()
    }

    /// The fraction of accounted time charged to `component`
    /// (0.0 if nothing has been recorded).
    pub fn fraction(&self, component: StallComponent) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self[component] as f64 / total as f64
        }
    }

    /// Iterates `(component, cycles)` pairs in plotting order.
    pub fn iter(&self) -> impl Iterator<Item = (StallComponent, u64)> + '_ {
        StallComponent::ALL.iter().map(move |&c| (c, self[c]))
    }
}

impl Index<StallComponent> for Breakdown {
    type Output = u64;

    fn index(&self, component: StallComponent) -> &u64 {
        &self.components[component.index()]
    }
}

impl Add for Breakdown {
    type Output = Breakdown;

    fn add(self, rhs: Breakdown) -> Breakdown {
        let mut out = self;
        out += rhs;
        out
    }
}

impl AddAssign for Breakdown {
    fn add_assign(&mut self, rhs: Breakdown) {
        for i in 0..6 {
            self.components[i] += rhs.components[i];
        }
        self.busy += rhs.busy;
    }
}

impl fmt::Display for Breakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "busy={}", self.busy)?;
        for (c, v) in self.iter() {
            write!(f, " {}={}", c.label(), v)?;
        }
        Ok(())
    }
}

/// A monotonically increasing event counter with a human-readable name.
///
/// # Example
///
/// ```
/// use hfs_sim::stats::Counter;
///
/// let mut misses = Counter::new("l2_misses");
/// misses.add(3);
/// misses.inc();
/// assert_eq!(misses.value(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counter {
    name: &'static str,
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new(name: &'static str) -> Self {
        Counter { name, value: 0 }
    }

    /// The counter's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Adds one.
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.name, self.value)
    }
}

/// A fixed-bucket latency histogram for distributions such as
/// consume-to-use delay.
///
/// Buckets are `[0, 1, 2, ..., max-1, >=max]`.
///
/// # Example
///
/// ```
/// use hfs_sim::stats::Histogram;
///
/// let mut h = Histogram::new(4);
/// h.record(0);
/// h.record(2);
/// h.record(99); // lands in the overflow bucket
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.bucket(2), 1);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u64,
}

impl Histogram {
    /// Creates a histogram with unit-width buckets `0..max`.
    pub fn new(max: usize) -> Self {
        Histogram {
            buckets: vec![0; max],
            overflow: 0,
            count: 0,
            sum: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += value;
        match self.buckets.get_mut(value as usize) {
            Some(b) => *b += 1,
            None => self.overflow += 1,
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean of all samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Samples recorded in bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bucket range.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Samples at or beyond the last unit bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The nearest-rank `p`-th percentile (`0.0 < p <= 100.0`) of the
    /// recorded samples, or `None` when the histogram is empty.
    ///
    /// Samples that landed in the overflow bucket are reported as the
    /// first out-of-range value (`buckets.len()`), a lower bound on their
    /// true magnitude.
    ///
    /// # Example
    ///
    /// ```
    /// use hfs_sim::stats::Histogram;
    ///
    /// let mut h = Histogram::new(8);
    /// for v in [1, 2, 2, 3] {
    ///     h.record(v);
    /// }
    /// assert_eq!(h.percentile(50.0), Some(2));
    /// assert_eq!(h.percentile(100.0), Some(3));
    /// ```
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        // Nearest-rank: the smallest value with at least ceil(p/100 * n)
        // samples at or below it. Rank 0 (p == 0) degrades to rank 1.
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (value, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(value as u64);
            }
        }
        Some(self.buckets.len() as u64)
    }
}

/// Geometric mean of a series of positive ratios, as used for the paper's
/// "GeoMean" bars. Returns 0.0 for an empty series.
///
/// # Example
///
/// ```
/// let g = hfs_sim::stats::geomean([1.0, 4.0]);
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0f64;
    let mut n = 0usize;
    for v in values {
        debug_assert!(v > 0.0, "geomean over non-positive value {v}");
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_charging_and_totals() {
        let mut b = Breakdown::new();
        b.charge(StallComponent::PreL2, 2);
        b.charge(StallComponent::Mem, 5);
        b.charge_busy(3);
        assert_eq!(b[StallComponent::PreL2], 2);
        assert_eq!(b[StallComponent::Mem], 5);
        assert_eq!(b.stall_total(), 7);
        assert_eq!(b.total(), 10);
        assert_eq!(b.busy(), 3);
        assert!((b.fraction(StallComponent::Mem) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn breakdown_addition() {
        let mut a = Breakdown::new();
        a.charge(StallComponent::Bus, 1);
        a.charge_busy(1);
        let mut b = Breakdown::new();
        b.charge(StallComponent::Bus, 2);
        b.charge(StallComponent::L3, 4);
        let c = a + b;
        assert_eq!(c[StallComponent::Bus], 3);
        assert_eq!(c[StallComponent::L3], 4);
        assert_eq!(c.busy(), 1);
    }

    #[test]
    fn breakdown_fraction_empty_is_zero() {
        let b = Breakdown::new();
        assert_eq!(b.fraction(StallComponent::L2), 0.0);
    }

    #[test]
    fn breakdown_iter_order_matches_all() {
        let b = Breakdown::new();
        let order: Vec<_> = b.iter().map(|(c, _)| c).collect();
        assert_eq!(order, StallComponent::ALL.to_vec());
    }

    #[test]
    fn component_labels_are_paper_names() {
        let labels: Vec<_> = StallComponent::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels, vec!["PreL2", "L2", "BUS", "L3", "MEM", "PostL2"]);
    }

    #[test]
    fn counter_behaviour() {
        let mut c = Counter::new("x");
        c.inc();
        c.add(4);
        assert_eq!(c.value(), 5);
        assert_eq!(c.name(), "x");
        assert_eq!(c.to_string(), "x=5");
    }

    #[test]
    fn histogram_buckets_and_mean() {
        let mut h = Histogram::new(3);
        h.record(0);
        h.record(1);
        h.record(1);
        h.record(10);
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 2);
        assert_eq!(h.bucket(2), 0);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 12);
        assert!((h.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_empty_mean_is_zero() {
        assert_eq!(Histogram::new(1).mean(), 0.0);
    }

    #[test]
    fn percentile_empty_is_none() {
        assert_eq!(Histogram::new(4).percentile(50.0), None);
        assert_eq!(Histogram::new(0).percentile(99.0), None);
    }

    #[test]
    fn percentile_single_sample() {
        let mut h = Histogram::new(10);
        h.record(7);
        for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), Some(7), "p={p}");
        }
    }

    #[test]
    fn percentile_nearest_rank() {
        let mut h = Histogram::new(100);
        for v in [15, 20, 35, 40, 50] {
            h.record(v);
        }
        // Classic nearest-rank worked example.
        assert_eq!(h.percentile(30.0), Some(20));
        assert_eq!(h.percentile(40.0), Some(20));
        assert_eq!(h.percentile(50.0), Some(35));
        assert_eq!(h.percentile(100.0), Some(50));
    }

    #[test]
    fn percentile_overflow_bucket() {
        let mut h = Histogram::new(4);
        h.record(1);
        h.record(2);
        h.record(1000); // overflow
        h.record(2000); // overflow
        assert_eq!(h.percentile(50.0), Some(2));
        // Overflow samples clamp to the first out-of-range value.
        assert_eq!(h.percentile(99.0), Some(4));
        assert_eq!(h.percentile(100.0), Some(4));
    }

    #[test]
    fn percentile_all_overflow() {
        let mut h = Histogram::new(2);
        h.record(9);
        assert_eq!(h.percentile(50.0), Some(2));
    }

    #[test]
    fn geomean_values() {
        assert_eq!(geomean(std::iter::empty()), 0.0);
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean([3.0]) - 3.0).abs() < 1e-12);
    }
}

//! The simulated time base.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in CPU clock cycles.
///
/// `Cycle` is a transparent newtype over `u64` ([C-NEWTYPE]) so that
/// simulated time cannot be confused with ordinary counters. Arithmetic is
/// saturating-free and panics on overflow in debug builds, exactly like the
/// underlying integer type.
///
/// # Example
///
/// ```
/// use hfs_sim::Cycle;
///
/// let start = Cycle::new(100);
/// let end = start + 41;
/// assert_eq!(end.as_u64(), 141);
/// assert_eq!(end - start, 41);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// The zero cycle, the instant simulation begins.
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a cycle from a raw count.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Cycle(raw)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the cycle immediately after this one.
    #[inline]
    #[must_use]
    pub const fn next(self) -> Self {
        Cycle(self.0 + 1)
    }

    /// Saturating subtraction: the number of cycles elapsed since
    /// `earlier`, or zero if `earlier` is in the future.
    #[inline]
    #[must_use]
    pub const fn saturating_since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Returns the later of two cycles.
    #[inline]
    #[must_use]
    pub fn max(self, other: Cycle) -> Cycle {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}", self.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;

    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;

    /// Number of cycles between two points in time.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: Cycle) -> u64 {
        self.0 - rhs.0
    }
}

impl From<u64> for Cycle {
    fn from(raw: u64) -> Self {
        Cycle(raw)
    }
}

impl From<Cycle> for u64 {
    fn from(c: Cycle) -> u64 {
        c.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(Cycle::ZERO.as_u64(), 0);
        assert_eq!(Cycle::new(7).as_u64(), 7);
        assert_eq!(Cycle::from(9u64), Cycle::new(9));
        assert_eq!(u64::from(Cycle::new(9)), 9);
    }

    #[test]
    fn arithmetic() {
        let c = Cycle::new(10);
        assert_eq!((c + 5).as_u64(), 15);
        assert_eq!(c.next().as_u64(), 11);
        assert_eq!(Cycle::new(15) - c, 5);
        let mut m = c;
        m += 3;
        assert_eq!(m.as_u64(), 13);
    }

    #[test]
    fn ordering_and_max() {
        assert!(Cycle::new(1) < Cycle::new(2));
        assert_eq!(Cycle::new(1).max(Cycle::new(2)), Cycle::new(2));
        assert_eq!(Cycle::new(5).max(Cycle::new(2)), Cycle::new(5));
    }

    #[test]
    fn saturating_since() {
        assert_eq!(Cycle::new(10).saturating_since(Cycle::new(4)), 6);
        assert_eq!(Cycle::new(4).saturating_since(Cycle::new(10)), 0);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Cycle::new(3).to_string(), "cycle 3");
    }
}

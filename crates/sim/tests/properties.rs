//! Randomized property tests for the simulation kernel primitives,
//! driven by the workspace's deterministic [`Rng64`] (std-only — no
//! external property-testing framework).

use hfs_sim::stats::{geomean, Breakdown, StallComponent};
use hfs_sim::{Cycle, Pipe, Rng64, TimedQueue};

const CASES: u64 = 64;

/// TimedQueue is a strict FIFO: pop order equals push order no matter
/// what ready stamps the messages carry.
#[test]
fn timed_queue_is_fifo() {
    let mut rng = Rng64::new(0x51_F1F0);
    for _ in 0..CASES {
        let len = 1 + rng.below(49) as usize;
        let stamps: Vec<u64> = (0..len).map(|_| rng.below(1000)).collect();
        let mut q = TimedQueue::new();
        for (i, &s) in stamps.iter().enumerate() {
            q.push(Cycle::new(s), i);
        }
        let mut out = Vec::new();
        let horizon = stamps.iter().copied().max().unwrap_or(0) + 1;
        for t in 0..=horizon {
            while let Some(v) = q.pop_ready(Cycle::new(t)) {
                out.push(v);
            }
        }
        assert_eq!(out, (0..stamps.len()).collect::<Vec<_>>());
        assert!(q.is_empty());
    }
}

/// A message can never be popped before its ready stamp.
#[test]
fn timed_queue_respects_stamps() {
    let mut rng = Rng64::new(0x51_0002);
    for _ in 0..CASES {
        let stamp = rng.range(1, 10_000);
        let mut q = TimedQueue::new();
        q.push(Cycle::new(stamp), ());
        assert!(q.pop_ready(Cycle::new(stamp - 1)).is_none());
        assert!(q.pop_ready(Cycle::new(stamp)).is_some());
    }
}

/// Pipes deliver exactly `latency` cycles after the send.
#[test]
fn pipe_latency_exact() {
    let mut rng = Rng64::new(0x51_0003);
    for _ in 0..CASES {
        let lat = rng.below(64);
        let sent_at = rng.below(1000);
        let mut p = Pipe::new(lat);
        p.push(Cycle::new(sent_at), 1u8);
        if lat > 0 {
            assert!(p.pop_ready(Cycle::new(sent_at + lat - 1)).is_none());
        }
        assert_eq!(p.pop_ready(Cycle::new(sent_at + lat)), Some(1));
    }
}

/// Breakdown totals always equal the sum of parts.
#[test]
fn breakdown_conserves() {
    let mut rng = Rng64::new(0x51_0004);
    for _ in 0..CASES {
        let busy = rng.below(1000);
        let n_charges = rng.below(40) as usize;
        let mut b = Breakdown::new();
        b.charge_busy(busy);
        let mut sum = 0;
        for _ in 0..n_charges {
            let c = StallComponent::ALL[rng.below(6) as usize];
            let n = rng.range(1, 100);
            b.charge(c, n);
            sum += n;
        }
        assert_eq!(b.stall_total(), sum);
        assert_eq!(b.total(), sum + busy);
        let fracs: f64 = StallComponent::ALL.iter().map(|&c| b.fraction(c)).sum();
        if b.total() > 0 {
            assert!((fracs - (sum as f64 / b.total() as f64)).abs() < 1e-9);
        }
    }
}

/// Geomean lies between min and max of its inputs.
#[test]
fn geomean_bounded() {
    let mut rng = Rng64::new(0x51_0005);
    for _ in 0..CASES {
        let len = 1 + rng.below(19) as usize;
        let vals: Vec<f64> = (0..len).map(|_| 0.01 + rng.f64() * 99.99).collect();
        let g = geomean(vals.iter().copied());
        let lo = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().copied().fold(0.0f64, f64::max);
        assert!(g >= lo * 0.999 && g <= hi * 1.001, "{lo} <= {g} <= {hi}");
    }
}

//! Property-based tests for the simulation kernel primitives.

use hfs_sim::stats::{geomean, Breakdown, StallComponent};
use hfs_sim::{Cycle, Pipe, TimedQueue};
use proptest::prelude::*;

proptest! {
    /// TimedQueue is a strict FIFO: pop order equals push order no matter
    /// what ready stamps the messages carry.
    #[test]
    fn timed_queue_is_fifo(stamps in prop::collection::vec(0u64..1000, 1..50)) {
        let mut q = TimedQueue::new();
        for (i, &s) in stamps.iter().enumerate() {
            q.push(Cycle::new(s), i);
        }
        let mut out = Vec::new();
        let horizon = stamps.iter().copied().max().unwrap_or(0) + 1;
        for t in 0..=horizon {
            while let Some(v) = q.pop_ready(Cycle::new(t)) {
                out.push(v);
            }
        }
        prop_assert_eq!(out, (0..stamps.len()).collect::<Vec<_>>());
        prop_assert!(q.is_empty());
    }

    /// A message can never be popped before its ready stamp.
    #[test]
    fn timed_queue_respects_stamps(stamp in 1u64..10_000) {
        let mut q = TimedQueue::new();
        q.push(Cycle::new(stamp), ());
        prop_assert!(q.pop_ready(Cycle::new(stamp - 1)).is_none());
        prop_assert!(q.pop_ready(Cycle::new(stamp)).is_some());
    }

    /// Pipes deliver exactly `latency` cycles after the send.
    #[test]
    fn pipe_latency_exact(lat in 0u64..64, sent_at in 0u64..1000) {
        let mut p = Pipe::new(lat);
        p.push(Cycle::new(sent_at), 1u8);
        if lat > 0 {
            prop_assert!(p.pop_ready(Cycle::new(sent_at + lat - 1)).is_none());
        }
        prop_assert_eq!(p.pop_ready(Cycle::new(sent_at + lat)), Some(1));
    }

    /// Breakdown totals always equal the sum of parts.
    #[test]
    fn breakdown_conserves(charges in prop::collection::vec((0usize..6, 1u64..100), 0..40),
                           busy in 0u64..1000) {
        let mut b = Breakdown::new();
        b.charge_busy(busy);
        let mut sum = 0;
        for (c, n) in &charges {
            b.charge(StallComponent::ALL[*c], *n);
            sum += n;
        }
        prop_assert_eq!(b.stall_total(), sum);
        prop_assert_eq!(b.total(), sum + busy);
        let fracs: f64 = StallComponent::ALL.iter().map(|&c| b.fraction(c)).sum();
        if b.total() > 0 {
            prop_assert!((fracs - (sum as f64 / b.total() as f64)).abs() < 1e-9);
        }
    }

    /// Geomean lies between min and max of its inputs.
    #[test]
    fn geomean_bounded(vals in prop::collection::vec(0.01f64..100.0, 1..20)) {
        let g = geomean(vals.iter().copied());
        let lo = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().copied().fold(0.0f64, f64::max);
        prop_assert!(g >= lo * 0.999 && g <= hi * 1.001, "{lo} <= {g} <= {hi}");
    }
}

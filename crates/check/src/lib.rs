//! Cycle-level machine checking for the `hfs` simulator.
//!
//! The simulator's headline numbers only mean something if the snoop
//! coherence protocol, the split-transaction bus, and the queue backends
//! are *correct*. This crate is the opt-in referee: a [`Checker`] handle
//! is threaded through the whole machine in the same carried-handle style
//! as `hfs_trace::Tracer`, and every component reports the events the
//! invariants need. Violations are recorded (never panicked) so the
//! machine loop can terminate the run with a structured error naming the
//! offending cycle.
//!
//! Four invariant families are enforced:
//!
//! * **coherence** — protocol-specific census and staleness rules
//!   selected by [`ProtocolKind`] (see [`invariant_table`]): MSI/MESI
//!   forbid replicated Modified owners and hits on snoop-invalidated
//!   lines, MESI additionally forbids an Exclusive copy coexisting with
//!   any other copy, and Dragon — which never invalidates — requires
//!   every bus-update to reach every sharer
//!   (`dragon.update_delivered`) and every L2 hit to observe the latest
//!   broadcast version (`dragon.sharer_stale_word`);
//! * **bus** — at most one grant per arbitration slot, every accepted
//!   split-transaction request answered by exactly one response within
//!   [`REQUEST_AGE_BOUND`] cycles, and bounded round-robin wait
//!   ([`BUS_WAIT_BOUND`] slots) for any agent with a queued request;
//! * **resource conservation** — OzQ occupancy ≤ capacity with
//!   inserts = removals + resident, synchronization-array
//!   `injected == delivered + in-network` with per-queue occupancy ≤
//!   depth and no dropped consumer wake-ups, and stream-cache entries
//!   that are both forwarded and value-coherent with memory;
//! * **differential data** ([`CheckLevel::Full`]) — every committed
//!   load/store is replayed against a second golden memory, so a
//!   timing-model bug that corrupts a value is caught at the offending
//!   cycle instead of as a wrong figure.
//!
//! The checker is *observation-only*: with no [`Mutation`] armed it never
//! changes simulated state, so cycle counts are bit-identical with
//! checking on or off. Mutations are the exception by design — they are
//! test-only deliberate bugs used by the fault-injection suite to prove
//! the checker is not vacuous.
//!
//! # Example
//!
//! ```
//! use hfs_check::{CheckLevel, Checker};
//! use hfs_sim::Cycle;
//!
//! let c = Checker::with_level(CheckLevel::Basic);
//! c.on_bus_slot(Cycle::new(8));
//! c.on_grant(Cycle::new(8), 0);
//! c.on_grant(Cycle::new(8), 1); // second grant in the same slot
//! assert_eq!(c.violations().len(), 1);
//! assert_eq!(c.violations()[0].rule, "bus.double_grant");
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::rc::Rc;

use hfs_isa::{CoreId, QueueId};
use hfs_sim::Cycle;

/// Violations recorded past this cap are counted but not stored.
const MAX_VIOLATIONS: usize = 32;

/// Largest CMP the checker sizes its per-core tables for (matches the
/// machine model's 8-core bus).
const MAX_CORES: usize = 8;

/// Maximum consecutive arbitration slots an agent with a queued address
/// request may go ungranted before the round-robin is declared unfair.
/// Generous: with 8 agents and two-pass app-priority arbitration, a legal
/// head-of-queue wait is a few tens of slots.
pub const BUS_WAIT_BOUND: u64 = 4096;

/// Maximum age in cycles of an accepted-but-unanswered split-transaction
/// request. A legal worst case (L3 + DRAM + bus queueing) is a few
/// hundred cycles; well below the machine's deadlock window so a dropped
/// response is attributed to the bus, not reported as a generic deadlock.
pub const REQUEST_AGE_BOUND: u64 = 20_000;

/// Which coherence protocol's invariant table the checker enforces.
///
/// Mirrors the machine model's protocol axis without depending on it
/// (the memory crate depends on this one). The default is the paper's
/// MSI baseline; the machine sets the kind when a checker is attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ProtocolKind {
    /// 3-state write-invalidate.
    #[default]
    Msi,
    /// 4-state write-invalidate with exclusive-clean fills.
    Mesi,
    /// 4-state write-update (no invalidations ever).
    Dragon,
}

impl ProtocolKind {
    /// Every protocol kind, in sweep order.
    pub const ALL: [ProtocolKind; 3] =
        [ProtocolKind::Msi, ProtocolKind::Mesi, ProtocolKind::Dragon];

    /// Lower-case label matching the config axis.
    pub fn label(self) -> &'static str {
        match self {
            ProtocolKind::Msi => "msi",
            ProtocolKind::Mesi => "mesi",
            ProtocolKind::Dragon => "dragon",
        }
    }
}

/// Rule families shared by every protocol: the bus, resource
/// conservation, and differential-data invariants are
/// protocol-independent.
const SHARED_RULES: &[&str] = &[
    "bus.double_grant",
    "bus.starvation",
    "bus.orphan_response",
    "bus.lost_response",
    "ozq.overflow",
    "ozq.conservation",
    "sa.conservation",
    "sa.queue_overflow",
    "sa.dropped_wake",
    "sc.not_forwarded",
    "sc.stale_value",
    "data.load_mismatch",
];

/// The complete set of rules the checker may emit for one protocol.
///
/// The fault-injection suite uses these tables two ways: every seeded
/// mutation must be caught by a rule *in the armed protocol's table*
/// (a violation outside the table means the census logic ran the wrong
/// protocol), and every protocol-specific rule is exercised by at least
/// one mutation so no table row is vacuous.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvariantTable {
    /// The protocol this table applies to.
    pub protocol: ProtocolKind,
    /// Protocol-specific coherence rules.
    pub coherence: &'static [&'static str],
    /// Protocol-independent rules (identical across tables).
    pub shared: &'static [&'static str],
}

impl InvariantTable {
    /// Whether `rule` belongs to this protocol's table.
    pub fn contains(&self, rule: &str) -> bool {
        self.coherence.contains(&rule) || self.shared.contains(&rule)
    }
}

static MSI_TABLE: InvariantTable = InvariantTable {
    protocol: ProtocolKind::Msi,
    coherence: &[
        "msi.multiple_modified",
        "msi.shared_with_modified",
        "msi.hit_after_invalidate",
        "msi.foreign_state",
    ],
    shared: SHARED_RULES,
};

static MESI_TABLE: InvariantTable = InvariantTable {
    protocol: ProtocolKind::Mesi,
    coherence: &[
        "mesi.multiple_modified",
        "mesi.shared_with_modified",
        "mesi.exclusive_with_sharers",
        "mesi.hit_after_invalidate",
        "mesi.foreign_state",
    ],
    shared: SHARED_RULES,
};

static DRAGON_TABLE: InvariantTable = InvariantTable {
    protocol: ProtocolKind::Dragon,
    coherence: &[
        "dragon.multiple_owners",
        "dragon.exclusive_with_sharers",
        "dragon.update_delivered",
        "dragon.sharer_stale_word",
        "dragon.invalidate_in_update_protocol",
    ],
    shared: SHARED_RULES,
};

/// The invariant table the checker enforces for `protocol`.
pub fn invariant_table(protocol: ProtocolKind) -> &'static InvariantTable {
    match protocol {
        ProtocolKind::Msi => &MSI_TABLE,
        ProtocolKind::Mesi => &MESI_TABLE,
        ProtocolKind::Dragon => &DRAGON_TABLE,
    }
}

/// How much checking the machine performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckLevel {
    /// No checking; every hook is a branch on a `None`.
    #[default]
    Off,
    /// Structural invariants: MSI, bus, resource conservation.
    Basic,
    /// [`CheckLevel::Basic`] plus the differential data check against a
    /// golden memory.
    Full,
}

impl CheckLevel {
    /// Reads the `HFS_CHECK` environment variable: unset, empty, or `0`
    /// is [`CheckLevel::Off`]; `basic` is [`CheckLevel::Basic`]; any
    /// other value (conventionally `1` or `full`) is
    /// [`CheckLevel::Full`].
    pub fn from_env() -> CheckLevel {
        match std::env::var("HFS_CHECK") {
            Err(_) => CheckLevel::Off,
            Ok(v) if v.is_empty() || v == "0" => CheckLevel::Off,
            Ok(v) if v.eq_ignore_ascii_case("basic") => CheckLevel::Basic,
            Ok(_) => CheckLevel::Full,
        }
    }
}

/// A deliberate, test-only fault seeded into the machine to prove the
/// checker detects it. The fault-injection suite arms each mutation in
/// turn and asserts the corresponding invariant fires — a vacuous
/// checker fails CI.
///
/// Mutations only take effect when armed on an enabled checker; an
/// unarmed machine behaves identically with checking on or off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Skip one snoop invalidation on an RdX, leaving a stale Shared
    /// copy coexisting with the new Modified owner.
    SkipSnoopInvalidate,
    /// Grant two address transactions in one arbitration slot.
    DoubleGrantBus,
    /// Permanently skip bus agent 1 in round-robin arbitration.
    StarveBusAgent,
    /// Drop one fill response on the bus data channel.
    DropBusResponse,
    /// Account an OzQ insert without actually occupying the slot.
    LeakOzqSlot,
    /// Lose one in-network item inside the synchronization array.
    SyncArrayLoseItem,
    /// Skip one cycle's consumer wake-ups at the synchronization array
    /// while data is deliverable.
    DropConsumerWake,
    /// Corrupt one value as it fills the stream cache.
    CorruptForwardValue,
    /// Deliver one load completion with a corrupted value.
    CorruptLoadValue,
    /// Perform one store with a corrupted value (the architectural
    /// event still reports the original).
    CorruptStoreValue,
    /// Install one MESI/Dragon read fill as Exclusive even though
    /// another L2 still holds the line.
    GrantExclusiveWithSharers,
    /// Skip applying one Dragon bus-update at a sharer's L2 while still
    /// counting that sharer — the delivery census comes up short.
    SkipDragonUpdate,
    /// Hide one sharer from a Dragon bus-update entirely (neither
    /// counted nor updated), leaving its copy silently stale.
    HideDragonSharer,
}

impl Mutation {
    /// Every mutation, in a fixed order, for exhaustive fault-injection
    /// sweeps.
    pub const ALL: [Mutation; 13] = [
        Mutation::SkipSnoopInvalidate,
        Mutation::DoubleGrantBus,
        Mutation::StarveBusAgent,
        Mutation::DropBusResponse,
        Mutation::LeakOzqSlot,
        Mutation::SyncArrayLoseItem,
        Mutation::DropConsumerWake,
        Mutation::CorruptForwardValue,
        Mutation::CorruptLoadValue,
        Mutation::CorruptStoreValue,
        Mutation::GrantExclusiveWithSharers,
        Mutation::SkipDragonUpdate,
        Mutation::HideDragonSharer,
    ];
}

/// One detected invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Cycle the violation was detected at.
    pub at: u64,
    /// Stable dotted rule name, e.g. `msi.multiple_modified`.
    pub rule: &'static str,
    /// Human-readable specifics (line, core, values involved).
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[cycle {}] {}: {}", self.at, self.rule, self.detail)
    }
}

/// The mutable state behind an enabled checker.
#[derive(Debug)]
struct CheckState {
    level: CheckLevel,
    /// Which protocol's invariant table applies.
    protocol: ProtocolKind,
    violations: Vec<Violation>,
    /// Violations recorded past [`MAX_VIOLATIONS`].
    dropped: u64,
    /// Golden word-granular memory for the differential data check.
    golden: HashMap<u64, u64>,
    /// `(core, line)` pairs snoop-invalidated and not refilled since.
    invalidated: HashSet<(u8, u64)>,
    /// Dragon: broadcast version per line, bumped on every bus-update.
    line_version: HashMap<u64, u64>,
    /// Dragon: last broadcast version each `(core, line)` copy has
    /// observed, set at fill and at update delivery.
    holder_version: HashMap<(u8, u64), u64>,
    /// Cycle of the current bus arbitration slot.
    slot_at: u64,
    /// Address grants issued in the current slot.
    slot_grants: u32,
    /// Consecutive ungranted slots per agent with a queued request.
    waiting_slots: [u64; MAX_CORES],
    /// Accepted address requests awaiting their data response:
    /// `(line, core, accepted_at)`.
    outstanding: Vec<(u64, u8, u64)>,
    /// OzQ inserts per core since attach.
    ozq_inserted: [u64; MAX_CORES],
    /// OzQ entry removals per core since attach.
    ozq_removed: [u64; MAX_CORES],
    /// Armed fault, if any.
    mutation: Option<Mutation>,
    /// One-shot mutations that already fired.
    fired: bool,
}

impl CheckState {
    fn new(level: CheckLevel) -> Self {
        CheckState {
            level,
            protocol: ProtocolKind::Msi,
            violations: Vec::new(),
            dropped: 0,
            golden: HashMap::new(),
            invalidated: HashSet::new(),
            line_version: HashMap::new(),
            holder_version: HashMap::new(),
            slot_at: u64::MAX,
            slot_grants: 0,
            waiting_slots: [0; MAX_CORES],
            outstanding: Vec::new(),
            ozq_inserted: [0; MAX_CORES],
            ozq_removed: [0; MAX_CORES],
            mutation: None,
            fired: false,
        }
    }

    fn violate(&mut self, at: Cycle, rule: &'static str, detail: String) {
        if self.violations.len() >= MAX_VIOLATIONS {
            self.dropped += 1;
            return;
        }
        self.violations.push(Violation {
            at: at.as_u64(),
            rule,
            detail,
        });
    }
}

/// A cloneable handle to a per-machine check sink, in the same
/// carried-handle style as `hfs_trace::Tracer`: all clones share one
/// state, the disabled path is a branch on a `None`, and handles are
/// deliberately not `Send` (a machine lives on one worker thread).
#[derive(Clone, Debug, Default)]
pub struct Checker {
    inner: Option<Rc<RefCell<CheckState>>>,
}

impl Checker {
    /// The no-op checker: every hook is a branch on a `None`.
    pub fn disabled() -> Checker {
        Checker { inner: None }
    }

    /// A checker at the given level ([`CheckLevel::Off`] yields the
    /// disabled checker).
    pub fn with_level(level: CheckLevel) -> Checker {
        match level {
            CheckLevel::Off => Checker::disabled(),
            l => Checker {
                inner: Some(Rc::new(RefCell::new(CheckState::new(l)))),
            },
        }
    }

    /// A checker configured from the `HFS_CHECK` environment variable
    /// (see [`CheckLevel::from_env`]).
    pub fn from_env() -> Checker {
        Checker::with_level(CheckLevel::from_env())
    }

    /// Whether any checking is active.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether the differential data check is active.
    pub fn is_full(&self) -> bool {
        self.level() == CheckLevel::Full
    }

    /// The active check level.
    pub fn level(&self) -> CheckLevel {
        match &self.inner {
            Some(s) => s.borrow().level,
            None => CheckLevel::Off,
        }
    }

    /// Snapshot of the recorded violations.
    pub fn violations(&self) -> Vec<Violation> {
        match &self.inner {
            Some(s) => s.borrow().violations.clone(),
            None => Vec::new(),
        }
    }

    /// Total violations detected, including any dropped past the
    /// storage cap.
    pub fn violation_count(&self) -> u64 {
        match &self.inner {
            Some(s) => {
                let s = s.borrow();
                s.violations.len() as u64 + s.dropped
            }
            None => 0,
        }
    }

    /// The first violation rendered as a one-line report, if any — what
    /// the machine loop turns into its verification error.
    pub fn first_violation(&self) -> Option<String> {
        let s = self.inner.as_ref()?;
        let s = s.borrow();
        let first = s.violations.first()?;
        let more = s.violations.len() as u64 + s.dropped - 1;
        Some(if more == 0 {
            format!("machine-check: {first}")
        } else {
            format!("machine-check: {first} (+{more} more)")
        })
    }

    /// Records a violation directly — the escape hatch for component
    /// checks with no dedicated hook.
    pub fn report(&self, at: Cycle, rule: &'static str, f: impl FnOnce() -> String) {
        if let Some(s) = &self.inner {
            s.borrow_mut().violate(at, rule, f());
        }
    }

    // ----- fault injection ---------------------------------------------

    /// Arms a test-only mutation. Requires an enabled checker (the
    /// fault-injection suite always checks while injecting).
    pub fn set_mutation(&self, m: Mutation) {
        if let Some(s) = &self.inner {
            s.borrow_mut().mutation = Some(m);
        }
    }

    /// Whether `m` is armed and has not fired yet; marks it fired.
    /// Components call this at the exact site the fault applies, so each
    /// one-shot mutation perturbs the machine exactly once.
    pub fn fire_once(&self, m: Mutation) -> bool {
        match &self.inner {
            Some(s) => {
                let mut s = s.borrow_mut();
                if s.mutation == Some(m) && !s.fired {
                    s.fired = true;
                    true
                } else {
                    false
                }
            }
            None => false,
        }
    }

    /// Whether `m` is armed, without consuming it — for persistent
    /// faults like [`Mutation::StarveBusAgent`].
    pub fn mutation_active(&self, m: Mutation) -> bool {
        match &self.inner {
            Some(s) => s.borrow().mutation == Some(m),
            None => false,
        }
    }

    // ----- (a) coherence (per-protocol) --------------------------------

    /// Selects which protocol's invariant table this checker enforces.
    /// Call when attaching the checker to a machine; defaults to MSI.
    pub fn set_protocol(&self, protocol: ProtocolKind) {
        if let Some(s) = &self.inner {
            s.borrow_mut().protocol = protocol;
        }
    }

    /// The protocol whose invariant table is being enforced.
    pub fn protocol(&self) -> ProtocolKind {
        match &self.inner {
            Some(s) => s.borrow().protocol,
            None => ProtocolKind::Msi,
        }
    }

    /// Reports the cross-L2 state census for `line` after a coherence
    /// event: each argument is the number of private L2s holding the
    /// line in that state (for Dragon read `modified` as EM, `exclusive`
    /// as EC, `shared` as SC and `shared_modified` as SM). The rules
    /// applied come from the active protocol's [`invariant_table`].
    pub fn coherence_states(
        &self,
        at: Cycle,
        line: u64,
        modified: u32,
        exclusive: u32,
        shared: u32,
        shared_modified: u32,
    ) {
        let Some(s) = &self.inner else { return };
        let mut s = s.borrow_mut();
        let total = modified + exclusive + shared + shared_modified;
        match s.protocol {
            ProtocolKind::Msi => {
                if modified > 1 {
                    s.violate(
                        at,
                        "msi.multiple_modified",
                        format!("line {line:#x} has {modified} Modified owners"),
                    );
                }
                if modified >= 1 && shared >= 1 {
                    s.violate(
                        at,
                        "msi.shared_with_modified",
                        format!(
                            "line {line:#x} is Modified in one L2 and Shared in {shared} other(s)"
                        ),
                    );
                }
                if exclusive + shared_modified > 0 {
                    s.violate(
                        at,
                        "msi.foreign_state",
                        format!(
                            "line {line:#x} holds MESI/Dragon states under MSI \
                             ({exclusive} Exclusive, {shared_modified} SharedModified)"
                        ),
                    );
                }
            }
            ProtocolKind::Mesi => {
                if modified > 1 {
                    s.violate(
                        at,
                        "mesi.multiple_modified",
                        format!("line {line:#x} has {modified} Modified owners"),
                    );
                }
                if modified >= 1 && shared >= 1 {
                    s.violate(
                        at,
                        "mesi.shared_with_modified",
                        format!(
                            "line {line:#x} is Modified in one L2 and Shared in {shared} other(s)"
                        ),
                    );
                }
                if exclusive >= 1 && total > 1 {
                    s.violate(
                        at,
                        "mesi.exclusive_with_sharers",
                        format!(
                            "line {line:#x} is Exclusive in one L2 but {} cop(ies) exist",
                            total
                        ),
                    );
                }
                if shared_modified > 0 {
                    s.violate(
                        at,
                        "mesi.foreign_state",
                        format!(
                            "line {line:#x} holds {shared_modified} SharedModified cop(ies) under MESI"
                        ),
                    );
                }
            }
            ProtocolKind::Dragon => {
                let owners = modified + shared_modified;
                if owners > 1 {
                    s.violate(
                        at,
                        "dragon.multiple_owners",
                        format!("line {line:#x} has {owners} dirty owners (EM/SM)"),
                    );
                }
                if (modified >= 1 || exclusive >= 1) && total > 1 {
                    s.violate(
                        at,
                        "dragon.exclusive_with_sharers",
                        format!(
                            "line {line:#x} is exclusive (EM/EC) in one L2 but {total} cop(ies) exist"
                        ),
                    );
                }
            }
        }
    }

    /// Records that `core`'s L2 copy of `line` was snoop-invalidated.
    /// Under Dragon this is itself a violation: an update protocol never
    /// invalidates.
    pub fn on_invalidate(&self, at: Cycle, core: CoreId, line: u64) {
        if let Some(s) = &self.inner {
            let mut s = s.borrow_mut();
            if s.protocol == ProtocolKind::Dragon {
                s.violate(
                    at,
                    "dragon.invalidate_in_update_protocol",
                    format!(
                        "core {} had line {line:#x} snoop-invalidated under Dragon",
                        core.0
                    ),
                );
            }
            s.invalidated.insert((core.0, line));
        }
    }

    /// Records that `core`'s L2 (re)gained a valid copy of `line`. A
    /// fresh fill carries the line's current data, so it also observes
    /// the latest Dragon broadcast version.
    pub fn on_line_filled(&self, core: CoreId, line: u64) {
        if let Some(s) = &self.inner {
            let mut s = s.borrow_mut();
            s.invalidated.remove(&(core.0, line));
            let v = s.line_version.get(&line).copied().unwrap_or(0);
            s.holder_version.insert((core.0, line), v);
        }
    }

    /// Registers one granted Dragon bus-update for `line` issued by
    /// `from`: `holders` other L2s held the line and `updated` of them
    /// applied the new word. Bumps the line's broadcast version; the
    /// writer itself is current by construction.
    pub fn on_bus_update(&self, at: Cycle, from: CoreId, line: u64, holders: u32, updated: u32) {
        let Some(s) = &self.inner else { return };
        let mut s = s.borrow_mut();
        let v = s.line_version.entry(line).or_insert(0);
        *v += 1;
        let v = *v;
        s.holder_version.insert((from.0, line), v);
        if updated < holders {
            s.violate(
                at,
                "dragon.update_delivered",
                format!(
                    "bus-update of line {line:#x} by core {} reached {updated} of {holders} sharer(s)",
                    from.0
                ),
            );
        }
    }

    /// Records that `core`'s copy of `line` applied the current
    /// bus-update broadcast.
    pub fn on_update_applied(&self, core: CoreId, line: u64) {
        if let Some(s) = &self.inner {
            let mut s = s.borrow_mut();
            let v = s.line_version.get(&line).copied().unwrap_or(0);
            s.holder_version.insert((core.0, line), v);
        }
    }

    /// Reports an L2 access that hit in `core`'s array. Under MSI/MESI a
    /// hit on a line the checker saw invalidated (and never refilled) is
    /// a stale-data bug; under Dragon a hit on a copy that missed a
    /// bus-update broadcast is one.
    pub fn on_l2_hit(&self, at: Cycle, core: CoreId, line: u64) {
        let Some(s) = &self.inner else { return };
        let mut s = s.borrow_mut();
        match s.protocol {
            ProtocolKind::Dragon => {
                let current = s.line_version.get(&line).copied().unwrap_or(0);
                let seen = s
                    .holder_version
                    .get(&(core.0, line))
                    .copied()
                    .unwrap_or(current);
                if seen < current {
                    s.violate(
                        at,
                        "dragon.sharer_stale_word",
                        format!(
                            "core {} hit line {line:#x} at broadcast version {seen}, bus is at {current}",
                            core.0
                        ),
                    );
                    // Report each missed broadcast once, not per hit.
                    s.holder_version.insert((core.0, line), current);
                }
            }
            p => {
                if s.invalidated.contains(&(core.0, line)) {
                    let rule = match p {
                        ProtocolKind::Mesi => "mesi.hit_after_invalidate",
                        _ => "msi.hit_after_invalidate",
                    };
                    s.violate(
                        at,
                        rule,
                        format!("core {} hit line {line:#x} after snoop-invalidate", core.0),
                    );
                }
            }
        }
    }

    // ----- (b) bus ------------------------------------------------------

    /// Opens a new arbitration slot at `at`.
    pub fn on_bus_slot(&self, at: Cycle) {
        if let Some(s) = &self.inner {
            let mut s = s.borrow_mut();
            s.slot_at = at.as_u64();
            s.slot_grants = 0;
        }
    }

    /// Reports an address-phase grant to `agent` in the current slot.
    pub fn on_grant(&self, at: Cycle, agent: u8) {
        let Some(s) = &self.inner else { return };
        let mut s = s.borrow_mut();
        s.slot_grants += 1;
        if (agent as usize) < MAX_CORES {
            s.waiting_slots[agent as usize] = 0;
        }
        if s.slot_grants > 1 {
            let (n, slot) = (s.slot_grants, s.slot_at);
            s.violate(
                at,
                "bus.double_grant",
                format!("{n} grants in the arbitration slot at cycle {slot}"),
            );
        }
    }

    /// Reports that `agent` ended an arbitration slot with a queued
    /// address request and no grant.
    pub fn on_agent_waiting(&self, at: Cycle, agent: u8) {
        let Some(s) = &self.inner else { return };
        let mut s = s.borrow_mut();
        let Some(w) = s.waiting_slots.get_mut(agent as usize) else {
            return;
        };
        *w += 1;
        if *w > BUS_WAIT_BOUND {
            *w = 0;
            s.violate(
                at,
                "bus.starvation",
                format!("agent {agent} waited more than {BUS_WAIT_BOUND} arbitration slots"),
            );
        }
    }

    /// Registers an accepted split-transaction request (`core` asked for
    /// `line`); it must be answered by exactly one response.
    pub fn on_addr_request(&self, at: Cycle, core: CoreId, line: u64) {
        if let Some(s) = &self.inner {
            s.borrow_mut().outstanding.push((line, core.0, at.as_u64()));
        }
    }

    /// Matches a data response (a line fill for `core`) against its
    /// outstanding request; an unmatched response is a protocol bug.
    pub fn on_addr_response(&self, at: Cycle, core: CoreId, line: u64) {
        let Some(s) = &self.inner else { return };
        let mut s = s.borrow_mut();
        match s
            .outstanding
            .iter()
            .position(|&(l, c, _)| l == line && c == core.0)
        {
            Some(i) => {
                s.outstanding.remove(i);
            }
            None => s.violate(
                at,
                "bus.orphan_response",
                format!(
                    "fill of line {line:#x} for core {} matches no request",
                    core.0
                ),
            ),
        }
    }

    /// Ages the outstanding-request table; a request unanswered for more
    /// than [`REQUEST_AGE_BOUND`] cycles means its response was lost.
    pub fn audit_outstanding(&self, at: Cycle) {
        let Some(s) = &self.inner else { return };
        let mut s = s.borrow_mut();
        let now = at.as_u64();
        while let Some(i) = s
            .outstanding
            .iter()
            .position(|&(_, _, since)| now.saturating_sub(since) > REQUEST_AGE_BOUND)
        {
            let (line, core, since) = s.outstanding.remove(i);
            s.violate(
                at,
                "bus.lost_response",
                format!("core {core} request for line {line:#x} (cycle {since}) never answered"),
            );
        }
    }

    // ----- (c) resource conservation -----------------------------------

    /// Accounts one OzQ entry allocation on `core`.
    pub fn on_ozq_insert(&self, core: CoreId) {
        if let Some(s) = &self.inner {
            if let Some(n) = s.borrow_mut().ozq_inserted.get_mut(core.0 as usize) {
                *n += 1;
            }
        }
    }

    /// Accounts `n` OzQ entry removals (completion or cancellation) on
    /// `core`.
    pub fn on_ozq_removed(&self, core: CoreId, n: u64) {
        if let Some(s) = &self.inner {
            if let Some(t) = s.borrow_mut().ozq_removed.get_mut(core.0 as usize) {
                *t += n;
            }
        }
    }

    /// Audits one core's OzQ: occupancy must not exceed capacity, and
    /// inserts must equal removals plus resident entries.
    pub fn ozq_audit(&self, at: Cycle, core: CoreId, occupancy: usize, capacity: usize) {
        let Some(s) = &self.inner else { return };
        let mut s = s.borrow_mut();
        if occupancy > capacity {
            s.violate(
                at,
                "ozq.overflow",
                format!("core {} OzQ holds {occupancy}/{capacity} entries", core.0),
            );
        }
        let idx = core.0 as usize;
        if idx < MAX_CORES {
            let (ins, rem) = (s.ozq_inserted[idx], s.ozq_removed[idx]);
            if ins != rem + occupancy as u64 {
                s.violate(
                    at,
                    "ozq.conservation",
                    format!(
                        "core {}: {ins} inserts != {rem} removals + {occupancy} resident",
                        core.0
                    ),
                );
            }
        }
    }

    /// Audits the synchronization array's global conservation law:
    /// everything injected is either delivered or still in the network.
    pub fn sync_array_audit(&self, at: Cycle, injected: u64, delivered: u64, in_network: u64) {
        let Some(s) = &self.inner else { return };
        if injected != delivered + in_network {
            s.borrow_mut().violate(
                at,
                "sa.conservation",
                format!("injected {injected} != delivered {delivered} + in-network {in_network}"),
            );
        }
    }

    /// Audits one synchronization-array ring: occupancy ≤ depth.
    pub fn sync_array_queue(&self, at: Cycle, q: QueueId, occupancy: usize, depth: usize) {
        let Some(s) = &self.inner else { return };
        if occupancy > depth {
            s.borrow_mut().violate(
                at,
                "sa.queue_overflow",
                format!("queue {} holds {occupancy}/{depth} entries", q.0),
            );
        }
    }

    /// Audits wake liveness after the synchronization array's wake pass:
    /// a consumer still parked on `q` while its ring has data and consume
    /// budget remains means a wake-up was dropped.
    pub fn sync_array_wake(&self, at: Cycle, q: QueueId, occupancy: usize, budget_left: u64) {
        let Some(s) = &self.inner else { return };
        if occupancy > 0 && budget_left > 0 {
            s.borrow_mut().violate(
                at,
                "sa.dropped_wake",
                format!(
                    "queue {}: consumer parked with {occupancy} deliverable item(s) and budget left",
                    q.0
                ),
            );
        }
    }

    /// Audits one stream-cache entry: it must cover a forwarded slot and
    /// its value must match memory (`expected`).
    pub fn stream_cache_entry(
        &self,
        at: Cycle,
        q: QueueId,
        slot: u64,
        value: u64,
        expected: u64,
        forwarded: u64,
    ) {
        let Some(s) = &self.inner else { return };
        let mut s = s.borrow_mut();
        if slot >= forwarded {
            s.violate(
                at,
                "sc.not_forwarded",
                format!(
                    "queue {} slot {slot} cached but only {forwarded} forwarded",
                    q.0
                ),
            );
        }
        if value != expected {
            s.violate(
                at,
                "sc.stale_value",
                format!(
                    "queue {} slot {slot}: cached {value:#x}, memory has {expected:#x}",
                    q.0
                ),
            );
        }
    }

    // ----- (d) differential data ---------------------------------------

    /// Seeds the golden memory from the functional memory's current
    /// words; call once when attaching the checker to a machine.
    pub fn seed_golden(&self, words: impl Iterator<Item = (u64, u64)>) {
        if let Some(s) = &self.inner {
            let mut s = s.borrow_mut();
            if s.level == CheckLevel::Full {
                s.golden.extend(words);
            }
        }
    }

    /// Replays a committed store against the golden memory.
    pub fn on_store(&self, _at: Cycle, addr: u64, value: u64) {
        if let Some(s) = &self.inner {
            let mut s = s.borrow_mut();
            if s.level == CheckLevel::Full {
                s.golden.insert(addr & !7, value);
            }
        }
    }

    /// Checks a committed load's delivered value against the golden
    /// memory.
    pub fn on_load(&self, at: Cycle, addr: u64, value: u64) {
        let Some(s) = &self.inner else { return };
        let mut s = s.borrow_mut();
        if s.level != CheckLevel::Full {
            return;
        }
        let expected = s.golden.get(&(addr & !7)).copied().unwrap_or(0);
        if value != expected {
            s.violate(
                at,
                "data.load_mismatch",
                format!("load {addr:#x} returned {value:#x}, golden has {expected:#x}"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(c: u64) -> Cycle {
        Cycle::new(c)
    }

    #[test]
    fn disabled_checker_records_nothing() {
        let c = Checker::disabled();
        assert!(!c.is_enabled());
        c.on_grant(at(0), 0);
        c.on_grant(at(0), 1);
        c.on_load(at(0), 8, 42);
        assert_eq!(c.violation_count(), 0);
        assert!(c.first_violation().is_none());
        assert!(!c.fire_once(Mutation::LeakOzqSlot));
    }

    #[test]
    fn clones_share_state() {
        let c = Checker::with_level(CheckLevel::Basic);
        let c2 = c.clone();
        c2.report(at(7), "test.rule", || "shared".into());
        assert_eq!(c.violations().len(), 1);
        assert!(c.first_violation().unwrap().contains("test.rule"));
    }

    #[test]
    fn double_grant_detected() {
        let c = Checker::with_level(CheckLevel::Basic);
        c.on_bus_slot(at(4));
        c.on_grant(at(4), 0);
        assert_eq!(c.violation_count(), 0);
        c.on_grant(at(4), 2);
        assert_eq!(c.violations()[0].rule, "bus.double_grant");
        // A fresh slot resets the count.
        c.on_bus_slot(at(8));
        c.on_grant(at(8), 1);
        assert_eq!(c.violation_count(), 1);
    }

    #[test]
    fn starvation_bound_fires() {
        let c = Checker::with_level(CheckLevel::Basic);
        for i in 0..=BUS_WAIT_BOUND {
            c.on_agent_waiting(at(i), 3);
        }
        assert_eq!(c.violations()[0].rule, "bus.starvation");
        // A grant resets the counter.
        let c = Checker::with_level(CheckLevel::Basic);
        for i in 0..BUS_WAIT_BOUND {
            c.on_agent_waiting(at(i), 3);
        }
        c.on_grant(at(9_999), 3);
        c.on_agent_waiting(at(10_000), 3);
        assert_eq!(c.violation_count(), 0);
    }

    #[test]
    fn request_response_matching() {
        let c = Checker::with_level(CheckLevel::Basic);
        c.on_addr_request(at(10), CoreId(0), 0x40);
        c.on_addr_response(at(200), CoreId(0), 0x40);
        assert_eq!(c.violation_count(), 0);
        c.on_addr_response(at(201), CoreId(0), 0x40);
        assert_eq!(c.violations()[0].rule, "bus.orphan_response");
    }

    #[test]
    fn lost_response_ages_out() {
        let c = Checker::with_level(CheckLevel::Basic);
        c.on_addr_request(at(10), CoreId(1), 0x80);
        c.audit_outstanding(at(10 + REQUEST_AGE_BOUND));
        assert_eq!(c.violation_count(), 0);
        c.audit_outstanding(at(11 + REQUEST_AGE_BOUND));
        assert_eq!(c.violations()[0].rule, "bus.lost_response");
        // Consumed: a second audit does not re-report.
        c.audit_outstanding(at(12 + REQUEST_AGE_BOUND));
        assert_eq!(c.violation_count(), 1);
    }

    #[test]
    fn msi_census_rules() {
        let c = Checker::with_level(CheckLevel::Basic);
        c.coherence_states(at(5), 0x100, 1, 0, 0, 0);
        c.coherence_states(at(5), 0x100, 0, 0, 3, 0);
        assert_eq!(c.violation_count(), 0);
        c.coherence_states(at(6), 0x100, 2, 0, 0, 0);
        c.coherence_states(at(7), 0x100, 1, 0, 1, 0);
        c.coherence_states(at(8), 0x100, 0, 1, 0, 0);
        let v = c.violations();
        assert_eq!(v[0].rule, "msi.multiple_modified");
        assert_eq!(v[1].rule, "msi.shared_with_modified");
        assert_eq!(v[2].rule, "msi.foreign_state");
    }

    #[test]
    fn mesi_census_rules() {
        let c = Checker::with_level(CheckLevel::Basic);
        c.set_protocol(ProtocolKind::Mesi);
        assert_eq!(c.protocol(), ProtocolKind::Mesi);
        c.coherence_states(at(5), 0x100, 0, 1, 0, 0); // lone Exclusive: fine
        c.coherence_states(at(5), 0x100, 1, 0, 0, 0);
        c.coherence_states(at(5), 0x100, 0, 0, 2, 0);
        assert_eq!(c.violation_count(), 0);
        c.coherence_states(at(6), 0x100, 0, 1, 1, 0);
        assert_eq!(c.violations()[0].rule, "mesi.exclusive_with_sharers");
        c.coherence_states(at(7), 0x100, 2, 0, 0, 0);
        c.coherence_states(at(8), 0x100, 1, 0, 1, 0);
        c.coherence_states(at(9), 0x100, 0, 0, 0, 1);
        let rules: Vec<&str> = c.violations().iter().map(|v| v.rule).collect();
        assert!(rules.contains(&"mesi.multiple_modified"));
        assert!(rules.contains(&"mesi.shared_with_modified"));
        assert!(rules.contains(&"mesi.foreign_state"));
    }

    #[test]
    fn dragon_census_rules() {
        let c = Checker::with_level(CheckLevel::Basic);
        c.set_protocol(ProtocolKind::Dragon);
        c.coherence_states(at(5), 0x100, 0, 0, 2, 1); // SM owner + SC sharers
        c.coherence_states(at(5), 0x100, 1, 0, 0, 0); // lone EM
        c.coherence_states(at(5), 0x100, 0, 1, 0, 0); // lone EC
        assert_eq!(c.violation_count(), 0);
        c.coherence_states(at(6), 0x100, 1, 0, 0, 1); // EM + SM: two owners
        assert_eq!(c.violations()[0].rule, "dragon.multiple_owners");
        c.coherence_states(at(7), 0x100, 0, 1, 1, 0); // EC + SC
        let rules: Vec<&str> = c.violations().iter().map(|v| v.rule).collect();
        assert!(rules.contains(&"dragon.exclusive_with_sharers"));
    }

    #[test]
    fn dragon_forbids_invalidate() {
        let c = Checker::with_level(CheckLevel::Basic);
        c.set_protocol(ProtocolKind::Dragon);
        c.on_invalidate(at(10), CoreId(1), 0x40);
        assert_eq!(
            c.violations()[0].rule,
            "dragon.invalidate_in_update_protocol"
        );
    }

    #[test]
    fn dragon_update_delivery_census() {
        let c = Checker::with_level(CheckLevel::Basic);
        c.set_protocol(ProtocolKind::Dragon);
        c.on_bus_update(at(10), CoreId(0), 0x40, 2, 2);
        assert_eq!(c.violation_count(), 0);
        c.on_bus_update(at(20), CoreId(0), 0x40, 2, 1);
        assert_eq!(c.violations()[0].rule, "dragon.update_delivered");
    }

    #[test]
    fn dragon_stale_sharer_word() {
        let c = Checker::with_level(CheckLevel::Basic);
        c.set_protocol(ProtocolKind::Dragon);
        c.on_line_filled(CoreId(1), 0x40);
        c.on_l2_hit(at(5), CoreId(1), 0x40);
        assert_eq!(c.violation_count(), 0);
        // Core 0 broadcasts an update; core 1 applies it: still clean.
        c.on_bus_update(at(10), CoreId(0), 0x40, 1, 1);
        c.on_update_applied(CoreId(1), 0x40);
        c.on_l2_hit(at(11), CoreId(1), 0x40);
        assert_eq!(c.violation_count(), 0);
        // A second broadcast silently misses core 1 (counts made to
        // agree, as a hidden-sharer bug would): the next hit is stale.
        c.on_bus_update(at(20), CoreId(0), 0x40, 0, 0);
        c.on_l2_hit(at(21), CoreId(1), 0x40);
        assert_eq!(c.violations()[0].rule, "dragon.sharer_stale_word");
        // Reported once, and a refill clears the staleness.
        c.on_l2_hit(at(22), CoreId(1), 0x40);
        assert_eq!(c.violation_count(), 1);
        c.on_bus_update(at(30), CoreId(0), 0x40, 0, 0);
        c.on_line_filled(CoreId(1), 0x40);
        c.on_l2_hit(at(31), CoreId(1), 0x40);
        assert_eq!(c.violation_count(), 1);
    }

    #[test]
    fn invariant_tables_are_consistent() {
        for p in ProtocolKind::ALL {
            let t = invariant_table(p);
            assert_eq!(t.protocol, p);
            assert!(t.contains("bus.double_grant"));
            assert!(t.contains("data.load_mismatch"));
            assert!(!t.contains("nonsense.rule"));
            for rule in t.coherence {
                assert!(
                    rule.starts_with(p.label()),
                    "{rule} not namespaced under {}",
                    p.label()
                );
            }
        }
        assert!(invariant_table(ProtocolKind::Dragon).contains("dragon.update_delivered"));
        assert!(!invariant_table(ProtocolKind::Dragon).contains("msi.hit_after_invalidate"));
        assert!(!invariant_table(ProtocolKind::Msi).contains("mesi.exclusive_with_sharers"));
    }

    #[test]
    fn hit_after_invalidate_requires_no_refill() {
        let c = Checker::with_level(CheckLevel::Basic);
        c.on_invalidate(at(10), CoreId(2), 0x40);
        c.on_line_filled(CoreId(2), 0x40);
        c.on_l2_hit(at(30), CoreId(2), 0x40);
        assert_eq!(c.violation_count(), 0);
        c.on_invalidate(at(40), CoreId(2), 0x40);
        c.on_l2_hit(at(41), CoreId(2), 0x40);
        assert_eq!(c.violations()[0].rule, "msi.hit_after_invalidate");
    }

    #[test]
    fn ozq_conservation() {
        let c = Checker::with_level(CheckLevel::Basic);
        c.on_ozq_insert(CoreId(0));
        c.on_ozq_insert(CoreId(0));
        c.on_ozq_removed(CoreId(0), 1);
        c.ozq_audit(at(9), CoreId(0), 1, 16);
        assert_eq!(c.violation_count(), 0);
        c.ozq_audit(at(10), CoreId(0), 0, 16);
        assert_eq!(c.violations()[0].rule, "ozq.conservation");
        c.ozq_audit(at(11), CoreId(0), 17, 16);
        assert!(c.violations().iter().any(|v| v.rule == "ozq.overflow"));
    }

    #[test]
    fn sync_array_rules() {
        let c = Checker::with_level(CheckLevel::Basic);
        c.sync_array_audit(at(3), 10, 6, 4);
        c.sync_array_queue(at(3), QueueId(0), 4, 32);
        c.sync_array_wake(at(3), QueueId(0), 0, 4);
        c.sync_array_wake(at(3), QueueId(0), 2, 0);
        assert_eq!(c.violation_count(), 0);
        c.sync_array_audit(at(4), 10, 6, 3);
        c.sync_array_queue(at(4), QueueId(1), 33, 32);
        c.sync_array_wake(at(4), QueueId(1), 1, 4);
        let rules: Vec<&str> = c.violations().iter().map(|v| v.rule).collect();
        assert_eq!(
            rules,
            vec!["sa.conservation", "sa.queue_overflow", "sa.dropped_wake"]
        );
    }

    #[test]
    fn stream_cache_rules() {
        let c = Checker::with_level(CheckLevel::Basic);
        c.stream_cache_entry(at(2), QueueId(0), 5, 42, 42, 8);
        assert_eq!(c.violation_count(), 0);
        c.stream_cache_entry(at(3), QueueId(0), 9, 42, 42, 8);
        c.stream_cache_entry(at(4), QueueId(0), 5, 42, 43, 8);
        let rules: Vec<&str> = c.violations().iter().map(|v| v.rule).collect();
        assert_eq!(rules, vec!["sc.not_forwarded", "sc.stale_value"]);
    }

    #[test]
    fn differential_data_check() {
        let c = Checker::with_level(CheckLevel::Full);
        assert!(c.is_full());
        c.seed_golden([(0x100, 7)].into_iter());
        c.on_load(at(1), 0x100, 7);
        c.on_load(at(2), 0x104, 7); // same word (addr & !7)
        c.on_store(at(3), 0x200, 9);
        c.on_load(at(4), 0x200, 9);
        c.on_load(at(5), 0x300, 0); // untouched words read as zero
        assert_eq!(c.violation_count(), 0);
        c.on_load(at(6), 0x200, 8);
        assert_eq!(c.violations()[0].rule, "data.load_mismatch");
    }

    #[test]
    fn basic_level_skips_differential() {
        let c = Checker::with_level(CheckLevel::Basic);
        c.on_store(at(1), 0x8, 5);
        c.on_load(at(2), 0x8, 999);
        assert_eq!(c.violation_count(), 0);
    }

    #[test]
    fn mutations_fire_once() {
        let c = Checker::with_level(CheckLevel::Basic);
        assert!(!c.fire_once(Mutation::DropBusResponse));
        c.set_mutation(Mutation::DropBusResponse);
        assert!(!c.fire_once(Mutation::LeakOzqSlot));
        assert!(c.fire_once(Mutation::DropBusResponse));
        assert!(!c.fire_once(Mutation::DropBusResponse));
        assert!(c.mutation_active(Mutation::DropBusResponse));
        assert!(!c.mutation_active(Mutation::StarveBusAgent));
    }

    #[test]
    fn violation_cap_counts_overflow() {
        let c = Checker::with_level(CheckLevel::Basic);
        for i in 0..(MAX_VIOLATIONS as u64 + 5) {
            c.report(at(i), "test.flood", String::new);
        }
        assert_eq!(c.violations().len(), MAX_VIOLATIONS);
        assert_eq!(c.violation_count(), MAX_VIOLATIONS as u64 + 5);
        assert!(c.first_violation().unwrap().contains("more"));
    }

    #[test]
    fn level_from_env_values() {
        // Only exercises the parser, not the process environment.
        assert_eq!(CheckLevel::default(), CheckLevel::Off);
    }
}

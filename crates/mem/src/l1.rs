//! Per-core write-through L1 data cache.

use hfs_isa::Addr;
use hfs_sim::ConfigError;

use crate::cache::{CacheArray, CacheGeometry, LineState};

/// A write-through, no-write-allocate L1 data cache.
///
/// Because the cache is write-through, every resident line is clean and
/// eviction never writes back. Coherence is maintained by the L2: any
/// invalidation or eviction at the L2 is forwarded here so the L1 stays a
/// subset of the L2.
#[derive(Debug)]
pub struct L1d {
    array: CacheArray,
    line_bytes: u64,
}

impl L1d {
    /// Creates an empty L1.
    pub fn new(geom: CacheGeometry) -> Result<Self, ConfigError> {
        Ok(L1d {
            line_bytes: geom.line_bytes,
            array: CacheArray::new(geom)?,
        })
    }

    fn line(&self, addr: Addr) -> u64 {
        addr.line(self.line_bytes)
    }

    /// Load lookup: true on hit (updates LRU and stats).
    pub fn load_hit(&mut self, addr: Addr) -> bool {
        self.array.access(self.line(addr)).is_some()
    }

    /// Store lookup: updates the line's LRU if present (write-through;
    /// no allocation on miss). Returns whether the line was present.
    pub fn store_touch(&mut self, addr: Addr) -> bool {
        self.array.access(self.line(addr)).is_some()
    }

    /// Replays `n` back-to-back probes of `addr` in bulk — the LRU and
    /// statistics effect of `n` [`L1d::load_hit`]/[`L1d::store_touch`]
    /// calls. Fast-forward uses this for pipelines re-attempting a
    /// refused access every cycle.
    pub fn replay_probes(&mut self, addr: Addr, n: u64) {
        self.array.replay_accesses(self.line(addr), n);
    }

    /// Installs the line containing `addr` after an L2 fill (clean —
    /// write-through L1 lines are never dirty).
    pub fn fill(&mut self, addr: Addr) {
        // Victims are clean by construction; nothing to write back.
        let _ = self.array.install(self.line(addr), LineState::Shared);
    }

    /// Drops the line containing `line_addr` (L2 eviction/invalidation).
    pub fn invalidate_line(&mut self, line_addr: Addr) {
        let _ = self.array.invalidate(self.line(line_addr));
    }

    /// When the L2 line size exceeds the L1's, one L2 invalidation covers
    /// several L1 lines; this drops them all.
    pub fn invalidate_span(&mut self, l2_line_addr: Addr, l2_line_bytes: u64) {
        let mut a = l2_line_addr;
        let end = l2_line_addr + l2_line_bytes;
        while a < end {
            self.invalidate_line(a);
            a = a + self.line_bytes;
        }
    }

    /// Load hits observed.
    pub fn hits(&self) -> u64 {
        self.array.hits()
    }

    /// Load misses observed.
    pub fn misses(&self) -> u64 {
        self.array.misses()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1() -> L1d {
        L1d::new(CacheGeometry::new(16 * 1024, 4, 64)).unwrap()
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = l1();
        let a = Addr::new(0x1000);
        assert!(!c.load_hit(a));
        c.fill(a);
        assert!(c.load_hit(a));
        assert!(c.load_hit(Addr::new(0x103f))); // same 64B line
        assert!(!c.load_hit(Addr::new(0x1040))); // next line
    }

    #[test]
    fn store_does_not_allocate() {
        let mut c = l1();
        let a = Addr::new(0x2000);
        assert!(!c.store_touch(a));
        assert!(!c.load_hit(a)); // still absent
    }

    #[test]
    fn invalidate_span_covers_l2_line() {
        let mut c = l1();
        // An L2 line of 128B covers two 64B L1 lines.
        c.fill(Addr::new(0x4000));
        c.fill(Addr::new(0x4040));
        c.invalidate_span(Addr::new(0x4000), 128);
        assert!(!c.load_hit(Addr::new(0x4000)));
        assert!(!c.load_hit(Addr::new(0x4040)));
    }
}
